"""Deadline filters composable with any base scorer.

Two wrappers that add FedCS-style deadline awareness to an arbitrary
registered strategy:

* :class:`HardDeadlinePolicy` — masks out clients whose projected epoch
  time ``l · τ_last`` misses the deadline, then delegates selection to
  the wrapped base policy over the survivors.  When fewer than ``n``
  clients survive, the filter relaxes to the ``n`` fastest so the
  participation floor holds.
* :class:`SoftDeadlinePolicy` — no hard cut; instead inflates each
  client's apparent rental cost by a penalty proportional to its
  projected deadline overshoot, so cost-sensitive base scorers shy away
  from stragglers without losing them entirely.

Both forward ``update`` to the base policy, so learning strategies keep
learning through the filter.  With ``deadline_s=None`` the deadline is
adaptive: a quantile of the available clients' projected epoch times,
re-estimated every epoch (the FedCS admission idiom).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.baselines.base import (
    Decision,
    EpochContext,
    RoundFeedback,
    SelectionPolicy,
    enforce_feasibility,
)

__all__ = ["HardDeadlinePolicy", "SoftDeadlinePolicy"]


def _projected(ctx: EpochContext, iterations: int) -> np.ndarray:
    """Projected epoch time per client from last realized latencies."""
    return iterations * ctx.tau_last


class _DeadlineFilter:
    """Shared wrapper plumbing: naming, adaptive deadline, update relay."""

    _label = "deadline"

    def __init__(
        self,
        base: SelectionPolicy,
        deadline_s: Optional[float] = None,
        quantile: float = 0.6,
    ) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")
        if not (0.0 < quantile <= 1.0):
            raise ValueError("quantile must be in (0, 1]")
        self.base = base
        self.deadline_s = deadline_s
        self.quantile = quantile
        self.name = f"{self._label}({base.name})"
        self.iterations = getattr(base, "iterations", 2)

    def _deadline(self, ctx: EpochContext, projected: np.ndarray) -> float:
        if self.deadline_s is not None:
            return self.deadline_s
        pool = projected[ctx.available]
        finite = pool[np.isfinite(pool)]
        if finite.size == 0:
            return float("inf")
        return float(np.quantile(finite, self.quantile))

    def update(self, feedback: RoundFeedback) -> None:
        self.base.update(feedback)


class HardDeadlinePolicy(_DeadlineFilter):
    """Admit only clients projected to meet the deadline, then delegate."""

    _label = "HardDeadline"

    def select(self, ctx: EpochContext) -> Decision:
        projected = _projected(ctx, self.iterations)
        deadline = self._deadline(ctx, projected)
        fast = ctx.available & (projected <= deadline)
        n = min(ctx.min_participants, int(ctx.available.sum()))
        if fast.sum() < n:
            # Relax to the n fastest so the participation floor holds.
            avail = np.flatnonzero(ctx.available)
            order = avail[np.argsort(projected[avail], kind="stable")]
            fast = fast.copy()
            fast[order[:n]] = True
        decision = self.base.select(dataclasses.replace(ctx, available=fast))
        mask = enforce_feasibility(decision.selected, ctx, None)
        return dataclasses.replace(decision, selected=mask)


class SoftDeadlinePolicy(_DeadlineFilter):
    """Penalize projected deadline overshoot via inflated apparent costs."""

    _label = "SoftDeadline"

    def __init__(
        self,
        base: SelectionPolicy,
        deadline_s: Optional[float] = None,
        quantile: float = 0.6,
        penalty: float = 1.0,
    ) -> None:
        super().__init__(base, deadline_s=deadline_s, quantile=quantile)
        if penalty < 0:
            raise ValueError("penalty must be >= 0")
        self.penalty = penalty

    def select(self, ctx: EpochContext) -> Decision:
        projected = _projected(ctx, self.iterations)
        deadline = self._deadline(ctx, projected)
        if np.isfinite(deadline) and deadline > 0:
            overshoot = np.maximum(projected - deadline, 0.0) / deadline
            overshoot = np.where(np.isfinite(overshoot), overshoot, 0.0)
            shaped = ctx.costs * (1.0 + self.penalty * overshoot)
        else:
            shaped = ctx.costs
        decision = self.base.select(dataclasses.replace(ctx, costs=shaped))
        # Repair against the *real* prices, not the shaped ones.
        mask = enforce_feasibility(decision.selected, ctx, None)
        return dataclasses.replace(decision, selected=mask)
