"""Budget-constrained selection strategies (Snippet-2 family).

Two zoo members that treat each epoch's selection as a knapsack over the
remaining rental budget:

* :class:`GreedyUtilityPolicy` — rank clients by utility density
  (observed local loss per unit rental cost) and greedily admit while
  the epoch's spending cap holds.
* :class:`KnapsackDPPolicy` — solve the same problem exactly with a 0/1
  knapsack dynamic program over discretized costs, maximizing summed
  utility under the cap.

Both declare ``budget_aware``: whenever the ``n`` cheapest available
clients fit the remaining budget, the returned selection's rental cost
fits too (the property-test suite enforces exactly this contract).  The
per-epoch cap spreads the remaining budget over the epochs still to run,
but never drops below the cost of the cheapest feasible quorum.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import (
    Decision,
    EpochContext,
    RoundFeedback,
)

__all__ = ["GreedyUtilityPolicy", "KnapsackDPPolicy"]


def _epoch_cap(ctx: EpochContext, budget_frac: float) -> float:
    """Per-epoch spending cap: a fraction of the remaining budget, but
    always at least the cheapest feasible quorum."""
    avail = np.flatnonzero(ctx.available)
    n = min(ctx.min_participants, avail.size)
    cheapest = np.sort(ctx.costs[avail])[:n].sum()
    return max(budget_frac * ctx.remaining_budget, cheapest)


def _utilities(ctx: EpochContext) -> np.ndarray:
    """Per-client utility: observed local loss, optimistic for unseen."""
    losses = ctx.local_losses
    if np.all(np.isnan(losses)):
        return np.ones(ctx.num_clients)
    return np.where(np.isnan(losses), np.nanmax(losses), losses)


def _finalize(
    chosen: np.ndarray, cap: float, ctx: EpochContext
) -> np.ndarray:
    """Repair a candidate set to the floor/budget contract.

    Top up to ``n`` with the cheapest unchosen clients; if the result
    exceeds both the cap and the remaining budget, fall back to the
    ``n`` cheapest outright (the only affordable quorum, if any is).
    """
    avail = np.flatnonzero(ctx.available)
    n = min(ctx.min_participants, avail.size)
    mask = np.zeros(ctx.num_clients, dtype=bool)
    mask[chosen] = True
    if mask.sum() < n:
        rest = avail[~mask[avail]]
        rest = rest[np.argsort(ctx.costs[rest], kind="stable")]
        mask[rest[: n - int(mask.sum())]] = True
    spend = ctx.costs[mask].sum()
    if spend > cap and spend > ctx.remaining_budget:
        cheap = avail[np.argsort(ctx.costs[avail], kind="stable")[:n]]
        mask = np.zeros(ctx.num_clients, dtype=bool)
        mask[cheap] = True
    return mask


class GreedyUtilityPolicy:
    """Greedy utility-per-cost selection under a per-epoch budget cap."""

    def __init__(
        self,
        iterations: int = 2,
        budget_frac: float = 0.05,
        max_extra: int = 2,
    ) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not (0.0 < budget_frac <= 1.0):
            raise ValueError("budget_frac must be in (0, 1]")
        if max_extra < 0:
            raise ValueError("max_extra must be >= 0")
        self.name = "GreedyUtility"
        self.iterations = iterations
        self.budget_frac = budget_frac
        self.max_extra = max_extra

    def select(self, ctx: EpochContext) -> Decision:
        avail = np.flatnonzero(ctx.available)
        n = min(ctx.min_participants, avail.size)
        cap = _epoch_cap(ctx, self.budget_frac)
        density = _utilities(ctx)[avail] / np.maximum(ctx.costs[avail], 1e-12)
        order = avail[np.argsort(-density, kind="stable")]
        chosen, spend = [], 0.0
        limit = n + self.max_extra
        for k in order:
            if len(chosen) >= limit:
                break
            if spend + ctx.costs[k] <= cap or len(chosen) < n:
                chosen.append(k)
                spend += ctx.costs[k]
        mask = _finalize(np.asarray(chosen, dtype=int), cap, ctx)
        return Decision(selected=mask, iterations=self.iterations)

    def update(self, feedback: RoundFeedback) -> None:
        """Stateless; utilities arrive through the context."""


class KnapsackDPPolicy:
    """Exact 0/1 knapsack selection over discretized rental costs."""

    def __init__(
        self,
        iterations: int = 2,
        budget_frac: float = 0.05,
        resolution: int = 64,
    ) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not (0.0 < budget_frac <= 1.0):
            raise ValueError("budget_frac must be in (0, 1]")
        if resolution < 2:
            raise ValueError("resolution must be >= 2")
        self.name = "KnapsackDP"
        self.iterations = iterations
        self.budget_frac = budget_frac
        self.resolution = resolution

    def select(self, ctx: EpochContext) -> Decision:
        avail = np.flatnonzero(ctx.available)
        cap = _epoch_cap(ctx, self.budget_frac)
        # Ceil-discretize so integer weights over-count real cost: any DP
        # solution within integer capacity is within the real cap too.
        unit = max(cap / self.resolution, 1e-12)
        weights = np.ceil(ctx.costs[avail] / unit).astype(int)
        capacity = self.resolution
        values = _utilities(ctx)[avail]
        best = np.zeros(capacity + 1)
        keep = np.zeros((avail.size, capacity + 1), dtype=bool)
        for i in range(avail.size):
            w, v = weights[i], values[i]
            if w <= capacity:
                cand = best[: capacity - w + 1] + v
                upgraded = cand > best[w:]
                keep[i, w:] = upgraded
                best[w:] = np.where(upgraded, cand, best[w:])
        chosen = []
        c = capacity
        for i in range(avail.size - 1, -1, -1):
            if keep[i, c]:
                chosen.append(avail[i])
                c -= weights[i]
        mask = _finalize(np.asarray(chosen, dtype=int), cap, ctx)
        return Decision(selected=mask, iterations=self.iterations)

    def update(self, feedback: RoundFeedback) -> None:
        """Stateless; utilities arrive through the context."""
