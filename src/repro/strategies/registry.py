"""Declarative registry of client-selection strategies.

Every selection policy the repo knows — the paper's FedL, the classic
baselines, and the zoo of newer scorers — is registered here as a
:class:`StrategySpec`: a name, a typed parameter schema (defaults,
bounds, choices), capability flags (budget-aware, reliability-aware,
deadline-aware, ...), and a builder.  The spec makes strategies
*addressable as data*: the CLI, :class:`~repro.experiments.sweep.
PolicySpec` overlays, the sweep cache, and the tournament harness all
construct policies through :func:`build_strategy` from a plain name (or
a ``{"name": ..., "params": {...}}`` dict) instead of hard-coded
constructor calls.

Errors are typed so callers can map them to exit codes:
:class:`UnknownStrategyError` for a name that is not registered,
:class:`StrategyParamError` for an unknown/ill-typed/out-of-bounds
parameter.  Both subclass ``ValueError`` for backward compatibility with
the historical ``make_policy`` contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.baselines.base import SelectionPolicy
from repro.config import ExperimentConfig

__all__ = [
    "StrategyError",
    "UnknownStrategyError",
    "StrategyParamError",
    "ParamSpec",
    "StrategySpec",
    "STRATEGY_REGISTRY",
    "register_strategy",
    "get_strategy",
    "strategy_names",
    "resolve_params",
    "build_strategy",
]


class StrategyError(ValueError):
    """Base class for strategy-registry errors."""


class UnknownStrategyError(StrategyError):
    """Raised when a strategy name is not in the registry."""

    def __init__(self, name: str) -> None:
        self.strategy = name
        super().__init__(
            f"unknown strategy {name!r}; known: {', '.join(STRATEGY_REGISTRY)}"
        )


class StrategyParamError(StrategyError):
    """Raised for an unknown, ill-typed, or out-of-bounds parameter."""

    def __init__(self, strategy: str, param: str, message: str) -> None:
        self.strategy = strategy
        self.param = param
        super().__init__(f"strategy {strategy!r}, param {param!r}: {message}")


@dataclass(frozen=True)
class ParamSpec:
    """One tunable parameter of a strategy.

    ``default`` is the literal default; when the useful default depends
    on the experiment (e.g. Pow-d's candidate count ``d = 3n``),
    ``derive`` computes it from the config at build time and ``default``
    documents it as ``None``.  ``minimum``/``maximum`` bound numeric
    values inclusively; ``choices`` enumerates valid strings.
    """

    name: str
    default: Any = None
    kind: type = float
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    choices: Optional[Tuple[str, ...]] = None
    doc: str = ""
    derive: Optional[Callable[[ExperimentConfig], Any]] = None
    optional: bool = False  # None is a legal value (e.g. adaptive deadline)

    def resolve_default(self, config: ExperimentConfig) -> Any:
        return self.derive(config) if self.derive is not None else self.default

    def validate(self, strategy: str, value: Any) -> Any:
        """Coerce and bounds-check one value; raises StrategyParamError."""
        if value is None:
            if self.optional:
                return None
            raise StrategyParamError(strategy, self.name, "may not be None")
        if self.kind is bool:
            if not isinstance(value, (bool, np.bool_)):
                raise StrategyParamError(strategy, self.name, "expected a bool")
            return bool(value)
        if self.kind is int:
            if isinstance(value, bool) or (
                not isinstance(value, (int, np.integer))
            ):
                raise StrategyParamError(strategy, self.name, "expected an int")
            value = int(value)
        elif self.kind is float:
            if isinstance(value, bool) or not isinstance(
                value, (int, float, np.integer, np.floating)
            ):
                raise StrategyParamError(strategy, self.name, "expected a number")
            value = float(value)
            if not np.isfinite(value):
                raise StrategyParamError(strategy, self.name, "must be finite")
        elif self.kind is str:
            if not isinstance(value, str):
                raise StrategyParamError(strategy, self.name, "expected a string")
        if self.choices is not None and value not in self.choices:
            raise StrategyParamError(
                strategy, self.name, f"must be one of {sorted(self.choices)}"
            )
        if self.minimum is not None and value < self.minimum:
            raise StrategyParamError(
                strategy, self.name, f"must be >= {self.minimum}"
            )
        if self.maximum is not None and value > self.maximum:
            raise StrategyParamError(
                strategy, self.name, f"must be <= {self.maximum}"
            )
        return value


Builder = Callable[
    [ExperimentConfig, np.random.Generator, Dict[str, Any]], SelectionPolicy
]


@dataclass(frozen=True)
class StrategySpec:
    """A registered selection strategy: schema + capabilities + builder.

    Capability flags are declarative *contracts* the property-test suite
    enforces:

    * ``budget_aware`` — whenever the ``n`` cheapest available clients
      fit the remaining budget, the selection's rental cost does too;
    * ``deadline_aware`` — selection reacts to a per-epoch deadline;
    * ``reliability_aware`` — selection reads ``ctx.reliability``;
    * ``randomized`` — the decision consumes RNG draws even with fully
      observed, distinct inputs (permutation equivariance then only
      holds in distribution, so the exact-relabeling property is skipped);
    * ``needs_oracle`` — requires ``ctx.tau_oracle`` (1-lookahead).
    """

    name: str
    description: str
    builder: Builder
    params: Tuple[ParamSpec, ...] = ()
    budget_aware: bool = False
    reliability_aware: bool = False
    deadline_aware: bool = False
    randomized: bool = False
    needs_oracle: bool = False
    paper_baseline: bool = False  # part of the original FedL comparison set

    def param(self, name: str) -> ParamSpec:
        for p in self.params:
            if p.name == name:
                return p
        raise StrategyParamError(
            self.name, name,
            f"unknown parameter; known: {sorted(p.name for p in self.params)}",
        )

    def capabilities(self) -> Tuple[str, ...]:
        flags = []
        if self.budget_aware:
            flags.append("budget")
        if self.deadline_aware:
            flags.append("deadline")
        if self.reliability_aware:
            flags.append("reliability")
        if self.randomized:
            flags.append("randomized")
        if self.needs_oracle:
            flags.append("oracle")
        return tuple(flags)


#: Insertion-ordered registry; order defines listing/CLI/report order.
STRATEGY_REGISTRY: Dict[str, StrategySpec] = {}


def register_strategy(spec: StrategySpec) -> StrategySpec:
    """Add ``spec`` to the registry (duplicate names are a bug)."""
    if spec.name in STRATEGY_REGISTRY:
        raise StrategyError(f"strategy {spec.name!r} registered twice")
    STRATEGY_REGISTRY[spec.name] = spec
    return spec


def get_strategy(name: str) -> StrategySpec:
    """Look up a spec by name; raises :class:`UnknownStrategyError`."""
    try:
        return STRATEGY_REGISTRY[name]
    except KeyError:
        raise UnknownStrategyError(name) from None


def strategy_names() -> Tuple[str, ...]:
    """Every registered strategy name, in registration order."""
    return tuple(STRATEGY_REGISTRY)


def resolve_params(
    spec: StrategySpec,
    config: ExperimentConfig,
    overrides: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Defaults (derived against ``config``) overlaid with ``overrides``,
    every value validated against the schema."""
    params = {p.name: p.resolve_default(config) for p in spec.params}
    for key, value in dict(overrides or {}).items():
        pspec = spec.param(key)  # raises on unknown names
        params[key] = pspec.validate(spec.name, value)
    return params


StrategyRef = Union[str, Mapping[str, Any]]


def build_strategy(
    ref: StrategyRef,
    config: ExperimentConfig,
    rng: np.random.Generator,
    params: Optional[Mapping[str, Any]] = None,
    *,
    iterations: Optional[int] = None,
    deadline_s: Optional[float] = None,
) -> SelectionPolicy:
    """Construct a policy from a name or a ``{"name", "params"}`` dict.

    ``iterations``/``deadline_s`` are the historical ``make_policy``
    keyword interface; they fill the matching schema parameters only
    when present in the schema and not already set by ``params`` (an
    explicit ``params`` entry always wins).
    """
    if isinstance(ref, str):
        name, ref_params = ref, {}
    elif isinstance(ref, Mapping):
        try:
            name = ref["name"]
        except KeyError:
            raise StrategyError("strategy dict needs a 'name' key") from None
        ref_params = dict(ref.get("params") or {})
    else:
        raise StrategyError(f"expected a strategy name or dict, got {ref!r}")
    spec = get_strategy(name)
    merged = dict(ref_params)
    merged.update(params or {})
    names = {p.name for p in spec.params}
    if iterations is not None and "iterations" in names:
        merged.setdefault("iterations", iterations)
    if deadline_s is not None and "deadline_s" in names:
        merged.setdefault("deadline_s", deadline_s)
    resolved = resolve_params(spec, config, merged)
    return spec.builder(config, rng, resolved)
