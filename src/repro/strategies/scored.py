"""Observation-driven scoring strategies (fl-sim's data/model-based family).

Three zoo members that rank clients by what the server has *observed*
about them through the 0-lookahead feedback channel:

* :class:`GradNormPolicy` — gradient-norm sampling: score each client by
  an EWMA of the magnitude of its local-loss change between consecutive
  observations (the finite-difference proxy for its gradient norm along
  the update trajectory) and select the top ``n``.
* :class:`LossPropPolicy` — loss-proportional sampling: sample ``n``
  clients without replacement with probability proportional to their
  last observed local loss (clients the model serves worst participate
  more often, in expectation).
* :class:`DivergencePolicy` — model-divergence scoring: score each
  client by an EWMA of ``|F_k(w) − F(w)|``, its local loss's divergence
  from the population loss, and select the top ``n`` (clients whose data
  distribution the global model fits worst).

All three are pure :class:`~repro.baselines.base.SelectionPolicy`
implementations: unobserved clients score ``+inf`` (explore-first), and
every selection is repaired by ``enforce_feasibility``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    Decision,
    EpochContext,
    RoundFeedback,
    enforce_feasibility,
)

__all__ = ["GradNormPolicy", "LossPropPolicy", "DivergencePolicy"]


def _top_n_mask(scores: np.ndarray, ctx: EpochContext) -> np.ndarray:
    """Boolean mask of the ``n`` highest-scoring available clients."""
    keyed = np.where(ctx.available, scores, -np.inf)
    n = min(ctx.min_participants, int(ctx.available.sum()))
    order = np.argsort(-keyed, kind="stable")
    mask = np.zeros(ctx.num_clients, dtype=bool)
    mask[order[:n]] = True
    return mask


class GradNormPolicy:
    """Select the n clients with the largest gradient-norm proxy."""

    def __init__(
        self,
        num_clients: int,
        iterations: int = 2,
        ema: float = 0.5,
    ) -> None:
        if num_clients < 1:
            raise ValueError("need at least one client")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not (0.0 < ema <= 1.0):
            raise ValueError("ema must be in (0, 1]")
        self.name = "GradNorm"
        self.iterations = iterations
        self.ema = ema
        self.scores = np.full(num_clients, np.inf)  # unobserved: explore first
        self._prev_losses = np.full(num_clients, np.nan)

    def select(self, ctx: EpochContext) -> Decision:
        mask = enforce_feasibility(_top_n_mask(self.scores, ctx), ctx, None)
        return Decision(selected=mask, iterations=self.iterations)

    def update(self, feedback: RoundFeedback) -> None:
        losses = feedback.local_losses
        observed = ~np.isnan(losses)
        # |ΔF_k| between consecutive observations; a first observation
        # seeds the proxy with the loss magnitude itself.
        delta = np.where(
            np.isnan(self._prev_losses), np.abs(losses),
            np.abs(losses - self._prev_losses),
        )
        fresh = ~np.isfinite(self.scores)
        new = np.where(
            fresh, delta, (1.0 - self.ema) * self.scores + self.ema * delta
        )
        self.scores = np.where(observed, new, self.scores)
        self._prev_losses = np.where(observed, losses, self._prev_losses)


class LossPropPolicy:
    """Sample n clients with probability proportional to local loss."""

    def __init__(
        self,
        rng: np.random.Generator,
        iterations: int = 2,
        power: float = 1.0,
    ) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if power <= 0:
            raise ValueError("power must be positive")
        self.name = "LossProp"
        self.rng = rng
        self.iterations = iterations
        self.power = power

    def select(self, ctx: EpochContext) -> Decision:
        avail = np.flatnonzero(ctx.available)
        losses = ctx.local_losses[avail]
        # Unobserved clients weigh in at the max observed loss (optimism),
        # or uniformly when nothing has been observed yet.
        if np.all(np.isnan(losses)):
            weights = np.ones(avail.size)
        else:
            filled = np.where(np.isnan(losses), np.nanmax(losses), losses)
            weights = np.maximum(filled, 0.0) ** self.power
            if not np.all(weights > 0):
                weights = weights + 1e-12
        probs = weights / weights.sum()
        n = min(ctx.min_participants, avail.size)
        pick = self.rng.choice(avail, size=n, replace=False, p=probs)
        mask = np.zeros(ctx.num_clients, dtype=bool)
        mask[pick] = True
        mask = enforce_feasibility(mask, ctx, self.rng)
        return Decision(selected=mask, iterations=self.iterations)

    def update(self, feedback: RoundFeedback) -> None:
        """Stateless; losses arrive through the context."""


class DivergencePolicy:
    """Select the n clients whose local loss diverges most from the
    population loss (model-divergence scoring)."""

    def __init__(
        self,
        num_clients: int,
        iterations: int = 2,
        ema: float = 0.5,
    ) -> None:
        if num_clients < 1:
            raise ValueError("need at least one client")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not (0.0 < ema <= 1.0):
            raise ValueError("ema must be in (0, 1]")
        self.name = "Divergence"
        self.iterations = iterations
        self.ema = ema
        self.scores = np.full(num_clients, np.inf)  # unobserved: explore first

    def select(self, ctx: EpochContext) -> Decision:
        mask = enforce_feasibility(_top_n_mask(self.scores, ctx), ctx, None)
        return Decision(selected=mask, iterations=self.iterations)

    def update(self, feedback: RoundFeedback) -> None:
        losses = feedback.local_losses
        observed = ~np.isnan(losses)
        divergence = np.abs(losses - feedback.population_loss)
        fresh = ~np.isfinite(self.scores)
        new = np.where(
            fresh, divergence,
            (1.0 - self.ema) * self.scores + self.ema * divergence,
        )
        self.scores = np.where(observed, new, self.scores)
