"""Registration of every built-in selection strategy.

Importing this module populates :data:`~repro.strategies.registry.
STRATEGY_REGISTRY` with the full zoo: the paper's FedL and its
comparison baselines, plus the scored / budgeted / deadline families.
Registration order defines listing and report order.

The builders reproduce the historical ``make_policy`` constructor calls
exactly when left at their defaults, so fig6/fig7 baseline traces stay
bit-identical to pre-registry runs.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.baselines import (
    FedAvgPolicy,
    FedCSPolicy,
    GreedyOraclePolicy,
    OverSelectPolicy,
    PowDPolicy,
    UCBPolicy,
)
from repro.baselines.base import SelectionPolicy
from repro.config import ExperimentConfig
from repro.core.fairness import FairFedLPolicy
from repro.core.fedl import FedLPolicy

from .budgeted import GreedyUtilityPolicy, KnapsackDPPolicy
from .deadline import HardDeadlinePolicy, SoftDeadlinePolicy
from .registry import (
    ParamSpec,
    StrategyParamError,
    StrategySpec,
    register_strategy,
)
from .scored import DivergencePolicy, GradNormPolicy, LossPropPolicy

__all__ = ["WRAPPABLE"]

#: Strategies a wrapper (OverSelect, deadline filters) may compose with.
#: Wrapping another wrapper is rejected to keep composition one level deep.
WRAPPABLE = (
    "FedL",
    "FedAvg",
    "FedCS",
    "Pow-d",
    "Fair-FedL",
    "UCB",
    "GradNorm",
    "LossProp",
    "Divergence",
    "GreedyUtility",
    "KnapsackDP",
)

_ITERATIONS = ParamSpec(
    "iterations", default=2, kind=int, minimum=1,
    doc="fixed global iterations per epoch",
)
_BASE = ParamSpec(
    "base", default="FedAvg", kind=str, choices=WRAPPABLE,
    doc="registered strategy the wrapper delegates selection to",
)


def _build_base(
    name: str, config: ExperimentConfig, rng: np.random.Generator,
    iterations: int,
) -> SelectionPolicy:
    from .registry import build_strategy

    return build_strategy(name, config, rng, iterations=iterations)


def _fedl(config: ExperimentConfig, rng, p: Dict[str, Any]) -> SelectionPolicy:
    if config.shard.num_shards > 1:
        # Sharded construction path: every consumer of the registry
        # (CLI, sweeps, tournaments) gains O(S·(K/S)²) selection
        # transparently.  num_shards == 1 stays the flat policy below.
        from repro.fl.shard import ShardedFedLPolicy

        positions = None
        if config.shard.assignment == "kmeans":
            # Rebuild the deterministic client layout on a private copy
            # of the env.population stream (same seed, fresh generator —
            # the runner's own stream is not perturbed).
            from repro.env.population import build_population
            from repro.rng import RngFactory

            positions = build_population(
                config.population,
                RngFactory(config.seed).get("env.population"),
                cell_radius_m=config.network.cell_radius_m,
            ).positions_m
        return ShardedFedLPolicy(
            num_clients=config.population.num_clients,
            budget=config.budget,
            min_participants=config.min_participants,
            theta=config.training.theta,
            rng=rng,
            config=config.fedl,
            cost_range=config.population.cost_range,
            shard=config.shard,
            positions=positions,
        )
    return FedLPolicy(
        num_clients=config.population.num_clients,
        budget=config.budget,
        min_participants=config.min_participants,
        theta=config.training.theta,
        rng=rng,
        config=config.fedl,
        cost_range=config.population.cost_range,
    )


def _fair_fedl(config, rng, p) -> FairFedLPolicy:
    return FairFedLPolicy(
        num_clients=config.population.num_clients,
        budget=config.budget,
        min_participants=config.min_participants,
        theta=config.training.theta,
        rng=rng,
        config=config.fedl,
        cost_range=config.population.cost_range,
        fair_rate=p["fair_rate"],
        fairness_weight=p["fairness_weight"],
    )


register_strategy(StrategySpec(
    name="FedL",
    description="the paper's online learner: dual-ascent budgeted selection"
                " with learned iteration control",
    builder=_fedl,
    # Budget-constrained at horizon level (dual ascent), but the strict
    # per-epoch affordability contract does not survive randomized
    # rounding, so ``budget_aware`` is not declared.
    reliability_aware=True,
    randomized=True,  # dependent rounding consumes RNG draws
    paper_baseline=True,
))

register_strategy(StrategySpec(
    name="FedAvg",
    description="uniform random sampling of n available clients",
    builder=lambda config, rng, p: FedAvgPolicy(
        rng, iterations=p["iterations"], sample_size=p["sample_size"]
    ),
    params=(
        _ITERATIONS,
        ParamSpec("sample_size", kind=int, minimum=1, optional=True,
                  doc="clients to draw per epoch (default: exactly n)"),
    ),
    randomized=True,
    paper_baseline=True,
))

register_strategy(StrategySpec(
    name="FedCS",
    description="deadline-greedy admission of the fastest clients",
    builder=lambda config, rng, p: FedCSPolicy(
        rng, deadline_s=p["deadline_s"], iterations=p["iterations"],
        adaptive_quantile=p["adaptive_quantile"],
    ),
    params=(
        ParamSpec("deadline_s", kind=float, optional=True,
                  doc="round deadline in seconds (None: adaptive quantile)"),
        _ITERATIONS,
        ParamSpec("adaptive_quantile", default=0.6, kind=float,
                  minimum=0.01, maximum=1.0,
                  doc="latency quantile for the adaptive deadline"),
    ),
    deadline_aware=True,
    paper_baseline=True,
))

register_strategy(StrategySpec(
    name="Pow-d",
    description="power-of-d-choices: sample d candidates, keep the n with"
                " the highest observed loss",
    builder=lambda config, rng, p: PowDPolicy(
        rng, d=p["d"], iterations=p["iterations"]
    ),
    params=(
        ParamSpec("d", kind=int, minimum=1,
                  derive=lambda config: 3 * config.min_participants,
                  doc="candidate pool size (default 3n)"),
        _ITERATIONS,
    ),
    randomized=True,
    paper_baseline=True,
))

register_strategy(StrategySpec(
    name="Fair-FedL",
    description="FedL plus a virtual-queue participation-fairness bias",
    builder=_fair_fedl,
    params=(
        ParamSpec("fair_rate", default=0.1, kind=float,
                  minimum=0.0, maximum=0.999,
                  doc="target long-term participation rate per client"),
        ParamSpec("fairness_weight", default=0.5, kind=float, minimum=0.0,
                  doc="virtual-queue bias strength (0 = plain FedL)"),
    ),
    reliability_aware=True,
    randomized=True,
))

register_strategy(StrategySpec(
    name="UCB",
    description="combinatorial UCB over per-client latency rewards",
    builder=lambda config, rng, p: UCBPolicy(
        config.population.num_clients, rng,
        exploration=p["exploration"], iterations=p["iterations"],
    ),
    params=(
        ParamSpec("exploration", default=0.5, kind=float, minimum=0.0,
                  doc="width of the confidence bonus"),
        _ITERATIONS,
    ),
    randomized=True,  # epsilon jitter breaks score ties
))

register_strategy(StrategySpec(
    name="Oracle",
    description="1-lookahead greedy: best subset under the true latencies"
                " of the coming epoch",
    builder=lambda config, rng, p: GreedyOraclePolicy(
        rng, iterations=p["iterations"]
    ),
    params=(_ITERATIONS,),
    budget_aware=True,
    needs_oracle=True,
))

register_strategy(StrategySpec(
    name="OverSelect",
    description="over-selection straggler mitigation around a base scorer:"
                " rent extra clients, keep the base quorum's fastest",
    builder=lambda config, rng, p: OverSelectPolicy(
        _build_base(p["base"], config, rng, p["iterations"]),
        extra=p["extra"],
    ),
    params=(
        _BASE,
        ParamSpec("extra", default=2, kind=int, minimum=1,
                  doc="additional clients rented beyond the base quorum"),
        _ITERATIONS,
    ),
    randomized=True,  # base default (FedAvg) samples randomly
))

register_strategy(StrategySpec(
    name="GradNorm",
    description="gradient-norm sampling: EWMA of local-loss change"
                " magnitude, top-n",
    builder=lambda config, rng, p: GradNormPolicy(
        config.population.num_clients, iterations=p["iterations"],
        ema=p["ema"],
    ),
    params=(
        _ITERATIONS,
        ParamSpec("ema", default=0.5, kind=float, minimum=0.01, maximum=1.0,
                  doc="EWMA weight on the newest observation"),
    ),
))

register_strategy(StrategySpec(
    name="LossProp",
    description="loss-proportional sampling without replacement",
    builder=lambda config, rng, p: LossPropPolicy(
        rng, iterations=p["iterations"], power=p["power"]
    ),
    params=(
        _ITERATIONS,
        ParamSpec("power", default=1.0, kind=float, minimum=0.01,
                  doc="exponent sharpening the sampling distribution"),
    ),
    randomized=True,
))

register_strategy(StrategySpec(
    name="Divergence",
    description="model-divergence scoring: EWMA of |local - population|"
                " loss gap, top-n",
    builder=lambda config, rng, p: DivergencePolicy(
        config.population.num_clients, iterations=p["iterations"],
        ema=p["ema"],
    ),
    params=(
        _ITERATIONS,
        ParamSpec("ema", default=0.5, kind=float, minimum=0.01, maximum=1.0,
                  doc="EWMA weight on the newest observation"),
    ),
))

register_strategy(StrategySpec(
    name="GreedyUtility",
    description="greedy loss-per-cost selection under a per-epoch"
                " budget cap",
    builder=lambda config, rng, p: GreedyUtilityPolicy(
        iterations=p["iterations"], budget_frac=p["budget_frac"],
        max_extra=p["max_extra"],
    ),
    params=(
        _ITERATIONS,
        ParamSpec("budget_frac", default=0.05, kind=float,
                  minimum=0.001, maximum=1.0,
                  doc="fraction of remaining budget spendable per epoch"),
        ParamSpec("max_extra", default=2, kind=int, minimum=0,
                  doc="clients admittable beyond the quorum n"),
    ),
    budget_aware=True,
))

register_strategy(StrategySpec(
    name="KnapsackDP",
    description="exact 0/1 knapsack over discretized rental costs,"
                " maximizing summed utility under a per-epoch cap",
    builder=lambda config, rng, p: KnapsackDPPolicy(
        iterations=p["iterations"], budget_frac=p["budget_frac"],
        resolution=p["resolution"],
    ),
    params=(
        _ITERATIONS,
        ParamSpec("budget_frac", default=0.05, kind=float,
                  minimum=0.001, maximum=1.0,
                  doc="fraction of remaining budget spendable per epoch"),
        ParamSpec("resolution", default=64, kind=int, minimum=2,
                  doc="cost-discretization buckets for the DP table"),
    ),
    budget_aware=True,
))

register_strategy(StrategySpec(
    name="HardDeadline",
    description="hard deadline filter: mask out projected stragglers,"
                " delegate to a base scorer",
    builder=lambda config, rng, p: HardDeadlinePolicy(
        _build_base(p["base"], config, rng, p["iterations"]),
        deadline_s=p["deadline_s"], quantile=p["quantile"],
    ),
    params=(
        _BASE,
        ParamSpec("deadline_s", kind=float, optional=True,
                  doc="epoch deadline in seconds (None: adaptive quantile)"),
        ParamSpec("quantile", default=0.6, kind=float,
                  minimum=0.01, maximum=1.0,
                  doc="latency quantile for the adaptive deadline"),
        _ITERATIONS,
    ),
    deadline_aware=True,
    randomized=True,  # base default (FedAvg) samples randomly
))

register_strategy(StrategySpec(
    name="SoftDeadline",
    description="soft deadline filter: inflate apparent costs by projected"
                " overshoot, delegate to a base scorer",
    builder=lambda config, rng, p: SoftDeadlinePolicy(
        _build_base(p["base"], config, rng, p["iterations"]),
        deadline_s=p["deadline_s"], quantile=p["quantile"],
        penalty=p["penalty"],
    ),
    params=(
        _BASE,
        ParamSpec("deadline_s", kind=float, optional=True,
                  doc="epoch deadline in seconds (None: adaptive quantile)"),
        ParamSpec("quantile", default=0.6, kind=float,
                  minimum=0.01, maximum=1.0,
                  doc="latency quantile for the adaptive deadline"),
        ParamSpec("penalty", default=1.0, kind=float, minimum=0.0,
                  doc="cost-inflation strength per unit overshoot"),
        _ITERATIONS,
    ),
    deadline_aware=True,
    randomized=True,  # base default (FedAvg) samples randomly
))
