"""Declarative selection-strategy zoo.

Importing this package registers every built-in strategy; use
:func:`build_strategy` to construct one from a name (or a
``{"name": ..., "params": {...}}`` dict), and :data:`STRATEGY_REGISTRY`
/ :func:`strategy_names` to enumerate the zoo.
"""

from .registry import (
    STRATEGY_REGISTRY,
    ParamSpec,
    StrategyError,
    StrategyParamError,
    StrategySpec,
    UnknownStrategyError,
    build_strategy,
    get_strategy,
    register_strategy,
    resolve_params,
    strategy_names,
)
from . import builtin as _builtin  # noqa: F401  (registers the zoo)
from .builtin import WRAPPABLE
from .budgeted import GreedyUtilityPolicy, KnapsackDPPolicy
from .deadline import HardDeadlinePolicy, SoftDeadlinePolicy
from .scored import DivergencePolicy, GradNormPolicy, LossPropPolicy

__all__ = [
    "STRATEGY_REGISTRY",
    "ParamSpec",
    "StrategyError",
    "StrategyParamError",
    "StrategySpec",
    "UnknownStrategyError",
    "build_strategy",
    "get_strategy",
    "register_strategy",
    "resolve_params",
    "strategy_names",
    "WRAPPABLE",
    "GradNormPolicy",
    "LossPropPolicy",
    "DivergencePolicy",
    "GreedyUtilityPolicy",
    "KnapsackDPPolicy",
    "HardDeadlinePolicy",
    "SoftDeadlinePolicy",
]
