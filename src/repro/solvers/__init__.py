"""Generic convex-optimization substrate.

Provides the numerical machinery FedL's per-epoch subproblem (paper eq. 8)
is solved with:

* :mod:`repro.solvers.projections` — Euclidean projections onto the simple
  sets that appear in the relaxed decision space (boxes, halfspaces,
  simplices, box-with-budget intersections).
* :mod:`repro.solvers.projected_gradient` — projected gradient descent with
  Armijo backtracking for smooth convex objectives over projectable sets.
* :mod:`repro.solvers.interior_point` — a log-barrier primal-dual
  interior-point method with filter line search, the same algorithm family
  as the paper's reference [26] (Wächter & Biegler / IPOPT).
* :mod:`repro.solvers.line_search` — Armijo / filter acceptance rules.
* :mod:`repro.solvers.qp` — small dense QP helper used in tests as an
  independent cross-check.
"""

from repro.solvers.projections import (
    project_box,
    project_halfspace,
    project_simplex,
    project_capped_simplex,
    project_box_halfspace,
    alternating_projections,
)
from repro.solvers.projected_gradient import (
    ProjectedGradientResult,
    projected_gradient,
)
from repro.solvers.interior_point import (
    InteriorPointResult,
    solve_interior_point,
)
from repro.solvers.line_search import armijo_backtracking, Filter
from repro.solvers.qp import solve_box_qp

__all__ = [
    "project_box",
    "project_halfspace",
    "project_simplex",
    "project_capped_simplex",
    "project_box_halfspace",
    "alternating_projections",
    "ProjectedGradientResult",
    "projected_gradient",
    "InteriorPointResult",
    "solve_interior_point",
    "armijo_backtracking",
    "Filter",
    "solve_box_qp",
]
