"""Small dense box-constrained QP solver (active-set style).

Solves::

    minimize    0.5 xᵀ Q x + cᵀ x
    subject to  lo <= x <= hi

by coordinate-wise projected Newton sweeps.  Used primarily in tests as an
independent cross-check of :mod:`repro.solvers.projected_gradient` and
:mod:`repro.solvers.interior_point` (three solvers agreeing on random QPs
is strong evidence none of them is silently wrong).
"""

from __future__ import annotations

import numpy as np

__all__ = ["solve_box_qp"]


def solve_box_qp(
    Q: np.ndarray,
    c: np.ndarray,
    lo: np.ndarray | float,
    hi: np.ndarray | float,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_sweeps: int = 10_000,
) -> np.ndarray:
    """Minimize ``0.5 xᵀQx + cᵀx`` over the box ``[lo, hi]``.

    ``Q`` must be symmetric positive semi-definite with strictly positive
    diagonal (true for the proximal-regularized subproblems we build).
    Coordinate descent on a box-constrained convex QP converges to the
    global optimum.
    """
    Q = np.asarray(Q, dtype=float)
    c = np.asarray(c, dtype=float)
    n = c.size
    lo_a = np.broadcast_to(np.asarray(lo, dtype=float), (n,)).copy()
    hi_a = np.broadcast_to(np.asarray(hi, dtype=float), (n,)).copy()
    if np.any(np.diag(Q) <= 0):
        raise ValueError("solve_box_qp requires positive diagonal in Q")
    x = (
        np.clip(np.zeros(n), lo_a, hi_a)
        if x0 is None
        else np.clip(np.asarray(x0, dtype=float), lo_a, hi_a)
    )
    g = Q @ x + c
    diag = np.diag(Q)
    for _ in range(max_sweeps):
        max_move = 0.0
        for i in range(n):
            xi_new = np.clip(x[i] - g[i] / diag[i], lo_a[i], hi_a[i])
            move = xi_new - x[i]
            if move != 0.0:
                g += Q[:, i] * move
                x[i] = xi_new
                max_move = max(max_move, abs(move))
        if max_move <= tol:
            break
    return x
