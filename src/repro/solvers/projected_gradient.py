"""Projected gradient descent with Armijo backtracking.

This is the workhorse used by default to solve FedL's per-epoch descent
step (paper eq. 8): a smooth convex objective over a projectable convex set.
The projection operator is supplied by the caller (typically a Dykstra
composition of the box, budget and participation sets from
:mod:`repro.solvers.projections`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["ProjectedGradientResult", "projected_gradient"]


@dataclass(frozen=True)
class ProjectedGradientResult:
    """Outcome of a projected-gradient solve."""

    x: np.ndarray
    fun: float
    iterations: int
    converged: bool
    grad_norm: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "x", np.asarray(self.x, dtype=float))


def projected_gradient(
    objective: Callable[[np.ndarray], float],
    gradient: Callable[[np.ndarray], np.ndarray],
    project: Callable[[np.ndarray], np.ndarray],
    x0: np.ndarray,
    max_iters: int = 200,
    tol: float = 1e-8,
    step0: float = 1.0,
) -> ProjectedGradientResult:
    """Minimize ``objective`` over ``{x : x = project(x)}``.

    Each iteration takes a gradient step, projects, and accepts the move by
    Armijo backtracking *on the projected arc* (the step size scales the
    gradient before projection).  Convergence is declared when the
    projected-gradient displacement falls below ``tol``.
    """
    x = project(np.asarray(x0, dtype=float))
    fx = objective(x)
    step = step0
    converged = False
    it = 0
    for it in range(1, max_iters + 1):
        g = gradient(x)
        # Trial step with backtracking on the projected point.
        t = step
        accepted = False
        for _ in range(40):
            x_new = project(x - t * g)
            f_new = objective(x_new)
            # Sufficient decrease relative to the actual displacement.
            disp = x_new - x
            if f_new <= fx + 1e-4 * float(g @ disp) + 1e-15:
                accepted = True
                break
            t *= 0.5
        if not accepted:
            # No progress possible at any tried step: projected stationary.
            converged = True
            break
        displacement = float(np.linalg.norm(x_new - x))
        x, fx = x_new, f_new
        # Mild step-size recovery so we don't stay tiny forever.
        step = min(step0, t * 2.0)
        if displacement <= tol * (1.0 + float(np.linalg.norm(x))):
            converged = True
            break
    g = gradient(x)
    # Projected gradient norm as a stationarity certificate.
    pg = x - project(x - g)
    return ProjectedGradientResult(
        x=x,
        fun=fx,
        iterations=it,
        converged=converged,
        grad_norm=float(np.linalg.norm(pg)),
    )
