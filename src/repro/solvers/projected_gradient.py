"""Accelerated projected gradient descent (FISTA with safeguards).

This is the workhorse used by default to solve FedL's per-epoch descent
step (paper eq. 8): a smooth convex objective over a projectable convex set.
The projection operator is supplied by the caller (typically the exact
KKT projection of :class:`repro.core.problem.FedLProblem`).

The per-epoch subproblem's Hessian is ``(1/β)·I`` plus a bounded bilinear
coupling, i.e. moderately ill-conditioned when β is large.  Plain projected
gradient contracts at ``(κ−1)/(κ+1)`` per iteration and routinely exhausts
its iteration budget; Nesterov extrapolation improves the rate to
``(√κ−1)/(√κ+1)``, which on the same subproblems converges in a fraction
of the iterations.  Two safeguards keep the classical guarantees:

* **Monotone guard** — if the extrapolated step fails to decrease the
  objective below the best iterate, the momentum is discarded and the
  step is retaken from the best iterate (a plain projected-gradient step,
  which provably decreases).
* **Gradient restart** (O'Donoghue & Candès) — momentum is zeroed when
  it points against the latest displacement, preventing the ripples
  FISTA exhibits on strongly convex problems.

Consecutive epoch subproblems differ only by O(β) perturbations of the
prox center and the dual weights, so the solver optionally accepts a
:class:`ProjectedGradientState` carried over from the previous solve: the
last accepted step size seeds the backtracking (instead of re-halving
from ``step0`` every epoch) and, when the previous solution already met
the tolerance, the iteration cap shrinks.  A cold call (``state=None``)
is unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = [
    "ProjectedGradientResult",
    "ProjectedGradientState",
    "projected_gradient",
]

#: Cap on step halvings per iteration (0.5^40 ≈ 9e-13 · step0).
MAX_BACKTRACKS = 40

#: Iteration cap used once the previous epoch's solve already met the
#: tolerance (warm mode only): successive subproblems are O(β) apart, so
#: a converged predecessor makes long solves pointless.
WARM_ITERS_FLOOR = 25


@dataclass(frozen=True)
class ProjectedGradientResult:
    """Outcome of a projected-gradient solve."""

    x: np.ndarray
    fun: float
    iterations: int
    converged: bool
    grad_norm: float
    step: float = 1.0           # last accepted step size

    def __post_init__(self) -> None:
        object.__setattr__(self, "x", np.asarray(self.x, dtype=float))


@dataclass(frozen=True)
class ProjectedGradientState:
    """Carry-over between consecutive related solves (warm starting)."""

    step: float = 1.0           # last accepted step of the prior solve
    residual: float = math.inf  # prior solve's projected-gradient norm
    iterations: int = 0         # iterations the prior solve used

    @staticmethod
    def from_result(res: ProjectedGradientResult) -> "ProjectedGradientState":
        return ProjectedGradientState(
            step=res.step, residual=res.grad_norm, iterations=res.iterations
        )


def projected_gradient(
    objective: Callable[[np.ndarray], float],
    gradient: Callable[[np.ndarray], np.ndarray],
    project: Callable[[np.ndarray], np.ndarray],
    x0: np.ndarray,
    max_iters: int = 200,
    tol: float = 1e-8,
    step0: float = 1.0,
    state: Optional[ProjectedGradientState] = None,
) -> ProjectedGradientResult:
    """Minimize ``objective`` over ``{x : x = project(x)}``.

    Each iteration takes a gradient step from the extrapolated point,
    projects, and accepts the move by backtracking against the quadratic
    upper bound ``f(y) + ∇f(y)ᵀd + ‖d‖²/(2t)`` (the FISTA line search;
    at zero momentum this is strictly stronger than Armijo decrease).
    Convergence is declared when the iterate displacement falls below
    ``tol`` relative to the iterate norm.

    ``state`` (optional) warm-starts the solve from a previous related
    solve: the initial trial step is seeded from the previously accepted
    one, and the iteration budget adapts to the previous residual.
    """
    if state is not None:
        # Seed backtracking just above the previously accepted step: the
        # first trial then succeeds (or halves once) instead of walking
        # down from step0.
        step0 = min(step0, max(state.step * 2.0, 1e-9))
        if state.residual <= tol:
            max_iters = min(max_iters, max(WARM_ITERS_FLOOR, state.iterations + 5))
    x = project(np.asarray(x0, dtype=float))
    fx = objective(x)
    y, fy = x, fx
    theta = 1.0
    step = step0
    converged = False
    it = 0
    clean_accepts = 0
    for it in range(1, max_iters + 1):
        g = gradient(y)
        t = step
        accepted = False
        halved = False
        for _ in range(MAX_BACKTRACKS):
            x_new = project(y - t * g)
            f_new = objective(x_new)
            d = x_new - y
            # Quadratic upper-bound test: holds for any t <= 1/L, and at
            # y == x implies f_new <= fx − ‖d‖²/(2t) (strict decrease).
            if f_new <= fy + float(g @ d) + float(d @ d) / (2.0 * t) + 1e-15:
                accepted = True
                break
            t *= 0.5
            halved = True
        if accepted and f_new > fx and y is not x:
            # Monotone guard: the extrapolated step went uphill relative
            # to the best iterate.  Drop the momentum and retake the step
            # from x itself.
            theta = 1.0
            y, fy = x, fx
            g = gradient(y)
            t = step
            accepted = False
            for _ in range(MAX_BACKTRACKS):
                x_new = project(y - t * g)
                f_new = objective(x_new)
                d = x_new - y
                if f_new <= fy + float(g @ d) + float(d @ d) / (2.0 * t) + 1e-15:
                    accepted = True
                    break
                t *= 0.5
                halved = True
        if not accepted:
            if y is x:
                # No progress possible at any tried step from the best
                # iterate: projected stationary.
                converged = True
                break
            # Bound failed only at the extrapolated point; restart the
            # momentum and try again next iteration.
            theta = 1.0
            y, fy = x, fx
            continue
        disp = x_new - x
        displacement = math.sqrt(float(disp @ disp))
        # Gradient-style restart: momentum pointing against the latest
        # displacement means we overshot the valley — zero it.
        restart = float((y - x_new) @ disp) > 0.0
        theta_new = 1.0 if restart else 0.5 * (1.0 + math.sqrt(1.0 + 4.0 * theta * theta))
        gamma = 0.0 if restart else (theta - 1.0) / theta_new
        y = x_new + gamma * (x_new - x)
        fy = objective(y) if gamma != 0.0 else f_new
        theta = theta_new
        x, fx = x_new, f_new
        if gamma == 0.0:
            y = x                   # keep the `y is x` identity for the guards
        # Step-size recovery: probe a larger step only after a few clean
        # accepts in a row.  Probing every iteration means the first trial
        # predictably fails and every iteration pays double the projection
        # and objective work just to re-learn the same step.
        if halved:
            clean_accepts = 0
            step = t
        else:
            clean_accepts += 1
            if clean_accepts >= 3:
                clean_accepts = 0
                step = min(step0, t * 2.0)
        if displacement <= tol * (1.0 + math.sqrt(float(x @ x))):
            converged = True
            break
    g = gradient(x)
    # Projected gradient norm as a stationarity certificate.
    pg = x - project(x - g)
    return ProjectedGradientResult(
        x=x,
        fun=fx,
        iterations=it,
        converged=converged,
        grad_norm=math.sqrt(float(pg @ pg)),
        step=step,
    )
