"""Euclidean projections onto the simple convex sets used by FedL.

The relaxed per-epoch decision space (paper eq. 6d with (6a)-(6b)) is an
intersection of

* a box  ``x ∈ [0,1]^K``, ``ρ ∈ [1, ρ_max]``,
* a budget halfspace  ``cᵀx ≤ C_t``  (constraint 5a restricted to slot t),
* a participation halfspace  ``1ᵀx ≥ n``  (constraint 5b).

All routines are vectorized NumPy; none copies more than once.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "project_box",
    "project_halfspace",
    "project_simplex",
    "project_capped_simplex",
    "project_box_halfspace",
    "alternating_projections",
]


def project_box(
    v: np.ndarray,
    lo: np.ndarray | float,
    hi: np.ndarray | float,
) -> np.ndarray:
    """Project ``v`` onto the box ``[lo, hi]`` (elementwise clip)."""
    lo_a = np.asarray(lo, dtype=float)
    hi_a = np.asarray(hi, dtype=float)
    if np.any(lo_a > hi_a):
        raise ValueError("box is empty: lo > hi somewhere")
    return np.clip(v, lo_a, hi_a)


def project_halfspace(v: np.ndarray, a: np.ndarray, b: float) -> np.ndarray:
    """Project ``v`` onto ``{x : aᵀx <= b}``.

    Closed form: if ``aᵀv <= b`` return ``v``; otherwise move along ``a`` by
    ``(aᵀv - b)/‖a‖²``.
    """
    a = np.asarray(a, dtype=float)
    nrm2 = float(a @ a)
    if nrm2 == 0.0:
        if b < 0:
            raise ValueError("halfspace 0ᵀx <= b with b < 0 is empty")
        return np.asarray(v, dtype=float)
    gap = float(a @ v) - b
    if gap <= 0.0:
        return np.asarray(v, dtype=float)
    return v - (gap / nrm2) * a


def project_simplex(v: np.ndarray, radius: float = 1.0) -> np.ndarray:
    """Project onto the simplex ``{x >= 0, 1ᵀx = radius}``.

    Uses the sort-based algorithm of Held, Wolfe & Crowder (O(K log K)).
    """
    if radius <= 0:
        raise ValueError("simplex radius must be positive")
    v = np.asarray(v, dtype=float)
    u = np.sort(v)[::-1]
    css = np.cumsum(u) - radius
    idx = np.arange(1, v.size + 1)
    cond = u - css / idx > 0
    if not np.any(cond):
        # Degenerate: all mass on the largest coordinate.
        out = np.zeros_like(v)
        out[np.argmax(v)] = radius
        return out
    rho = int(np.nonzero(cond)[0][-1])
    theta = css[rho] / (rho + 1)
    return np.maximum(v - theta, 0.0)


def project_capped_simplex(
    v: np.ndarray,
    total: float,
    cap: float = 1.0,
    tol: float = 1e-12,
    max_iters: int = 200,
) -> np.ndarray:
    """Project onto ``{0 <= x <= cap, 1ᵀx = total}`` by bisection on the
    Lagrange multiplier of the sum constraint.

    The projection is ``x_i = clip(v_i - τ, 0, cap)`` where τ solves
    ``Σ clip(v_i - τ, 0, cap) = total``; the left side is continuous and
    nonincreasing in τ, so bisection converges geometrically.
    """
    v = np.asarray(v, dtype=float)
    k = v.size
    if not (0.0 <= total <= cap * k + tol):
        raise ValueError(
            f"capped simplex empty: need 0 <= total={total} <= cap*K={cap * k}"
        )
    lo = float(np.min(v)) - cap - 1.0
    hi = float(np.max(v)) + 1.0
    for _ in range(max_iters):
        tau = 0.5 * (lo + hi)
        s = float(np.clip(v - tau, 0.0, cap).sum())
        if abs(s - total) <= tol:
            break
        if s > total:
            lo = tau
        else:
            hi = tau
    return np.clip(v - 0.5 * (lo + hi), 0.0, cap)


def project_box_halfspace(
    v: np.ndarray,
    lo: np.ndarray | float,
    hi: np.ndarray | float,
    a: np.ndarray,
    b: float,
    tol: float = 1e-12,
    max_iters: int = 200,
) -> np.ndarray:
    """Project onto ``{lo <= x <= hi} ∩ {aᵀx <= b}`` with ``a >= 0``.

    Exact via one-dimensional dual search: the KKT solution is
    ``x(λ) = clip(v - λ a, lo, hi)`` with ``λ >= 0`` chosen so that either
    λ = 0 is feasible or ``aᵀx(λ) = b``.  ``aᵀx(λ)`` is nonincreasing in λ
    (a >= 0), so bisection applies.
    """
    a = np.asarray(a, dtype=float)
    if np.any(a < 0):
        raise ValueError("project_box_halfspace requires a >= 0")
    x0 = project_box(v, lo, hi)
    if float(a @ x0) <= b + tol:
        return x0
    lo_a = np.broadcast_to(np.asarray(lo, dtype=float), a.shape)
    if float(a @ lo_a) > b + tol:
        raise ValueError("intersection empty: even the box floor violates aᵀx <= b")
    lam_lo, lam_hi = 0.0, 1.0
    # Grow the bracket until feasible.
    for _ in range(100):
        if float(a @ project_box(v - lam_hi * a, lo, hi)) <= b:
            break
        lam_hi *= 2.0
    for _ in range(max_iters):
        lam = 0.5 * (lam_lo + lam_hi)
        val = float(a @ project_box(v - lam * a, lo, hi))
        if abs(val - b) <= tol:
            break
        if val > b:
            lam_lo = lam
        else:
            lam_hi = lam
    return project_box(v - 0.5 * (lam_lo + lam_hi) * a, lo, hi)


def alternating_projections(
    v: np.ndarray,
    projections: Sequence[Callable[[np.ndarray], np.ndarray]],
    tol: float = 1e-10,
    max_iters: int = 500,
) -> np.ndarray:
    """Dykstra's algorithm for the projection onto an intersection of
    convex sets, given the individual projections.

    Unlike plain alternating projection (POCS), Dykstra converges to the
    *nearest* point of the intersection, which is what the proximal step in
    eq. (8) requires.  Falls back gracefully when a set is already
    satisfied.
    """
    x = np.asarray(v, dtype=float).copy()
    m = len(projections)
    if m == 0:
        return x
    increments = [np.zeros_like(x) for _ in range(m)]
    for _ in range(max_iters):
        max_shift = 0.0
        for i, proj in enumerate(projections):
            y = x + increments[i]
            x_new = proj(y)
            increments[i] = y - x_new
            max_shift = max(max_shift, float(np.max(np.abs(x_new - x))))
            x = x_new
        if max_shift <= tol:
            break
    return x
