"""Line-search machinery: Armijo backtracking and filter acceptance.

The filter is the acceptance rule of the interior-point *filter line-search*
method of Wächter & Biegler (the paper's reference [26] for solving the
per-epoch subproblem).  A trial point is accepted iff it is not dominated by
any previously accepted ``(constraint-violation, objective)`` pair; this
replaces a merit function and avoids tuning a penalty parameter.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

__all__ = ["armijo_backtracking", "Filter"]


def armijo_backtracking(
    f: Callable[[np.ndarray], float],
    x: np.ndarray,
    fx: float,
    grad: np.ndarray,
    direction: np.ndarray,
    step0: float = 1.0,
    c1: float = 1e-4,
    shrink: float = 0.5,
    max_backtracks: int = 50,
) -> Tuple[float, float]:
    """Backtracking line search enforcing the Armijo sufficient decrease
    condition ``f(x + t d) <= f(x) + c1 t gradᵀd``.

    Returns ``(t, f(x + t d))``.  If the direction is not a descent
    direction the step collapses to the smallest tried; the caller should
    treat ``t`` near zero as a stall signal.
    """
    slope = float(grad @ direction)
    t = step0
    f_new = f(x + t * direction)
    for _ in range(max_backtracks):
        if np.isfinite(f_new) and f_new <= fx + c1 * t * slope:
            return t, f_new
        t *= shrink
        f_new = f(x + t * direction)
    return t, f_new


class Filter:
    """Two-dimensional filter of (θ, φ) = (violation, objective) pairs.

    A pair dominates another if it is no worse in both coordinates.  A trial
    point is *acceptable* if, after the standard margins
    ``θ <= (1-γθ) θ_j  or  φ <= φ_j - γφ θ_j`` for every filter entry j,
    it is not dominated.
    """

    def __init__(self, gamma_theta: float = 1e-5, gamma_phi: float = 1e-5,
                 theta_max: Optional[float] = None) -> None:
        self._entries: List[Tuple[float, float]] = []
        self.gamma_theta = gamma_theta
        self.gamma_phi = gamma_phi
        self.theta_max = theta_max

    def __len__(self) -> int:
        return len(self._entries)

    def is_acceptable(self, theta: float, phi: float) -> bool:
        """True if (theta, phi) is not dominated by any filter entry."""
        if self.theta_max is not None and theta > self.theta_max:
            return False
        for th_j, ph_j in self._entries:
            improves_theta = theta <= (1.0 - self.gamma_theta) * th_j
            improves_phi = phi <= ph_j - self.gamma_phi * th_j
            if not (improves_theta or improves_phi):
                return False
        return True

    def add(self, theta: float, phi: float) -> None:
        """Insert (theta, phi), dropping entries it dominates."""
        kept = [
            (th, ph)
            for th, ph in self._entries
            if not (theta <= th and phi <= ph)
        ]
        kept.append((theta, phi))
        self._entries = kept

    @property
    def entries(self) -> List[Tuple[float, float]]:
        return list(self._entries)
