"""Log-barrier interior-point method with filter line search.

Solves smooth convex programs of the form::

    minimize    f(x)
    subject to  A x <= b          (all inequality constraints, box included)

which is exactly the shape of FedL's per-epoch descent step (paper eq. 8)
after the bilinear ``μᵀh_t`` term is folded into the objective.  This is the
same algorithm family as the paper's solver reference [26] (Wächter &
Biegler's interior-point filter line-search method, IPOPT), implemented
from scratch:

* outer loop on the barrier parameter ``μ_b`` (geometric decrease),
* inner (damped, regularized) Newton iterations on the barrier function
  ``f(x) − μ_b Σ log(b − Ax)``,
* fraction-to-boundary rule keeping iterates strictly interior,
* Armijo sufficient-decrease acceptance on the barrier function.  (In
  Wächter & Biegler the filter coordinates are (equality-constraint
  violation, objective); with inequality-only problems kept strictly
  feasible the violation coordinate is identically zero and the filter
  acceptance degenerates to exactly this Armijo test.  The general
  :class:`repro.solvers.line_search.Filter` is implemented and unit-tested
  for callers that do carry equality constraints.)

Intended for the small dense problems that arise here (tens of variables,
up to a few hundred constraints); everything is plain vectorized NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

__all__ = ["InteriorPointResult", "solve_interior_point"]


@dataclass(frozen=True)
class InteriorPointResult:
    """Outcome of an interior-point solve."""

    x: np.ndarray
    fun: float
    iterations: int
    converged: bool
    barrier_mu: float
    message: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "x", np.asarray(self.x, dtype=float))


def _strictly_feasible_start(
    A: np.ndarray, b: np.ndarray, x0: np.ndarray, margin: float = 1e-9
) -> Optional[np.ndarray]:
    """Nudge ``x0`` strictly inside ``{Ax < b}`` if it is close; else None.

    Runs a few rounds of most-violated-constraint corrections; good enough
    for the well-conditioned polytopes FedL produces (box ∩ two halfspaces
    with a known nonempty interior).
    """
    x = np.asarray(x0, dtype=float).copy()
    for _ in range(200):
        slack = b - A @ x
        worst = float(np.min(slack))
        if worst > margin:
            return x
        i = int(np.argmin(slack))
        a_i = A[i]
        nrm2 = float(a_i @ a_i)
        if nrm2 == 0.0:
            return None
        # Step past the violated hyperplane with a small margin.
        x = x - ((float(a_i @ x) - float(b[i]) + 10.0 * margin) / nrm2) * a_i
    slack = b - A @ x
    return x if float(np.min(slack)) > margin else None


def solve_interior_point(
    objective: Callable[[np.ndarray], float],
    gradient: Callable[[np.ndarray], np.ndarray],
    hessian: Callable[[np.ndarray], np.ndarray],
    A: np.ndarray,
    b: np.ndarray,
    x0: np.ndarray,
    x_interior: Optional[np.ndarray] = None,
    mu0: float = 1.0,
    mu_shrink: float = 0.2,
    tol: float = 1e-8,
    max_outer: int = 30,
    max_inner: int = 50,
    ftb_tau: float = 0.995,
) -> InteriorPointResult:
    """Minimize ``objective`` subject to ``A x <= b``.

    Parameters
    ----------
    objective, gradient, hessian:
        The smooth objective and its derivatives.  The Hessian may be any
        symmetric matrix; it is regularized if not positive definite.
    A, b:
        Inequality constraints (rows of ``A`` with matching ``b``).
    x0:
        Warm start.  If not strictly feasible it is repaired; if repair
        fails, ``x_interior`` is used.
    x_interior:
        A known strictly interior point (fallback start).
    ftb_tau:
        Fraction-to-boundary coefficient: the step keeps at least
        ``(1 − ftb_tau)`` of each slack.
    """
    A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float)
    n = np.asarray(x0).size
    if A.ndim != 2 or A.shape[1] != n or b.shape != (A.shape[0],):
        raise ValueError("inconsistent constraint shapes")

    x = _strictly_feasible_start(A, b, np.asarray(x0, dtype=float))
    if x is None and x_interior is not None:
        cand = np.asarray(x_interior, dtype=float)
        if float(np.min(b - A @ cand)) > 0:
            x = cand.copy()
    if x is not None and x_interior is not None:
        # A start hugging the boundary stalls Newton (the barrier gradient
        # explodes); blend toward the known interior point until every
        # slack is healthy.  Newton recovers any lost warm-start quality.
        interior = np.asarray(x_interior, dtype=float)
        interior_slack = float(np.min(b - A @ interior))
        if interior_slack > 0:
            target = min(1e-3, 0.1 * interior_slack)
            for blend in (0.0, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0):
                cand = (1.0 - blend) * x + blend * interior
                if float(np.min(b - A @ cand)) >= target:
                    x = cand
                    break
    if x is None:
        return InteriorPointResult(
            x=np.asarray(x0, dtype=float),
            fun=float("inf"),
            iterations=0,
            converged=False,
            barrier_mu=mu0,
            message="no strictly feasible start found",
        )

    def barrier(xv: np.ndarray, mu_b: float) -> float:
        slack = b - A @ xv
        if np.any(slack <= 0):
            return float("inf")
        return objective(xv) - mu_b * float(np.sum(np.log(slack)))

    total_iters = 0
    mu_b = mu0
    m = A.shape[0]
    for _outer in range(max_outer):
        for _inner in range(max_inner):
            total_iters += 1
            slack = b - A @ x
            inv_s = 1.0 / slack
            g = gradient(x) + mu_b * (A.T @ inv_s)
            H = hessian(x) + mu_b * (A.T * (inv_s**2)) @ A
            # Regularized Newton solve.
            reg = 0.0
            for _ in range(12):
                try:
                    step = np.linalg.solve(
                        H + reg * np.eye(n), -g
                    )
                    # Require a descent direction for the barrier.
                    if float(g @ step) < 0:
                        break
                except np.linalg.LinAlgError:
                    pass
                reg = max(2.0 * reg, 1e-10)
            else:
                step = -g  # steepest descent fallback

            # Fraction-to-boundary: largest t with slack(x + t step) >= (1-tau) slack.
            As = A @ step
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(As > 0, ftb_tau * slack / As, np.inf)
            t_max = float(min(1.0, np.min(ratios))) if m else 1.0

            # Armijo acceptance on the barrier function.
            bx = barrier(x, mu_b)
            slope = float(g @ step)
            t = t_max
            accepted = False
            for _ in range(40):
                x_trial = x + t * step
                b_trial = barrier(x_trial, mu_b)
                if np.isfinite(b_trial) and b_trial <= bx + 1e-4 * t * slope + 1e-14:
                    accepted = True
                    break
                t *= 0.5
            if not accepted:
                break  # inner loop stalled; shrink barrier
            x = x + t * step
            # Newton decrement as the inner stationarity certificate; only
            # trust it when the step was not truncated by the boundary.
            newton_dec = float(np.sqrt(max(0.0, -slope)))
            if newton_dec <= np.sqrt(tol) and t >= 0.5 * t_max:
                break
        # Outer convergence: duality-gap proxy m * mu_b.
        if m * mu_b <= tol:
            return InteriorPointResult(
                x=x,
                fun=objective(x),
                iterations=total_iters,
                converged=True,
                barrier_mu=mu_b,
                message="converged: barrier gap below tolerance",
            )
        mu_b *= mu_shrink
    return InteriorPointResult(
        x=x,
        fun=objective(x),
        iterations=total_iters,
        converged=m * mu_b <= 10 * tol,
        barrier_mu=mu_b,
        message="max outer iterations reached",
    )
