"""Live tailing of a telemetry trace: ``repro trace DIR --follow``.

A long run writes ``events-<worker>.jsonl`` line-buffered; this module
tails those files while the run is still going and renders one status
line per completed epoch — regret accumulant, cumulative fit, budget
headroom, quarantine count, epoch latency, plus a rolling ASCII sparkline
of test accuracy — and a per-run summary with full series when a
``run.complete`` lands.

Robustness contract (tested):

* **partial trailing lines** — the writer may be mid-line at any poll;
  bytes after the last newline stay buffered until the line completes
  (multi-byte UTF-8 sequences may split across polls, hence the byte
  buffer);
* **truncation / rotation** — if a file shrinks, or the path is replaced
  by a new file (rotation: same name, different inode), the follower
  restarts it from offset 0 instead of mis-seeking — even when the new
  file has already grown past the old offset by the time it is polled;
* **missing manifest** — a live directory has no ``manifest.json`` yet;
  the follower never requires one and uses its *appearance* (finalize
  ran) plus a drained read as the completion signal;
* **malformed lines** are skipped and counted, never fatal.

Rendering is a pure function of the event payloads (all wall-clock data
in a trace lives under each event's ``ts`` key, which the renderer never
reads), so following a finished trace is byte-deterministic.

:class:`TraceFollower` is the poll-driven core with no sleeps or clocks —
drive ``poll()`` yourself (tests feed it byte-by-byte); ``follow_trace``
wraps it in the CLI polling loop.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, TextIO

from repro.obs.hub import MANIFEST_NAME

__all__ = ["TraceFollower", "follow_trace", "sparkline"]

#: 10-level ASCII intensity ramp for the streaming series.
SPARK_CHARS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 20) -> str:
    """Fixed-width ASCII sparkline of the last ``width`` finite values."""
    vals = [float(v) for v in values if _finite(v)][-width:]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return SPARK_CHARS[len(SPARK_CHARS) // 2] * len(vals)
    top = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[int(round((v - lo) / (hi - lo) * top))] for v in vals
    )


def _num(value: object) -> Optional[float]:
    """Undo :func:`repro.obs.events.jsonify`'s non-finite encoding."""
    if isinstance(value, bool) or value is None:
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if value == "nan":
        return float("nan")
    if value == "inf":
        return float("inf")
    if value == "-inf":
        return float("-inf")
    return None


def _finite(value: object) -> bool:
    f = _num(value)
    return f is not None and f == f and abs(f) != float("inf")


@dataclass
class _RunState:
    """Streaming accumulators for one run id."""

    epochs: int = 0
    accuracy: List[float] = field(default_factory=list)
    latency: List[float] = field(default_factory=list)
    fit: List[float] = field(default_factory=list)
    fit_sum: float = 0.0
    regret_sum: float = 0.0
    headroom: Optional[float] = None
    quarantined: int = 0
    complete: bool = False
    stop_reason: str = ""


class TraceFollower:
    """Incremental reader + renderer over one trace directory.

    ``poll()`` reads whatever new bytes appeared since the last call and
    returns the newly rendered report lines.  No clocks, no sleeps — the
    caller owns pacing, which is what makes the renderer deterministic
    and directly testable.
    """

    def __init__(self, directory: str | Path, run: Optional[str] = None) -> None:
        self.directory = Path(directory).expanduser()
        self.run = run
        self._positions: Dict[str, int] = {}
        self._buffers: Dict[str, bytes] = {}
        self._identities: Dict[str, tuple] = {}
        self._runs: Dict[str, _RunState] = {}
        self._run_order: List[str] = []
        self.events_seen = 0
        self.malformed = 0
        self.manifest_seen = False
        self._last_poll_bytes = 0

    # -- polling -----------------------------------------------------------------

    def poll(self) -> List[str]:
        """Consume new bytes from every event file; render new lines."""
        out: List[str] = []
        self._last_poll_bytes = 0
        if self.directory.is_dir():
            for path in sorted(self.directory.glob("events*.jsonl")):
                out.extend(self._poll_file(path))
            self.manifest_seen = (self.directory / MANIFEST_NAME).is_file()
        return out

    def _poll_file(self, path: Path) -> List[str]:
        name = path.name
        pos = self._positions.get(name, 0)
        # Size and identity come from fstat of the handle actually read,
        # so a rotation between stat and open cannot slip through.
        try:
            fh = path.open("rb")
        except OSError:
            return []
        out: List[str] = []
        with fh:
            st = os.fstat(fh.fileno())
            size = st.st_size
            identity = (st.st_dev, st.st_ino)
            known = self._identities.get(name)
            self._identities[name] = identity
            if known is not None and known != identity:
                # Rotated: the name now points at a different file.  The
                # new one may already be *larger* than our offset, so
                # this cannot be folded into the shrink check below.
                out.append(f"[follow] {name} rotated; restarting from offset 0")
                pos = 0
                self._buffers[name] = b""
            if size < pos:
                # The file shrank: truncated in place.  Restart — seq
                # numbers restart with the new recording, so state from
                # the old bytes would mislabel the new run anyway.
                out.append(
                    f"[follow] {name} truncated; restarting from offset 0"
                )
                pos = 0
                self._buffers[name] = b""
            if size == pos:
                self._positions[name] = pos
                return out
            try:
                fh.seek(pos)
                chunk = fh.read()
            except OSError:
                return out
        self._positions[name] = pos + len(chunk)
        self._last_poll_bytes += len(chunk)
        buffer = self._buffers.get(name, b"") + chunk
        # Bytes after the last newline are a partial line (possibly even a
        # split multi-byte character) — keep them for the next poll.
        *complete, self._buffers[name] = buffer.split(b"\n")
        for raw in complete:
            raw = raw.strip()
            if raw:
                out.extend(self._handle_line(raw))
        return out

    # -- event handling ----------------------------------------------------------

    def _handle_line(self, raw: bytes) -> List[str]:
        try:
            payload = json.loads(raw.decode("utf-8", errors="replace"))
        except json.JSONDecodeError:
            self.malformed += 1
            return []
        if not isinstance(payload, dict):
            self.malformed += 1
            return []
        self.events_seen += 1
        run = str(payload.get("run", "?"))
        if self.run is not None and run != self.run:
            return []
        kind = payload.get("kind")
        data = payload.get("data", {})
        if not isinstance(data, dict):
            data = {}
        state = self._runs.get(run)
        if state is None:
            state = self._runs[run] = _RunState()
            self._run_order.append(run)
        if kind == "learner.descent":
            objective = _num(data.get("objective"))
            if objective is not None and _finite(objective):
                state.regret_sum += objective
            headroom = _num(data.get("budget_headroom"))
            if headroom is not None:
                state.headroom = headroom
        elif kind == "learner.ascent":
            fit = _num(data.get("fit_increment"))
            if fit is not None and _finite(fit):
                state.fit_sum += fit
                state.fit.append(state.fit_sum)
        elif kind == "epoch.complete":
            return [self._epoch_line(run, state, payload, data)]
        elif kind == "run.complete":
            state.complete = True
            state.stop_reason = str(data.get("stop_reason", "?"))
            return self._run_summary(run, state)
        return []

    def _epoch_line(
        self, run: str, state: _RunState, payload: dict, data: dict
    ) -> str:
        state.epochs += 1
        epoch = payload.get("epoch")
        acc = _num(data.get("test_accuracy"))
        lat = _num(data.get("epoch_latency"))
        budget = _num(data.get("remaining_budget"))
        quar = _num(data.get("num_quarantined")) or 0.0
        state.quarantined += int(quar)
        if acc is not None:
            state.accuracy.append(acc)
        if lat is not None:
            state.latency.append(lat)
        headroom = budget if budget is not None else state.headroom

        def fmt(v: Optional[float], spec: str, suffix: str = "") -> str:
            return (spec % v) + suffix if v is not None else "-"

        return (
            f"{run}  t={epoch if epoch is not None else '?':>4}  "
            f"acc={fmt(acc, '%.4f')}  "
            f"regret={state.regret_sum:.3f}  "
            f"fit={state.fit_sum:.3f}  "
            f"budget={fmt(headroom, '%.1f')}  "
            f"quar={state.quarantined}  "
            f"lat={fmt(lat, '%.3f', 's')}  "
            f"|{sparkline(state.accuracy)}|"
        )

    def _run_summary(self, run: str, state: _RunState) -> List[str]:
        lines = [
            f"{run}  run complete: {state.epochs} epochs, "
            f"stop={state.stop_reason}, regret={state.regret_sum:.3f}, "
            f"fit={state.fit_sum:.3f}, quarantined={state.quarantined}"
        ]
        for label, series in (
            ("accuracy", state.accuracy),
            ("fit", state.fit),
            ("latency", state.latency),
        ):
            if series:
                lines.append(
                    f"{run}    {label:<9} "
                    f"|{sparkline(series, width=40)}| "
                    f"last={series[-1]:.4f}"
                )
        return lines

    # -- completion --------------------------------------------------------------

    @property
    def runs_completed(self) -> int:
        return sum(1 for s in self._runs.values() if s.complete)

    @property
    def done(self) -> bool:
        """Finalize ran (manifest on disk) and the last poll drained
        nothing new — every recorded event has been rendered."""
        return self.manifest_seen and self._last_poll_bytes == 0

    def footer(self) -> str:
        return (
            f"[follow] complete: {self.events_seen} events, "
            f"{self.runs_completed}/{len(self._runs)} runs finished, "
            f"{self.malformed} malformed lines"
        )


def follow_trace(
    directory: str | Path,
    run: Optional[str] = None,
    poll_s: float = 0.5,
    timeout_s: Optional[float] = None,
    stream: Optional[TextIO] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """CLI loop: poll until the trace finalizes (exit 0) or ``timeout_s``
    of wall time passes (exit 0 if any events were seen, else 1)."""
    import sys

    out = sys.stdout if stream is None else stream
    follower = TraceFollower(directory, run=run)
    print(
        f"[follow] tailing {follower.directory} "
        f"(poll {poll_s:g}s"
        + (f", timeout {timeout_s:g}s" if timeout_s is not None else "")
        + ")",
        file=out,
    )
    waited = 0.0
    while True:
        for line in follower.poll():
            print(line, file=out)
        if follower.done:
            print(follower.footer(), file=out)
            return 0
        if timeout_s is not None and waited >= timeout_s:
            print(
                f"[follow] timeout after {waited:g}s "
                f"({follower.events_seen} events seen)",
                file=out,
            )
            return 0 if follower.events_seen else 1
        sleep(poll_s)
        waited += poll_s
