"""Metrics export: ``metrics.json`` + Prometheus text exposition.

``Telemetry.finalize()`` calls :func:`export_metrics` after the manifest
is written, so every finished trace directory carries two scrape-ready
artifacts next to ``manifest.json``:

* ``metrics.json`` — a flat, versioned distillation of the merged
  registry (timers, counters, gauges, per-kind event totals, per-worker
  utilization).  Unlike the manifest it is shaped for dashboards: one
  namespace of dot-named scalar series, no nested stat objects.
* ``metrics.prom`` — the same numbers in the Prometheus text exposition
  format (``# HELP``/``# TYPE`` + samples with escaped labels), so a
  node-exporter textfile collector or a push gateway can ingest a run
  without any repro-specific tooling.

Both files merge across sweep/tournament workers for free: they are
derived from the manifest, which already folds every
``registry-<worker>.json`` snapshot.  Everything non-deterministic stays
under the ``ts`` key of ``metrics.json`` (the ``.prom`` file carries
measured times by nature), matching the trace convention.

Writes are temp-file + ``os.replace`` atomic, like every other artifact
in the trace directory.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "METRICS_NAME",
    "PROM_NAME",
    "build_metrics",
    "prometheus_exposition",
    "export_metrics",
    "load_metrics",
]

METRICS_SCHEMA_VERSION = 1
METRICS_NAME = "metrics.json"
PROM_NAME = "metrics.prom"


def build_metrics(manifest: Mapping[str, Any]) -> Dict[str, Any]:
    """Distill a telemetry manifest into the flat metrics document."""
    registry = manifest.get("registry", {})
    timers = registry.get("timers", {})
    counters = registry.get("counters", {})
    gauges = registry.get("gauges", {})
    event_counts = manifest.get("event_counts", {})
    workers = manifest.get("workers", [])
    return {
        "v": METRICS_SCHEMA_VERSION,
        "kind": "metrics",
        "timers": {
            name: {
                "count": int(stat.get("count", 0)),
                "total_s": float(stat.get("total_s", 0.0)),
                "mean_s": (
                    float(stat.get("total_s", 0.0)) / int(stat["count"])
                    if stat.get("count")
                    else 0.0
                ),
                "min_s": float(stat.get("min_s", 0.0)),
                "max_s": float(stat.get("max_s", 0.0)),
            }
            for name, stat in sorted(timers.items())
        },
        "counters": {k: float(v) for k, v in sorted(counters.items())},
        "gauges": {k: float(v) for k, v in sorted(gauges.items())},
        "events": {k: int(v) for k, v in sorted(event_counts.items())},
        "events_total": int(sum(event_counts.values())),
        "workers": [
            {
                "worker": str(w.get("worker", "?")),
                "jobs": int(w.get("jobs", 0)),
                "busy_s": float(w.get("busy_s", 0.0)),
            }
            for w in workers
        ],
        "meta": dict(manifest.get("meta", {})),
        "ts": dict(manifest.get("ts", {})),
    }


def _escape_label(value: str) -> str:
    """Escape a label value per the Prometheus text exposition rules."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _sample(name: str, labels: Mapping[str, str], value: float) -> str:
    if labels:
        inner = ",".join(
            f'{k}="{_escape_label(str(v))}"' for k, v in labels.items()
        )
        return f"{name}{{{inner}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def _format_value(value: float) -> str:
    f = float(value)
    if f != f:
        return "NaN"
    if f in (float("inf"), float("-inf")):
        return "+Inf" if f > 0 else "-Inf"
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def prometheus_exposition(metrics: Mapping[str, Any]) -> str:
    """Render a :func:`build_metrics` document as Prometheus text format."""
    lines = []

    def family(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    timers = metrics.get("timers", {})
    if timers:
        family(
            "repro_phase_seconds_total",
            "counter",
            "Cumulative seconds recorded under each telemetry timer.",
        )
        for name, stat in timers.items():
            lines.append(
                _sample(
                    "repro_phase_seconds_total",
                    {"phase": name},
                    stat["total_s"],
                )
            )
        family(
            "repro_phase_count_total",
            "counter",
            "Number of observations recorded under each telemetry timer.",
        )
        for name, stat in timers.items():
            lines.append(
                _sample("repro_phase_count_total", {"phase": name}, stat["count"])
            )
    counters = metrics.get("counters", {})
    if counters:
        family(
            "repro_counter_total",
            "counter",
            "Monotonic telemetry counters merged across workers.",
        )
        for name, value in counters.items():
            lines.append(_sample("repro_counter_total", {"name": name}, value))
    gauges = metrics.get("gauges", {})
    if gauges:
        family(
            "repro_gauge",
            "gauge",
            "Point-in-time telemetry gauges (last write wins per worker).",
        )
        for name, value in gauges.items():
            lines.append(_sample("repro_gauge", {"name": name}, value))
    events = metrics.get("events", {})
    if events:
        family(
            "repro_events_total",
            "counter",
            "Telemetry events recorded per kind across all event files.",
        )
        for kind, value in events.items():
            lines.append(_sample("repro_events_total", {"kind": kind}, value))
    workers = metrics.get("workers", [])
    if workers:
        family(
            "repro_worker_jobs_total",
            "counter",
            "Sweep jobs executed per worker process.",
        )
        for w in workers:
            lines.append(
                _sample("repro_worker_jobs_total", {"worker": w["worker"]}, w["jobs"])
            )
        family(
            "repro_worker_busy_seconds_total",
            "counter",
            "Seconds each worker spent inside sweep jobs.",
        )
        for w in workers:
            lines.append(
                _sample(
                    "repro_worker_busy_seconds_total",
                    {"worker": w["worker"]},
                    w["busy_s"],
                )
            )
    return "\n".join(lines) + "\n" if lines else ""


def _atomic_write(path: Path, text: str) -> Path:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    tmp.replace(path)
    return path


def export_metrics(
    directory: str | Path, manifest: Mapping[str, Any]
) -> Tuple[Path, Path]:
    """Write ``metrics.json`` + ``metrics.prom`` for one trace directory."""
    root = Path(directory).expanduser()
    metrics = build_metrics(manifest)
    json_path = _atomic_write(
        root / METRICS_NAME, json.dumps(metrics, indent=2, sort_keys=False)
    )
    prom_path = _atomic_write(root / PROM_NAME, prometheus_exposition(metrics))
    return json_path, prom_path


def load_metrics(directory: str | Path) -> Optional[Dict[str, Any]]:
    """Read ``metrics.json`` from a trace directory (None if absent/bad)."""
    path = Path(directory).expanduser() / METRICS_NAME
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict) or payload.get("kind") != "metrics":
        return None
    return payload
