"""Hierarchical timer/counter/gauge registry with cross-process merging.

Names are dot-separated paths (``"solver.descent"``, ``"round.local_solve"``)
— the hierarchy is purely lexical, so aggregation and rendering can group
by prefix without any registration ceremony.

Process safety model: each process owns a private registry (no locks on
the hot path); sweep workers serialize a :meth:`MetricsRegistry.snapshot`
to disk after every job and the parent folds them together with
:func:`merge_snapshots`.  Merging is associative and idempotent-friendly
(snapshots are cumulative, so workers *overwrite* their snapshot file
rather than appending).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional

__all__ = [
    "TimerStat",
    "MetricsRegistry",
    "merge_snapshots",
    "load_snapshot",
]


@dataclass
class TimerStat:
    """Aggregate of every observation recorded under one timer name."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TimerStat":
        stat = cls(
            count=int(payload["count"]),
            total_s=float(payload["total_s"]),
            max_s=float(payload["max_s"]),
        )
        stat.min_s = float(payload["min_s"]) if stat.count else float("inf")
        return stat

    def merge(self, other: "TimerStat") -> None:
        self.count += other.count
        self.total_s += other.total_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)


@dataclass
class MetricsRegistry:
    """Per-process store of timers, monotonic counters, and gauges."""

    timers: Dict[str, TimerStat] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)

    def record_timer(self, name: str, seconds: float) -> None:
        stat = self.timers.get(name)
        if stat is None:
            stat = self.timers[name] = TimerStat()
        stat.record(seconds)

    def add_counter(self, name: str, value: float = 1.0) -> float:
        total = self.counters.get(name, 0.0) + value
        self.counters[name] = total
        return total

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    # -- cross-process aggregation ---------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready cumulative view of this registry."""
        return {
            "timers": {k: v.to_dict() for k, v in sorted(self.timers.items())},
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
        }

    def merge_snapshot(self, snap: Mapping[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Timers/counters accumulate; gauges are last-write-wins (the value
        from ``snap`` replaces ours), matching their point-in-time
        semantics.
        """
        for name, payload in snap.get("timers", {}).items():
            other = TimerStat.from_dict(payload)
            mine = self.timers.get(name)
            if mine is None:
                self.timers[name] = other
            else:
                mine.merge(other)
        for name, value in snap.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0.0) + float(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauges[name] = float(value)

    def dump(self, path: str | Path) -> Path:
        """Atomically write :meth:`snapshot` to ``path``."""
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(self.snapshot(), separators=(",", ":")))
        tmp.replace(path)
        return path


def load_snapshot(path: str | Path) -> Optional[Dict[str, Any]]:
    """Read a snapshot file; ``None`` on any read/parse problem (a lost
    worker snapshot degrades the manifest, it must not fail the sweep)."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def merge_snapshots(snaps: Iterable[Mapping[str, Any]]) -> MetricsRegistry:
    """Fold many snapshots into a fresh registry."""
    merged = MetricsRegistry()
    for snap in snaps:
        merged.merge_snapshot(snap)
    return merged
