"""The telemetry hub: event emission, timers, scoping, and the manifest.

One :class:`Telemetry` instance per process.  Instrumentation sites never
construct hubs; they fetch the process-current one::

    tel = get_telemetry()
    if tel.enabled:
        tel.emit("learner.descent", data={...}, dur=dt)
    with tel.timer("round.local_solve"):
        ...

The default hub is :data:`NULL_TELEMETRY`, whose ``enabled`` is False and
whose ``timer`` returns a shared no-op context manager — instrumentation
costs one module-global read and an attribute check when telemetry is
off, and adds nothing to any result object.

A real hub is activated with :func:`use_telemetry` (context manager) or
:func:`set_telemetry`; :meth:`Telemetry.for_directory` builds one that
writes ``events-<worker>.jsonl`` under a trace directory.  Sequence
numbers are monotonic per hub; epoch scope is set by the experiment loop
via :meth:`Telemetry.epoch_scope` so deep call sites (solver, round
runner) inherit it for free.

``finalize()`` writes ``manifest.json``: the merged timer/counter/gauge
registry (own + every worker snapshot found in the directory), per-kind
event counts, and per-worker utilization — the single file ``repro
trace`` and CI validation start from.
"""

from __future__ import annotations

import json
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, TextIO

from repro.obs.events import (
    TELEMETRY_SCHEMA_VERSION,
    Event,
    event_to_line,
    iter_trace_lines,
    jsonify,
)
from repro.obs.registry import MetricsRegistry, load_snapshot

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "MANIFEST_NAME",
    "build_manifest",
    "validate_manifest",
]

MANIFEST_NAME = "manifest.json"


class _NullTimer:
    """Shared do-nothing context manager (zero allocation per use)."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class _Timer:
    """Measures a block, records it in the registry, optionally emits."""

    __slots__ = ("_hub", "_name", "_emit_kind", "_t0")

    def __init__(self, hub: "Telemetry", name: str, emit_kind: Optional[str]) -> None:
        self._hub = hub
        self._name = name
        self._emit_kind = emit_kind

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        dt = time.perf_counter() - self._t0
        self._hub.registry.record_timer(self._name, dt)
        if self._emit_kind is not None:
            self._hub.emit(self._emit_kind, data={"timer": self._name}, dur=dt)
        return False


class Telemetry:
    """Structured event hub + metrics registry for one process."""

    def __init__(
        self,
        sink: Optional[TextIO] = None,
        run_id: str = "run",
        worker: str = "main",
        directory: Optional[Path] = None,
        progress_stream: Optional[TextIO] = None,
    ) -> None:
        self._sink = sink
        self.run_id = run_id
        self.worker = worker
        self.directory = Path(directory) if directory is not None else None
        self.progress_stream = progress_stream
        self.registry = MetricsRegistry()
        self._seq = 0
        self._epoch: Optional[int] = None
        self._finalized = False
        self._manifest_path: Optional[Path] = None

    @property
    def enabled(self) -> bool:
        """True when events are being recorded.  Call sites use this to
        skip payload construction entirely; a progress-only hub (no sink)
        therefore costs as little as the null hub inside jobs."""
        return self._sink is not None

    @classmethod
    def for_directory(
        cls,
        directory: str | Path,
        run_id: str = "run",
        worker: str = "main",
        progress_stream: Optional[TextIO] = None,
    ) -> "Telemetry":
        """Hub writing ``events-<worker>.jsonl`` under ``directory``.

        The file is truncated (a recording replaces any previous one by
        the same worker, keeping ``seq`` monotonic within each file) and
        line-buffered, so a crash loses at most the final partial line;
        concurrent workers each own a distinct file (the worker label is
        part of the name).
        """
        root = Path(directory).expanduser()
        root.mkdir(parents=True, exist_ok=True)
        sink = (root / f"events-{worker}.jsonl").open(
            "w", buffering=1, encoding="utf-8"
        )
        return cls(
            sink=sink,
            run_id=run_id,
            worker=worker,
            directory=root,
            progress_stream=progress_stream,
        )

    # -- events ------------------------------------------------------------------

    def emit(
        self,
        kind: str,
        data: Optional[Mapping[str, Any]] = None,
        epoch: Optional[int] = None,
        dur: Optional[float] = None,
    ) -> Optional[Event]:
        """Append one event to the trace (no-op without a sink)."""
        if self._sink is None:
            return None
        event = Event(
            kind=kind,
            seq=self._seq,
            run=self.run_id,
            worker=self.worker,
            epoch=self._epoch if epoch is None else epoch,
            data=jsonify(dict(data) if data else {}),
            wall=time.time(),
            dur=dur,
        )
        self._seq += 1
        self._sink.write(event_to_line(event) + "\n")
        return event

    # -- registry shorthands -----------------------------------------------------

    def timer(self, name: str, emit_kind: Optional[str] = None) -> _Timer:
        """``with tel.timer("solver.descent"): ...`` — records into the
        registry; with ``emit_kind`` also emits a timing event."""
        return _Timer(self, name, emit_kind)

    def counter(self, name: str, value: float = 1.0) -> None:
        self.registry.add_counter(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.registry.set_gauge(name, value)

    # -- scoping -----------------------------------------------------------------

    def set_epoch(self, t: Optional[int]) -> None:
        """Loop-style epoch scoping: every later event carries epoch ``t``
        until the next call (``None`` clears the scope)."""
        self._epoch = None if t is None else int(t)

    @contextmanager
    def epoch_scope(self, t: int) -> Iterator[None]:
        """Tag every event emitted inside the block with epoch ``t``."""
        prev, self._epoch = self._epoch, int(t)
        try:
            yield
        finally:
            self._epoch = prev

    @contextmanager
    def run_scope(self, run_id: str) -> Iterator[None]:
        """Tag every event emitted inside the block with ``run_id``
        (sweeps retag per job so multi-run traces stay separable)."""
        prev, self.run_id = self.run_id, run_id
        try:
            yield
        finally:
            self.run_id = prev

    # -- progress ----------------------------------------------------------------

    def progress(self, message: str) -> None:
        """Human-facing progress line: echoed to ``progress_stream`` (if
        any) and recorded as a ``sweep.progress`` event (if sinked) — one
        code path for both surfaces."""
        if self.progress_stream is not None:
            print(message, file=self.progress_stream)
        self.emit("sweep.progress", data={"message": message})

    # -- lifecycle ---------------------------------------------------------------

    def flush(self) -> None:
        if self._sink is not None:
            self._sink.flush()

    def dump_worker_snapshot(self) -> Optional[Path]:
        """Write this process's cumulative registry snapshot into the
        trace directory (called by sweep workers after every job)."""
        if self.directory is None:
            return None
        return self.registry.dump(self.directory / f"registry-{self.worker}.json")

    def finalize(self, meta: Optional[Mapping[str, Any]] = None) -> Optional[Path]:
        """Flush, merge all registries, write ``manifest.json``, close.

        The hub's own registry reaches the manifest via its snapshot file
        (like every worker's), so each process is counted exactly once no
        matter how often it snapshotted mid-run.

        Idempotent: the first call does all the work and later calls
        return the same path without touching the directory again.  All
        artifacts (``manifest.json``, ``metrics.json``, ``metrics.prom``)
        are written via temp-file + ``os.replace``, so a crash mid-write
        leaves the previous version (or nothing) — never a torn file.
        """
        if self._finalized:
            return self._manifest_path
        self.flush()
        path: Optional[Path] = None
        if self.directory is not None:
            self.dump_worker_snapshot()
            manifest = build_manifest(self.directory, meta=meta)
            path = self.directory / MANIFEST_NAME
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_text(json.dumps(manifest, indent=2, sort_keys=False))
            tmp.replace(path)
            # Deferred import: export depends on the manifest shape built
            # here, keeping hub <- export a one-way edge at import time.
            from repro.obs.export import export_metrics

            export_metrics(self.directory, manifest)
        self.close()
        self._finalized = True
        self._manifest_path = path
        return path

    def close(self) -> None:
        if self._sink is not None and self._sink is not sys.stderr:
            try:
                self._sink.close()
            except OSError:
                pass
        self._sink = None


class NullTelemetry(Telemetry):
    """The disabled hub: every operation is a no-op.

    ``enabled`` is False (no sink) so call sites skip building event
    payloads entirely; ``timer`` hands back one shared null context
    manager, so a ``with`` block costs two trivial method calls and no
    clock reads.
    """

    def __init__(self) -> None:
        super().__init__(sink=None)

    def emit(self, kind, data=None, epoch=None, dur=None):  # type: ignore[override]
        return None

    def timer(self, name: str, emit_kind: Optional[str] = None):  # type: ignore[override]
        return _NULL_TIMER

    def counter(self, name: str, value: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def progress(self, message: str) -> None:
        pass


NULL_TELEMETRY = NullTelemetry()

_current: Telemetry = NULL_TELEMETRY


def get_telemetry() -> Telemetry:
    """The process-current hub (the null hub unless one was installed)."""
    return _current


def set_telemetry(hub: Optional[Telemetry]) -> Telemetry:
    """Install ``hub`` (``None`` → the null hub); returns the previous."""
    global _current
    previous = _current
    _current = hub if hub is not None else NULL_TELEMETRY
    return previous


@contextmanager
def use_telemetry(hub: Optional[Telemetry]) -> Iterator[Telemetry]:
    """Scoped :func:`set_telemetry` that always restores the previous hub."""
    previous = set_telemetry(hub)
    try:
        yield get_telemetry()
    finally:
        set_telemetry(previous)


# -- manifest -------------------------------------------------------------------


def build_manifest(
    directory: str | Path,
    own_registry: Optional[MetricsRegistry] = None,
    meta: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Aggregate one trace directory into a manifest dict.

    Merges ``own_registry`` with every ``registry-*.json`` worker
    snapshot, counts events per kind across every ``events*.jsonl`` file,
    and derives per-worker utilization from each worker's ``sweep.job``
    timer (jobs executed + busy seconds).
    """
    root = Path(directory).expanduser()
    merged = MetricsRegistry()
    if own_registry is not None:
        merged.merge_snapshot(own_registry.snapshot())
    workers = []
    for snap_path in sorted(root.glob("registry-*.json")):
        snap = load_snapshot(snap_path)
        if snap is None:
            continue
        merged.merge_snapshot(snap)
        job_stat = snap.get("timers", {}).get("sweep.job")
        workers.append(
            {
                "worker": snap_path.stem.replace("registry-", "", 1),
                "jobs": int(job_stat["count"]) if job_stat else 0,
                "busy_s": float(job_stat["total_s"]) if job_stat else 0.0,
            }
        )
    event_counts: Dict[str, int] = {}
    files = []
    for path in sorted(root.glob("events*.jsonl")):
        files.append(path.name)
        with path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    kind = json.loads(line).get("kind", "?")
                except json.JSONDecodeError:
                    kind = "?"
                event_counts[kind] = event_counts.get(kind, 0) + 1
    return {
        "v": TELEMETRY_SCHEMA_VERSION,
        "kind": "telemetry-manifest",
        "event_files": files,
        "event_counts": dict(sorted(event_counts.items())),
        "workers": workers,
        "registry": merged.snapshot(),
        "meta": jsonify(dict(meta) if meta else {}),
        "ts": {"wall": time.time()},
    }


def validate_manifest(payload: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid v1 manifest."""
    if not isinstance(payload, Mapping):
        raise ValueError("manifest must be a JSON object")
    if payload.get("v") != TELEMETRY_SCHEMA_VERSION:
        raise ValueError(f"unsupported manifest version {payload.get('v')!r}")
    if payload.get("kind") != "telemetry-manifest":
        raise ValueError("manifest kind must be 'telemetry-manifest'")
    for key in ("event_files", "workers"):
        if not isinstance(payload.get(key), list):
            raise ValueError(f"manifest field {key!r} missing or mistyped")
    if not isinstance(payload.get("event_counts"), Mapping):
        raise ValueError("manifest field 'event_counts' missing or mistyped")
    registry = payload.get("registry")
    if not isinstance(registry, Mapping):
        raise ValueError("manifest field 'registry' missing or mistyped")
    for section in ("timers", "counters", "gauges"):
        if not isinstance(registry.get(section), Mapping):
            raise ValueError(f"registry section {section!r} missing or mistyped")
    for name, stat in registry["timers"].items():
        if not isinstance(stat, Mapping) or not {
            "count",
            "total_s",
            "min_s",
            "max_s",
        } <= set(stat):
            raise ValueError(f"timer {name!r} malformed")
