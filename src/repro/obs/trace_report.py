"""Rendering a recorded telemetry trace for terminals (``repro trace``).

Input: a trace directory (``events*.jsonl`` + optional ``manifest.json``).
Output: plain text — event inventory, hierarchical per-phase timing
tables from the merged timer registry, counters, and ASCII trajectories
of the controller quantities the paper's theory tracks (dual variables
``μ_t``, constraint-fit accumulation ``Σ‖h_t⁺‖``, the running descent
objective, test accuracy).

Everything here is read-only over the JSONL schema in
:mod:`repro.obs.events`; it never needs the experiment code, so traces
from old runs render with newer reporting.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.events import Event, read_events
from repro.obs.hub import MANIFEST_NAME, validate_manifest
from repro.obs.registry import MetricsRegistry, TimerStat

__all__ = [
    "load_manifest",
    "render_trace",
    "timing_table",
    "trajectory_section",
    "sim_timeline_section",
    "quarantine_section",
]


def load_manifest(directory: str | Path) -> Optional[Dict[str, Any]]:
    """Read + validate ``manifest.json``; ``None`` if absent/invalid."""
    path = Path(directory).expanduser() / MANIFEST_NAME
    try:
        payload = json.loads(path.read_text())
        validate_manifest(payload)
    except (OSError, json.JSONDecodeError, ValueError):
        return None
    return payload


def _num(value: Any, default: float = float("nan")) -> float:
    """Undo :func:`repro.obs.events.jsonify`'s non-finite encoding."""
    if isinstance(value, str):
        return {"nan": float("nan"), "inf": float("inf"), "-inf": float("-inf")}.get(
            value, default
        )
    if isinstance(value, (int, float)):
        return float(value)
    return default


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    return f"{seconds * 1e3:8.3f}ms"


def timing_table(timers: Mapping[str, Mapping[str, Any]]) -> str:
    """Hierarchical per-phase timing table from a registry snapshot.

    Rows are sorted by name so siblings group under their dotted prefix;
    nesting is shown by indenting each path segment past the first.
    """
    if not timers:
        return "(no timers recorded)"
    header = f"{'phase':<32} {'count':>7} {'total':>10} {'mean':>10} {'max':>10}"
    lines = [header, "-" * len(header)]
    for name in sorted(timers):
        stat = TimerStat.from_dict(timers[name])
        label = "  " * name.count(".") + name
        lines.append(
            f"{label:<32} {stat.count:>7d} {_fmt_seconds(stat.total_s):>10} "
            f"{_fmt_seconds(stat.mean_s):>10} {_fmt_seconds(stat.max_s):>10}"
        )
    return "\n".join(lines)


def _aggregate_event_durs(events: Sequence[Event]) -> Dict[str, Dict[str, Any]]:
    """Fallback timing source when no manifest exists: per-kind ``dur``."""
    registry = MetricsRegistry()
    for event in events:
        if event.dur is not None:
            registry.record_timer(event.kind, event.dur)
    return registry.snapshot()["timers"]


def _series_block(
    title: str, points: Sequence[Tuple[float, float]], width: int = 60
) -> List[str]:
    """One labelled sparkline row (last value printed for reading off)."""
    from repro.experiments.plotting import sparkline

    values = [y for _, y in points]
    if not values:
        return []
    return [f"  {title:<28} {sparkline(values, width)}  last={values[-1]:.4g}"]


def trajectory_section(events: Sequence[Event], run: str, chart: bool = True) -> str:
    """Render the controller trajectories recorded for one run id."""
    mu_max: List[Tuple[float, float]] = []
    fit: List[Tuple[float, float]] = []
    objective: List[Tuple[float, float]] = []
    regret_like: List[Tuple[float, float]] = []
    accuracy: List[Tuple[float, float]] = []
    fit_total = 0.0
    obj_total = 0.0
    for event in events:
        if event.run != run or event.epoch is None:
            continue
        t = float(event.epoch)
        if event.kind == "learner.ascent":
            mu = [_num(v) for v in event.data.get("mu", [])]
            slacks = [_num(v) for v in event.data.get("h", [])]
            if mu:
                mu_max.append((t, max(mu)))
            fit_total += sum(max(s, 0.0) for s in slacks)
            fit.append((t, fit_total))
        elif event.kind == "learner.descent":
            obj = _num(event.data.get("objective"), default=float("nan"))
            if obj == obj:  # skip NaN
                objective.append((t, obj))
                obj_total += obj
                regret_like.append((t, obj_total))
        elif event.kind == "epoch.complete":
            acc = _num(event.data.get("test_accuracy"))
            if acc == acc:
                accuracy.append((t, acc))
    lines: List[str] = [f"trajectories — run {run!r} (x = epoch)"]
    lines += _series_block("dual max_i mu_t[i]", mu_max)
    lines += _series_block("cumulative fit sum h_t^+", fit)
    lines += _series_block("descent objective f_t", objective)
    lines += _series_block("cumulative objective", regret_like)
    lines += _series_block("test accuracy", accuracy)
    if len(lines) == 1:
        return f"trajectories — run {run!r}: no learner/epoch events recorded"
    if chart and mu_max and fit:
        from repro.experiments.plotting import ascii_chart

        lines.append("")
        lines.append(
            ascii_chart(
                {"mu_max": mu_max, "cum_fit": fit},
                x_label="epoch",
                y_label="value",
            )
        )
    return "\n".join(lines)


def sim_timeline_section(
    events: Sequence[Event],
    run: str,
    max_rounds: int = 3,
    width: int = 40,
) -> Optional[str]:
    """Per-client timelines of the event-driven runtime's ``sim.*`` events.

    Returns ``None`` when the run recorded no simulated rounds.  Each of
    the last ``max_rounds`` rounds renders as a bar chart: a client's bar
    spans its last activity instant relative to the round's completion
    time, annotated with its completed-work seconds and drop status.
    """
    rounds = [e for e in events if e.run == run and e.kind == "sim.round"]
    if not rounds:
        return None
    drops: Counter = Counter()
    retries = 0
    deadline_hits = 0
    for event in rounds:
        for reason in event.data.get("dropped", {}).values():
            drops[str(reason)] += 1
        retries += int(_num(event.data.get("retries", 0), 0.0))
        deadline_hits += int(_num(event.data.get("deadline_hits", 0), 0.0))
    lines = [
        f"event-driven runtime — run {run!r} "
        f"({len(rounds)} simulated rounds)"
    ]
    drop_text = (
        ", ".join(f"{k}:{n}" for k, n in sorted(drops.items()))
        if drops
        else "none"
    )
    lines.append(
        f"  retries={retries}  deadline_hits={deadline_hits}  drops={drop_text}"
    )
    clients_by_epoch: Dict[Optional[int], List[Event]] = {}
    for event in events:
        if event.run == run and event.kind == "sim.client":
            clients_by_epoch.setdefault(event.epoch, []).append(event)
    for event in rounds[-max_rounds:]:
        total = _num(event.data.get("completion_time"), 0.0)
        lines.append(
            f"  epoch {event.epoch}: {event.data.get('aggregation', 'sync')} "
            f"T={total:.4g}s iterations={event.data.get('iterations')} "
            f"participants={event.data.get('participants')} "
            f"survivors={event.data.get('survivors')}"
        )
        for ce in sorted(
            clients_by_epoch.get(event.epoch, []),
            key=lambda ev: int(_num(ev.data.get("client", 0), 0.0)),
        ):
            last = _num(ce.data.get("last_t"), 0.0)
            busy = _num(ce.data.get("busy_s"), 0.0)
            frac = min(1.0, last / total) if total > 0 else 0.0
            bar = "#" * max(1, int(round(frac * width)))
            status = str(ce.data.get("status", "ok"))
            mark = "" if status == "ok" else f"  [{status}]"
            lines.append(
                f"    k={int(_num(ce.data.get('client', 0), 0.0)):>3d} "
                f"|{bar:<{width}}| busy={busy:.4g}s{mark}"
            )
    return "\n".join(lines)


def quarantine_section(
    events: Sequence[Event],
    run: str,
    max_clients: int = 10,
) -> Optional[str]:
    """Defense-layer digest from the ``defense.round``/``adversary.round``
    events: per-client rejected/clipped update totals, empty-iteration
    count, and (when an adversary was configured) the attack roster size.

    Returns ``None`` when the run recorded no defense activity.
    """
    defense_rounds = [
        e for e in events if e.run == run and e.kind == "defense.round"
    ]
    if not defense_rounds:
        return None
    rejected: Counter = Counter()
    clipped: Counter = Counter()
    empty_iterations = 0
    aggregators = set()
    for event in defense_rounds:
        aggregators.add(str(event.data.get("aggregator", "?")))
        for cid, n in event.data.get("rejected", {}).items():
            rejected[int(cid)] += int(_num(n, 0.0))
        for cid, n in event.data.get("clipped", {}).items():
            clipped[int(cid)] += int(_num(n, 0.0))
        empty_iterations += int(_num(event.data.get("empty_iterations", 0), 0.0))
    attacks = {
        str(e.data.get("attack", "?")): int(
            _num(e.data.get("compromised_participants", 0), 0.0)
        )
        for e in events
        if e.run == run and e.kind == "adversary.round"
    }
    lines = [
        f"update quarantine — run {run!r} "
        f"(aggregator {'/'.join(sorted(aggregators))}, "
        f"{len(defense_rounds)} defended rounds)"
    ]
    if attacks:
        attack_text = ", ".join(f"{k}" for k in sorted(attacks))
        lines.append(f"  configured attack: {attack_text}")
    lines.append(
        f"  rejected_updates={sum(rejected.values())}  "
        f"clipped_updates={sum(clipped.values())}  "
        f"empty_iterations={empty_iterations}"
    )
    offenders = Counter()
    for cid, n in rejected.items():
        offenders[cid] += n
    for cid, n in clipped.items():
        offenders[cid] += n
    flagged = [cid for cid, n in offenders.most_common(max_clients) if n > 0]
    for cid in flagged:
        lines.append(
            f"    k={cid:>3d}  rejected={rejected.get(cid, 0):<4d}"
            f"clipped={clipped.get(cid, 0)}"
        )
    if not flagged:
        lines.append("    no updates rejected or clipped")
    return "\n".join(lines)


def _warm_start_summary(counters: Mapping[str, Any]) -> Optional[str]:
    """One-line solver warm-start digest from the registry counters.

    Only rendered when the trace recorded warm-start activity (the
    counters come from :meth:`OnlineLearner.descent_step`).
    """
    hits = _num(counters.get("solver.warm_start_hits", 0), 0.0)
    if not hits:
        return None
    saved = _num(counters.get("solver.iterations_saved", 0), 0.0)
    total = _num(counters.get("solver.iterations", 0), 0.0)
    line = (
        f"solver warm-start: {hits:.0f} warm solves, "
        f"{saved:.0f} iterations saved ({saved / hits:.1f}/solve)"
    )
    if total:
        line += f", {total:.0f} descent iterations total"
    return line


def render_trace(
    directory: str | Path,
    run: Optional[str] = None,
    chart: bool = True,
    max_runs: int = 4,
) -> str:
    """Full text report for ``repro trace DIRECTORY``."""
    directory = Path(directory).expanduser()
    events = read_events(directory)
    manifest = load_manifest(directory)
    sections: List[str] = []

    counts = Counter(e.kind for e in events)
    runs = sorted({e.run for e in events})
    workers = sorted({e.worker for e in events})
    sections.append(
        f"telemetry trace: {directory}\n"
        f"  events={len(events)}  runs={len(runs)}  workers={len(workers)}"
        + ("  manifest=ok" if manifest else "  manifest=missing")
    )

    if counts:
        width = max(len(k) for k in counts)
        inventory = "\n".join(
            f"  {kind:<{width}}  {n:>6d}" for kind, n in sorted(counts.items())
        )
        sections.append("event inventory\n" + inventory)

    timers = (
        manifest["registry"]["timers"] if manifest else _aggregate_event_durs(events)
    )
    sections.append("per-phase timing\n" + timing_table(timers))

    if manifest:
        counters = manifest["registry"]["counters"]
        if counters:
            width = max(len(k) for k in counters)
            sections.append(
                "counters\n"
                + "\n".join(
                    f"  {name:<{width}}  {value:.6g}"
                    for name, value in sorted(counters.items())
                )
            )
        warm_line = _warm_start_summary(counters)
        if warm_line:
            sections.append(warm_line)
        if manifest["workers"]:
            sections.append(
                "worker utilization\n"
                + "\n".join(
                    f"  {w['worker']:<12} jobs={w['jobs']:<4d} busy={w['busy_s']:.3f}s"
                    for w in manifest["workers"]
                )
            )

    if run is not None:
        chosen = [r for r in runs if r == run or r.startswith(run)]
        if not chosen:
            sections.append(f"run {run!r} not found; available: {runs}")
    else:
        # Most-instrumented runs first, capped so sweep traces stay readable.
        by_signal = Counter(
            e.run for e in events if e.kind in ("learner.ascent", "epoch.complete")
        )
        chosen = [r for r, _ in by_signal.most_common(max_runs)]
    for r in chosen:
        sections.append(trajectory_section(events, r, chart=chart))
        sim_section = sim_timeline_section(events, r)
        if sim_section:
            sections.append(sim_section)
        defense_section = quarantine_section(events, r)
        if defense_section:
            sections.append(defense_section)
    if run is None and len(runs) > len(chosen) and chosen:
        sections.append(
            f"({len(runs) - len(chosen)} more runs in this trace; "
            "re-run with --run PREFIX to select one)"
        )
    return "\n\n".join(sections)
