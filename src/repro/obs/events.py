"""Structured telemetry events and their JSONL wire format.

Every event is one JSON object per line with a fixed, versioned shape::

    {"v": 1, "seq": 12, "kind": "epoch.start", "run": "FedL-s0",
     "worker": "main", "epoch": 3, "data": {...}, "ts": {"wall": ..., "dur": ...}}

Design rules the rest of the subsystem (and the tests) rely on:

* ``seq`` is a per-hub monotonic sequence number, so a single file is
  totally ordered even if wall clocks jump.
* **Everything non-deterministic lives under ``ts``** (wall-clock instant
  and measured duration).  ``v``/``seq``/``kind``/scope/``data`` are pure
  functions of the run, so two traces of the same seeded experiment are
  byte-identical once ``ts`` is dropped — see :func:`canonical_line`.
* ``data`` values are plain JSON scalars/lists (NumPy is converted by
  :func:`jsonify` at emit time), so traces parse without this package.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional

import numpy as np

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "EVENT_KINDS",
    "Event",
    "jsonify",
    "event_to_line",
    "parse_event_line",
    "validate_event_dict",
    "strip_volatile",
    "canonical_line",
    "read_events",
    "iter_trace_lines",
]

#: Bump when the wire shape of an event line changes incompatibly.
TELEMETRY_SCHEMA_VERSION = 1

#: The kinds the built-in instrumentation emits (documentation + trace
#: rendering; validation accepts unknown kinds so downstream users can
#: add their own without forking the schema).
EVENT_KINDS = (
    "run.start",
    "run.complete",
    "epoch.start",
    "epoch.decision",
    "epoch.complete",
    "learner.descent",
    "learner.ascent",
    "round.complete",
    "shard.select",
    "sim.round",
    "sim.client",
    "live.round",
    "live.client",
    "sweep.start",
    "sweep.job",
    "sweep.worker",
    "sweep.complete",
    "sweep.progress",
)


def jsonify(value: Any) -> Any:
    """Recursively convert ``value`` into plain JSON-serializable types.

    NumPy scalars/arrays become Python floats/ints/lists; non-finite
    floats become the strings ``"nan"``/``"inf"``/``"-inf"`` (strict JSON
    has no encoding for them and traces must stay parseable everywhere).
    """
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, str) or value is None:
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        f = float(value)
        if math.isnan(f):
            return "nan"
        if math.isinf(f):
            return "inf" if f > 0 else "-inf"
        return f
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    if isinstance(value, Mapping):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    raise TypeError(f"cannot jsonify {type(value).__name__}: {value!r}")


@dataclass(frozen=True)
class Event:
    """One telemetry event (the in-memory form of a JSONL line)."""

    kind: str
    seq: int
    run: str
    worker: str
    epoch: Optional[int] = None
    data: Dict[str, Any] = field(default_factory=dict)
    wall: float = 0.0               # non-deterministic: wall-clock seconds
    dur: Optional[float] = None     # non-deterministic: measured duration

    def to_dict(self) -> Dict[str, Any]:
        """Wire dict with the fixed key order the sink writes."""
        return {
            "v": TELEMETRY_SCHEMA_VERSION,
            "seq": self.seq,
            "kind": self.kind,
            "run": self.run,
            "worker": self.worker,
            "epoch": self.epoch,
            "data": self.data,
            "ts": {"wall": self.wall, "dur": self.dur},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Event":
        validate_event_dict(payload)
        ts = payload["ts"]
        return cls(
            kind=payload["kind"],
            seq=payload["seq"],
            run=payload["run"],
            worker=payload["worker"],
            epoch=payload["epoch"],
            data=dict(payload["data"]),
            wall=float(ts["wall"]),
            dur=None if ts["dur"] is None else float(ts["dur"]),
        )


def validate_event_dict(payload: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid v1 event dict."""
    if not isinstance(payload, Mapping):
        raise ValueError("event must be a JSON object")
    if payload.get("v") != TELEMETRY_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported event schema version {payload.get('v')!r} "
            f"(expected {TELEMETRY_SCHEMA_VERSION})"
        )
    for key, types in (
        ("seq", (int,)),
        ("kind", (str,)),
        ("run", (str,)),
        ("worker", (str,)),
    ):
        if not isinstance(payload.get(key), types) or isinstance(
            payload.get(key), bool
        ):
            raise ValueError(f"event field {key!r} missing or mistyped")
    if payload["seq"] < 0:
        raise ValueError("seq must be nonnegative")
    epoch = payload.get("epoch")
    if epoch is not None and (isinstance(epoch, bool) or not isinstance(epoch, int)):
        raise ValueError("epoch must be an int or null")
    if not isinstance(payload.get("data"), Mapping):
        raise ValueError("data must be an object")
    ts = payload.get("ts")
    if not isinstance(ts, Mapping) or "wall" not in ts or "dur" not in ts:
        raise ValueError("ts must be an object with wall and dur")
    if not isinstance(ts["wall"], (int, float)) or isinstance(ts["wall"], bool):
        raise ValueError("ts.wall must be a number")
    if ts["dur"] is not None and (
        isinstance(ts["dur"], bool) or not isinstance(ts["dur"], (int, float))
    ):
        raise ValueError("ts.dur must be a number or null")


def event_to_line(event: Event) -> str:
    """Serialize to one JSONL line (no trailing newline)."""
    return json.dumps(event.to_dict(), separators=(",", ":"))


def parse_event_line(line: str) -> Event:
    """Parse and validate one JSONL line back into an :class:`Event`."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed event line: {exc}") from exc
    return Event.from_dict(payload)


def strip_volatile(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Drop the ``ts`` field — everything that may differ between two
    runs of the same seeded experiment."""
    return {k: v for k, v in payload.items() if k != "ts"}


def canonical_line(line: str) -> str:
    """Deterministic re-serialization of an event line (``ts`` removed,
    keys sorted).  Two traces of the same run compare equal line-by-line
    under this mapping; the determinism test is built on it."""
    payload = json.loads(line)
    return json.dumps(strip_volatile(payload), sort_keys=True, separators=(",", ":"))


def iter_trace_lines(directory: str | Path) -> Iterator[str]:
    """Yield every event line from ``events*.jsonl`` files under
    ``directory`` (sorted by file name for stable ordering)."""
    root = Path(directory).expanduser()
    for path in sorted(root.glob("events*.jsonl")):
        with path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield line


def read_events(directory: str | Path) -> List[Event]:
    """Parse every event under ``directory``; ordered by (worker, seq)."""
    events = [parse_event_line(line) for line in iter_trace_lines(directory)]
    events.sort(key=lambda e: (e.worker, e.seq))
    return events
