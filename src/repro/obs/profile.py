"""Deterministic hierarchical phase profiler over the telemetry registry.

The merged timer registry inside ``manifest.json`` already carries every
phase's count/total/min/max, but its hierarchy is purely lexical
(``round.local_solve`` does not nest under ``experiment.round`` by name
even though it always runs inside it).  This module reconstructs the
*temporal* phase tree the instrumentation actually has, computes **self
time** (a phase's cumulative total minus its direct children's totals —
the time spent in the phase itself rather than in measured sub-phases),
and renders:

* a tree view with count / cumulative / self / mean / per-epoch columns
  (per-epoch attribution divides by the manifest's ``epoch.complete``
  count, so a 200-epoch sweep reads directly in ms/epoch);
* a flat "hot phases" ranking by self time — the list that answers
  "where did the time actually go";
* a diff of two profiles (``repro profile A --diff B``) with per-phase
  Δtotal/Δmean and regression highlighting.

Everything here is a pure function of the input manifests: rendering the
same manifest twice is byte-identical (all wall-clock content in a trace
directory lives in the manifest's ``ts`` block and the timer stats, which
are inputs, not ambient state).  The engine mix (loop/batched/des) is
read from the ``round.complete`` events' ``engine`` field so a profile is
labeled with what actually executed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "PHASE_PARENTS",
    "build_profile",
    "profile_directory",
    "engine_counts",
    "render_profile",
    "diff_profiles",
    "render_diff",
]

PROFILE_SCHEMA_VERSION = 1

#: Temporal containment edges that the lexical timer names cannot express:
#: solver iterations run inside the policy's select phase, the round
#: timers inside the experiment round, and both experiment phases inside a
#: sweep job.  Keys are exact timer names or dotted prefixes (trailing
#: ``"."``); an edge only applies when the parent timer actually exists in
#: the registry (a plain ``repro run`` has no ``sweep.job``), otherwise
#: resolution falls back to the longest lexical prefix that is a timer.
PHASE_PARENTS: Dict[str, str] = {
    "experiment.select": "sweep.job",
    "experiment.round": "sweep.job",
    "solver.": "experiment.select",
    "round.": "experiment.round",
    "sim.round": "experiment.round",
}


def _declared_parent(name: str) -> Optional[str]:
    exact = PHASE_PARENTS.get(name)
    if exact is not None:
        return exact
    for prefix, parent in PHASE_PARENTS.items():
        if prefix.endswith(".") and name.startswith(prefix):
            return parent
    return None


def _parent_of(name: str, names: "set[str]") -> Optional[str]:
    declared = _declared_parent(name)
    if declared is not None and declared != name and declared in names:
        return declared
    parts = name.split(".")
    for i in range(len(parts) - 1, 0, -1):
        candidate = ".".join(parts[:i])
        if candidate in names:
            return candidate
    return None


def engine_counts(directory: str | Path) -> Dict[str, int]:
    """Rounds executed per engine, from ``round.complete`` events."""
    from repro.obs.events import iter_trace_lines

    counts: Dict[str, int] = {}
    for line in iter_trace_lines(directory):
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            continue
        if payload.get("kind") != "round.complete":
            continue
        engine = payload.get("data", {}).get("engine", "?")
        counts[str(engine)] = counts.get(str(engine), 0) + 1
    return dict(sorted(counts.items()))


def build_profile(
    manifest: Mapping[str, Any],
    engines: Optional[Mapping[str, int]] = None,
) -> Dict[str, Any]:
    """Build the phase-tree profile document from a telemetry manifest."""
    timers = manifest.get("registry", {}).get("timers", {})
    names = set(timers)
    phases: Dict[str, Dict[str, Any]] = {}
    for name in sorted(names):
        stat = timers[name]
        phases[name] = {
            "count": int(stat.get("count", 0)),
            "total_s": float(stat.get("total_s", 0.0)),
            "min_s": float(stat.get("min_s", 0.0)),
            "max_s": float(stat.get("max_s", 0.0)),
            "parent": _parent_of(name, names),
            "children": [],
        }
    for name, node in phases.items():
        if node["parent"] is not None:
            phases[node["parent"]]["children"].append(name)
    for node in phases.values():
        node["children"].sort()
        child_total = sum(phases[c]["total_s"] for c in node["children"])
        node["self_s"] = max(0.0, node["total_s"] - child_total)
    roots = sorted(n for n, node in phases.items() if node["parent"] is None)

    def _depth(name: str) -> int:
        d, cur = 0, phases[name]["parent"]
        while cur is not None:
            d, cur = d + 1, phases[cur]["parent"]
        return d

    for name, node in phases.items():
        node["depth"] = _depth(name)
    event_counts = manifest.get("event_counts", {})
    epochs = int(event_counts.get("epoch.complete", 0))
    return {
        "v": PROFILE_SCHEMA_VERSION,
        "kind": "profile",
        "phases": phases,
        "roots": roots,
        "epochs": epochs,
        "runs": int(event_counts.get("run.complete", 0)),
        "engines": dict(engines) if engines else {},
    }


def profile_directory(directory: str | Path) -> Optional[Dict[str, Any]]:
    """Profile one trace directory; ``None`` when it has no manifest."""
    from repro.obs.trace_report import load_manifest

    manifest = load_manifest(directory)
    if manifest is None:
        return None
    return build_profile(manifest, engines=engine_counts(directory))


# -- rendering -----------------------------------------------------------------


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def _tree_order(profile: Mapping[str, Any]) -> List[str]:
    """Depth-first order, siblings by cumulative time (desc, then name)."""
    phases = profile["phases"]
    order: List[str] = []

    def visit(name: str) -> None:
        order.append(name)
        children = sorted(
            phases[name]["children"],
            key=lambda c: (-phases[c]["total_s"], c),
        )
        for child in children:
            visit(child)

    for root in sorted(profile["roots"], key=lambda r: (-phases[r]["total_s"], r)):
        visit(root)
    return order


def render_profile(
    profile: Mapping[str, Any],
    top: int = 10,
    label: str = "",
) -> str:
    """Render one profile: header, phase tree, hot-phase ranking."""
    phases = profile["phases"]
    lines: List[str] = []
    title = "phase profile" + (f": {label}" if label else "")
    lines.append(title)
    lines.append("=" * len(title))
    engines = profile.get("engines") or {}
    engine_str = (
        "  ".join(f"{k}x{v}" for k, v in sorted(engines.items()))
        if engines
        else "unknown"
    )
    epochs = int(profile.get("epochs", 0))
    lines.append(
        f"phases: {len(phases)}   runs: {profile.get('runs', 0)}   "
        f"epochs: {epochs}   engines: {engine_str}"
    )
    if not phases:
        lines.append("(no timers recorded)")
        return "\n".join(lines) + "\n"
    wall = sum(phases[r]["total_s"] for r in profile["roots"])
    lines.append("")
    header = (
        f"{'phase':<34} {'count':>8} {'total':>10} {'self':>10} "
        f"{'mean':>9} {'%root':>6}"
    )
    if epochs:
        header += f" {'per-epoch':>10}"
    lines.append(header)
    lines.append("-" * len(header))
    for name in _tree_order(profile):
        node = phases[name]
        indent = "  " * node["depth"]
        mean = node["total_s"] / node["count"] if node["count"] else 0.0
        pct = 100.0 * node["total_s"] / wall if wall > 0 else 0.0
        row = (
            f"{indent + name:<34} {node['count']:>8} "
            f"{_fmt_s(node['total_s']):>10} {_fmt_s(node['self_s']):>10} "
            f"{_fmt_s(mean):>9} {pct:>5.1f}%"
        )
        if epochs:
            row += f" {_fmt_s(node['total_s'] / epochs):>10}"
        lines.append(row)
    lines.append("")
    lines.append(f"hot phases (self time, top {top}):")
    ranked = sorted(
        phases.items(), key=lambda kv: (-kv[1]["self_s"], kv[0])
    )[: max(1, top)]
    total_self = sum(node["self_s"] for node in phases.values())
    for rank, (name, node) in enumerate(ranked, 1):
        share = 100.0 * node["self_s"] / total_self if total_self > 0 else 0.0
        lines.append(
            f"  {rank:>2}. {name:<32} {_fmt_s(node['self_s']):>10}  "
            f"{share:5.1f}% of self time, {node['count']} calls"
        )
    return "\n".join(lines) + "\n"


# -- diffing -------------------------------------------------------------------


def diff_profiles(
    a: Mapping[str, Any], b: Mapping[str, Any]
) -> List[Dict[str, Any]]:
    """Per-phase deltas between two profiles (``b`` relative to ``a``).

    Rows are ordered by absolute total-time delta (desc, then name); a row
    is a *regression* when the phase's mean time per call grew more than
    5% from ``a`` to ``b``.
    """
    phases_a = a.get("phases", {})
    phases_b = b.get("phases", {})
    rows: List[Dict[str, Any]] = []
    for name in sorted(set(phases_a) | set(phases_b)):
        pa = phases_a.get(name)
        pb = phases_b.get(name)
        count_a = pa["count"] if pa else 0
        count_b = pb["count"] if pb else 0
        total_a = pa["total_s"] if pa else 0.0
        total_b = pb["total_s"] if pb else 0.0
        mean_a = total_a / count_a if count_a else 0.0
        mean_b = total_b / count_b if count_b else 0.0
        mean_delta_pct = (
            100.0 * (mean_b - mean_a) / mean_a if mean_a > 0 else None
        )
        rows.append(
            {
                "phase": name,
                "count_a": count_a,
                "count_b": count_b,
                "total_a_s": total_a,
                "total_b_s": total_b,
                "total_delta_s": total_b - total_a,
                "mean_a_s": mean_a,
                "mean_b_s": mean_b,
                "mean_delta_pct": mean_delta_pct,
                "regressed": bool(
                    mean_delta_pct is not None and mean_delta_pct > 5.0
                ),
            }
        )
    rows.sort(key=lambda r: (-abs(r["total_delta_s"]), r["phase"]))
    return rows


def render_diff(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    label_a: str = "A",
    label_b: str = "B",
) -> str:
    """Render :func:`diff_profiles` as a fixed-width delta table."""
    rows = diff_profiles(a, b)
    lines: List[str] = []
    title = f"profile diff: {label_a} -> {label_b}"
    lines.append(title)
    lines.append("=" * len(title))
    if not rows:
        lines.append("(no phases in either profile)")
        return "\n".join(lines) + "\n"
    header = (
        f"{'phase':<30} {'count':>13} {'total':>21} {'mean':>19} "
        f"{'d-mean':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        counts = f"{row['count_a']}->{row['count_b']}"
        totals = f"{_fmt_s(row['total_a_s'])}->{_fmt_s(row['total_b_s'])}"
        means = f"{_fmt_s(row['mean_a_s'])}->{_fmt_s(row['mean_b_s'])}"
        if row["mean_delta_pct"] is None:
            dmean = "new" if row["count_a"] == 0 else "gone"
        else:
            dmean = f"{row['mean_delta_pct']:+.1f}%"
        marker = " !" if row["regressed"] else ""
        lines.append(
            f"{row['phase']:<30} {counts:>13} {totals:>21} {means:>19} "
            f"{dmean:>8}{marker}"
        )
    regressions = [r for r in rows if r["regressed"]]
    lines.append("")
    if regressions:
        lines.append(
            f"{len(regressions)} regressed phase(s) (mean/call > +5%): "
            + ", ".join(r["phase"] for r in regressions)
        )
    else:
        lines.append("no per-call regressions past 5%")
    return "\n".join(lines) + "\n"
