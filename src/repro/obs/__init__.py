"""Dependency-free structured telemetry for runs and sweeps.

Three layers:

* :mod:`repro.obs.events` — the versioned JSONL event schema (monotonic
  sequence numbers, run/epoch/worker scoping, all wall-clock data
  isolated in the ``ts`` field so traces diff deterministically).
* :mod:`repro.obs.registry` — hierarchical timer/counter/gauge registry
  with snapshot/merge for process-safe aggregation across sweep workers.
* :mod:`repro.obs.hub` — the process-current :class:`Telemetry` hub the
  instrumentation in the learner / round runner / experiment loop /
  sweep engine reports to.  Defaults to a no-op hub: with telemetry
  disabled nothing is emitted, timed, or attached to results.

Recorded traces are rendered by :mod:`repro.obs.trace_report`
(``repro trace DIR``), profiled by :mod:`repro.obs.profile`
(``repro profile DIR [--diff OTHER]``), tailed live by
:mod:`repro.obs.follow` (``repro trace DIR --follow``), and exported to
``metrics.json``/``metrics.prom`` at finalize by :mod:`repro.obs.export`.
"""

from repro.obs.events import (
    EVENT_KINDS,
    TELEMETRY_SCHEMA_VERSION,
    Event,
    canonical_line,
    event_to_line,
    iter_trace_lines,
    jsonify,
    parse_event_line,
    read_events,
    strip_volatile,
    validate_event_dict,
)
from repro.obs.hub import (
    MANIFEST_NAME,
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    build_manifest,
    get_telemetry,
    set_telemetry,
    use_telemetry,
    validate_manifest,
)
from repro.obs.export import (
    METRICS_NAME,
    METRICS_SCHEMA_VERSION,
    PROM_NAME,
    build_metrics,
    export_metrics,
    load_metrics,
    prometheus_exposition,
)
from repro.obs.follow import TraceFollower, follow_trace, sparkline
from repro.obs.profile import (
    PROFILE_SCHEMA_VERSION,
    build_profile,
    diff_profiles,
    engine_counts,
    profile_directory,
    render_diff,
    render_profile,
)
from repro.obs.registry import (
    MetricsRegistry,
    TimerStat,
    load_snapshot,
    merge_snapshots,
)
from repro.obs.trace_report import load_manifest, render_trace

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "EVENT_KINDS",
    "Event",
    "jsonify",
    "event_to_line",
    "parse_event_line",
    "validate_event_dict",
    "strip_volatile",
    "canonical_line",
    "read_events",
    "iter_trace_lines",
    "MetricsRegistry",
    "TimerStat",
    "merge_snapshots",
    "load_snapshot",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "MANIFEST_NAME",
    "build_manifest",
    "validate_manifest",
    "load_manifest",
    "render_trace",
    "METRICS_SCHEMA_VERSION",
    "METRICS_NAME",
    "PROM_NAME",
    "build_metrics",
    "prometheus_exposition",
    "export_metrics",
    "load_metrics",
    "PROFILE_SCHEMA_VERSION",
    "build_profile",
    "profile_directory",
    "engine_counts",
    "render_profile",
    "diff_profiles",
    "render_diff",
    "TraceFollower",
    "follow_trace",
    "sparkline",
]
