"""The forked client-side process of the live engine.

One worker owns a disjoint subset of the fleet's :class:`~repro.fl.
client.FLClient` objects (inherited by fork, so every per-client RNG
stream continues exactly where the parent left it — the bit-identity
anchor).  The main thread is a command loop on the server socket; each
broadcast spawns one thread per owned participant which

1. runs the *real* DANE local solve (the only place client RNG is
   consumed), then sleeps out the remainder of the channel model's
   compute budget ``τ_loc · time_scale``,
2. plays out the round's fault plan — scheduled mid-round dropout,
   per-attempt upload failures with exponential backoff — exactly the
   :mod:`repro.sim.faults` semantics the DES uses,
3. streams the serialized update back through a token bucket at the rate
   the channel model predicted (``payload / (τ_cm · time_scale)``),
   chunk by chunk, so uploads from different clients genuinely
   interleave on the wire.

A background thread additionally sends a small ``hb`` liveness beacon
every ``heartbeat_s`` wall seconds; the server's watchdog uses its
absence to tell a *wedged* worker (deadlocked, stopped) from a merely
slow one.  Two supervision commands round out the protocol: ``rng_state``
reports every owned client's ``bit_generator.state`` (how checkpoints
capture worker-side RNG streams) and ``set_rng`` restores them (how a
restarted worker resumes from the last checkpointed client state).

Workers never touch the aggregation pipeline: DP, compression,
adversaries, defenses and averaging all stay in the server process, in
ascending-client-id order, which is why a fault-free live run is
bit-identical to the loop engine.
"""

from __future__ import annotations

import os
import sys
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.datasets.synthetic import Dataset
from repro.fl.client import FLClient
from repro.live.protocol import FrameStream
from repro.live.shaper import TokenBucket, WaitOutcome, wait_until

__all__ = ["worker_main"]


@dataclass
class _RoundPlan:
    """One round's shaping + fault schedule, as shipped by the server."""

    round_index: int
    iterations: int
    time_scale: float
    tau_loc: Dict[int, float]           # per-client compute seconds (sim)
    tau_cm: Dict[int, float]            # per-client upload seconds (sim)
    drop_at: Dict[int, float]           # monotonic dropout instant (wall)
    upload_rng: Dict[int, np.random.Generator]
    upload_failure_prob: float
    max_retries: int
    retry_backoff_s: float
    target_eta: Optional[float]
    dropped: set = field(default_factory=set)


class _Worker:
    def __init__(
        self,
        stream: FrameStream,
        clients: Dict[int, FLClient],
        chunk_bytes: int,
        worker_index: int = 0,
        heartbeat_s: float = 0.5,
    ) -> None:
        self.stream = stream
        self.clients = clients
        self.chunk_bytes = chunk_bytes
        self.worker_index = worker_index
        self.plan: Optional[_RoundPlan] = None
        self.cancels: Dict[tuple, threading.Event] = {}
        self.threads: list = []
        # Each client gets a private model clone: loss/grad calls load
        # parameters into shared network buffers, so concurrent solves on
        # one model object would race.
        import copy

        for client in clients.values():
            client.model = copy.deepcopy(client.model)
        self.locks = {cid: threading.Lock() for cid in clients}
        self._hb_stop = threading.Event()
        if heartbeat_s > 0:
            threading.Thread(
                target=self._heartbeat_loop,
                args=(float(heartbeat_s),),
                name="live-heartbeat",
                daemon=True,
            ).start()

    def _heartbeat_loop(self, interval: float) -> None:
        """Liveness beacon: solves run in threads, so beacons keep
        flowing through long local solves — only a genuinely wedged
        process goes silent."""
        while not self._hb_stop.wait(interval):
            try:
                self.stream.send({"cmd": "hb", "worker": self.worker_index})
            except OSError:
                return

    # -- command handlers --------------------------------------------------------

    def handle_install(self, meta: Dict, arrays: Dict) -> None:
        for cid in meta["clients"]:
            cid = int(cid)
            self.clients[cid].set_data(
                Dataset(x=arrays[f"x{cid}"], y=arrays[f"y{cid}"])
            )
        self.stream.send({"cmd": "ok", "re": "install"})

    def handle_round(self, meta: Dict, arrays: Dict) -> None:
        ids = [int(c) for c in meta["clients"]]
        scale = float(meta["time_scale"])
        now = time.monotonic()
        drop_after = arrays["drop_after"]
        seeds = arrays["upload_seeds"]
        self.plan = _RoundPlan(
            round_index=int(meta["round"]),
            iterations=int(meta["iterations"]),
            time_scale=scale,
            tau_loc={c: float(t) for c, t in zip(ids, arrays["tau_loc"])},
            tau_cm={c: float(t) for c, t in zip(ids, arrays["tau_cm"])},
            # Dropout offsets are sim-seconds from round start; the round
            # starts now (the round frame immediately precedes the first
            # broadcast).
            drop_at={
                c: (now + float(d) * scale if np.isfinite(d) else float("inf"))
                for c, d in zip(ids, drop_after)
            },
            upload_rng={
                c: np.random.default_rng(int(s)) for c, s in zip(ids, seeds)
            },
            upload_failure_prob=float(meta["upload_failure_prob"]),
            max_retries=int(meta["max_retries"]),
            retry_backoff_s=float(meta["retry_backoff_s"]),
            target_eta=meta["target_eta"],
        )
        self.cancels.clear()
        self.threads = [t for t in self.threads if t.is_alive()]

    def handle_rng_state(self) -> None:
        """Report every owned client's RNG state (checkpoint capture).

        Each client's lock is taken so a cancelled straggler still inside
        a solve cannot advance the stream mid-read."""
        states = {}
        for cid in sorted(self.clients):
            with self.locks[cid]:
                states[str(cid)] = self.clients[cid].rng.bit_generator.state
        self.stream.send(
            {
                "cmd": "ok",
                "re": "rng_state",
                "worker": self.worker_index,
                "states": states,
            }
        )

    def handle_set_rng(self, meta: Dict) -> None:
        """Restore owned client RNG streams (worker restart path)."""
        for key, state in meta["states"].items():
            cid = int(key)
            if cid in self.clients:
                with self.locks[cid]:
                    self.clients[cid].rng.bit_generator.state = state

    def handle_iter(self, meta: Dict, arrays: Dict) -> None:
        plan = self.plan
        if plan is None or plan.round_index != int(meta["round"]):
            # A restarted worker has no state for the round in flight;
            # the server drops its clients from that round and the next
            # "round" frame re-synchronizes.
            return
        it = int(meta["iteration"])
        cancel = threading.Event()
        self.cancels[(plan.round_index, it)] = cancel
        w = arrays["w"]
        g = arrays["g"]
        for cid in meta["clients"]:
            cid = int(cid)
            if cid not in self.clients or cid in plan.dropped:
                continue
            thread = threading.Thread(
                target=self._client_task,
                args=(cid, it, w, g, plan, cancel),
                name=f"live-client-{cid}",
                daemon=True,
            )
            self.threads.append(thread)
            thread.start()

    def handle_cancel(self, meta: Dict) -> None:
        key = (int(meta["round"]), int(meta["iteration"]))
        event = self.cancels.get(key)
        if event is not None:
            event.set()

    # -- the per-client pipeline -------------------------------------------------

    def _drop(self, cid: int, it: int, plan: _RoundPlan, reason: str) -> None:
        plan.dropped.add(cid)
        self.stream.send(
            {"cmd": "drop", "client": cid, "iteration": it, "reason": reason}
        )

    def _client_task(
        self,
        cid: int,
        it: int,
        w: np.ndarray,
        g: np.ndarray,
        plan: _RoundPlan,
        cancel: threading.Event,
    ) -> None:
        try:
            # Serialize per client: a cancelled straggler may still hold
            # the lock mid-solve when the next broadcast lands.
            with self.locks[cid]:
                self._client_task_locked(cid, it, w, g, plan, cancel)
        except Exception as exc:  # surface worker-side bugs to the server
            try:
                self.stream.send(
                    {
                        "cmd": "error",
                        "client": cid,
                        "iteration": it,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
            except OSError:
                pass

    def _client_task_locked(
        self,
        cid: int,
        it: int,
        w: np.ndarray,
        g: np.ndarray,
        plan: _RoundPlan,
        cancel: threading.Event,
    ) -> None:
        if cancel.is_set() or cid in plan.dropped:
            return
        drop_at = plan.drop_at[cid]
        scale = plan.time_scale
        if time.monotonic() >= drop_at:
            self._drop(cid, it, plan, "dropout")
            return
        # --- compute phase: real solve, then sleep out the model budget ----
        t_solve = time.monotonic()
        d, eta_hat, _ = self.clients[cid].train_iteration(
            w, g, target_eta=plan.target_eta
        )
        solve_wall = time.monotonic() - t_solve
        compute_end = t_solve + plan.tau_loc[cid] * scale
        outcome = wait_until(compute_end, cancel=cancel, drop_at=drop_at)
        if outcome == WaitOutcome.CANCEL:
            return
        if outcome == WaitOutcome.DROP:
            self._drop(cid, it, plan, "dropout")
            return
        # --- upload phase: transient failures, retries, then shaped send ---
        from repro.nn.serialization import encode_payload

        payload = encode_payload(
            {"client": cid, "iteration": it},
            {"d": d, "eta": np.float64(eta_hat), "solve_wall": np.float64(solve_wall)},
        )
        upload_s = plan.tau_cm[cid] * scale
        rng = plan.upload_rng[cid]
        p_fail = plan.upload_failure_prob
        failures = 0
        while p_fail > 0.0 and rng.random() < p_fail:
            failures += 1
            # The failed attempt still occupies the channel for a full
            # transmission before the loss is discovered.
            outcome = wait_until(
                time.monotonic() + upload_s, cancel=cancel, drop_at=drop_at
            )
            if outcome == WaitOutcome.CANCEL:
                return
            if outcome == WaitOutcome.DROP:
                self._drop(cid, it, plan, "dropout")
                return
            if failures > plan.max_retries:
                self._drop(cid, it, plan, "upload_failed")
                return
            self.stream.send(
                {"cmd": "retry", "client": cid, "iteration": it, "attempt": failures}
            )
            backoff = plan.retry_backoff_s * (2.0 ** (failures - 1)) * scale
            outcome = wait_until(
                time.monotonic() + backoff, cancel=cancel, drop_at=drop_at
            )
            if outcome == WaitOutcome.CANCEL:
                return
            if outcome == WaitOutcome.DROP:
                self._drop(cid, it, plan, "dropout")
                return
        self._shaped_send(cid, it, payload, upload_s, cancel, drop_at, plan)

    def _shaped_send(
        self,
        cid: int,
        it: int,
        payload: bytes,
        upload_s: float,
        cancel: threading.Event,
        drop_at: float,
        plan: _RoundPlan,
    ) -> None:
        chunk = self.chunk_bytes
        bucket = (
            TokenBucket(rate=len(payload) / upload_s) if upload_s > 0 else None
        )
        offset = 0
        while offset < len(payload):
            part = payload[offset : offset + chunk]
            if bucket is not None:
                outcome = bucket.consume(len(part), cancel=cancel, drop_at=drop_at)
                if outcome == WaitOutcome.CANCEL:
                    return
                if outcome == WaitOutcome.DROP:
                    # Torn upload: the server discards the partial
                    # reassembly when the drop notice lands.
                    self._drop(cid, it, plan, "dropout")
                    return
            offset += len(part)
            self.stream.send(
                {
                    "cmd": "chunk",
                    "client": cid,
                    "iteration": it,
                    "last": offset >= len(payload),
                },
                {"part": np.frombuffer(part, dtype=np.uint8)},
            )

    # -- main loop ---------------------------------------------------------------

    def run(self) -> None:
        while True:
            frame = self.stream.recv()
            if frame is None:
                return
            meta, arrays = frame
            cmd = meta.get("cmd")
            if cmd == "stop":
                return
            if cmd == "install":
                self.handle_install(meta, arrays)
            elif cmd == "round":
                self.handle_round(meta, arrays)
            elif cmd == "iter":
                self.handle_iter(meta, arrays)
            elif cmd == "cancel":
                self.handle_cancel(meta)
            elif cmd == "rng_state":
                self.handle_rng_state()
            elif cmd == "set_rng":
                self.handle_set_rng(meta)
            else:
                raise ValueError(f"unknown worker command {cmd!r}")


def worker_main(
    sock,
    clients: Dict[int, FLClient],
    chunk_bytes: int = 16384,
    worker_index: int = 0,
    heartbeat_s: float = 0.5,
) -> None:
    """Entry point of a forked worker; never returns (``os._exit``)."""
    code = 0
    try:
        _Worker(
            FrameStream(sock),
            clients,
            chunk_bytes,
            worker_index=worker_index,
            heartbeat_s=heartbeat_s,
        ).run()
    except (BrokenPipeError, ConnectionResetError):
        pass  # server tore the socket down mid-send: clean termination
    except BaseException:
        traceback.print_exc(file=sys.stderr)
        sys.stderr.flush()
        code = 1
    finally:
        os._exit(code)
