"""Live multi-process execution engine (``TrainingConfig.engine = "live"``).

The fourth engine: clients are real OS processes (forked workers, reusing
the PR1 fork infrastructure) that exchange length-prefixed serialized
model updates with the server process over local sockets.  Round
timelines are *measured*, not computed — a token-bucket bandwidth shaper
plus injected delay/loss, parameterized from the same :mod:`repro.net`
channel models and :mod:`repro.sim.faults` profiles the DES uses, makes
the two engines share one physics while only this one feels genuine
concurrency, serialization, and backpressure.

Layout:

* :mod:`repro.live.protocol` — length-prefixed frame transport.
* :mod:`repro.live.shaper` — token-bucket pacing + interruptible waits.
* :mod:`repro.live.worker` — the forked client-side process loop.
* :mod:`repro.live.runtime` — server-side runtime, barrier policies,
  :class:`LiveRoundSpec` / :class:`LiveRoundOutcome`.
* :mod:`repro.live.calibrate` — the DES-vs-live divergence report.
"""

from repro.live.calibrate import CalibrationReport, CalibrationRow, run_calibration
from repro.live.runtime import (
    LiveError,
    LiveRound,
    LiveRoundOutcome,
    LiveRoundSpec,
    LiveRoundTimeout,
    LiveRuntime,
)

__all__ = [
    "CalibrationReport",
    "CalibrationRow",
    "LiveError",
    "LiveRound",
    "LiveRoundOutcome",
    "LiveRoundSpec",
    "LiveRoundTimeout",
    "LiveRuntime",
    "run_calibration",
]
