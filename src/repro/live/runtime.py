"""Server side of the live engine: forked workers, barriers, measurement.

:class:`LiveRuntime` forks ``workers`` processes once per experiment
(PR1 fork infrastructure: the children inherit the parent's
:class:`~repro.fl.client.FLClient` objects, so per-client RNG streams
stay continuous across epochs) and keeps one framed socket per worker.
:class:`LiveRound` then plays one federated round over those sockets:

* ``run_iteration`` broadcasts ``(w, ḡ)`` to every active participant,
  multiplexes the worker sockets while shaped uploads trickle back, and
  closes the barrier per the aggregation policy — ``sync`` waits for all
  survivors, ``deadline`` drops stragglers at ``deadline_s`` (scaled to
  wall time), ``async`` cancels in-flight uploads once ``quorum`` have
  landed.  Stale frames from cancelled iterations are discarded by
  iteration tag.
* every instant is *measured* wall clock, converted back to simulated
  seconds through ``time_scale``; the outcome mirrors
  :class:`repro.sim.entities.RoundOutcome` so the DES and the live
  engine are directly comparable (see :mod:`repro.live.calibrate`).

Fault realizations (dropout instants, upload-failure seeds) are drawn
server-side from a dedicated RNG stream using the *same*
:mod:`repro.sim.faults` machinery as the DES, then shipped to workers —
identical physics, independent draws.

Supervision (PR10): workers emit ``hb`` heartbeat frames from a
background thread; the pump treats a socket EOF *or* heartbeat silence
beyond ``worker_stale_s`` as a worker death.  A dead worker is reaped
and — within a bounded per-worker restart budget with exponential
backoff — re-forked from the parent's client objects, its RNG streams
reset to the last checkpointed state (``set_rng``) and its datasets
re-shipped from the install cache.  Clients the casualty had in the
round in flight are dropped with the normal ``_drop_client`` machinery,
so a fleet that shrinks below ``min_participants`` degrades to the
typed :class:`~repro.sim.faults.ParticipationFloorError` (CLI exit 1)
instead of hanging until the barrier timeout.
"""

from __future__ import annotations

import json
import os
import selectors
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.live.protocol import FrameStream, socket_pair, tcp_pair
from repro.nn.serialization import TruncatedPayloadError, decode_payload
from repro.sim.entities import AGGREGATION_POLICIES
from repro.sim.faults import (
    FaultProfile,
    ParticipationFloorError,
    SimError,
    sample_dropout_times,
)

if TYPE_CHECKING:  # import would cycle through repro.fl.__init__
    from repro.fl.client import FLClient

__all__ = [
    "LiveError",
    "LiveRoundTimeout",
    "LiveRoundSpec",
    "LiveRoundOutcome",
    "LiveRound",
    "LiveRuntime",
    "atomic_write_json",
]


class LiveError(SimError):
    """Live-runtime failure (worker died, protocol violation, ...)."""


class LiveRoundTimeout(LiveError):
    """A barrier did not close within the wall-clock safety timeout."""


def atomic_write_json(path: Path, obj) -> Path:
    """Crash-safe JSON write: temp file in the same directory, then an
    atomic rename — a crash mid-serialization or mid-write leaves the
    old file (if any) intact and no temp litter behind."""
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        tmp.write_text(
            json.dumps(obj, indent=2, sort_keys=True), encoding="utf-8"
        )
        tmp.replace(path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


@dataclass(frozen=True)
class LiveRoundSpec:
    """Everything the live runtime needs to play one federated round.

    The physics fields mirror :class:`repro.sim.entities.SimRoundSpec`
    exactly; ``time_scale`` maps simulated seconds to wall seconds
    (2.0 = the round runs at half speed, twice the shaping headroom).
    """

    client_ids: np.ndarray
    tau_loc: np.ndarray
    tau_cm: np.ndarray
    iterations: int
    aggregation: str = "sync"
    deadline_s: Optional[float] = None
    quorum: Optional[int] = None
    faults: FaultProfile = field(default_factory=FaultProfile)
    min_participants: int = 1
    time_scale: float = 1.0

    def __post_init__(self) -> None:
        ids = np.asarray(self.client_ids, dtype=int)
        loc = np.asarray(self.tau_loc, dtype=float)
        cm = np.asarray(self.tau_cm, dtype=float)
        object.__setattr__(self, "client_ids", ids)
        object.__setattr__(self, "tau_loc", loc)
        object.__setattr__(self, "tau_cm", cm)
        if ids.ndim != 1 or ids.size < 1:
            raise ValueError("need at least one participant")
        if loc.shape != ids.shape or cm.shape != ids.shape:
            raise ValueError("tau arrays must match client_ids shape")
        if np.any(~np.isfinite(loc)) or np.any(loc < 0):
            raise ValueError("tau_loc must be finite and nonnegative")
        if np.any(~np.isfinite(cm)) or np.any(cm < 0):
            raise ValueError("tau_cm must be finite and nonnegative")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.aggregation not in AGGREGATION_POLICIES:
            raise ValueError(f"unknown aggregation policy {self.aggregation!r}")
        if self.aggregation == "deadline":
            if self.deadline_s is None or self.deadline_s <= 0:
                raise ValueError("deadline aggregation needs deadline_s > 0")
        if self.aggregation == "async":
            if self.quorum is None or self.quorum < 1:
                raise ValueError("async aggregation needs quorum >= 1")
        if self.min_participants < 1:
            raise ValueError("min_participants must be >= 1")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")


@dataclass
class LiveRoundOutcome:
    """What one live round measured (sim-seconds, i.e. wall/time_scale)."""

    completion_time: float                  # measured d(E_t)
    iteration_durations: List[float]        # measured barrier widths
    contributors: List[np.ndarray]          # per-iteration arrived ids
    dropped: Dict[int, str]                 # client id -> drop reason
    num_retries: int
    deadline_hits: int
    arrival_offsets: Dict[int, List[float]]  # id -> measured per-iteration
                                             # broadcast→upload offsets
    solve_wall_s: Dict[int, float]           # id -> summed real solve time
    worker_deaths: int = 0                   # workers lost during this round
    worker_restarts: int = 0                 # supervised restarts performed

    @property
    def survivors(self) -> np.ndarray:
        if not self.contributors:  # pragma: no cover - defensive
            return np.zeros(0, dtype=int)
        return self.contributors[-1]


class LiveRound:
    """Barrier/measurement logic for one round on a started runtime."""

    def __init__(
        self,
        runtime: "LiveRuntime",
        spec: LiveRoundSpec,
        rng: Optional[np.random.Generator],
    ) -> None:
        if spec.faults.stochastic and rng is None:
            raise ValueError("a fault RNG is required for stochastic fault profiles")
        if len(spec.client_ids) < spec.min_participants:
            raise ParticipationFloorError(
                len(spec.client_ids), spec.min_participants, "initial selection"
            )
        self.runtime = runtime
        self.spec = spec
        self.round_index = runtime.rounds_started
        runtime.rounds_started += 1
        self.active: set = {int(c) for c in spec.client_ids}
        self.dropped: Dict[int, str] = {}
        self.num_retries = 0
        self.deadline_hits = 0
        self.durations: List[float] = []
        self.contributors: List[np.ndarray] = []
        self.arrival_offsets: Dict[int, List[float]] = {}
        self.solve_wall_s: Dict[int, float] = {}
        self.iteration = -1
        self._deaths_at_start = runtime.worker_deaths_total
        self._restarts_at_start = runtime.worker_restarts_total
        self._round_t0: Optional[float] = None
        self._iter_t0 = 0.0
        self._arrived: Dict[int, Tuple[np.ndarray, float]] = {}
        self._buffers: Dict[int, bytearray] = {}
        self._cancel_sent = False
        # Fault plan, drawn with the same machinery the DES uses (dropout
        # first, then upload seeds — a fixed drain order for the stream).
        faults = spec.faults
        horizon = float(
            spec.iterations * np.max(spec.tau_loc + spec.tau_cm)
        )
        drop_after = sample_dropout_times(
            len(spec.client_ids), faults.dropout_hazard, horizon, rng
        )
        if faults.upload_failure_prob > 0.0:
            seeds = rng.integers(0, 2**63, size=len(spec.client_ids))
        else:
            seeds = np.zeros(len(spec.client_ids), dtype=np.int64)
        self._drop_after = drop_after
        self._upload_seeds = seeds

    # -- worker-facing messages --------------------------------------------------

    def _send_round_setup(self, target_eta: Optional[float]) -> None:
        spec = self.spec
        meta = {
            "cmd": "round",
            "round": self.round_index,
            "iterations": spec.iterations,
            "time_scale": spec.time_scale,
            "clients": [int(c) for c in spec.client_ids],
            "upload_failure_prob": spec.faults.upload_failure_prob,
            "max_retries": spec.faults.max_retries,
            "retry_backoff_s": spec.faults.retry_backoff_s,
            "target_eta": target_eta,
        }
        arrays = {
            "tau_loc": spec.tau_loc,
            "tau_cm": spec.tau_cm,
            "drop_after": self._drop_after,
            "upload_seeds": self._upload_seeds,
        }
        self.runtime.broadcast(meta, arrays)

    def run_iteration(
        self,
        iteration: int,
        w: np.ndarray,
        global_grad: np.ndarray,
        target_eta: Optional[float] = None,
    ) -> List[Tuple[int, np.ndarray, float]]:
        """Broadcast, wait for the barrier, return arrivals sorted by id.

        Each arrival is ``(client_id, d, eta_hat)`` — the worker's real
        solve output, bit-identical to what the loop engine would have
        computed in the parent.
        """
        if iteration != self.iteration + 1:
            raise LiveError(
                f"iterations must run in order (got {iteration}, "
                f"expected {self.iteration + 1})"
            )
        self.iteration = iteration
        if iteration == 0:
            # Deaths between rounds were already healed (restart + data
            # re-ship), so stale casualty notices don't apply here; only
            # clients owned by a *permanently* dead worker (restart
            # budget exhausted) can never contribute again.
            self.runtime.take_casualties()
            for cid in sorted(self.active):
                if self.runtime.is_dead(self.runtime.owner_of(cid)):
                    self._drop_client(cid, "worker_dead")
            self._send_round_setup(target_eta)
        self._arrived = {}
        self._buffers = {}
        self._cancel_sent = False
        active_list = sorted(self.active)
        meta = {
            "cmd": "iter",
            "round": self.round_index,
            "iteration": iteration,
            "clients": active_list,
        }
        arrays = {"w": np.asarray(w, dtype=float), "g": np.asarray(global_grad, dtype=float)}
        self._iter_t0 = time.monotonic()
        if self._round_t0 is None:
            self._round_t0 = self._iter_t0
        self.runtime.broadcast(meta, arrays)
        self._absorb_casualties()
        self._wait_barrier()
        close_wall = time.monotonic()
        self.durations.append((close_wall - self._iter_t0) / self.spec.time_scale)
        ids = np.asarray(sorted(self._arrived), dtype=int)
        self.contributors.append(ids)
        self._completion_wall = close_wall
        return [
            (int(cid), self._arrived[cid][0], float(self._arrived[cid][1]))
            for cid in ids
        ]

    # -- barrier -----------------------------------------------------------------

    def _barrier_met(self) -> bool:
        spec = self.spec
        if spec.aggregation == "async" and len(self._arrived) >= int(spec.quorum):
            return True
        return all(cid in self._arrived for cid in self.active)

    def _wait_barrier(self) -> None:
        spec = self.spec
        runtime = self.runtime
        hard_deadline = self._iter_t0 + runtime.round_timeout_s
        soft_deadline = None
        if spec.aggregation == "deadline":
            soft_deadline = self._iter_t0 + float(spec.deadline_s) * spec.time_scale
        while not self._barrier_met():
            now = time.monotonic()
            if now >= hard_deadline:
                self._send_cancel()
                raise LiveRoundTimeout(
                    f"barrier for iteration {self.iteration} did not close "
                    f"within {runtime.round_timeout_s:.0f}s "
                    f"(arrived {sorted(self._arrived)}, active {sorted(self.active)})"
                )
            timeout = hard_deadline - now
            if soft_deadline is not None:
                if now >= soft_deadline:
                    self._close_by_deadline()
                    continue
                timeout = min(timeout, soft_deadline - now)
            runtime.pump(timeout, self._dispatch)
            self._absorb_casualties()
        if spec.aggregation == "async" and not self._cancel_sent:
            # Quorum reached with uploads still in flight: cancel them
            # (their stale updates are discarded); the clients stay in
            # the round.
            if any(cid not in self._arrived for cid in self.active):
                self._send_cancel()

    def _close_by_deadline(self) -> None:
        stragglers = [c for c in self.active if c not in self._arrived]
        if not stragglers:  # pragma: no cover - barrier_met would have fired
            return
        self.deadline_hits += 1
        self._send_cancel()
        for cid in stragglers:
            self._drop_client(cid, "deadline")

    def _send_cancel(self) -> None:
        if self._cancel_sent:
            return
        self._cancel_sent = True
        meta = {"cmd": "cancel", "round": self.round_index, "iteration": self.iteration}
        self.runtime.broadcast(meta)

    def _absorb_casualties(self) -> None:
        """Drop the in-flight clients of any worker lost since the last
        check (EOF, send failure, or heartbeat-stale kill — restarted or
        not, the replacement has no state for this round).  Dropping
        below ``min_participants`` degrades to the typed
        :class:`ParticipationFloorError` instead of hanging."""
        for widx in self.runtime.take_casualties():
            for cid in [
                c for c in sorted(self.active)
                if self.runtime.owner_of(c) == widx
            ]:
                self._drop_client(cid, "worker_died")

    def _drop_client(self, cid: int, reason: str) -> None:
        if cid not in self.active:
            return
        self.active.discard(cid)
        self._buffers.pop(cid, None)
        self.dropped[cid] = reason
        survivors = len(self.active)
        if survivors < self.spec.min_participants:
            self._send_cancel()
            raise ParticipationFloorError(
                survivors, self.spec.min_participants, reason
            )

    # -- frame dispatch ----------------------------------------------------------

    def _dispatch(self, meta: Dict, arrays: Dict) -> None:
        cmd = meta.get("cmd")
        if cmd == "chunk":
            self._on_chunk(meta, arrays)
        elif cmd == "drop":
            self._drop_client(int(meta["client"]), str(meta["reason"]))
        elif cmd == "retry":
            self.num_retries += 1
        elif cmd == "error":
            raise LiveError(
                f"worker error for client {meta.get('client')}: {meta.get('error')}"
            )
        elif cmd == "ok":
            # Stale ack (install handshakes are pumped separately).
            pass
        else:
            raise LiveError(f"unexpected frame from worker: {cmd!r}")

    def _on_chunk(self, meta: Dict, arrays: Dict) -> None:
        cid = int(meta["client"])
        if int(meta["iteration"]) != self.iteration or self._cancel_sent:
            return  # stale or post-barrier frame: discard
        if cid not in self.active or cid in self._arrived:
            return
        buf = self._buffers.setdefault(cid, bytearray())
        buf.extend(arrays["part"].tobytes())
        if not meta["last"]:
            return
        payload_meta, payload = decode_payload(bytes(self._buffers.pop(cid)))
        offset_wall = time.monotonic() - self._iter_t0
        d = payload["d"]
        eta = float(payload["eta"])
        self._arrived[cid] = (d, eta)
        self.arrival_offsets.setdefault(cid, []).append(
            offset_wall / self.spec.time_scale
        )
        self.solve_wall_s[cid] = self.solve_wall_s.get(cid, 0.0) + float(
            payload["solve_wall"]
        )

    # -- outcome -----------------------------------------------------------------

    def finish(self) -> LiveRoundOutcome:
        if self.iteration + 1 != self.spec.iterations:
            raise LiveError(
                f"round finished after {self.iteration + 1} of "
                f"{self.spec.iterations} iterations"
            )
        completion = (self._completion_wall - self._round_t0) / self.spec.time_scale
        outcome = LiveRoundOutcome(
            completion_time=float(completion),
            iteration_durations=list(self.durations),
            contributors=list(self.contributors),
            dropped=dict(self.dropped),
            num_retries=self.num_retries,
            deadline_hits=self.deadline_hits,
            arrival_offsets={k: list(v) for k, v in self.arrival_offsets.items()},
            solve_wall_s=dict(self.solve_wall_s),
            worker_deaths=self.runtime.worker_deaths_total - self._deaths_at_start,
            worker_restarts=(
                self.runtime.worker_restarts_total - self._restarts_at_start
            ),
        )
        self.runtime.record_round(self.spec, outcome)
        return outcome


class LiveRuntime:
    """Worker fleet lifecycle + per-client measured statistics."""

    def __init__(
        self,
        clients: Sequence[FLClient],
        num_workers: int = 2,
        transport: str = "unix",
        chunk_bytes: int = 16384,
        round_timeout_s: float = 60.0,
        stats_dir: Optional[str | Path] = None,
        worker_heartbeat_s: float = 0.5,
        worker_stale_s: float = 0.0,
        max_worker_restarts: int = 2,
        restart_backoff_s: float = 0.1,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if transport not in ("unix", "tcp"):
            raise ValueError(f"unknown transport {transport!r}")
        if chunk_bytes < 1024:
            raise ValueError("chunk_bytes must be >= 1024")
        if round_timeout_s <= 0:
            raise ValueError("round_timeout_s must be positive")
        if worker_heartbeat_s < 0 or worker_stale_s < 0:
            raise ValueError("heartbeat/staleness thresholds must be >= 0")
        if max_worker_restarts < 0 or restart_backoff_s < 0:
            raise ValueError("restart budget/backoff must be >= 0")
        self.clients = list(clients)
        if not self.clients:
            raise ValueError("need at least one client")
        self.num_workers = min(int(num_workers), len(self.clients))
        self.transport = transport
        self.chunk_bytes = chunk_bytes
        self.round_timeout_s = round_timeout_s
        self.stats_dir = Path(stats_dir) if stats_dir is not None else None
        self.worker_heartbeat_s = float(worker_heartbeat_s)
        # The watchdog must fire before the hard barrier timeout does,
        # or a wedged worker hangs the round; the auto threshold leaves
        # half the barrier budget for the restart itself.
        self.worker_stale_s = (
            float(worker_stale_s)
            if worker_stale_s > 0
            else max(10.0 * self.worker_heartbeat_s, round_timeout_s / 2.0)
        )
        self.max_worker_restarts = int(max_worker_restarts)
        self.restart_backoff_s = float(restart_backoff_s)
        #: ``streams[idx] is None`` while worker ``idx`` is down (being
        #: restarted, or permanently dead once its budget is exhausted).
        self.streams: List[Optional[FrameStream]] = []
        self._pids: List[Optional[int]] = []
        self._selector: Optional[selectors.BaseSelector] = None
        self.rounds_started = 0
        self._client_stats: Dict[int, Dict] = {}
        self._started = False
        self._closed = False
        # -- supervision state ----------------------------------------------------
        self._last_beat: Dict[int, float] = {}
        self._restarts: List[int] = [0] * self.num_workers
        self._dead: set = set()          # restart budget exhausted
        self._casualties: List[int] = [] # deaths not yet seen by the round
        self._installed: Dict[int, "Dataset"] = {}   # last-shipped datasets
        self._client_rng_cache: Dict[int, dict] = {} # last checkpointed states
        self.worker_deaths_total = 0
        self.worker_restarts_total = 0

    # -- lifecycle ---------------------------------------------------------------

    def owner_of(self, cid: int) -> int:
        """Worker index owning client ``cid`` (fixed modulo partition)."""
        return cid % self.num_workers

    def ensure_started(self) -> None:
        """Fork the workers (idempotent).  Must happen before any client
        RNG stream is consumed in the parent, i.e. before the first
        round — the fork snapshot is what keeps worker-side streams
        continuous with the loop engine's."""
        if self._started:
            return
        if self._closed:
            raise LiveError("runtime already closed")
        from repro.live.worker import worker_main

        make_pair = socket_pair if self.transport == "unix" else tcp_pair
        pairs = [make_pair() for _ in range(self.num_workers)]
        for idx in range(self.num_workers):
            owned = {
                c.client_id: c
                for c in self.clients
                if self.owner_of(c.client_id) == idx
            }
            pid = os.fork()
            if pid == 0:
                # Child: keep only this worker's end of this pair.
                for j, (parent_end, child_end) in enumerate(pairs):
                    parent_end.close()
                    if j != idx:
                        child_end.close()
                worker_main(
                    pairs[idx][1],
                    owned,
                    chunk_bytes=self.chunk_bytes,
                    worker_index=idx,
                    heartbeat_s=self.worker_heartbeat_s,
                )
                raise AssertionError("worker_main returned")  # pragma: no cover
            self._pids.append(pid)
        self._selector = selectors.DefaultSelector()
        now = time.monotonic()
        for idx, (parent_end, child_end) in enumerate(pairs):
            child_end.close()
            stream = FrameStream(parent_end)
            self.streams.append(stream)
            self._selector.register(
                stream.sock, selectors.EVENT_READ, (idx, stream)
            )
            self._last_beat[idx] = now
        self._started = True

    def close(self) -> None:
        """Stop and reap the workers; flush per-client stats files."""
        if self._closed:
            return
        self._closed = True
        for stream in self.streams:
            if stream is None:
                continue
            try:
                stream.send({"cmd": "stop"})
            except OSError:
                pass
        for stream in self.streams:
            if stream is not None:
                stream.close()
        if self._selector is not None:
            self._selector.close()
        deadline = time.monotonic() + 5.0
        for pid in self._pids:
            if pid is None:
                continue
            while True:
                try:
                    done, _ = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:
                    break
                if done:
                    break
                if time.monotonic() > deadline:
                    os.kill(pid, signal.SIGKILL)
                    os.waitpid(pid, 0)
                    break
                time.sleep(0.01)
        if self.stats_dir is not None:
            self.write_client_stats(self.stats_dir)

    def __enter__(self) -> "LiveRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- socket pump + watchdog --------------------------------------------------

    def pump(self, timeout: float, handler) -> None:
        """Read every available frame (≤ one per worker per call) and
        feed it to ``handler(meta, arrays)``; waits at most ``timeout``.

        ``hb`` heartbeat frames are swallowed here (any frame counts as
        a liveness proof).  A socket EOF or a torn frame means the peer
        died: the worker is reaped and — restart budget permitting —
        respawned, and the death is queued for :meth:`take_casualties`
        so the round in flight can drop its clients.  Workers whose
        heartbeat has gone stale (wedged, not dead) are killed and take
        the same path.
        """
        events = self._selector.select(timeout=max(timeout, 0.0))
        now = time.monotonic()
        for key, _ in events:
            idx, stream = key.data
            if self.streams[idx] is not stream:
                continue  # stale registration: worker already replaced
            try:
                frame = stream.recv()
            except TruncatedPayloadError:
                frame = None  # died mid-frame
            if frame is None:
                self._handle_worker_death(idx)
                continue
            self._last_beat[idx] = now
            meta, arrays = frame
            if meta.get("cmd") == "hb":
                continue
            handler(meta, arrays)
        self._check_stale_workers(now)

    def _check_stale_workers(self, now: float) -> None:
        if self.worker_heartbeat_s <= 0:
            return  # heartbeats disabled: EOF detection only
        for idx, stream in enumerate(self.streams):
            if stream is None:
                continue
            if now - self._last_beat.get(idx, now) > self.worker_stale_s:
                pid = self._pids[idx]
                if pid is not None:
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except ProcessLookupError:
                        pass
                self._handle_worker_death(idx)

    def _handle_worker_death(self, idx: int) -> None:
        """Reap worker ``idx`` and restart it within the retry budget."""
        stream = self.streams[idx]
        if stream is None:
            return
        self.worker_deaths_total += 1
        try:
            self._selector.unregister(stream.sock)
        except (KeyError, ValueError):
            pass
        stream.close()
        self.streams[idx] = None
        pid, self._pids[idx] = self._pids[idx], None
        if pid is not None:
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:
                pass
        self._casualties.append(idx)
        attempt = self._restarts[idx]
        if attempt >= self.max_worker_restarts:
            self._dead.add(idx)
            return
        self._restarts[idx] = attempt + 1
        self.worker_restarts_total += 1
        if self.restart_backoff_s > 0:
            time.sleep(self.restart_backoff_s * (2.0 ** attempt))
        self._respawn_worker(idx)

    def _respawn_worker(self, idx: int) -> None:
        """Re-fork worker ``idx``: fresh socket, last checkpointed client
        RNG states (when a checkpoint has captured them), datasets
        re-shipped from the install cache."""
        make_pair = socket_pair if self.transport == "unix" else tcp_pair
        parent_end, child_end = make_pair()
        owned = {
            c.client_id: c
            for c in self.clients
            if self.owner_of(c.client_id) == idx
        }
        from repro.live.worker import worker_main

        pid = os.fork()
        if pid == 0:
            parent_end.close()
            # Drop inherited parent-side sockets of the other workers.
            for other in self.streams:
                if other is not None:
                    try:
                        other.sock.close()
                    except OSError:
                        pass
            worker_main(
                child_end,
                owned,
                chunk_bytes=self.chunk_bytes,
                worker_index=idx,
                heartbeat_s=self.worker_heartbeat_s,
            )
            raise AssertionError("worker_main returned")  # pragma: no cover
        child_end.close()
        stream = FrameStream(parent_end)
        self.streams[idx] = stream
        self._pids[idx] = pid
        self._selector.register(stream.sock, selectors.EVENT_READ, (idx, stream))
        self._last_beat[idx] = time.monotonic()
        states = {
            str(cid): state
            for cid, state in self._client_rng_cache.items()
            if self.owner_of(cid) == idx
        }
        if states:
            stream.send({"cmd": "set_rng", "states": states})
        cids = sorted(c for c in self._installed if self.owner_of(c) == idx)
        if cids:
            arrays = {}
            for cid in cids:
                data = self._installed[cid]
                arrays[f"x{cid}"] = data.x
                arrays[f"y{cid}"] = data.y
            stream.send({"cmd": "install", "clients": cids}, arrays)

    def send_to_worker(self, idx: int, meta, arrays=None) -> bool:
        """Send one frame to worker ``idx``; a send failure (EPIPE after
        a kill the pump has not seen yet) takes the same death path as a
        pumped EOF.  Returns whether the frame was delivered."""
        stream = self.streams[idx]
        if stream is None:
            return False
        try:
            stream.send(meta, arrays)
            return True
        except OSError:
            self._handle_worker_death(idx)
            return False

    def broadcast(self, meta, arrays=None) -> None:
        """Send one frame to every live worker, tolerating deaths."""
        for idx in range(self.num_workers):
            if self.streams[idx] is not None:
                self.send_to_worker(idx, meta, arrays)

    def take_casualties(self) -> List[int]:
        """Worker indices lost since the last call (restarted or not)."""
        out, self._casualties = self._casualties, []
        return out

    def is_dead(self, idx: int) -> bool:
        """True once worker ``idx`` has exhausted its restart budget."""
        return idx in self._dead

    def live_streams(self) -> List[FrameStream]:
        return [s for s in self.streams if s is not None]

    # -- data distribution -------------------------------------------------------

    def install_data(self, datasets: Dict[int, "Dataset"]) -> None:
        """Ship this epoch's local datasets to the owning workers.

        The shipment is cached first so a worker restarted mid-epoch can
        be re-provisioned with exactly what its predecessor held; workers
        whose restart budget is exhausted are skipped (their clients get
        dropped from the round by the supervision path)."""
        self.ensure_started()
        self._installed.update(datasets)
        per_worker: Dict[int, List[int]] = {}
        for cid in datasets:
            per_worker.setdefault(self.owner_of(cid), []).append(cid)
        expect = 0
        for widx, cids in per_worker.items():
            if self.streams[widx] is None:
                continue
            arrays = {}
            for cid in cids:
                data = datasets[cid]
                arrays[f"x{cid}"] = data.x
                arrays[f"y{cid}"] = data.y
            self.send_to_worker(
                widx, {"cmd": "install", "clients": sorted(cids)}, arrays
            )
            # A send failure restarted the worker (re-shipping this very
            # cache) or declared it permanently dead; only live workers
            # owe an ack.
            if self.streams[widx] is not None:
                expect += 1
        acks = [0]

        def on_frame(meta, arrays):
            if meta.get("cmd") == "ok" and meta.get("re") == "install":
                acks[0] += 1
            # Anything else here is a stale frame from a cancelled
            # iteration; discard.

        deadline = time.monotonic() + self.round_timeout_s
        while acks[0] < expect:
            if time.monotonic() > deadline:
                raise LiveRoundTimeout("workers did not acknowledge data install")
            self.pump(0.1, on_frame)

    # -- checkpoint support ------------------------------------------------------

    def client_rng_states(self) -> Dict[str, dict]:
        """Collect every worker-owned client RNG state for a checkpoint.

        Per-client streams are consumed *inside* the forked workers, so
        the parent factory's own capture is stale for them; this pulls
        the live ``bit_generator.state`` dicts back over the sockets and
        returns them keyed by factory stream name (``fl.client.<id>``).
        The result is also cached so a later worker restart can resume
        its clients from the last checkpointed state.  Clients of a
        permanently dead worker report their last cached state (or, if
        never checkpointed, fall back to the parent factory's capture by
        being absent here).
        """
        if not self._started or self._closed:
            return {}
        states: Dict[int, dict] = {}
        replied: set = set()
        asked: set = set()

        def on_frame(meta, arrays) -> None:
            if meta.get("cmd") == "ok" and meta.get("re") == "rng_state":
                replied.add(int(meta["worker"]))
                for key, state in meta["states"].items():
                    states[int(key)] = state
            # Anything else is a stale frame from a finished round.

        deadline = time.monotonic() + self.round_timeout_s
        while True:
            pending = [
                idx
                for idx, stream in enumerate(self.streams)
                if stream is not None and idx not in replied
            ]
            for idx in pending:
                if idx not in asked:
                    asked.add(idx)
                    self.send_to_worker(idx, {"cmd": "rng_state"})
            if not pending:
                break
            if time.monotonic() > deadline:
                raise LiveRoundTimeout(
                    "workers did not report their RNG state for the checkpoint"
                )
            self.pump(0.1, on_frame)
            # A worker that died mid-collection came back with the
            # cached states from the previous checkpoint; re-ask the
            # replacement so those are what this checkpoint records.
            for idx in self.take_casualties():
                asked.discard(idx)
        self._client_rng_cache.update(states)
        return {
            f"fl.client.{cid}": state
            for cid, state in self._client_rng_cache.items()
        }

    # -- rounds ------------------------------------------------------------------

    def begin_round(
        self, spec: LiveRoundSpec, rng: Optional[np.random.Generator] = None
    ) -> LiveRound:
        self.ensure_started()
        return LiveRound(self, spec, rng)

    # -- measured per-client statistics ------------------------------------------

    def record_round(self, spec: LiveRoundSpec, outcome: LiveRoundOutcome) -> None:
        for pos, cid in enumerate(spec.client_ids):
            cid = int(cid)
            stats = self._client_stats.setdefault(
                cid,
                {
                    "client": cid,
                    "rounds": 0,
                    "contributions": 0,
                    "drops": {},
                    "solve_wall_s": 0.0,
                    "arrival_offset_s_sum": 0.0,
                    "arrivals": 0,
                    "predicted_tau_s_sum": 0.0,
                },
            )
            stats["rounds"] += 1
            stats["contributions"] += int(
                sum(1 for ids in outcome.contributors if cid in ids)
            )
            if cid in outcome.dropped:
                reason = outcome.dropped[cid]
                stats["drops"][reason] = stats["drops"].get(reason, 0) + 1
            stats["solve_wall_s"] += float(outcome.solve_wall_s.get(cid, 0.0))
            offsets = outcome.arrival_offsets.get(cid, [])
            stats["arrival_offset_s_sum"] += float(sum(offsets))
            stats["arrivals"] += len(offsets)
            stats["predicted_tau_s_sum"] += float(
                spec.tau_loc[pos] + spec.tau_cm[pos]
            ) * len(offsets)

    def write_client_stats(self, directory: str | Path) -> List[Path]:
        """Atomically persist one ``live_client_<id>.json`` per client
        that participated in any round (temp file + rename)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for cid in sorted(self._client_stats):
            paths.append(
                atomic_write_json(
                    directory / f"live_client_{cid}.json",
                    self._client_stats[cid],
                )
            )
        return paths
