"""Length-prefixed frame transport for the live engine.

Every message on a live-engine socket is one *frame*::

    u32 little-endian payload length | payload

where the payload is a self-describing :func:`repro.nn.serialization.
encode_payload` buffer (JSON meta + named numpy arrays + crc32).  A
stream that ends mid-frame raises the same typed
:class:`~repro.nn.serialization.TruncatedPayloadError` a torn on-disk
payload does, so transport and persistence share one failure vocabulary.

:class:`FrameStream` wraps a connected socket with a write lock (worker
threads interleave chunk frames on one socket) and a read buffer (the
server multiplexes many sockets and must only block once a frame has
started arriving).
"""

from __future__ import annotations

import socket
import threading
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.nn.serialization import (
    PayloadError,
    TruncatedPayloadError,
    decode_payload,
    encode_payload,
)

__all__ = ["MAX_FRAME_BYTES", "Frame", "FrameStream", "recv_exact"]

#: Upper bound on a single frame, as a corruption tripwire: a garbled
#: length prefix must fail loudly, not allocate gigabytes.
MAX_FRAME_BYTES = 1 << 30

Frame = Tuple[Dict, Dict[str, np.ndarray]]


def recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes; EOF mid-read is a torn frame."""
    parts = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise TruncatedPayloadError(
                f"peer closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        parts.append(chunk)
        remaining -= len(chunk)
    return b"".join(parts)


class FrameStream:
    """One framed, thread-safe-for-writers message stream over a socket."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._wlock = threading.Lock()

    def fileno(self) -> int:
        return self.sock.fileno()

    def send(
        self, meta: Mapping, arrays: Optional[Mapping[str, np.ndarray]] = None
    ) -> None:
        """Serialize and send one frame (atomic w.r.t. other senders)."""
        payload = encode_payload(meta, arrays or {})
        frame = len(payload).to_bytes(4, "little") + payload
        with self._wlock:
            self.sock.sendall(frame)

    def recv(self) -> Optional[Frame]:
        """Block for one frame; ``None`` on a clean EOF at a frame
        boundary, :class:`TruncatedPayloadError` on a torn stream."""
        try:
            head = self.sock.recv(4)
        except (ConnectionResetError, BrokenPipeError):
            return None
        if not head:
            return None
        if len(head) < 4:
            head += recv_exact(self.sock, 4 - len(head))
        length = int.from_bytes(head, "little")
        if not (0 < length <= MAX_FRAME_BYTES):
            raise PayloadError(f"implausible frame length {length}")
        return decode_payload(recv_exact(self.sock, length))

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


def socket_pair() -> Tuple[socket.socket, socket.socket]:
    """A connected AF_UNIX pair (created pre-fork, so no bind races)."""
    return socket.socketpair()


def tcp_pair() -> Tuple[socket.socket, socket.socket]:
    """A connected loopback TCP pair (exercises the kernel TCP stack —
    Nagle disabled so small control frames are not delayed)."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        client = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        client.connect(listener.getsockname())
        server, _ = listener.accept()
    finally:
        listener.close()
    for s in (client, server):
        s.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return server, client
