"""DES-vs-live calibration: how well does the simulator predict reality?

:func:`run_calibration` runs the *same* experiment scenario through the
event-driven simulator (``engine="des"``) and the live multi-process
runtime (``engine="live"``), once per fault profile, and tabulates the
divergence: predicted vs measured mean round latency, per-iteration
barrier fill times, and total client drops.  A fault-free row also runs
the reference loop engine and checks the live run's final model is
**bit-identical** — the live engine's correctness gate.

A measured/predicted ratio above 1 is honest, not a bug: the live run
pays real serialization, scheduling and socket overhead the closed-form
model does not know about.  Raising ``live.time_scale`` makes shaped
sleeps dominate that overhead and drives the ratio toward 1.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import ExperimentConfig
from repro.live.runtime import atomic_write_json

__all__ = [
    "CalibrationRow",
    "CalibrationReport",
    "run_calibration",
    "DEFAULT_PROFILES",
]

#: The divergence table's default coverage: clean channel, lossy uplink,
#: and the combined stress preset.
DEFAULT_PROFILES: Tuple[str, ...] = ("none", "flaky-uplink", "stress")


@dataclass(frozen=True)
class CalibrationRow:
    """One (fault profile, aggregation) cell of the divergence table."""

    profile: str
    aggregation: str
    epochs_des: int
    epochs_live: int
    des_latency: float          # mean simulated epoch latency (s)
    live_latency: float         # mean measured epoch latency (sim-s)
    des_fill: float             # mean simulated per-iteration barrier fill (s)
    live_fill: float            # mean measured per-iteration barrier fill (s)
    des_drops: int              # total mid-round client drops, simulated
    live_drops: int             # total mid-round client drops, measured
    des_aborted: Optional[str] = None   # ParticipationFloorError message
    live_aborted: Optional[str] = None  # (None = the run completed)

    @property
    def ratio(self) -> float:
        """Measured / predicted mean round latency."""
        if self.des_latency <= 0:
            return float("nan")
        return self.live_latency / self.des_latency


@dataclass
class CalibrationReport:
    """The full divergence table plus the fault-free identity verdict."""

    rows: List[CalibrationRow]
    bit_identical: Optional[bool]   # fault-free live == loop final model
                                    # (None when no "none" row was run)
    time_scale: float
    policy: str
    epochs: int

    def render(self) -> str:
        """ASCII divergence table (CLI output)."""
        header = (
            f"{'profile':<14} {'agg':<9} {'des_lat':>9} {'live_lat':>9} "
            f"{'ratio':>6} {'des_fill':>9} {'live_fill':>9} "
            f"{'des_drops':>9} {'live_drops':>10}"
        )
        lines = [header, "-" * len(header)]
        for r in self.rows:
            lines.append(
                f"{r.profile:<14} {r.aggregation:<9} {r.des_latency:>9.3f} "
                f"{r.live_latency:>9.3f} {r.ratio:>6.2f} {r.des_fill:>9.3f} "
                f"{r.live_fill:>9.3f} {r.des_drops:>9d} {r.live_drops:>10d}"
            )
        verdict = (
            "not checked"
            if self.bit_identical is None
            else ("PASS" if self.bit_identical else "FAIL")
        )
        for r in self.rows:
            for engine, msg in (("des", r.des_aborted), ("live", r.live_aborted)):
                if msg:
                    lines.append(
                        f"note: {r.profile}/{r.aggregation} {engine} run hit "
                        f"the participation floor ({msg}); partial stats"
                    )
        lines.append("")
        lines.append(
            f"fault-free live-vs-loop bit-identity: {verdict} | "
            f"time_scale={self.time_scale:g} policy={self.policy} "
            f"epochs={self.epochs}"
        )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "schema": 1,
            "policy": self.policy,
            "epochs": self.epochs,
            "time_scale": self.time_scale,
            "bit_identical": self.bit_identical,
            "rows": [
                {**dataclasses.asdict(r), "ratio": r.ratio} for r in self.rows
            ],
        }

    def save(self, path: str | Path) -> Path:
        """Atomically persist the report as JSON."""
        return atomic_write_json(Path(path), self.to_json())


def _trace_stats(result) -> Tuple[int, float, float, int]:
    records = result.trace.records if result is not None else []
    if not records:
        return 0, float("nan"), float("nan"), 0
    lat = [r.epoch_latency for r in records]
    fill = [r.epoch_latency / max(r.iterations, 1) for r in records]
    drops = int(sum(r.num_failed for r in records))
    return len(records), float(np.mean(lat)), float(np.mean(fill)), drops


def _run_engine(
    config: ExperimentConfig, policy_name: str, engine: str
) -> Tuple[Optional[object], Optional[str]]:
    """Run one engine; a participation-floor abort yields a partial cell
    (``(None, reason)``) instead of killing the whole report."""
    # Local import: repro.experiments.runner imports the live package
    # lazily, but importing it at module scope here would cycle.
    from repro.experiments.runner import run_experiment
    from repro.experiments.scenarios import make_policy
    from repro.rng import RngFactory
    from repro.sim.faults import ParticipationFloorError

    cfg = config.replace(
        training=dataclasses.replace(config.training, engine=engine)
    )
    policy = make_policy(
        policy_name, cfg, RngFactory(cfg.seed).get("cli.policy")
    )
    try:
        return run_experiment(policy, cfg), None
    except ParticipationFloorError as exc:
        return None, str(exc)


def run_calibration(
    config: ExperimentConfig,
    policy: str = "FedL",
    profiles: Sequence[str] = DEFAULT_PROFILES,
    include_async: bool = True,
) -> CalibrationReport:
    """Build the DES-vs-live divergence table for ``config``.

    Every profile in ``profiles`` yields one row under the config's own
    aggregation policy; ``include_async`` appends a fault-free
    async-quorum row (quorum = ``min_participants``) so the table also
    covers measured quorum fill times.  When ``profiles`` contains
    ``"none"``, that cell additionally runs the loop engine and records
    whether the live run's final model is bit-identical.
    """
    rows: List[CalibrationRow] = []
    bit_identical: Optional[bool] = None
    cells = [(p, config.sim) for p in profiles]
    if include_async:
        cells.append(
            (
                "none",
                dataclasses.replace(
                    config.sim,
                    aggregation="async",
                    quorum=config.min_participants,
                ),
            )
        )
    for profile, sim_cfg in cells:
        cfg = config.replace(
            sim=dataclasses.replace(sim_cfg, faults=profile)
        )
        des, des_aborted = _run_engine(cfg, policy, "des")
        live, live_aborted = _run_engine(cfg, policy, "live")
        n_des, lat_des, fill_des, drops_des = _trace_stats(des)
        n_live, lat_live, fill_live, drops_live = _trace_stats(live)
        rows.append(
            CalibrationRow(
                profile=profile,
                aggregation=cfg.sim.aggregation,
                epochs_des=n_des,
                epochs_live=n_live,
                des_latency=lat_des,
                live_latency=lat_live,
                des_fill=fill_des,
                live_fill=fill_live,
                des_drops=drops_des,
                live_drops=drops_live,
                des_aborted=des_aborted,
                live_aborted=live_aborted,
            )
        )
        if (
            profile == "none"
            and cfg.sim.aggregation == "sync"
            and live is not None
        ):
            loop, _ = _run_engine(cfg, policy, "loop")
            same = loop is not None and bool(
                np.array_equal(loop.final_w, live.final_w)
            )
            bit_identical = same if bit_identical is None else (
                bit_identical and same
            )
    return CalibrationReport(
        rows=rows,
        bit_identical=bit_identical,
        time_scale=config.live.time_scale,
        policy=policy,
        epochs=config.max_epochs,
    )
