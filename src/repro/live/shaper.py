"""Bandwidth shaping and interruptible waits for the live engine.

The worker threads never sleep blindly: every wait is chunked into small
quanta and re-checks (a) the iteration's cancel event (the server closed
an async-quorum barrier or a deadline fired) and (b) the client's
scheduled mid-round dropout instant.  :class:`TokenBucket` paces a
chunked upload so the payload drains at the channel rate the ``net/``
model predicted, giving real backpressure on the socket instead of one
burst write.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

__all__ = ["WAIT_QUANTUM_S", "WaitOutcome", "TokenBucket", "wait_until"]

#: Sleep quantum: cancellation/dropout latency is bounded by this.
WAIT_QUANTUM_S = 0.005


class WaitOutcome:
    """Tri-state result of an interruptible wait."""

    OK = "ok"            # the target instant was reached
    CANCEL = "cancel"    # the iteration's cancel event fired
    DROP = "drop"        # the client's dropout instant passed


def wait_until(
    deadline: float,
    cancel: Optional[threading.Event] = None,
    drop_at: float = float("inf"),
) -> str:
    """Sleep until ``deadline`` (``time.monotonic`` instant), waking every
    :data:`WAIT_QUANTUM_S` to poll ``cancel`` and ``drop_at``.

    Returns a :class:`WaitOutcome` constant.  ``drop_at`` wins over the
    deadline when it comes first (the client leaves mid-phase), and is
    checked even for already-expired deadlines so a dropped client never
    performs another phase.
    """
    while True:
        now = time.monotonic()
        if cancel is not None and cancel.is_set():
            return WaitOutcome.CANCEL
        if drop_at <= now and drop_at <= deadline:
            return WaitOutcome.DROP
        if now >= deadline:
            return WaitOutcome.OK
        step = min(WAIT_QUANTUM_S, deadline - now, max(drop_at - now, 0.0))
        if cancel is not None:
            if cancel.wait(step):
                return WaitOutcome.CANCEL
        else:
            time.sleep(step)


class TokenBucket:
    """Classic token bucket: ``consume(n)`` blocks until ``n`` tokens
    (bytes) have accrued at ``rate`` tokens/second.

    The bucket starts empty, so the first chunk already pays its
    transmission time — total drain time of a ``B``-byte payload is
    ``B / rate`` (± one wait quantum), matching the channel model's
    ``τ_cm`` when ``rate = payload / τ_cm``.
    """

    def __init__(self, rate: float, capacity: Optional[float] = None) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.capacity = capacity if capacity is not None else float("inf")
        self.tokens = 0.0
        self._last = time.monotonic()

    def _refill(self) -> None:
        now = time.monotonic()
        self.tokens = min(
            self.capacity, self.tokens + (now - self._last) * self.rate
        )
        self._last = now

    def consume(
        self,
        n: float,
        cancel: Optional[threading.Event] = None,
        drop_at: float = float("inf"),
    ) -> str:
        """Block until ``n`` tokens are available, then take them.

        Interruptible like :func:`wait_until`; on CANCEL/DROP the tokens
        are *not* taken (the transmission never happened).
        """
        self._refill()
        if self.tokens < n:
            deficit = (n - self.tokens) / self.rate
            outcome = wait_until(
                time.monotonic() + deficit, cancel=cancel, drop_at=drop_at
            )
            if outcome != WaitOutcome.OK:
                return outcome
            self._refill()
        self.tokens -= n
        return WaitOutcome.OK
