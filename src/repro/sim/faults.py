"""Fault layer for the event-driven runtime: dropouts, flaky uplinks, retries.

Three fault mechanisms compose inside a simulated round:

* **Mid-round dropout** — a client leaves the round permanently (battery,
  churn).  Dropout instants are exponential with a per-round hazard
  ``λ``: the probability of surviving a whole round is ``exp(−λ)``.  When
  the experiment uses the Markov availability chain, the hazard should
  come from :meth:`repro.env.availability.MarkovAvailabilityProcess.
  intra_round_hazard`, so intra-round churn is *sojourn-consistent* with
  the epoch-granular chain instead of a second, unrelated model.
* **Transient upload failure** — each upload attempt independently fails
  with probability ``upload_failure_prob``; the client retries after an
  exponential backoff ``retry_backoff_s · 2^(attempt−1)`` up to
  ``max_retries`` times, then drops out of the round (reason
  ``"upload_failed"``).
* **Deadline timeout** — handled by the server's aggregation policy (see
  :mod:`repro.sim.entities`); stragglers that miss a per-iteration
  deadline are dropped with reason ``"deadline"``.

Every drop shrinks the surviving participant set; the round degrades
gracefully until the paper's participation floor (constraint (3b)) would
be violated, at which point :class:`ParticipationFloorError` — a *typed*
error — is raised instead of silently continuing with too few clients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

__all__ = [
    "SimError",
    "ParticipationFloorError",
    "FaultProfile",
    "FAULT_PROFILES",
    "fault_profile",
    "sample_dropout_times",
]


class SimError(RuntimeError):
    """Base class for event-driven-runtime errors."""


class ParticipationFloorError(SimError):
    """Faults/deadlines left fewer survivors than the (3b) floor allows."""

    def __init__(self, survivors: int, floor: int, reason: str) -> None:
        self.survivors = survivors
        self.floor = floor
        self.reason = reason
        super().__init__(
            f"round degraded to {survivors} survivor(s) < participation "
            f"floor n={floor} (last drop: {reason})"
        )


@dataclass(frozen=True)
class FaultProfile:
    """Stochastic fault configuration for one simulated round.

    ``dropout_hazard`` is measured per *round* (the sojourn-consistent
    unit: one epoch of the availability chain), not per second — round
    durations span orders of magnitude across configs, a per-second rate
    would not transfer.
    """

    dropout_hazard: float = 0.0         # λ: P(survive round) = exp(−λ)
    upload_failure_prob: float = 0.0    # per-attempt transient loss
    max_retries: int = 2                # attempts after the first
    retry_backoff_s: float = 0.05       # base of the exponential backoff

    def __post_init__(self) -> None:
        if self.dropout_hazard < 0:
            raise ValueError("dropout_hazard must be nonnegative")
        if not (0.0 <= self.upload_failure_prob < 1.0):
            raise ValueError("upload_failure_prob must be in [0, 1)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be nonnegative")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be nonnegative")

    @property
    def stochastic(self) -> bool:
        """True when simulating this profile consumes randomness."""
        return self.dropout_hazard > 0.0 or self.upload_failure_prob > 0.0

    @classmethod
    def none(cls) -> "FaultProfile":
        return cls()

    @classmethod
    def from_churn(cls, availability, **overrides) -> "FaultProfile":
        """Derive the dropout hazard from the experiment's Markov
        availability chain (see ``intra_round_hazard``), reusing the
        existing churn model for intra-round behaviour."""
        hazard = availability.intra_round_hazard()
        return cls(dropout_hazard=float(hazard), **overrides)


#: Named presets selectable from the CLI and sweep :class:`PolicySpec`s.
FAULT_PROFILES: Dict[str, FaultProfile] = {
    "none": FaultProfile(),
    "flaky-uplink": FaultProfile(
        upload_failure_prob=0.3, max_retries=3, retry_backoff_s=0.05
    ),
    "churn": FaultProfile(dropout_hazard=0.25),
    "stress": FaultProfile(
        dropout_hazard=0.25,
        upload_failure_prob=0.3,
        max_retries=3,
        retry_backoff_s=0.05,
    ),
}


def fault_profile(name: str) -> FaultProfile:
    """Look up a named preset (raises ``ValueError`` on unknown names)."""
    try:
        return FAULT_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {name!r}; known: {sorted(FAULT_PROFILES)}"
        ) from None


def sample_dropout_times(
    num_clients: int,
    hazard: float,
    round_seconds: float,
    rng: Optional[np.random.Generator],
) -> np.ndarray:
    """Absolute dropout offsets (seconds from round start) per client.

    Each client's dropout instant is ``Exp(hazard)`` in round units,
    scaled by the round's estimated duration; clients whose draw falls
    past one full round never drop (``inf``).  Draws happen in client
    order so the RNG stream drains deterministically.
    """
    if hazard <= 0.0 or num_clients == 0:
        return np.full(num_clients, np.inf)
    if rng is None:
        raise ValueError("a fault RNG is required when dropout_hazard > 0")
    draws = rng.exponential(scale=1.0 / hazard, size=num_clients)
    return np.where(draws < 1.0, draws * round_seconds, np.inf)
