"""Event-driven network runtime: deterministic message-level DES.

Public surface:

* :mod:`repro.sim.engine` — the ``(time, seq)``-ordered event loop;
* :mod:`repro.sim.entities` — simulated clients/server and
  :func:`simulate_round`, the one-round entry point;
* :mod:`repro.sim.faults` — fault profiles (dropout, flaky uplink,
  retries) and the typed :class:`ParticipationFloorError`.

The runtime plugs into training as ``TrainingConfig.engine="des"`` (see
:mod:`repro.fl.round_runner`) and into experiments through
``SimConfig`` (see :mod:`repro.config`).
"""

from repro.sim.engine import EventLoop, ScheduledEvent, SimTimeError
from repro.sim.entities import (
    AGGREGATION_POLICIES,
    ClientProcess,
    RoundOutcome,
    ServerProcess,
    SimRoundSpec,
    TimelineRecord,
    simulate_round,
)
from repro.sim.faults import (
    FAULT_PROFILES,
    FaultProfile,
    ParticipationFloorError,
    SimError,
    fault_profile,
    sample_dropout_times,
)

__all__ = [
    "EventLoop",
    "ScheduledEvent",
    "SimTimeError",
    "AGGREGATION_POLICIES",
    "SimRoundSpec",
    "TimelineRecord",
    "RoundOutcome",
    "ClientProcess",
    "ServerProcess",
    "simulate_round",
    "FaultProfile",
    "FAULT_PROFILES",
    "fault_profile",
    "SimError",
    "ParticipationFloorError",
    "sample_dropout_times",
]
