"""Simulated FL entities: client compute/uplink processes + the server.

One *round* (epoch) of the paper's protocol is simulated at message
granularity on :class:`repro.sim.engine.EventLoop`:

* every global iteration the server **broadcasts**; each surviving client
  runs its compute phase (``τ_loc`` seconds, from
  :mod:`repro.net.latency`) then its upload phase (``τ_cm`` seconds, from
  the FDMA/TDMA rate models in :mod:`repro.net.fdma`), possibly retrying
  transient upload failures with exponential backoff
  (:mod:`repro.sim.faults`);
* the server's **aggregation policy** decides when the iteration barrier
  closes: ``"sync"`` waits for every survivor (the paper's model),
  ``"deadline"`` waits at most ``deadline_s`` and drops stragglers
  (FedCS-style exclusion), ``"async"`` closes after the ``quorum``
  fastest uploads and discards the in-flight rest (buffered-async with
  stale updates dropped).

**Correctness anchor** — with no faults, no deadline, and sync
aggregation the simulated completion time must equal the closed-form
``epoch_latency``/``client_latency`` *bit-exactly*.  Repeated float
addition of a constant barrier duration drifts from ``l·τ`` by ulps, so
the server tracks *runs* of identical iterations (same contributor set,
same duration, no fault activity) and computes barrier times as
``t₀ + k·d`` — multiplication, not accumulation.  Fault-perturbed
iterations break the run and fall back to plain addition.  All widths
and barrier instants are derived from closed-form client offsets, never
from the event heap's clock: heap timestamps only decide *order*, so
ulp-level skew between the bookkept barrier and the heap clock cannot
leak into results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.sim.engine import EventLoop, ScheduledEvent
from repro.sim.faults import (
    FaultProfile,
    ParticipationFloorError,
    sample_dropout_times,
)

__all__ = [
    "AGGREGATION_POLICIES",
    "SimRoundSpec",
    "TimelineRecord",
    "RoundOutcome",
    "ClientProcess",
    "ServerProcess",
    "simulate_round",
]

AGGREGATION_POLICIES = ("sync", "deadline", "async")


@dataclass(frozen=True)
class SimRoundSpec:
    """Everything the runtime needs to simulate one federated round."""

    client_ids: np.ndarray          # (P,) int ids of the round's participants
    tau_loc: np.ndarray             # (P,) compute seconds per iteration
    tau_cm: np.ndarray              # (P,) upload seconds per attempt
    iterations: int                 # l_t global iterations
    aggregation: str = "sync"
    deadline_s: Optional[float] = None   # per-iteration barrier deadline
    quorum: Optional[int] = None         # async: aggregate after K uploads
    faults: FaultProfile = field(default_factory=FaultProfile)
    min_participants: int = 1            # constraint (3b) floor
    record_timeline: bool = True         # keep the per-message timeline
                                         # (telemetry/gantt views); off =
                                         # zero allocations per message

    def __post_init__(self) -> None:
        ids = np.asarray(self.client_ids, dtype=int)
        loc = np.asarray(self.tau_loc, dtype=float)
        cm = np.asarray(self.tau_cm, dtype=float)
        object.__setattr__(self, "client_ids", ids)
        object.__setattr__(self, "tau_loc", loc)
        object.__setattr__(self, "tau_cm", cm)
        if ids.ndim != 1 or ids.size < 1:
            raise ValueError("need at least one participant")
        if loc.shape != ids.shape or cm.shape != ids.shape:
            raise ValueError("tau arrays must match client_ids shape")
        if np.any(~np.isfinite(loc)) or np.any(loc < 0):
            raise ValueError("tau_loc must be finite and nonnegative")
        if np.any(~np.isfinite(cm)) or np.any(cm < 0):
            raise ValueError("tau_cm must be finite and nonnegative")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.aggregation not in AGGREGATION_POLICIES:
            raise ValueError(f"unknown aggregation policy {self.aggregation!r}")
        if self.aggregation == "deadline":
            if self.deadline_s is None or self.deadline_s <= 0:
                raise ValueError("deadline aggregation needs deadline_s > 0")
        if self.aggregation == "async":
            if self.quorum is None or self.quorum < 1:
                raise ValueError("async aggregation needs quorum >= 1")
        if self.min_participants < 1:
            raise ValueError("min_participants must be >= 1")


@dataclass(frozen=True)
class TimelineRecord:
    """One message-level event, for ``sim.*`` telemetry and gantt views."""

    time: float
    kind: str                       # broadcast | compute.done | upload.ok | ...
    client: Optional[int]           # client id (None for server events)
    iteration: int


@dataclass
class RoundOutcome:
    """What one simulated round produced (times relative to round start)."""

    completion_time: float                  # d(E_t): last barrier instant
    iteration_durations: List[float]        # per-iteration barrier widths
    contributors: List[np.ndarray]          # per-iteration arrived client ids
    dropped: Dict[int, str]                 # client id -> drop reason
    num_retries: int
    deadline_hits: int                      # iterations ended by the deadline
    client_busy_s: Dict[int, float]         # id -> completed work seconds
    client_last_t: Dict[int, float]         # id -> last activity instant
    timeline: List[TimelineRecord]

    @property
    def survivors(self) -> np.ndarray:
        """Ids that finished the round (contributed to the last iteration)."""
        if not self.contributors:  # pragma: no cover - defensive
            return np.zeros(0, dtype=int)
        return self.contributors[-1]


class ClientProcess:
    """Per-client compute → upload (→ retry) pipeline for one round.

    Event times are scheduled as ``t_broadcast + offset`` with ``offset``
    accumulated in closed form (``τ_loc + τ_cm`` precomputed as one
    float), so heap timestamps order like the logical offsets the
    server's duration bookkeeping uses.
    """

    __slots__ = (
        "loop", "server", "pos", "cid", "tau_loc", "tau_cm", "tau_total",
        "faults", "rng", "dropped", "attempt", "offset", "retry_extra",
        "iterations_done", "pending", "t_broadcast",
    )

    def __init__(
        self,
        loop: EventLoop,
        server: "ServerProcess",
        pos: int,
        cid: int,
        tau_loc: float,
        tau_cm: float,
        tau_total: float,
        faults: FaultProfile,
        rng: Optional[np.random.Generator],
    ) -> None:
        self.loop = loop
        self.server = server
        self.pos = pos
        self.cid = cid
        self.tau_loc = tau_loc
        self.tau_cm = tau_cm
        self.tau_total = tau_total
        self.faults = faults
        self.rng = rng
        self.dropped = False
        self.attempt = 0
        self.offset = tau_total         # arrival offset of the pending attempt
        self.retry_extra = 0.0          # extra seconds spent on retries, total
        self.iterations_done = 0
        self.pending: List[ScheduledEvent] = []
        self.t_broadcast = 0.0

    def _sched(self, time: float, callback) -> ScheduledEvent:
        # The bookkept barrier instant can trail the heap clock by ulps
        # (multiplication vs accumulation); clamping keeps the heap
        # monotone without touching the closed-form offsets results are
        # computed from.  max() is monotone, so event *order* survives.
        loop = self.loop
        return loop.schedule_at(time if time >= loop.now else loop.now, callback)

    def on_broadcast(self, t: float) -> None:
        self.t_broadcast = t
        self.attempt = 0
        self.offset = self.tau_total
        self.pending = [
            self._sched(t + self.tau_loc, self._compute_done),
            self._sched(t + self.offset, self._upload_done),
        ]

    def _compute_done(self, now: float) -> None:
        self.server.record(now, "compute.done", self.cid)

    def _upload_done(self, now: float) -> None:
        faults = self.faults
        if faults.upload_failure_prob > 0.0 and (
            self.rng.random() < faults.upload_failure_prob
        ):
            self.attempt += 1
            self.server.record(now, "upload.fail", self.cid)
            if self.attempt > faults.max_retries:
                self.drop(now, "upload_failed")
                return
            backoff = faults.retry_backoff_s * (2.0 ** (self.attempt - 1))
            # Retransmission: wait out the backoff, then resend the
            # payload.  The offset stays closed-form relative to the
            # broadcast so ordering and durations agree bit-for-bit.
            extra = backoff + self.tau_cm
            self.offset += extra
            self.retry_extra += extra
            self.server.note_retry()
            self.pending = [
                self._sched(self.t_broadcast + self.offset, self._upload_done)
            ]
            return
        self.pending = []
        self.iterations_done += 1
        self.server.on_arrival(self, self.offset, now)

    def cancel_pending(self) -> None:
        for event in self.pending:
            EventLoop.cancel(event)
        self.pending = []

    def drop(self, now: float, reason: str) -> None:
        if self.dropped:
            return
        self.dropped = True
        self.cancel_pending()
        self.server.on_drop(self, reason, now)


class ServerProcess:
    """Barrier/aggregation logic plus the exact time bookkeeping."""

    def __init__(
        self,
        loop: EventLoop,
        spec: SimRoundSpec,
        rng: Optional[np.random.Generator],
    ) -> None:
        self.loop = loop
        self.spec = spec
        self.rng = rng
        self.tau_total = spec.tau_loc + spec.tau_cm
        self.clients = [
            ClientProcess(
                loop,
                self,
                pos,
                int(cid),
                float(spec.tau_loc[pos]),
                float(spec.tau_cm[pos]),
                float(self.tau_total[pos]),
                spec.faults,
                rng,
            )
            for pos, cid in enumerate(spec.client_ids)
        ]
        self.active = list(self.clients)
        self.iteration = 0
        self.t_begin = 0.0
        self.arrived: List[Tuple[float, ClientProcess]] = []
        self.arrived_ids: Set[int] = set()
        self.deadline_event: Optional[ScheduledEvent] = None
        self.done = False
        self.completion_time = 0.0
        # Exact-barrier run tracking: consecutive identical iterations are
        # timed as t0 + k*d instead of repeated addition.  "Identical"
        # means same contributor set, same width, and no fault activity
        # (retry/drop/deadline) — async quorum cancellation is
        # deterministic and does NOT break a run.
        self._run_t0 = 0.0
        self._run_i0 = 0
        self._run_d: Optional[float] = None
        self._run_key: Optional[Tuple[int, ...]] = None
        self._iteration_clean = True
        self._deadline_closed = False
        # Outcome accumulators.
        self.durations: List[float] = []
        self.contributors: List[np.ndarray] = []
        self.dropped: Dict[int, str] = {}
        self.num_retries = 0
        self.deadline_hits = 0
        self.timeline: List[TimelineRecord] = []
        self._record_timeline = spec.record_timeline
        self.client_last_t: Dict[int, float] = {}

    # -- bookkeeping helpers -----------------------------------------------------

    def record(self, t: float, kind: str, cid: Optional[int]) -> None:
        if self._record_timeline:
            self.timeline.append(TimelineRecord(t, kind, cid, self.iteration))
        if cid is not None:
            self.client_last_t[cid] = t

    def note_retry(self) -> None:
        self.num_retries += 1
        self._iteration_clean = False

    def _floor_check(self, reason: str) -> None:
        survivors = len(self.active)
        floor = self.spec.min_participants
        if survivors < floor:
            raise ParticipationFloorError(survivors, floor, reason)

    def _pending_clients(self) -> List[ClientProcess]:
        """Active clients whose upload has not landed this iteration."""
        return [c for c in self.active if c.cid not in self.arrived_ids]

    # -- iteration lifecycle -----------------------------------------------------

    def begin_round(self) -> None:
        # Dropout instants are sampled up front, in client order, against
        # the closed-form round-length estimate (hazard is per round).
        hazard = self.spec.faults.dropout_hazard
        if hazard > 0.0:
            horizon = float(self.spec.iterations * np.max(self.tau_total))
            times = sample_dropout_times(
                len(self.clients), hazard, horizon, self.rng
            )
            for client, t_drop in zip(self.clients, times):
                if np.isfinite(t_drop):
                    self.loop.schedule_at(
                        float(t_drop),
                        lambda now, c=client: c.drop(now, "dropout"),
                    )
        self._begin_iteration(0.0)

    def _begin_iteration(self, t: float) -> None:
        self.t_begin = t
        self.arrived = []
        self.arrived_ids = set()
        self._iteration_clean = True
        self._deadline_closed = False
        self.record(t, "broadcast", None)
        for client in self.active:
            client.on_broadcast(t)
        if self.spec.aggregation == "deadline":
            loop = self.loop
            t_dead = t + float(self.spec.deadline_s)
            self.deadline_event = loop.schedule_at(
                t_dead if t_dead >= loop.now else loop.now, self._on_deadline
            )

    def on_arrival(self, client: ClientProcess, offset: float, now: float) -> None:
        self.arrived.append((offset, client))
        self.arrived_ids.add(client.cid)
        self.record(now, "upload.ok", client.cid)
        self._maybe_complete()

    def on_drop(self, client: ClientProcess, reason: str, now: float) -> None:
        self.active.remove(client)
        self.dropped[client.cid] = reason
        self._iteration_clean = False
        self.record(now, "client.drop", client.cid)
        self._floor_check(reason)
        if not self.done:
            self._maybe_complete()

    def _on_deadline(self, now: float) -> None:
        self.deadline_event = None
        stragglers = self._pending_clients()
        if not stragglers:  # pragma: no cover - completion cancels the event
            return
        self.deadline_hits += 1
        self._deadline_closed = True
        self._iteration_clean = False
        self.record(now, "deadline", None)
        for client in stragglers:
            client.drop(now, "deadline")
        # on_drop re-checks completion after the last straggler drops.

    def _quorum_met(self) -> bool:
        if self.spec.aggregation == "async":
            if len(self.arrived) >= int(self.spec.quorum):
                return True
        return not self._pending_clients()

    def _maybe_complete(self) -> None:
        if self.done or not self.arrived or not self._quorum_met():
            return
        if self.spec.aggregation == "async":
            # Quorum reached: in-flight stragglers are cancelled (their
            # stale updates are discarded) but stay in the round.  This
            # is deterministic, so it does not break the exact-run
            # bookkeeping.
            for client in self._pending_clients():
                client.cancel_pending()
        if self.deadline_event is not None:
            EventLoop.cancel(self.deadline_event)
            self.deadline_event = None
        # Barrier width: the deadline caps the wait when it fired (the
        # server only discovers stragglers at the deadline instant);
        # otherwise the slowest accepted upload closes the barrier.
        if self._deadline_closed:
            width = float(self.spec.deadline_s)
        else:
            width = max(offset for offset, _ in self.arrived)
        self._complete_iteration(width)

    def _complete_iteration(self, width: float) -> None:
        i = self.iteration
        ids = np.asarray(sorted(self.arrived_ids), dtype=int)
        self.durations.append(width)
        self.contributors.append(ids)
        key = tuple(int(c) for c in ids)
        if (
            self._iteration_clean
            and self._run_d is not None
            and width == self._run_d
            and key == self._run_key
        ):
            # Extend the run of identical iterations: exact closed form.
            t_next = self._run_t0 + (i + 1 - self._run_i0) * width
        else:
            t_next = self.t_begin + width
            self._run_t0 = self.t_begin
            self._run_i0 = i
            self._run_d = width if self._iteration_clean else None
            self._run_key = key if self._iteration_clean else None
        self.record(t_next, "iteration.complete", None)
        self.iteration += 1
        if self.iteration >= self.spec.iterations:
            self.done = True
            self.completion_time = t_next
            self.record(t_next, "round.complete", None)
            self.loop.stop()
            return
        self._begin_iteration(t_next)

    # -- outcome -----------------------------------------------------------------

    def outcome(self) -> RoundOutcome:
        # Completed-work seconds per client, in closed form: finished
        # iterations × per-iteration latency (multiplication, matching
        # net.latency.client_latency bit-for-bit), plus realized retry
        # time.  Cancelled/in-flight attempts are not counted as work.
        counts = np.asarray(
            [c.iterations_done for c in self.clients], dtype=np.int64
        )
        busy = counts * self.tau_total
        extras = np.asarray([c.retry_extra for c in self.clients])
        if np.any(extras != 0.0):
            busy = busy + extras
        return RoundOutcome(
            completion_time=float(self.completion_time),
            iteration_durations=self.durations,
            contributors=self.contributors,
            dropped=dict(self.dropped),
            num_retries=self.num_retries,
            deadline_hits=self.deadline_hits,
            client_busy_s={
                c.cid: float(busy[pos]) for pos, c in enumerate(self.clients)
            },
            client_last_t=dict(self.client_last_t),
            timeline=self.timeline,
        )


def simulate_round(
    spec: SimRoundSpec, rng: Optional[np.random.Generator] = None
) -> RoundOutcome:
    """Simulate one federated round; raises
    :class:`~repro.sim.faults.ParticipationFloorError` when faults or
    deadlines would take the round below the (3b) floor."""
    if spec.faults.stochastic and rng is None:
        raise ValueError("a fault RNG is required for stochastic fault profiles")
    if len(spec.client_ids) < spec.min_participants:
        raise ParticipationFloorError(
            len(spec.client_ids), spec.min_participants, "initial selection"
        )
    loop = EventLoop()
    server = ServerProcess(loop, spec, rng)
    server.begin_round()
    loop.run()
    if not server.done:  # pragma: no cover - defensive; loop.stop() sets done
        raise RuntimeError("event loop drained before the round completed")
    return server.outcome()
