"""Deterministic discrete-event loop (the heart of ``repro.sim``).

A minimal but strict event kernel: callbacks are scheduled at absolute
simulated times on a binary heap and executed in ``(time, seq)`` order,
where ``seq`` is a monotonically increasing insertion counter.  The
tie-break makes execution *bit-reproducible*: two events at the exact
same float timestamp always run in the order they were scheduled, so a
simulation is a pure function of its inputs (and of the RNG streams the
callbacks consume, which therefore drain in a deterministic order too).

Cancellation is O(1) lazy: a cancelled handle stays on the heap and is
skipped when popped — the standard technique for simulators whose
processes frequently outrun their own timeouts (uploads beating a
deadline, retries beating a dropout).

The clock only moves forward.  Scheduling in the past raises, and
callbacks may freely schedule new events at ``now`` (they run after all
other events already queued for that instant, preserving seq order).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

__all__ = ["ScheduledEvent", "EventLoop", "SimTimeError"]


class SimTimeError(ValueError):
    """Raised when an event is scheduled before the current sim time."""


class ScheduledEvent:
    """Handle for one pending callback (cancel via :meth:`EventLoop.cancel`)."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[float], Any]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def __lt__(self, other: "ScheduledEvent") -> bool:
        # Stable total order: primary key simulated time, tie-break by
        # insertion sequence.  This is the bit-reproducibility contract.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"ScheduledEvent(t={self.time!r}, seq={self.seq}, {state})"


class EventLoop:
    """Monotonic event heap with stable ``(time, seq)`` ordering."""

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._heap: List[ScheduledEvent] = []
        self._seq = 0
        self._stopped = False
        self.processed = 0

    # -- scheduling --------------------------------------------------------------

    def schedule_at(
        self, time: float, callback: Callable[[float], Any]
    ) -> ScheduledEvent:
        """Schedule ``callback(now)`` at absolute simulated ``time``."""
        time = float(time)
        if time < self.now:
            raise SimTimeError(
                f"cannot schedule at t={time!r} before now={self.now!r}"
            )
        event = ScheduledEvent(time, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule(
        self, delay: float, callback: Callable[[float], Any]
    ) -> ScheduledEvent:
        """Schedule ``callback`` after a nonnegative ``delay`` from now."""
        if delay < 0:
            raise SimTimeError(f"delay must be nonnegative, got {delay!r}")
        return self.schedule_at(self.now + float(delay), callback)

    @staticmethod
    def cancel(event: Optional[ScheduledEvent]) -> None:
        """Mark a handle cancelled (lazy: skipped when popped).  ``None``
        is accepted so callers can cancel an optional pending handle."""
        if event is not None:
            event.cancelled = True

    # -- execution ---------------------------------------------------------------

    def stop(self) -> None:
        """Make :meth:`run` return after the current callback finishes."""
        self._stopped = True

    def run(self, until: Optional[float] = None) -> float:
        """Pop and execute events in ``(time, seq)`` order.

        Stops when the heap drains, when :meth:`stop` is called from a
        callback, or — with ``until`` — before executing any event past
        that time (the clock then advances to ``until`` if it was going
        to pass it).  Returns the final simulated time.
        """
        self._stopped = False
        while self._heap and not self._stopped:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and event.time > until:
                self.now = max(self.now, float(until))
                return self.now
            heapq.heappop(self._heap)
            self.now = event.time
            self.processed += 1
            event.callback(self.now)
        if until is not None and not self._heap and not self._stopped:
            self.now = max(self.now, float(until))
        return self.now

    def __len__(self) -> int:
        """Pending (non-cancelled) events still on the heap."""
        return sum(1 for e in self._heap if not e.cancelled)
