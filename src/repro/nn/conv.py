"""2-D convolution via im2col.

NHWC layout: inputs are ``(N, H, W, C_in)``, kernels ``(KH, KW, C_in,
C_out)``.  The im2col transform turns convolution into a single GEMM —
the standard way to get acceptable conv performance from pure NumPy (the
actual multiply runs in BLAS).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.module import Module, Parameter

__all__ = ["Conv2D", "im2col_indices", "im2col", "col2im"]

#: Gather/scatter index tables keyed by (h, w, kh, kw, stride).  The
#: tables depend only on geometry, yet the FL hot path evaluates the same
#: conv shape thousands of times per experiment — memoize them (read-only
#: so a cached table can never be mutated by a caller).
_INDICES_CACHE: Dict[Tuple[int, int, int, int, int], Tuple[np.ndarray, np.ndarray, int, int]] = {}
_FLAT_PIX_CACHE: Dict[Tuple[int, int, int, int, int], np.ndarray] = {}


def im2col_indices(
    h: int, w: int, kh: int, kw: int, stride: int
) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """Row/column gather indices for im2col (memoized by geometry).

    Returns ``(rows, cols, out_h, out_w)`` where ``rows``/``cols`` have
    shape ``(out_h * out_w, kh * kw)``: entry [p, q] is the input pixel
    feeding kernel offset q of output position p.  The returned arrays
    are shared and read-only.
    """
    key = (h, w, kh, kw, stride)
    cached = _INDICES_CACHE.get(key)
    if cached is not None:
        return cached
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ValueError("kernel larger than input")
    base_r = np.repeat(np.arange(out_h) * stride, out_w)
    base_c = np.tile(np.arange(out_w) * stride, out_h)
    off_r = np.repeat(np.arange(kh), kw)
    off_c = np.tile(np.arange(kw), kh)
    rows = base_r[:, None] + off_r[None, :]
    cols = base_c[:, None] + off_c[None, :]
    rows.setflags(write=False)
    cols.setflags(write=False)
    _INDICES_CACHE[key] = (rows, cols, out_h, out_w)
    return _INDICES_CACHE[key]


def _col2im_flat_pix(h: int, w: int, kh: int, kw: int, stride: int) -> np.ndarray:
    """Flat pixel indices for the col2im scatter-add (memoized)."""
    key = (h, w, kh, kw, stride)
    flat = _FLAT_PIX_CACHE.get(key)
    if flat is None:
        rows, cols, _, _ = im2col_indices(h, w, kh, kw, stride)
        flat = (rows * w + cols).ravel()                 # (P*KK,)
        flat.setflags(write=False)
        _FLAT_PIX_CACHE[key] = flat
    return flat


def im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> Tuple[np.ndarray, int, int]:
    """(N, H, W, C) → (N, out_h*out_w, kh*kw*C) patch matrix."""
    n, h, w, c = x.shape
    rows, cols, out_h, out_w = im2col_indices(h, w, kh, kw, stride)
    patches = x[:, rows, cols, :]            # (N, P, KK, C)
    return patches.reshape(n, out_h * out_w, kh * kw * c), out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add patches back to image shape."""
    n, h, w, c = x_shape
    out = np.zeros(x_shape, dtype=cols.dtype)
    # scatter-add via flat indices (np.add.at handles duplicates correctly)
    flat_pix = _col2im_flat_pix(h, w, kh, kw, stride)
    out_flat = out.reshape(n, h * w, c)
    np.add.at(out_flat, (slice(None), flat_pix), cols.reshape(n, flat_pix.size, c))
    return out


class Conv2D(Module):
    """Valid (unpadded) strided 2-D convolution with bias."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if min(in_channels, out_channels, kernel_size, stride) < 1:
            raise ValueError("conv hyper-parameters must be positive")
        gen = rng if rng is not None else np.random.default_rng(0)
        fan_in = kernel_size * kernel_size * in_channels
        self.kernel = Parameter(
            gen.normal(0.0, np.sqrt(2.0 / fan_in),
                       size=(kernel_size, kernel_size, in_channels, out_channels)),
            name="conv.kernel",
        )
        self.bias = Parameter(np.zeros(out_channels), name="conv.bias")
        self.stride = stride
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, int, int, int], int, int]] = None
        self._col_buf: Optional[np.ndarray] = None

    def parameters(self) -> List[Parameter]:
        return [self.kernel, self.bias]

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[3] != self.kernel.value.shape[2]:
            raise ValueError(
                f"Conv2D expected (N, H, W, {self.kernel.value.shape[2]}), got {x.shape}"
            )
        kh, kw, c_in, c_out = self.kernel.value.shape
        n, h, w, _ = x.shape
        _, _, out_h, out_w = im2col_indices(h, w, kh, kw, self.stride)
        flat_pix = _col2im_flat_pix(h, w, kh, kw, self.stride)
        # Gather patches through a preallocated buffer (same values as the
        # fancy-index path in :func:`im2col`, no fresh allocation per call).
        x_flat = np.ascontiguousarray(x, dtype=float).reshape(n, h * w, c_in)
        buf = self._col_buf
        if buf is None or buf.shape != (n, flat_pix.size, c_in):
            buf = np.empty((n, flat_pix.size, c_in))
            self._col_buf = buf
        np.take(x_flat, flat_pix, axis=1, out=buf)
        cols = buf.reshape(n, out_h * out_w, kh * kw * c_in)
        w_mat = self.kernel.value.reshape(kh * kw * c_in, c_out)
        out = cols @ w_mat + self.bias.value        # (N, P, C_out)
        self._cache = (cols, x.shape, out_h, out_w)
        return out.reshape(n, out_h, out_w, c_out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols, x_shape, out_h, out_w = self._cache
        kh, kw, c_in, c_out = self.kernel.value.shape
        n = x_shape[0]
        g = grad_out.reshape(n, out_h * out_w, c_out)
        # Parameter grads: sum over batch of colsᵀ g.
        w_grad = np.einsum("npk,npc->kc", cols, g)
        self.kernel.grad += w_grad.reshape(kh, kw, c_in, c_out)
        self.bias.grad += g.sum(axis=(0, 1))
        # Input grad: g @ Wᵀ back through im2col.
        w_mat = self.kernel.value.reshape(kh * kw * c_in, c_out)
        cols_grad = g @ w_mat.T                    # (N, P, KK*C_in)
        return col2im(cols_grad, x_shape, kh, kw, self.stride)
