"""Model checkpointing: save/load flat parameters with metadata.

Stores the flat parameter vector plus enough metadata (a caller-supplied
architecture spec and the parameter count) to catch loading a checkpoint
into the wrong model — the failure mode that silently corrupts FL
experiments.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Optional, Tuple

import numpy as np

from repro.nn.models import ClassifierModel

__all__ = ["save_checkpoint", "load_checkpoint"]

FORMAT_VERSION = 1


def save_checkpoint(
    model: ClassifierModel,
    path: str | Path,
    spec: Optional[Mapping] = None,
    w: Optional[np.ndarray] = None,
) -> Path:
    """Write ``w`` (default: the model's current parameters) to ``path``.

    ``spec`` is an arbitrary JSON-serializable architecture description
    (e.g. the kwargs passed to :func:`repro.nn.models.build_model`); it is
    stored verbatim and returned on load.
    """
    path = Path(path)
    weights = np.asarray(w if w is not None else model.get_params(), dtype=float)
    if weights.size != model.num_params:
        raise ValueError(
            f"weight vector has {weights.size} entries, model has {model.num_params}"
        )
    meta = {
        "format": FORMAT_VERSION,
        "num_params": int(weights.size),
        "num_classes": model.num_classes,
        "l2_reg": model.l2_reg,
        "spec": dict(spec) if spec is not None else {},
    }
    np.savez(path, weights=weights, meta=np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8))
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_checkpoint(
    path: str | Path,
    model: Optional[ClassifierModel] = None,
) -> Tuple[np.ndarray, dict]:
    """Read ``(weights, meta)``; if ``model`` is given, validate and load.

    Raises if the checkpoint's parameter count or class count disagrees
    with the target model.
    """
    with np.load(Path(path)) as data:
        weights = np.asarray(data["weights"], dtype=float)
        meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
    if meta.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint format: {meta.get('format')!r}")
    if int(meta["num_params"]) != weights.size:
        raise ValueError("checkpoint metadata disagrees with stored weights")
    if model is not None:
        if model.num_params != weights.size:
            raise ValueError(
                f"checkpoint has {weights.size} params, model {model.num_params}"
            )
        if model.num_classes != int(meta["num_classes"]):
            raise ValueError("class-count mismatch")
        model.set_params(weights)
    return weights, meta
