"""Model checkpointing and wire payloads: flat parameters with metadata.

Two serialization surfaces live here:

* :func:`save_checkpoint` / :func:`load_checkpoint` — on-disk npz
  checkpoints with enough metadata (architecture spec, parameter count)
  to catch loading a checkpoint into the wrong model — the failure mode
  that silently corrupts FL experiments.
* :func:`encode_payload` / :func:`decode_payload` — the self-describing
  binary frame the live engine ships over sockets.  Decoding a torn or
  corrupted buffer raises a *typed* error (:class:`TruncatedPayloadError`
  / :class:`PayloadError`) instead of returning garbage arrays.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.nn.models import ClassifierModel

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "PayloadError",
    "TruncatedPayloadError",
    "encode_payload",
    "decode_payload",
]

FORMAT_VERSION = 1

#: 4-byte magic prefix of every wire payload.
PAYLOAD_MAGIC = b"RPAY"

#: Bump when the frame layout changes incompatibly.
PAYLOAD_VERSION = 1


class PayloadError(ValueError):
    """A wire payload is malformed (bad magic/version/header/checksum)."""


class TruncatedPayloadError(PayloadError):
    """A wire payload ends before its declared length (torn write/read)."""


def _dtype_token(dtype: np.dtype) -> str:
    """Endianness-explicit dtype token (``<f8``), stable across hosts."""
    return np.dtype(dtype).newbyteorder("<").str


def encode_payload(
    meta: Mapping,
    arrays: Mapping[str, np.ndarray],
) -> bytes:
    """Pack ``meta`` (JSON-serializable) and named arrays into one frame.

    Layout::

        magic(4) | version(1) | header_len(u32 LE) | header JSON |
        raw array bytes (little-endian, C order, in header order) |
        crc32(u32 LE) over everything before it

    The header carries ``meta`` plus each array's name/dtype/shape, so a
    frame is decodable with no out-of-band schema.
    """
    specs = []
    chunks = []
    for name, arr in arrays.items():
        a = np.asarray(arr)
        if a.dtype == object:
            raise PayloadError(f"array {name!r} has object dtype")
        le = a.astype(a.dtype.newbyteorder("<"), copy=False)
        specs.append(
            {"name": str(name), "dtype": _dtype_token(a.dtype), "shape": list(a.shape)}
        )
        chunks.append(le.tobytes(order="C"))
    header = json.dumps(
        {"meta": jsonable_meta(meta), "arrays": specs}, separators=(",", ":")
    ).encode("utf-8")
    body = b"".join(
        [
            PAYLOAD_MAGIC,
            bytes([PAYLOAD_VERSION]),
            len(header).to_bytes(4, "little"),
            header,
            *chunks,
        ]
    )
    return body + (zlib.crc32(body) & 0xFFFFFFFF).to_bytes(4, "little")


def jsonable_meta(meta: Mapping) -> Dict:
    """Validate ``meta`` is JSON-serializable, returning a plain dict."""
    try:
        return json.loads(json.dumps(dict(meta)))
    except (TypeError, ValueError) as exc:
        raise PayloadError(f"payload meta is not JSON-serializable: {exc}") from exc


def decode_payload(buf: bytes) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Inverse of :func:`encode_payload`; returns ``(meta, arrays)``.

    Raises :class:`TruncatedPayloadError` if ``buf`` stops short of any
    declared length, :class:`PayloadError` on bad magic, version, header,
    or checksum.  Returned arrays are fresh native-endian copies.
    """
    view = memoryview(buf)
    if len(view) < len(PAYLOAD_MAGIC) + 1 + 4:
        raise TruncatedPayloadError(
            f"payload too short for frame prelude ({len(view)} bytes)"
        )
    if bytes(view[:4]) != PAYLOAD_MAGIC:
        raise PayloadError(f"bad payload magic {bytes(view[:4])!r}")
    version = view[4]
    if version != PAYLOAD_VERSION:
        raise PayloadError(f"unsupported payload version {version}")
    header_len = int.from_bytes(view[5:9], "little")
    offset = 9
    if len(view) < offset + header_len:
        raise TruncatedPayloadError("payload truncated inside header")
    try:
        header = json.loads(bytes(view[offset : offset + header_len]).decode("utf-8"))
        specs = header["arrays"]
        meta = header["meta"]
    except (ValueError, KeyError, UnicodeDecodeError) as exc:
        raise PayloadError(f"malformed payload header: {exc}") from exc
    offset += header_len
    arrays: Dict[str, np.ndarray] = {}
    for spec in specs:
        try:
            name = spec["name"]
            dtype = np.dtype(spec["dtype"])
            shape = tuple(int(s) for s in spec["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise PayloadError(f"malformed array spec {spec!r}: {exc}") from exc
        nbytes = int(dtype.itemsize * int(np.prod(shape, dtype=np.int64)))
        if len(view) < offset + nbytes:
            raise TruncatedPayloadError(
                f"payload truncated inside array {name!r} "
                f"(need {nbytes} bytes at offset {offset}, have {len(view) - offset})"
            )
        raw = np.frombuffer(view[offset : offset + nbytes], dtype=dtype)
        arrays[name] = raw.reshape(shape).astype(dtype.newbyteorder("="), copy=True)
        offset += nbytes
    if len(view) < offset + 4:
        raise TruncatedPayloadError("payload truncated before checksum")
    if len(view) > offset + 4:
        raise PayloadError(f"{len(view) - offset - 4} trailing bytes after checksum")
    stored = int.from_bytes(view[offset : offset + 4], "little")
    actual = zlib.crc32(view[:offset]) & 0xFFFFFFFF
    if stored != actual:
        raise PayloadError(
            f"payload checksum mismatch (stored {stored:#010x}, computed {actual:#010x})"
        )
    return dict(meta), arrays


def save_checkpoint(
    model: ClassifierModel,
    path: str | Path,
    spec: Optional[Mapping] = None,
    w: Optional[np.ndarray] = None,
) -> Path:
    """Write ``w`` (default: the model's current parameters) to ``path``.

    ``spec`` is an arbitrary JSON-serializable architecture description
    (e.g. the kwargs passed to :func:`repro.nn.models.build_model`); it is
    stored verbatim and returned on load.
    """
    path = Path(path)
    weights = np.asarray(w if w is not None else model.get_params(), dtype=float)
    if weights.size != model.num_params:
        raise ValueError(
            f"weight vector has {weights.size} entries, model has {model.num_params}"
        )
    meta = {
        "format": FORMAT_VERSION,
        "num_params": int(weights.size),
        "num_classes": model.num_classes,
        "l2_reg": model.l2_reg,
        "spec": dict(spec) if spec is not None else {},
    }
    np.savez(path, weights=weights, meta=np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8))
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_checkpoint(
    path: str | Path,
    model: Optional[ClassifierModel] = None,
) -> Tuple[np.ndarray, dict]:
    """Read ``(weights, meta)``; if ``model`` is given, validate and load.

    Raises if the checkpoint's parameter count or class count disagrees
    with the target model.
    """
    with np.load(Path(path)) as data:
        weights = np.asarray(data["weights"], dtype=float)
        meta = json.loads(bytes(data["meta"].tobytes()).decode("utf-8"))
    if meta.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint format: {meta.get('format')!r}")
    if int(meta["num_params"]) != weights.size:
        raise ValueError("checkpoint metadata disagrees with stored weights")
    if model is not None:
        if model.num_params != weights.size:
            raise ValueError(
                f"checkpoint has {weights.size} params, model {model.num_params}"
            )
        if model.num_classes != int(meta["num_classes"]):
            raise ValueError("class-count mismatch")
        model.set_params(weights)
    return weights, meta
