"""Inverted dropout layer.

Training mode zeroes each activation with probability ``p`` and scales
the survivors by ``1/(1−p)`` so the expected activation is unchanged
(inverted dropout — evaluation needs no rescaling).  ``eval()`` turns the
layer into the identity, which is how the classifier facade evaluates
test accuracy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout with an explicit train/eval switch."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        if not (0.0 <= p < 1.0):
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.training = True
        self._mask: Optional[np.ndarray] = None

    def train(self) -> None:
        self.training = True

    def eval(self) -> None:
        self.training = False

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
