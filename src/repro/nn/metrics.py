"""Classification metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "top_k_accuracy", "confusion_matrix"]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact matches."""
    p = np.asarray(predictions)
    y = np.asarray(labels)
    if p.shape != y.shape:
        raise ValueError("shape mismatch")
    if p.size == 0:
        raise ValueError("empty inputs")
    return float(np.mean(p == y))


def top_k_accuracy(scores: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of rows whose label is among the top-k scored classes."""
    s = np.asarray(scores)
    y = np.asarray(labels)
    if s.ndim != 2 or y.shape != (s.shape[0],):
        raise ValueError("scores must be (N, C) and labels (N,)")
    if not (1 <= k <= s.shape[1]):
        raise ValueError("k out of range")
    topk = np.argpartition(-s, kth=k - 1, axis=1)[:, :k]
    return float(np.mean(np.any(topk == y[:, None], axis=1)))


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """Counts[i, j] = #(label i predicted as j)."""
    p = np.asarray(predictions, dtype=np.int64)
    y = np.asarray(labels, dtype=np.int64)
    if p.shape != y.shape:
        raise ValueError("shape mismatch")
    if np.any((p < 0) | (p >= num_classes) | (y < 0) | (y >= num_classes)):
        raise ValueError("class index out of range")
    out = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(out, (y, p), 1)
    return out
