"""Loss functions: softmax cross-entropy (fused gradient) and L2 penalty."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["softmax", "softmax_cross_entropy", "l2_penalty"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, shifted for numerical stability."""
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy and its gradient w.r.t. the logits.

    Fusing the two avoids forming the log-softmax twice and gives the
    well-known stable gradient ``(softmax − onehot) / N``.
    """
    if logits.ndim != 2:
        raise ValueError("logits must be (N, C)")
    n, c = logits.shape
    y = np.asarray(labels)
    if y.shape != (n,):
        raise ValueError("labels must be (N,)")
    if np.any(y < 0) or np.any(y >= c):
        raise ValueError("labels out of range")
    z = logits - logits.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(z).sum(axis=1))
    loss = float(np.mean(logsumexp - z[np.arange(n), y]))
    probs = softmax(logits)
    probs[np.arange(n), y] -= 1.0
    return loss, probs / n


def l2_penalty(w: np.ndarray, reg: float) -> Tuple[float, np.ndarray]:
    """``reg/2 ‖w‖²`` and its gradient ``reg·w``.

    With ``reg > 0`` this makes the overall objective strongly convex for
    the logistic-regression model — the setting the paper's DANE
    convergence guarantees (γ-strong convexity) formally require.
    """
    if reg < 0:
        raise ValueError("reg must be nonnegative")
    return 0.5 * reg * float(w @ w), reg * w
