"""Max and average pooling (NHWC, non-overlapping windows)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.module import Module

__all__ = ["MaxPool2D", "AvgPool2D"]


def _window_view(x: np.ndarray, size: int) -> np.ndarray:
    """Reshape (N, H, W, C) into (N, H/s, s, W/s, s, C) windows."""
    n, h, w, c = x.shape
    if h % size or w % size:
        raise ValueError(
            f"pooling size {size} must divide spatial dims ({h}, {w})"
        )
    return x.reshape(n, h // size, size, w // size, size, c)


class MaxPool2D(Module):
    """Non-overlapping max pooling with window ``size × size``."""

    def __init__(self, size: int = 2) -> None:
        if size < 1:
            raise ValueError("pool size must be positive")
        self.size = size
        self._cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        win = _window_view(x, self.size)
        out = win.max(axis=(2, 4))
        # Mask of (one of the) argmax positions for routing gradients.
        mask = win == out[:, :, None, :, None, :]
        # Break ties: keep only the first max per window so the gradient is
        # routed exactly once (matches subgradient convention).
        flat = mask.reshape(*mask.shape[:2], self.size, mask.shape[3], self.size, -1)
        self._cache = (mask, np.asarray(x.shape))
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        mask, x_shape = self._cache
        # Normalize ties so total routed gradient equals grad_out.
        counts = mask.sum(axis=(2, 4), keepdims=True)
        g = (mask / counts) * grad_out[:, :, None, :, None, :]
        n, h, w, c = x_shape
        return g.reshape(n, h, w, c)


class AvgPool2D(Module):
    """Non-overlapping average pooling with window ``size × size``."""

    def __init__(self, size: int = 2) -> None:
        if size < 1:
            raise ValueError("pool size must be positive")
        self.size = size
        self._x_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return _window_view(x, self.size).mean(axis=(2, 4))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, h, w, c = self._x_shape
        s = self.size
        g = grad_out[:, :, None, :, None, :] / (s * s)
        g = np.broadcast_to(g, (n, h // s, s, w // s, s, c))
        return g.reshape(n, h, w, c)
