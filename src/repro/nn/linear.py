"""Dense layer and shape adapters."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.module import Module, Parameter

__all__ = ["Linear", "Flatten", "Reshape"]


class Linear(Module):
    """Affine map ``y = x W + b`` with ``x`` of shape (N, in_dim).

    Weights use He/Glorot-style scaling ``std = sqrt(2 / in_dim)`` which
    works well with the ReLU activations used in the paper's CNN/MLP
    configurations.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: Optional[np.random.Generator] = None,
        weight_scale: Optional[float] = None,
    ) -> None:
        if in_dim < 1 or out_dim < 1:
            raise ValueError("dimensions must be positive")
        gen = rng if rng is not None else np.random.default_rng(0)
        scale = weight_scale if weight_scale is not None else np.sqrt(2.0 / in_dim)
        self.weight = Parameter(
            gen.normal(0.0, scale, size=(in_dim, out_dim)), name="linear.weight"
        )
        self.bias = Parameter(np.zeros(out_dim), name="linear.bias")
        self._x: Optional[np.ndarray] = None

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.weight.value.shape[0]:
            raise ValueError(
                f"Linear expected (N, {self.weight.value.shape[0]}), got {x.shape}"
            )
        self._x = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += self._x.T @ grad_out
        self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.value.T


class Flatten(Module):
    """(N, ...) → (N, prod(...)); remembers the shape for backward."""

    def __init__(self) -> None:
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._shape)


class Reshape(Module):
    """(N, D) → (N, *target); inverse on backward.

    Used at model entry to turn flattened dataset rows back into image
    tensors for convolutional stacks.
    """

    def __init__(self, target: Tuple[int, ...]) -> None:
        if any(d < 1 for d in target):
            raise ValueError("target dims must be positive")
        self.target = tuple(target)
        self._in_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._in_shape = x.shape
        return x.reshape((x.shape[0],) + self.target)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._in_shape)
