"""Elementwise activation layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module

__all__ = ["ReLU", "Tanh", "Sigmoid"]


class ReLU(Module):
    """``max(x, 0)``; subgradient 0 at the kink."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_out, 0.0)


class Tanh(Module):
    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_out * (1.0 - self._out**2)


class Sigmoid(Module):
    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Numerically stable two-sided formulation.
        out = np.empty_like(x, dtype=float)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._out * (1.0 - self._out)
