"""From-scratch NumPy neural-network substrate.

The paper trains two small CNNs (on Fashion-MNIST and CIFAR-10) inside its
FL simulator.  With no deep-learning framework available offline, this
package implements the needed pieces directly on NumPy:

* :mod:`repro.nn.module` — ``Parameter`` / ``Module`` base classes with
  flat-vector (de)serialization (FL aggregation and DANE operate on flat
  parameter vectors).
* layers: :mod:`repro.nn.linear`, :mod:`repro.nn.conv` (im2col),
  :mod:`repro.nn.pooling`, :mod:`repro.nn.activations`.
* :mod:`repro.nn.losses` — softmax cross-entropy with fused gradient,
  L2 regularization.
* :mod:`repro.nn.models` — ``ClassifierModel`` facade plus factories for
  logistic regression, MLP, and the paper's two CNNs (scaled).
* :mod:`repro.nn.optim` — SGD / momentum and LR schedules.
* :mod:`repro.nn.metrics` — accuracy, top-k.

Backward passes are hand-derived and verified against central finite
differences in the test suite.
"""

from repro.nn.module import Parameter, Module, Sequential
from repro.nn.linear import Linear, Flatten, Reshape
from repro.nn.conv import Conv2D
from repro.nn.pooling import MaxPool2D, AvgPool2D
from repro.nn.activations import ReLU, Tanh, Sigmoid
from repro.nn.dropout import Dropout
from repro.nn.serialization import save_checkpoint, load_checkpoint
from repro.nn.losses import softmax_cross_entropy, softmax, l2_penalty
from repro.nn.models import ClassifierModel, build_model
from repro.nn.optim import SGD, step_decay_schedule, constant_schedule
from repro.nn.metrics import accuracy, top_k_accuracy

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "Linear",
    "Flatten",
    "Reshape",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "save_checkpoint",
    "load_checkpoint",
    "softmax_cross_entropy",
    "softmax",
    "l2_penalty",
    "ClassifierModel",
    "build_model",
    "SGD",
    "step_decay_schedule",
    "constant_schedule",
    "accuracy",
    "top_k_accuracy",
]
