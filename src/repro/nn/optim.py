"""First-order optimizers and learning-rate schedules.

Operate on flat parameter vectors (the representation used throughout the
FL machinery), not on Module objects, so the same optimizer drives both
local SGD inside DANE and the standalone examples.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["SGD", "constant_schedule", "step_decay_schedule"]

Schedule = Callable[[int], float]


def constant_schedule(lr: float) -> Schedule:
    """Always ``lr``."""
    if lr <= 0:
        raise ValueError("lr must be positive")
    return lambda step: lr


def step_decay_schedule(lr: float, decay: float = 0.5, every: int = 100) -> Schedule:
    """``lr · decay^(step // every)``."""
    if lr <= 0 or not (0 < decay <= 1) or every < 1:
        raise ValueError("invalid schedule parameters")
    return lambda step: lr * decay ** (step // every)


class SGD:
    """Stochastic gradient descent with optional (heavy-ball) momentum."""

    def __init__(
        self,
        lr: float | Schedule = 0.05,
        momentum: float = 0.0,
        in_place: bool = False,
    ) -> None:
        if not (0.0 <= momentum < 1.0):
            raise ValueError("momentum must be in [0, 1)")
        self.schedule: Schedule = lr if callable(lr) else constant_schedule(lr)
        self.momentum = momentum
        # In-place mode updates ``w`` (and the velocity buffer) without
        # allocating a fresh vector per step — the caller owns ``w`` and
        # must tolerate mutation.  The arithmetic is identical: the same
        # elementwise ops run, only the destination buffer changes.
        self.in_place = bool(in_place)
        self._velocity: np.ndarray | None = None
        self._step = 0

    def reset(self) -> None:
        self._velocity = None
        self._step = 0

    def step(self, w: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """One update; returns the new parameter vector.

        Allocates a fresh vector unless ``in_place`` was set, in which
        case ``w`` is mutated and returned (``w`` must then be a float
        ndarray, not a list or an int array).
        """
        if not self.in_place:
            w = np.asarray(w, dtype=float)
        elif not (isinstance(w, np.ndarray) and w.dtype == np.float64):
            raise ValueError("in_place SGD requires a float64 ndarray")
        grad = np.asarray(grad, dtype=float)
        if grad.shape != w.shape:
            raise ValueError("gradient shape mismatch")
        lr = self.schedule(self._step)
        self._step += 1
        if self.momentum == 0.0:
            if self.in_place:
                w -= lr * grad
                return w
            return w - lr * grad
        if self._velocity is None or self._velocity.shape != w.shape:
            self._velocity = np.zeros_like(w, dtype=float)
        if self.in_place:
            self._velocity *= self.momentum
            self._velocity -= lr * grad
            w += self._velocity
            return w
        self._velocity = self.momentum * self._velocity - lr * grad
        return w + self._velocity
