"""Classifier facade and model factories.

:class:`ClassifierModel` wraps a :class:`repro.nn.module.Sequential` with
softmax cross-entropy + L2 and exposes the *functional* interface the FL
machinery needs: evaluate loss/gradient at an arbitrary flat parameter
vector ``w`` without the caller touching layer internals.

Factories:

* ``logreg`` — multinomial logistic regression.  With ``l2_reg > 0`` the
  objective is γ-strongly convex, matching the paper's DANE assumptions;
  used in the theory-validation benches.
* ``mlp`` — ReLU MLP (default experiment model; fast under NumPy).
* ``cnn`` — the paper's CNN family, scaled: the paper uses
  [conv5×5(32) → pool2 → conv5×5(64) → pool2 → fc1024 → fc10] for FMNIST
  and [conv5×5(64) → pool3 → conv5×5(64) → fc384 → fc192 → fc10] for
  CIFAR-10.  Pure-NumPy training of those exact widths over hundreds of
  federated rounds is impractical, so the factory keeps the topology
  (conv-pool-conv-pool-fc-fc) with reduced channel counts controlled by
  ``cnn_scale``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.activations import ReLU
from repro.nn.conv import Conv2D
from repro.nn.linear import Flatten, Linear, Reshape
from repro.nn.losses import l2_penalty, softmax, softmax_cross_entropy
from repro.nn.module import Module, Sequential
from repro.nn.pooling import MaxPool2D

__all__ = ["ClassifierModel", "build_model"]


class ClassifierModel:
    """A classification model with loss/gradient evaluation at any ``w``."""

    def __init__(self, network: Module, num_classes: int, l2_reg: float = 0.0) -> None:
        if num_classes < 2:
            raise ValueError("need at least two classes")
        if l2_reg < 0:
            raise ValueError("l2_reg must be nonnegative")
        self.network = network
        self.num_classes = num_classes
        self.l2_reg = l2_reg

    # -- parameter plumbing --------------------------------------------------

    @property
    def num_params(self) -> int:
        return self.network.num_params

    def get_params(self) -> np.ndarray:
        return self.network.get_flat_params()

    def set_params(self, w: np.ndarray) -> None:
        self.network.set_flat_params(w)

    # -- functional evaluation -------------------------------------------------

    def loss(self, w: np.ndarray, x: np.ndarray, y: np.ndarray) -> float:
        """F(w) on the batch: mean CE + (reg/2)‖w‖²."""
        self.network.set_flat_params(w)
        logits = self.network.forward(x)
        ce, _ = softmax_cross_entropy(logits, y)
        pen, _ = l2_penalty(w, self.l2_reg)
        return ce + pen

    def loss_and_grad(
        self, w: np.ndarray, x: np.ndarray, y: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """F(w) and ∇F(w) on the batch."""
        w = np.asarray(w, dtype=float)
        self.network.set_flat_params(w)
        self.network.zero_grad()
        logits = self.network.forward(x)
        ce, dlogits = softmax_cross_entropy(logits, y)
        self.network.backward(dlogits)
        grad = self.network.get_flat_grads()
        pen, dpen = l2_penalty(w, self.l2_reg)
        return ce + pen, grad + dpen

    def predict(self, w: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Argmax class predictions at parameters ``w``."""
        self.network.set_flat_params(w)
        return np.argmax(self.network.forward(x), axis=1)

    def predict_proba(self, w: np.ndarray, x: np.ndarray) -> np.ndarray:
        self.network.set_flat_params(w)
        return softmax(self.network.forward(x))

    def accuracy(self, w: np.ndarray, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(w, x) == np.asarray(y)))

    def init_params(self, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """A fresh random initialization (does not disturb current params)."""
        # Layers were already randomly initialized at construction; to get an
        # independent draw we perturb deterministically from the given rng.
        w = self.network.get_flat_params()
        if rng is None:
            return w
        return w + 0.0 * rng.standard_normal(w.size)  # construction draw is canonical


def _mlp_network(
    input_dim: int,
    num_classes: int,
    hidden: Tuple[int, ...],
    rng: np.random.Generator,
) -> Sequential:
    layers: list[Module] = []
    prev = input_dim
    for h in hidden:
        layers.append(Linear(prev, h, rng=rng))
        layers.append(ReLU())
        prev = h
    layers.append(Linear(prev, num_classes, rng=rng))
    return Sequential(layers)


def _cnn_network(
    image_shape: Tuple[int, int, int],
    num_classes: int,
    rng: np.random.Generator,
    scale: float,
) -> Sequential:
    h, w, c = image_shape
    c1 = max(2, int(round(8 * scale)))
    c2 = max(2, int(round(16 * scale)))
    fc = max(8, int(round(64 * scale)))
    k = 3 if min(h, w) < 16 else 5
    layers: list[Module] = [Reshape((h, w, c))]
    layers.append(Conv2D(c, c1, kernel_size=k, rng=rng))
    layers.append(ReLU())
    h1, w1 = h - k + 1, w - k + 1
    pool1 = 2 if (h1 % 2 == 0 and w1 % 2 == 0) else 1
    if pool1 > 1:
        layers.append(MaxPool2D(pool1))
        h1, w1 = h1 // pool1, w1 // pool1
    layers.append(Conv2D(c1, c2, kernel_size=3, rng=rng))
    layers.append(ReLU())
    h2, w2 = h1 - 2, w1 - 2
    pool2 = 2 if (h2 % 2 == 0 and w2 % 2 == 0) else 1
    if pool2 > 1:
        layers.append(MaxPool2D(pool2))
        h2, w2 = h2 // pool2, w2 // pool2
    layers.append(Flatten())
    layers.append(Linear(h2 * w2 * c2, fc, rng=rng))
    layers.append(ReLU())
    layers.append(Linear(fc, num_classes, rng=rng))
    return Sequential(layers)


def build_model(
    name: str,
    input_dim: int,
    num_classes: int,
    rng: np.random.Generator,
    hidden: Tuple[int, ...] = (64,),
    image_shape: Optional[Tuple[int, int, int]] = None,
    l2_reg: float = 1e-4,
    cnn_scale: float = 1.0,
) -> ClassifierModel:
    """Construct a :class:`ClassifierModel` by name.

    Parameters
    ----------
    name:
        ``"logreg"``, ``"mlp"`` or ``"cnn"``.
    input_dim:
        Flattened feature dimension of the dataset rows.
    image_shape:
        Required for ``"cnn"``; must satisfy ``prod(image_shape) == input_dim``.
    """
    if name == "logreg":
        net: Module = Sequential([Linear(input_dim, num_classes, rng=rng)])
    elif name == "mlp":
        net = _mlp_network(input_dim, num_classes, hidden, rng)
    elif name == "cnn":
        if image_shape is None:
            raise ValueError("cnn requires image_shape")
        if int(np.prod(image_shape)) != input_dim:
            raise ValueError("image_shape does not match input_dim")
        net = _cnn_network(image_shape, num_classes, rng, cnn_scale)
    else:
        raise ValueError(f"unknown model: {name!r}")
    return ClassifierModel(net, num_classes=num_classes, l2_reg=l2_reg)
