"""Parameter and Module base classes with flat-vector views.

Federated aggregation, DANE's surrogate objective, and the paper's
convergence bookkeeping all treat the model as one flat parameter vector
``w ∈ R^P``.  ``Module`` therefore exposes::

    get_flat_params() / set_flat_params(w)
    get_flat_grads()
    num_params

alongside the usual ``forward`` / ``backward`` layer protocol.  ``backward``
receives the gradient of the scalar loss w.r.t. the layer output and must
return the gradient w.r.t. the layer input while accumulating parameter
gradients into ``Parameter.grad``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = "") -> None:
        self.value = np.asarray(value, dtype=float)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def size(self) -> int:
        return self.value.size

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter({self.name or 'unnamed'}, shape={self.value.shape})"


class Module:
    """Base class for layers and models."""

    def parameters(self) -> List[Parameter]:
        """All trainable parameters, in a stable order."""
        return []

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # ---- flat-vector interface -------------------------------------------------

    @property
    def num_params(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def get_flat_params(self) -> np.ndarray:
        """Concatenate all parameter values into one vector (copy)."""
        ps = self.parameters()
        if not ps:
            return np.zeros(0)
        return np.concatenate([p.value.ravel() for p in ps])

    def set_flat_params(self, w: np.ndarray) -> None:
        """Load parameter values from a flat vector."""
        w = np.asarray(w, dtype=float)
        if w.size != self.num_params:
            raise ValueError(
                f"flat vector has {w.size} entries, model has {self.num_params}"
            )
        offset = 0
        for p in self.parameters():
            chunk = w[offset : offset + p.size]
            p.value[...] = chunk.reshape(p.value.shape)
            offset += p.size

    def get_flat_grads(self) -> np.ndarray:
        """Concatenate all parameter gradients into one vector (copy)."""
        ps = self.parameters()
        if not ps:
            return np.zeros(0)
        return np.concatenate([p.grad.ravel() for p in ps])


class Sequential(Module):
    """A chain of modules applied in order."""

    def __init__(self, layers: Sequence[Module]) -> None:
        self.layers: List[Module] = list(layers)
        if not self.layers:
            raise ValueError("Sequential needs at least one layer")

    def parameters(self) -> List[Parameter]:
        out: List[Parameter] = []
        for layer in self.layers:
            out.extend(layer.parameters())
        return out

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(type(layer).__name__ for layer in self.layers)
        return f"Sequential([{inner}], params={self.num_params})"
