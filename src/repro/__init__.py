"""FedL reproduction: online client selection for federated edge learning
under budget constraint (Su et al., ICPP 2022).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.core` — the FedL controller, online learner, RDCS rounding,
  regret/fit machinery, and the fairness extension.
* :mod:`repro.experiments` — scenario builders, the budget-driven
  experiment loop, figure/table regeneration.
* :mod:`repro.baselines` — FedAvg, FedCS, Pow-d, UCB, oracle.
* substrates: :mod:`repro.nn`, :mod:`repro.fl`, :mod:`repro.net`,
  :mod:`repro.env`, :mod:`repro.datasets`, :mod:`repro.solvers`.
"""

from repro.config import ExperimentConfig, FedLConfig
from repro.rng import RngFactory

__version__ = "1.0.0"

__all__ = ["ExperimentConfig", "FedLConfig", "RngFactory", "__version__"]
