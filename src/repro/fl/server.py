"""The aggregation server (paper Sec. 3.1, "Aggregation on Server").

Per global iteration the server collects the participants' model
differences and gradients and forms

    w^i = w^{i-1} + (1/|P|) Σ_{k ∈ P} d_k,
    ḡ^i = (1/|P|) Σ_{k ∈ P} ∇F_k(w^i),

where ``P`` is the participant set.  The paper's normalization divides by
``|E_t|`` (all *available* clients); dividing by the participant count is
the standard choice and differs only by a constant step-scaling — both are
supported via ``normalize_by``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.datasets.synthetic import Dataset
from repro.nn.models import ClassifierModel

__all__ = ["FLServer"]


class FLServer:
    """Aggregates updates; owns the global model vector and the test set."""

    def __init__(
        self,
        model: ClassifierModel,
        w_init: np.ndarray,
        test_set: Dataset,
        normalize_by: str = "participants",
    ) -> None:
        if normalize_by not in ("participants", "available"):
            raise ValueError("normalize_by must be 'participants' or 'available'")
        self.model = model
        self.w = np.asarray(w_init, dtype=float).copy()
        self.test_set = test_set
        self.normalize_by = normalize_by

    def aggregate_updates(
        self,
        updates: Sequence[np.ndarray],
        num_available: int,
        sample_counts: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Apply the averaged model differences; returns the new ``w``.

        With ``sample_counts`` the average is data-size weighted
        (``ϑ_k = D_k / Σ D`` as in the paper's population loss) — the
        standard FedAvg weighting.  Without it, uniform averaging divided
        by the participant/available count per ``normalize_by``.
        """
        if not updates:
            return self.w
        total = np.zeros_like(self.w)
        if sample_counts is not None:
            counts = np.asarray(list(sample_counts), dtype=float)
            if counts.size != len(updates) or np.any(counts <= 0):
                raise ValueError("sample_counts must be positive, one per update")
            weights = counts / counts.sum()
            for w_k, d in zip(weights, updates):
                d = np.asarray(d, dtype=float)
                if d.shape != self.w.shape:
                    raise ValueError("update shape mismatch")
                total += w_k * d
            self.w = self.w + total
            return self.w
        denom = (
            len(updates) if self.normalize_by == "participants" else max(1, num_available)
        )
        for d in updates:
            d = np.asarray(d, dtype=float)
            if d.shape != self.w.shape:
                raise ValueError("update shape mismatch")
            total += d
        self.w = self.w + total / denom
        return self.w

    def apply_delta(self, delta: np.ndarray) -> np.ndarray:
        """Apply an already-combined model delta (robust aggregators
        compute their own combination; see :mod:`repro.fl.defense`)."""
        delta = np.asarray(delta, dtype=float)
        if delta.shape != self.w.shape:
            raise ValueError("delta shape mismatch")
        self.w = self.w + delta
        return self.w

    @staticmethod
    def aggregate_gradients(grads: Sequence[np.ndarray]) -> np.ndarray:
        """Mean of the participants' gradients (the broadcast ``J_t``/ḡ)."""
        if not grads:
            raise ValueError("no gradients to aggregate")
        return np.mean(np.stack([np.asarray(g, dtype=float) for g in grads]), axis=0)

    # -- evaluation ---------------------------------------------------------------

    def test_accuracy(self) -> float:
        return self.model.accuracy(self.w, self.test_set.x, self.test_set.y)

    def test_loss(self) -> float:
        return self.model.loss(self.w, self.test_set.x, self.test_set.y)

    def weighted_population_loss(
        self,
        clients: Iterable,
        available_mask: np.ndarray,
    ) -> float:
        """``F_t(w) = Σ_k ϑ_k F_{t,k}(w)`` over available clients,
        ``ϑ_k = D_{t,k} / Σ D`` (paper Sec. 3.1 part 1)."""
        avail = np.asarray(available_mask, dtype=bool)
        losses: List[float] = []
        sizes: List[int] = []
        for client in clients:
            if not avail[client.client_id]:
                continue
            losses.append(client.local_loss(self.w))
            sizes.append(client.num_samples)
        if not losses:
            raise ValueError("no available clients to evaluate")
        weights = np.asarray(sizes, dtype=float)
        weights /= weights.sum()
        return float(weights @ np.asarray(losses))
