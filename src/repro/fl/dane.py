"""DANE-style local surrogate objective and inner SGD (paper Sec. 3.1-2).

Each global iteration ``i``, client ``k`` solves

    min_d  G_{t,k}(d) = F_{t,k}(w + d) + σ1/2 ‖d‖²
                        − (∇F_{t,k}(w) − σ2 · ḡ)ᵀ d,

where ``w`` is the broadcast global model and ``ḡ`` the aggregated global
gradient broadcast by the server (the paper's ``J_t(·)``; following FEDL
[7] we take the aggregated *gradient* — the gradient-correction term is
what makes the scheme a distributed approximate Newton method.  The paper's
notation writes the aggregated loss there, which cannot enter an inner
product with ``d``; see DESIGN.md).

Gradient of the surrogate::

    ∇G(d) = ∇F_{t,k}(w + d) + σ1 d − ∇F_{t,k}(w) + σ2 ḡ.

At ``d = 0``: ``∇G(0) = σ2 ḡ`` — the first inner step moves along the
global gradient, then local curvature refines it.

The inner solver is plain minibatch SGD with at most ``max_steps``
gradient steps (the paper: "the maximal value of gradient steps j is a
pre-defined constant"), starting from ``d = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.datasets.synthetic import Dataset
from repro.nn.models import ClassifierModel

__all__ = ["DaneWorkspace", "dane_surrogate_value", "dane_local_step"]


@dataclass(frozen=True)
class DaneWorkspace:
    """Frozen per-iteration context for one client's local solve."""

    w_global: np.ndarray        # broadcast model w_t^{i-1}
    local_grad_at_w: np.ndarray  # ∇F_{t,k}(w) on the full local batch
    global_grad: np.ndarray      # ḡ = server-aggregated gradient (J_t)
    sigma1: float
    sigma2: float

    def __post_init__(self) -> None:
        for name in ("w_global", "local_grad_at_w", "global_grad"):
            object.__setattr__(self, name, np.asarray(getattr(self, name), dtype=float))
        if self.local_grad_at_w.shape != self.w_global.shape:
            raise ValueError("local gradient shape mismatch")
        if self.global_grad.shape != self.w_global.shape:
            raise ValueError("global gradient shape mismatch")
        if self.sigma1 < 0 or self.sigma2 < 0:
            raise ValueError("sigma1/sigma2 must be nonnegative")

    def linear_term(self) -> np.ndarray:
        """The constant vector ``∇F_k(w) − σ2 ḡ`` in the surrogate."""
        return self.local_grad_at_w - self.sigma2 * self.global_grad


def dane_surrogate_value(
    model: ClassifierModel,
    ws: DaneWorkspace,
    d: np.ndarray,
    data: Dataset,
) -> float:
    """``G_{t,k}(d)`` evaluated on the client's full local batch."""
    d = np.asarray(d, dtype=float)
    f = model.loss(ws.w_global + d, data.x, data.y)
    return f + 0.5 * ws.sigma1 * float(d @ d) - float(ws.linear_term() @ d)


def _surrogate_grad(
    model: ClassifierModel,
    ws: DaneWorkspace,
    d: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
) -> Tuple[float, np.ndarray]:
    """(G value on batch, ∇G on batch) at displacement ``d``."""
    f, g = model.loss_and_grad(ws.w_global + d, x, y)
    val = f + 0.5 * ws.sigma1 * float(d @ d) - float(ws.linear_term() @ d)
    grad = g + ws.sigma1 * d - ws.linear_term()
    return val, grad


def dane_local_step(
    model: ClassifierModel,
    ws: DaneWorkspace,
    data: Dataset,
    max_steps: int,
    lr: float,
    batch_size: int,
    rng: np.random.Generator,
    target_eta: Optional[float] = None,
    momentum: float = 0.0,
) -> Tuple[np.ndarray, List[float]]:
    """Run the inner SGD on ``G_{t,k}`` from ``d = 0``.

    ``target_eta`` implements the paper's iteration-control semantics: the
    client iterates *until* its local convergence accuracy reaches the
    tolerated ``η_t`` chosen by the server (estimated from the surrogate
    trajectory after each step), subject to the hard cap ``max_steps``
    ("the maximal value of gradient steps j is a pre-defined constant").
    ``None`` runs exactly ``max_steps`` steps.

    Returns ``(d, trajectory)`` where ``trajectory`` holds the *full-batch*
    surrogate values ``[G(d_0), …, G(d_J)]`` used by
    :func:`repro.fl.convergence.estimate_local_accuracy`.
    """
    if max_steps < 1:
        raise ValueError("max_steps must be >= 1")
    if lr <= 0:
        raise ValueError("lr must be positive")
    if target_eta is not None and not (0.0 <= target_eta < 1.0):
        raise ValueError("target_eta must be in [0, 1)")
    if not (0.0 <= momentum < 1.0):
        raise ValueError("momentum must be in [0, 1)")
    from repro.fl.convergence import estimate_local_accuracy

    n = len(data)
    bs = min(batch_size, n)
    d = np.zeros_like(ws.w_global)
    velocity = np.zeros_like(d)
    trajectory = [dane_surrogate_value(model, ws, d, data)]
    for step in range(max_steps):
        idx = rng.choice(n, size=bs, replace=False) if bs < n else np.arange(n)
        _, grad = _surrogate_grad(model, ws, d, data.x[idx], data.y[idx])
        if momentum > 0.0:
            # Heavy-ball inner updates (Momentum Federated Learning,
            # paper's related work [17]).
            velocity = momentum * velocity - lr * grad
            d = d + velocity
        else:
            d = d - lr * grad
        trajectory.append(dane_surrogate_value(model, ws, d, data))
        if (
            target_eta is not None
            and step >= 1  # need >= 3 trajectory points for the estimator
            and estimate_local_accuracy(trajectory) <= target_eta
        ):
            break
    return d, trajectory
