"""Differential privacy for uploads (related work [29] concerns).

The paper motivates FL partly by privacy, and its related work ([29],
Wang et al.) shows user-level leakage from plain updates.  The standard
mitigation is the Gaussian mechanism per upload:

1. clip the update to an L2 bound ``Δ`` (the sensitivity),
2. add isotropic Gaussian noise ``N(0, σ²Δ²I)``.

Accounting uses zero-concentrated DP (zCDP): one release of the Gaussian
mechanism with noise multiplier σ is ``ρ = 1/(2σ²)``-zCDP; ρ composes
additively, and converts to (ε, δ)-DP via

    ε(δ) = ρ + 2·sqrt(ρ · ln(1/δ)).

:class:`PrivacyAccountant` tracks a client's cumulative ρ over the run
and reports the (ε, δ) spent — the bookkeeping an FL deployment needs to
enforce a privacy budget the same way FedL enforces the monetary one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
import numpy as np

__all__ = ["clip_update", "gaussian_mechanism", "PrivacyAccountant", "DPSpec"]


@dataclass(frozen=True)
class DPSpec:
    """Per-upload privacy parameters."""

    clip_norm: float = 1.0        # Δ, the L2 sensitivity after clipping
    noise_multiplier: float = 1.0  # σ (noise std = σ·Δ)

    def __post_init__(self) -> None:
        if self.clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        if self.noise_multiplier <= 0:
            raise ValueError("noise_multiplier must be positive")

    @property
    def rho_per_release(self) -> float:
        """zCDP cost of one Gaussian-mechanism release."""
        return 1.0 / (2.0 * self.noise_multiplier**2)


def clip_update(d: np.ndarray, clip_norm: float) -> np.ndarray:
    """Scale ``d`` down (never up) so its L2 norm is at most ``clip_norm``."""
    if clip_norm <= 0:
        raise ValueError("clip_norm must be positive")
    d = np.asarray(d, dtype=float)
    norm = float(np.linalg.norm(d))
    if norm <= clip_norm or norm == 0.0:
        return d.copy()
    return d * (clip_norm / norm)


def gaussian_mechanism(
    d: np.ndarray,
    spec: DPSpec,
    rng: np.random.Generator,
) -> np.ndarray:
    """Clip to ``spec.clip_norm`` and add ``N(0, (σΔ)² I)`` noise."""
    clipped = clip_update(d, spec.clip_norm)
    noise = rng.normal(
        0.0, spec.noise_multiplier * spec.clip_norm, size=clipped.shape
    )
    return clipped + noise


class PrivacyAccountant:
    """Additive zCDP accounting with (ε, δ) conversion."""

    def __init__(self) -> None:
        self._rho = 0.0
        self._releases = 0

    @property
    def rho(self) -> float:
        return self._rho

    @property
    def releases(self) -> int:
        return self._releases

    def spend(self, spec: DPSpec, count: int = 1) -> None:
        """Record ``count`` releases under ``spec``."""
        if count < 1:
            raise ValueError("count must be >= 1")
        self._rho += count * spec.rho_per_release
        self._releases += count

    def epsilon(self, delta: float = 1e-5) -> float:
        """(ε, δ) guarantee implied by the accumulated ρ-zCDP."""
        if not (0.0 < delta < 1.0):
            raise ValueError("delta must be in (0, 1)")
        if self._rho == 0.0:
            return 0.0
        return self._rho + 2.0 * math.sqrt(self._rho * math.log(1.0 / delta))

    def remaining_releases(self, spec: DPSpec, epsilon_budget: float,
                           delta: float = 1e-5) -> int:
        """How many more ``spec`` releases fit under ``epsilon_budget``.

        Solves for the largest total ρ with ε(ρ) <= budget, then subtracts
        what is already spent.
        """
        if epsilon_budget <= 0:
            return 0
        # ε(ρ) = ρ + 2√(ρ L) with L = ln(1/δ); solve ρ via the quadratic in √ρ.
        L = math.log(1.0 / delta)
        s = (-2.0 * math.sqrt(L) + math.sqrt(4.0 * L + 4.0 * epsilon_budget)) / 2.0
        rho_max = s * s
        left = rho_max - self._rho
        if left <= 0:
            return 0
        return int(left / spec.rho_per_release)
