"""Vectorized execution of many clients' local solves at once.

The per-client loop in :mod:`repro.fl.round_runner` evaluates the same
small network dozens of times per global iteration — once per client for
the local gradient, then ``sgd_steps`` minibatch gradients plus
``sgd_steps`` full-batch surrogate values inside every DANE solve.  Each
evaluation is a handful of tiny GEMMs, so the run is dominated by Python
and BLAS call overhead rather than arithmetic.

:class:`BatchedClientEngine` stacks the participants' datasets into one
contiguous ``(K, n_max, D)`` tensor (zero-padded to the largest local
dataset) and drives all K solves step-synchronously through
:class:`BatchedSequentialKernel`, a batched re-implementation of the
``Sequential`` forward/backward for dense networks.  Every numpy batched
op used here is *per-slice bit-identical* to its loop equivalent:

* GEMMs never see padded rows: clients are regrouped into equal-length
  sub-batches before any ``np.matmul``, because BLAS derives its panel
  blocking (and hence the floating-point accumulation grouping) from the
  matrix shape — padding the sample axis changes low-order bits even for
  rows that carry real data;
* ``np.matmul`` on exact-length stacked operands computes each slice
  with the same GEMM as the sequential 2-D call;
* elementwise ops and per-row reductions (``max``/``sum``/``exp`` along
  the class axis) do not mix rows;
* scalar reductions (the CE mean over samples, the bias-gradient sum)
  are taken over per-client contiguous slices.

Per-client RNG streams are preserved exactly: each client draws its own
minibatch indices from its own generator in step order, and a client that
early-stops (reached ``target_eta``) simply leaves the active set, so its
draw count matches the sequential loop.

The engine only supports shared-model ``Sequential`` stacks of ``Linear``
and elementwise activations with 2-D inputs (``logreg``/``mlp``); the
round runner falls back to the loop for anything else (CNNs).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fl.convergence import estimate_local_accuracy
from repro.nn.activations import ReLU, Sigmoid, Tanh
from repro.nn.linear import Linear
from repro.nn.models import ClassifierModel
from repro.nn.module import Sequential

__all__ = ["BatchedSequentialKernel", "BatchedClientEngine", "batched_local_losses"]

_ACTIVATIONS = {ReLU: "relu", Tanh: "tanh", Sigmoid: "sigmoid"}

#: Read-only ``np.arange`` tables keyed by length: the label gather in
#: :meth:`BatchedSequentialKernel._evaluate_exact` rebuilds the same small
#: index base tens of thousands of times per experiment.
_ARANGE_CACHE: Dict[int, np.ndarray] = {}


def _flat_arange(size: int) -> np.ndarray:
    """Memoized read-only ``np.arange(size)``."""
    ar = _ARANGE_CACHE.get(size)
    if ar is None:
        ar = np.arange(size)
        ar.setflags(write=False)
        _ARANGE_CACHE[size] = ar
    return ar


class BatchedSequentialKernel:
    """Batched loss/gradient evaluation for a dense ``Sequential`` network.

    Evaluates F(w) = mean-CE + (reg/2)‖w‖² and ∇F for K clients at once,
    at either one shared parameter vector ``w ∈ R^P`` or per-client rows
    ``w ∈ R^{K×P}``, bit-identical to K sequential
    :meth:`repro.nn.models.ClassifierModel.loss_and_grad` calls.
    """

    def __init__(self, network: Sequential) -> None:
        if not self.supports(network):
            raise ValueError("network not supported by the batched kernel")
        self.specs: List[Tuple] = []
        offset = 0
        for layer in network.layers:
            if isinstance(layer, Linear):
                din, dout = layer.weight.value.shape
                w_off = offset
                b_off = offset + din * dout
                self.specs.append(("linear", din, dout, w_off, b_off))
                offset = b_off + dout
            else:
                self.specs.append((_ACTIVATIONS[type(layer)],))
        self.num_params = offset

    @staticmethod
    def supports(network) -> bool:
        """True when every layer is Linear or an elementwise activation."""
        if not isinstance(network, Sequential):
            return False
        for layer in network.layers:
            if not isinstance(layer, (Linear, ReLU, Tanh, Sigmoid)):
                return False
        return isinstance(network.layers[0], Linear)

    # -- forward / backward ----------------------------------------------------

    def _weights(self, w: np.ndarray, spec: Tuple) -> Tuple[np.ndarray, np.ndarray]:
        _, din, dout, w_off, b_off = spec
        if w.ndim == 1:
            return w[w_off:b_off].reshape(din, dout), w[b_off : b_off + dout]
        return (
            w[:, w_off:b_off].reshape(-1, din, dout),
            w[:, b_off : b_off + dout],
        )

    def _forward(
        self, w: np.ndarray, x: np.ndarray, need_cache: bool
    ) -> Tuple[np.ndarray, List[Tuple]]:
        shared = w.ndim == 1
        h = x
        caches: List[Tuple] = []
        for spec in self.specs:
            kind = spec[0]
            if kind == "linear":
                weight, bias = self._weights(w, spec)
                if need_cache:
                    caches.append((h, weight))
                h = np.matmul(h, weight)
                # In-place broadcast add: same elementwise op as `+ bias`.
                h += bias if shared else bias[:, None, :]
            elif kind == "relu":
                mask = h > 0
                if need_cache:
                    caches.append((mask,))
                h = np.where(mask, h, 0.0)
            elif kind == "tanh":
                h = np.tanh(h)
                if need_cache:
                    caches.append((h,))
            else:  # sigmoid
                out = np.empty_like(h, dtype=float)
                pos = h >= 0
                out[pos] = 1.0 / (1.0 + np.exp(-h[pos]))
                ex = np.exp(h[~pos])
                out[~pos] = ex / (1.0 + ex)
                if need_cache:
                    caches.append((out,))
                h = out
        return h, caches

    def evaluate(
        self,
        w: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        lengths: np.ndarray,
        reg: float,
        want_grad: bool = True,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Batched F / ∇F over K padded client stacks.

        ``x`` is ``(K, n_pad, D)`` with rows ``lengths[k]:`` ignored,
        ``y`` is ``(K, n_pad)`` int labels (pad entries must be valid
        class indices; they never contribute).  Returns ``(loss, grad)``
        with ``loss`` of shape ``(K,)`` and ``grad`` of shape ``(K, P)``
        (``None`` when ``want_grad`` is false).

        Clients are processed in equal-length sub-batches so that no GEMM
        ever sees a padded sample axis: BLAS picks its panel blocking from
        the matrix shape, so both reducing over *and* carrying padded rows
        can regroup the floating-point accumulation of the real entries.
        With exact lengths every batched matmul is per-slice bit-identical
        to the sequential 2-D call.
        """
        w = np.asarray(w, dtype=float)
        lengths = np.asarray(lengths)
        length0 = int(lengths[0])
        if np.all(lengths == length0):
            # Uniform lengths (the common minibatch case): no regrouping.
            return self._evaluate_exact(
                w, x[:, :length0], y[:, :length0], reg, want_grad
            )
        k_count = x.shape[0]
        losses = np.empty(k_count)
        flat = np.empty((k_count, self.num_params)) if want_grad else None
        for length in np.unique(lengths):
            idx = np.flatnonzero(lengths == length)
            w_sub = w if w.ndim == 1 else w[idx]
            l_sub, g_sub = self._evaluate_exact(
                w_sub, x[idx, :length], y[idx, :length], reg, want_grad
            )
            losses[idx] = l_sub
            if want_grad:
                flat[idx] = g_sub
        return losses, flat

    def evaluate_sorted(
        self,
        w: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        buckets: Sequence[Tuple[int, int, int]],
        reg: float,
        want_grad: bool = True,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """:meth:`evaluate` for a length-sorted stack.

        ``buckets`` lists the contiguous equal-length row ranges
        ``(start, end, length)``; each is evaluated through zero-copy
        views.  Sub-batch membership — and therefore every GEMM shape and
        result — matches the length-dispatch of :meth:`evaluate`.
        """
        k_count = x.shape[0]
        losses = np.empty(k_count)
        flat = np.empty((k_count, self.num_params)) if want_grad else None
        for s, e, ln in buckets:
            w_sub = w if w.ndim == 1 else w[s:e]
            l_sub, g_sub = self._evaluate_exact(
                w_sub, x[s:e, :ln], y[s:e, :ln], reg, want_grad
            )
            losses[s:e] = l_sub
            if want_grad:
                flat[s:e] = g_sub
        return losses, flat

    def _evaluate_exact(
        self,
        w: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        reg: float,
        want_grad: bool,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """F / ∇F for clients sharing one exact sample count (no padding)."""
        k_count, n, _ = x.shape
        logits, caches = self._forward(w, x, need_cache=want_grad)
        # Row-stable softmax pieces, identical to losses.softmax_cross_entropy.
        z = logits - logits.max(axis=2, keepdims=True)
        # Flat elementwise gather of z[k, i, y[k, i]] (pure indexing, no
        # arithmetic — values identical to take_along_axis).
        num_classes = z.shape[2]
        flat_pick = _flat_arange(k_count * n) * num_classes + y.ravel()
        picked = z.reshape(-1)[flat_pick].reshape(k_count, n)
        # exp/softmax computed in place on z (picked was gathered above, so
        # z is otherwise dead); elementwise values unchanged.
        e = np.exp(z, out=z)
        se = e.sum(axis=2)
        lse = np.log(se)
        diff = lse - picked
        # Reducing the last axis of a contiguous 2-D array applies the same
        # pairwise summation per row as the loop's 1-D np.mean — bitwise
        # identical to per-client means.
        losses = diff.mean(axis=1)
        if reg > 0.0:
            if w.ndim == 1:
                losses = losses + 0.5 * reg * float(w @ w)
            else:
                for k in range(k_count):
                    losses[k] += 0.5 * reg * float(w[k] @ w[k])
        if not want_grad:
            return losses, None
        probs = np.divide(e, se[:, :, None], out=e)
        # One label per row, so the flat scatter matches the loop's
        # probs[arange(n), y] -= 1 (no duplicate index pairs).
        probs.reshape(-1)[flat_pick] -= 1.0
        g = np.divide(probs, float(n), out=probs)
        flat = np.empty((k_count, self.num_params))
        for i in range(len(self.specs) - 1, -1, -1):
            spec, cache = self.specs[i], caches[i]
            kind = spec[0]
            if kind == "linear":
                _, din, dout, w_off, b_off = spec
                h_in, weight = cache
                wgrad = np.matmul(h_in.transpose(0, 2, 1), g)
                flat[:, w_off:b_off] = wgrad.reshape(k_count, din * dout)
                # Last-axis-contiguous reduction: per-slice bitwise equal
                # to each client's g[k].sum(axis=0).
                flat[:, b_off : b_off + dout] = g.sum(axis=1)
                if i > 0:
                    if weight.ndim == 2:
                        g = np.matmul(g, weight.T)
                    else:
                        g = np.matmul(g, weight.transpose(0, 2, 1))
            elif kind == "relu":
                g = np.where(cache[0], g, 0.0)
            elif kind == "tanh":
                g = g * (1.0 - cache[0] ** 2)
            else:  # sigmoid
                g = g * cache[0] * (1.0 - cache[0])
        if reg > 0.0:
            flat = flat + reg * w
        return losses, flat


class _ClientGroup:
    """Participants sharing one set of local-solver hyper-parameters.

    Members are stored sorted by local dataset size, so every equal-length
    sub-batch occupies a contiguous row range (``buckets``) of the padded
    stack and can be evaluated through zero-copy views.  The sort is pure
    bookkeeping: sub-batch *membership* (and hence every GEMM shape) is
    exactly what the unsorted length-dispatch would produce, only the slice
    order inside each batched call changes — and batched ops are computed
    per slice.
    """

    __slots__ = ("positions", "clients", "x", "y", "lengths", "buckets")

    def __init__(self, positions: List[int], clients: List) -> None:
        order = sorted(range(len(clients)), key=lambda j: clients[j].num_samples)
        self.positions = [positions[j] for j in order]
        self.clients = [clients[j] for j in order]
        n_max = max(c.num_samples for c in clients)
        dim = clients[0].data.x.shape[1]
        self.x = np.zeros((len(clients), n_max, dim))
        self.y = np.zeros((len(clients), n_max), dtype=np.int64)
        self.lengths = np.empty(len(clients), dtype=np.int64)
        for j, c in enumerate(self.clients):
            n = c.num_samples
            self.x[j, :n] = c.data.x
            self.y[j, :n] = c.data.y
            self.lengths[j] = n
        # Contiguous equal-length row ranges [(start, end, length), ...].
        self.buckets: List[Tuple[int, int, int]] = []
        start = 0
        for j in range(1, len(self.clients) + 1):
            if j == len(self.clients) or self.lengths[j] != self.lengths[start]:
                self.buckets.append((start, j, int(self.lengths[start])))
                start = j


def _stack_clients(clients: Sequence) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Zero-padded ``(x, y, lengths)`` stack of the clients' datasets."""
    n_max = max(c.num_samples for c in clients)
    dim = clients[0].data.x.shape[1]
    x = np.zeros((len(clients), n_max, dim))
    y = np.zeros((len(clients), n_max), dtype=np.int64)
    lengths = np.empty(len(clients), dtype=np.int64)
    for j, c in enumerate(clients):
        n = c.num_samples
        x[j, :n] = c.data.x
        y[j, :n] = c.data.y
        lengths[j] = n
    return x, y, lengths


def batched_local_losses(
    model: ClassifierModel, clients: Sequence, w: np.ndarray
) -> np.ndarray:
    """Per-client ``F_{t,k}(w)`` for many clients in one batched sweep."""
    kernel = BatchedSequentialKernel(model.network)
    group = _ClientGroup(list(range(len(clients))), list(clients))
    sorted_losses, _ = kernel.evaluate_sorted(
        np.asarray(w, dtype=float),
        group.x,
        group.y,
        group.buckets,
        model.l2_reg,
        want_grad=False,
    )
    losses = np.empty(len(clients))
    losses[group.positions] = sorted_losses
    return losses


class BatchedClientEngine:
    """Round-scoped vectorized executor for one participant set."""

    def __init__(self, model: ClassifierModel, participants: Sequence) -> None:
        self.model = model
        self.kernel = BatchedSequentialKernel(model.network)
        self.participants = list(participants)
        by_key: Dict[Tuple, List[int]] = {}
        for pos, c in enumerate(self.participants):
            key = (
                c.sgd_steps,
                c.sgd_lr,
                c.sigma1,
                c.sigma2,
                c.batch_size,
                c.local_solver,
                c.momentum,
            )
            by_key.setdefault(key, []).append(pos)
        self.groups = [
            _ClientGroup(positions, [self.participants[p] for p in positions])
            for positions in by_key.values()
        ]
        # (w, per-group (loss, grad)) of the last local_grads() sweep, so the
        # solve at the same broadcast point reuses it instead of recomputing.
        self._eval_cache: Optional[Tuple[np.ndarray, List[Tuple]]] = None

    @staticmethod
    def supported(model, participants: Sequence) -> bool:
        """True when every participant can run through the batched kernel."""
        if not isinstance(model, ClassifierModel):
            return False
        if not BatchedSequentialKernel.supports(model.network):
            return False
        for c in participants:
            if c.model is not model:
                return False
            if c.data.x.ndim != 2:
                return False
        return True

    # -- full-batch gradients at a shared point ---------------------------------

    def local_grads(self, w: np.ndarray) -> List[np.ndarray]:
        """``[∇F_{t,k}(w)]`` in participant order (single batched sweep)."""
        w = np.asarray(w, dtype=float)
        per_group: List[Tuple] = []
        grads: List[Optional[np.ndarray]] = [None] * len(self.participants)
        for group in self.groups:
            losses, flat = self.kernel.evaluate_sorted(
                w, group.x, group.y, group.buckets, self.model.l2_reg
            )
            per_group.append((losses, flat))
            for j, pos in enumerate(group.positions):
                grads[pos] = flat[j]
        self._eval_cache = (w.copy(), per_group)
        return grads  # type: ignore[return-value]

    # -- one global iteration ----------------------------------------------------

    def train_iteration_all(
        self,
        w_global: np.ndarray,
        global_grad: np.ndarray,
        target_eta: Optional[float] = None,
    ) -> List[Tuple[np.ndarray, float, List[float]]]:
        """All participants' DANE solves at the broadcast point.

        Returns ``(d, η̂, trajectory)`` per participant, matching
        :meth:`repro.fl.client.FLClient.train_iteration` bit-for-bit.
        """
        w_global = np.asarray(w_global, dtype=float)
        global_grad = np.asarray(global_grad, dtype=float)
        cache = self._eval_cache
        reuse = cache is not None and np.array_equal(cache[0], w_global)
        out: List[Optional[Tuple]] = [None] * len(self.participants)
        for gi, group in enumerate(self.groups):
            if reuse:
                f0, g0 = cache[1][gi]
            else:
                f0, g0 = self.kernel.evaluate_sorted(
                    w_global, group.x, group.y, group.buckets, self.model.l2_reg
                )
            ds, etas, trajs = self._solve_group(
                group, w_global, global_grad, target_eta, f0, g0
            )
            for j, pos in enumerate(group.positions):
                out[pos] = (ds[j], etas[j], trajs[j])
        return out  # type: ignore[return-value]

    def _solve_group(
        self,
        group: _ClientGroup,
        w_global: np.ndarray,
        global_grad: np.ndarray,
        target_eta: Optional[float],
        f0: np.ndarray,
        g0: np.ndarray,
    ) -> Tuple[np.ndarray, List[float], List[List[float]]]:
        c0 = group.clients[0]
        k_count = len(group.clients)
        p = w_global.size
        sigma1 = c0.sigma1
        lr = c0.sgd_lr
        momentum = c0.momentum
        max_steps = c0.sgd_steps
        batch_size = c0.batch_size
        if c0.local_solver == "dane":
            lt = g0 - c0.sigma2 * global_grad[None, :]
        else:  # fedprox: the gradient-correction linear term is dropped
            lt = np.zeros((k_count, p))
        d = np.zeros((k_count, p))
        velocity = np.zeros((k_count, p)) if momentum > 0.0 else None
        # trajectory[k][0] = G(0) = F(w) + σ1/2·0 − lt·0, as in the loop.
        trajs: List[List[float]] = [
            [float(f0[j]) + 0.5 * sigma1 * 0.0 - 0.0] for j in range(k_count)
        ]
        active = list(range(k_count))
        bss = np.minimum(batch_size, group.lengths)
        subsamples = bool(np.any(bss < group.lengths))
        reg = self.model.l2_reg
        kernel = self.kernel

        def bucket_eval(wrows, acts_arr, xs_full, ys_full, lens, want_grad):
            """Equal-length sub-batch sweep over contiguous views.

            ``acts_arr`` is sorted and the group rows are length-sorted, so
            every sub-batch is a contiguous range of both ``wrows`` and the
            (sliced) data stack — the same member sets the length-dispatch
            in :meth:`BatchedSequentialKernel.evaluate` would form, minus
            the fancy-index copies.
            """
            k_act = acts_arr.size
            losses = np.empty(k_act)
            grads = np.empty((k_act, p)) if want_grad else None
            lo_i = 0
            while lo_i < k_act:
                ln = int(lens[lo_i])
                hi_i = int(np.searchsorted(lens, ln, side="right"))
                sel = acts_arr[lo_i:hi_i]
                contiguous = int(sel[-1]) - int(sel[0]) + 1 == hi_i - lo_i
                if contiguous:
                    s = int(sel[0])
                    xs, ys = xs_full[s : s + hi_i - lo_i, :ln], ys_full[s : s + hi_i - lo_i, :ln]
                else:
                    xs, ys = xs_full[sel, :ln], ys_full[sel, :ln]
                l_sub, g_sub = kernel._evaluate_exact(
                    wrows[lo_i:hi_i], xs, ys, reg, want_grad
                )
                losses[lo_i:hi_i] = l_sub
                if want_grad:
                    grads[lo_i:hi_i] = g_sub
                lo_i = hi_i
            return losses, grads

        for step in range(max_steps):
            if not active:
                break
            acts = np.asarray(active)
            w_eval = w_global[None, :] + d[acts]
            if subsamples:
                bs_act = bss[acts]
                bs_pad = int(bs_act[-1])        # lengths (hence bss) sorted
                xb = np.zeros((len(acts), bs_pad, group.x.shape[2]))
                yb = np.zeros((len(acts), bs_pad), dtype=np.int64)
                for j, k in enumerate(active):
                    n_k = int(group.lengths[k])
                    bs_k = int(bss[k])
                    idx = (
                        group.clients[k].rng.choice(n_k, size=bs_k, replace=False)
                        if bs_k < n_k
                        else np.arange(n_k)
                    )
                    xb[j, :bs_k] = group.x[k, idx]
                    yb[j, :bs_k] = group.y[k, idx]
                _, gb = bucket_eval(
                    w_eval, np.arange(len(acts)), xb, yb, bs_act, True
                )
            else:
                # Full-batch steps everywhere: the loop draws nothing from
                # any client RNG, so the stacked slices are the minibatches.
                _, gb = bucket_eval(
                    w_eval, acts, group.x, group.y, group.lengths[acts], True
                )
            grad = gb + sigma1 * d[acts] - lt[acts]
            if momentum > 0.0:
                velocity[acts] = momentum * velocity[acts] - lr * grad
                d[acts] = d[acts] + velocity[acts]
            else:
                d[acts] = d[acts] - lr * grad
            fb, _ = bucket_eval(
                w_global[None, :] + d[acts],
                acts,
                group.x,
                group.y,
                group.lengths[acts],
                False,
            )
            still: List[int] = []
            for j, k in enumerate(active):
                dd = float(d[k] @ d[k])
                ltd = float(lt[k] @ d[k])
                trajs[k].append(float(fb[j]) + 0.5 * sigma1 * dd - ltd)
                if (
                    target_eta is not None
                    and step >= 1
                    and estimate_local_accuracy(trajs[k]) <= target_eta
                ):
                    continue
                still.append(k)
            active = still
        etas = [estimate_local_accuracy(trajs[j]) for j in range(k_count)]
        return d, etas, trajs
