"""An FL client: holds this epoch's local data and runs the DANE solve.

Clients share one :class:`repro.nn.models.ClassifierModel` instance (the
architecture); all state that differs between clients — data, RNG stream,
the current displacement — lives here.  Sharing the network object is safe
because the simulator executes clients sequentially and every loss/grad
call re-loads its parameter vector.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.datasets.synthetic import Dataset
from repro.fl.convergence import estimate_local_accuracy
from repro.fl.dane import DaneWorkspace, dane_local_step
from repro.nn.models import ClassifierModel

__all__ = ["FLClient"]


class FLClient:
    """One mobile device participating in federated training."""

    def __init__(
        self,
        client_id: int,
        model: ClassifierModel,
        rng: np.random.Generator,
        sgd_steps: int = 5,
        sgd_lr: float = 0.05,
        sigma1: float = 1.0,
        sigma2: float = 1.0,
        batch_size: int = 32,
        local_solver: str = "dane",
        momentum: float = 0.0,
    ) -> None:
        if sgd_steps < 1:
            raise ValueError("sgd_steps must be >= 1")
        if sgd_lr <= 0:
            raise ValueError("sgd_lr must be positive")
        if local_solver not in ("dane", "fedprox"):
            raise ValueError(f"unknown local solver {local_solver!r}")
        if not (0.0 <= momentum < 1.0):
            raise ValueError("momentum must be in [0, 1)")
        self.client_id = client_id
        self.model = model
        self.rng = rng
        self.sgd_steps = sgd_steps
        self.sgd_lr = sgd_lr
        self.sigma1 = sigma1
        self.sigma2 = sigma2
        self.batch_size = batch_size
        self.local_solver = local_solver
        self.momentum = momentum
        self._data: Optional[Dataset] = None

    # -- per-epoch data ----------------------------------------------------------

    def set_data(self, data: Dataset) -> None:
        """Install this epoch's local dataset D_{t,k}."""
        if len(data) == 0:
            raise ValueError("client data must be nonempty")
        self._data = data

    @property
    def data(self) -> Dataset:
        if self._data is None:
            raise RuntimeError(f"client {self.client_id} has no data this epoch")
        return self._data

    @property
    def num_samples(self) -> int:
        return len(self.data)

    # -- evaluation ---------------------------------------------------------------

    def local_loss(self, w: np.ndarray) -> float:
        """F_{t,k}(w) on the full local dataset."""
        return self.model.loss(w, self.data.x, self.data.y)

    def local_grad(self, w: np.ndarray) -> np.ndarray:
        """∇F_{t,k}(w) on the full local dataset."""
        _, g = self.model.loss_and_grad(w, self.data.x, self.data.y)
        return g

    # -- training -------------------------------------------------------------

    def train_iteration(
        self,
        w_global: np.ndarray,
        global_grad: np.ndarray,
        target_eta: Optional[float] = None,
    ) -> Tuple[np.ndarray, float, List[float]]:
        """One DANE local solve at the broadcast model.

        ``target_eta`` is the server's tolerated local accuracy η_t: the
        inner SGD stops early once the estimated accuracy reaches it
        (paper's iteration-control coupling).

        Returns ``(d, η̂, trajectory)``: the model difference to upload, the
        estimated local convergence accuracy, and the full-batch surrogate
        trajectory (for diagnostics/tests).
        """
        loss_val, local_g = self.model.loss_and_grad(
            w_global, self.data.x, self.data.y
        )
        if self.local_solver == "dane":
            ws = DaneWorkspace(
                w_global=np.asarray(w_global, dtype=float),
                local_grad_at_w=local_g,
                global_grad=np.asarray(global_grad, dtype=float),
                sigma1=self.sigma1,
                sigma2=self.sigma2,
            )
        else:
            # FedProx (paper's related work [15]): the pure proximal
            # objective F_k(w + d) + σ1/2 ‖d‖² — DANE with the
            # gradient-correction linear term removed.
            zeros = np.zeros_like(np.asarray(w_global, dtype=float))
            ws = DaneWorkspace(
                w_global=np.asarray(w_global, dtype=float),
                local_grad_at_w=zeros,
                global_grad=zeros,
                sigma1=self.sigma1,
                sigma2=0.0,
            )
        d, trajectory = dane_local_step(
            self.model,
            ws,
            self.data,
            max_steps=self.sgd_steps,
            lr=self.sgd_lr,
            batch_size=self.batch_size,
            rng=self.rng,
            target_eta=target_eta,
            momentum=self.momentum,
        )
        eta_hat = estimate_local_accuracy(trajectory)
        return d, eta_hat, trajectory
