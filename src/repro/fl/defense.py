"""Update validation and Byzantine-robust aggregation.

Every upload crosses this layer before it can touch the global model:

1. **Validation gate** — every update is checked for finite values.  With
   no defense configured a non-finite update raises a *typed*
   :class:`CorruptUpdateError` naming the client, epoch and iteration
   (fast-fail for honest LR blow-ups as much as for attacks); with a
   defense active the update is *quarantined* — dropped from the
   aggregate and recorded against the client — so a NaN/Inf payload can
   never reach aggregation in any engine.
2. **Norm clipping** — under the ``norm-clip`` aggregator, updates whose
   L2 norm exceeds the bound (configured, or the median survivor norm
   when adaptive) are rescaled onto it and recorded as clipped.
3. **Robust aggregation** — pluggable combiners over the surviving
   updates: coordinate-wise ``median``, ``trimmed-mean`` (drop the
   ``⌊trim·n⌋`` extremes per coordinate), ``norm-clip``-ed weighted mean,
   and ``krum`` (Blanchard et al.: the update closest to its ``n−f−2``
   nearest neighbors).  ``mean`` keeps the plain (weighted) average but
   still applies the quarantine gate.

The ``none``/no-defense path performs only the finite check and leaves
values, weights and aggregation order untouched — the attack-free
weighted-mean pipeline stays bit-identical to a build without this
module (bench-gated).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "AGGREGATORS",
    "CorruptUpdateError",
    "TrainingDivergedError",
    "DefenseSpec",
    "DefenseRoundReport",
    "ScreenedUpdates",
    "screen_updates",
    "coordinate_median",
    "trimmed_mean",
    "krum",
    "robust_aggregate",
]

#: Robust aggregators selectable from :class:`repro.config.DefenseConfig`
#: and the CLI.  ``none`` disables the defense layer (gate still fast-fails
#: on non-finite updates); ``mean`` keeps plain averaging but quarantines.
AGGREGATORS = ("none", "mean", "median", "trimmed-mean", "norm-clip", "krum")


class CorruptUpdateError(RuntimeError):
    """A client uploaded a non-finite update and no defense is active."""

    def __init__(self, client_id: int, epoch: int, iteration: int) -> None:
        self.client_id = int(client_id)
        self.epoch = int(epoch)
        self.iteration = int(iteration)
        super().__init__(
            f"client {client_id} uploaded a non-finite update at epoch "
            f"{epoch}, iteration {iteration} (enable a defense aggregator "
            "to quarantine instead of aborting)"
        )


class TrainingDivergedError(RuntimeError):
    """The global model left the finite range (LR blow-up / overflow)."""

    def __init__(self, epoch: int, iteration: int) -> None:
        self.epoch = int(epoch)
        self.iteration = int(iteration)
        super().__init__(
            f"global model became non-finite at epoch {epoch}, iteration "
            f"{iteration} — training diverged"
        )


@dataclass(frozen=True)
class DefenseSpec:
    """Configuration of the validation gate + robust aggregator."""

    aggregator: str = "mean"
    trim_fraction: float = 0.2          # trimmed-mean: drop ⌊trim·n⌋ per side
    norm_bound: Optional[float] = None  # norm-clip bound (None = adaptive:
                                        # the median norm of the survivors)
    krum_f: Optional[int] = None        # assumed Byzantine count (None =
                                        # ⌈n/5⌉, capped so n − f − 2 >= 1)

    def __post_init__(self) -> None:
        if self.aggregator not in AGGREGATORS:
            raise ValueError(
                f"unknown aggregator {self.aggregator!r}; known: {AGGREGATORS}"
            )
        if not (0.0 <= self.trim_fraction < 0.5):
            raise ValueError("trim_fraction must be in [0, 0.5)")
        if self.norm_bound is not None and self.norm_bound <= 0:
            raise ValueError("norm_bound must be positive")
        if self.krum_f is not None and self.krum_f < 1:
            raise ValueError("krum_f must be >= 1")

    @classmethod
    def from_config(cls, defense) -> Optional["DefenseSpec"]:
        """Build from a :class:`repro.config.DefenseConfig` (None = off)."""
        if defense is None or defense.aggregator == "none":
            return None
        return cls(
            aggregator=defense.aggregator,
            trim_fraction=defense.trim_fraction,
            norm_bound=defense.norm_bound,
            krum_f=defense.krum_f,
        )


@dataclass
class DefenseRoundReport:
    """Per-round quarantine bookkeeping (one entry per client id)."""

    aggregator: str
    rejected: np.ndarray                # (M,) int — non-finite uploads dropped
    clipped: np.ndarray                 # (M,) int — norm-clipped uploads
    empty_iterations: int = 0           # iterations where every update died

    @classmethod
    def empty(cls, num_clients: int, aggregator: str) -> "DefenseRoundReport":
        return cls(
            aggregator=aggregator,
            rejected=np.zeros(num_clients, dtype=int),
            clipped=np.zeros(num_clients, dtype=int),
        )

    @property
    def num_quarantined(self) -> int:
        """Distinct clients with at least one rejected upload."""
        return int((self.rejected > 0).sum())

    @property
    def total_rejected(self) -> int:
        return int(self.rejected.sum())

    @property
    def total_clipped(self) -> int:
        return int(self.clipped.sum())


@dataclass
class ScreenedUpdates:
    """Output of the validation gate for one global iteration."""

    updates: List[np.ndarray]
    sample_counts: Optional[List[int]]
    client_ids: List[int]
    rejected_ids: List[int] = field(default_factory=list)
    clipped_ids: List[int] = field(default_factory=list)


def screen_updates(
    updates: Sequence[np.ndarray],
    client_ids: Sequence[int],
    *,
    defense: Optional[DefenseSpec],
    epoch: int,
    iteration: int,
    sample_counts: Optional[Sequence[int]] = None,
) -> ScreenedUpdates:
    """Run the validation gate over one iteration's uploads.

    With ``defense=None`` this is a pure check: the first non-finite
    update raises :class:`CorruptUpdateError` and finite inputs pass
    through untouched (same list objects, same order — the bit-identity
    contract of the undefended path).  With a defense, non-finite updates
    are quarantined and — under ``norm-clip`` — oversized survivors are
    rescaled onto the bound.
    """
    if len(updates) != len(client_ids):
        raise ValueError("one client id per update required")
    if sample_counts is not None and len(sample_counts) != len(updates):
        raise ValueError("one sample count per update required")
    if defense is None:
        # Benign fast path: a single fused reduction per update.  Any
        # NaN/Inf poisons the sum, so a finite sum certifies the whole
        # vector without materializing an elementwise boolean temp.  A
        # non-finite sum can also mean finite values overflowed, so only
        # the exact elementwise scan decides whether to raise.
        for pos, d in enumerate(updates):
            if not np.isfinite(np.sum(d)) and not np.all(np.isfinite(d)):
                raise CorruptUpdateError(client_ids[pos], epoch, iteration)
        return ScreenedUpdates(
            updates=list(updates),
            sample_counts=list(sample_counts) if sample_counts is not None else None,
            client_ids=[int(c) for c in client_ids],
        )
    finite = [bool(np.isfinite(d).all()) for d in updates]
    kept: List[np.ndarray] = []
    kept_counts: List[int] = [] if sample_counts is not None else None
    kept_ids: List[int] = []
    rejected: List[int] = []
    for pos, (ok, d) in enumerate(zip(finite, updates)):
        if not ok:
            rejected.append(int(client_ids[pos]))
            continue
        kept.append(np.asarray(d, dtype=float))
        kept_ids.append(int(client_ids[pos]))
        if kept_counts is not None:
            kept_counts.append(int(sample_counts[pos]))
    clipped: List[int] = []
    if defense.aggregator == "norm-clip" and kept:
        norms = np.asarray([float(np.linalg.norm(d)) for d in kept])
        bound = (
            defense.norm_bound
            if defense.norm_bound is not None
            else float(np.median(norms))
        )
        if bound > 0.0:
            for pos, (d, norm) in enumerate(zip(kept, norms)):
                if norm > bound:
                    kept[pos] = d * (bound / norm)
                    clipped.append(kept_ids[pos])
    return ScreenedUpdates(
        updates=kept,
        sample_counts=kept_counts,
        client_ids=kept_ids,
        rejected_ids=rejected,
        clipped_ids=clipped,
    )


# -- robust combiners ----------------------------------------------------------


def _stacked(updates: Sequence[np.ndarray]) -> np.ndarray:
    if not updates:
        raise ValueError("no updates to aggregate")
    return np.stack([np.asarray(d, dtype=float) for d in updates])


def coordinate_median(updates: Sequence[np.ndarray]) -> np.ndarray:
    """Coordinate-wise median of the updates (unweighted)."""
    return np.median(_stacked(updates), axis=0)


def trimmed_mean(
    updates: Sequence[np.ndarray], trim_fraction: float = 0.2
) -> np.ndarray:
    """Coordinate-wise mean after dropping the ``⌊trim·n⌋`` extremes per side.

    Degenerates to the plain (unweighted) mean when ``⌊trim·n⌋ = 0`` and
    to the coordinate median when trimming would exhaust the sample.
    """
    if not (0.0 <= trim_fraction < 0.5):
        raise ValueError("trim_fraction must be in [0, 0.5)")
    stacked = _stacked(updates)
    n = stacked.shape[0]
    k = int(np.floor(trim_fraction * n))
    if 2 * k >= n:
        return np.median(stacked, axis=0)
    if k == 0:
        return stacked.mean(axis=0)
    ordered = np.sort(stacked, axis=0)
    return ordered[k : n - k].mean(axis=0)


#: Row-tile budget for the blocked pairwise-distance computation: the
#: difference buffer holds at most this many floats (32 MiB of float64),
#: so Krum never materializes the full (n, n, d) tensor at large
#: selected-set sizes.
_KRUM_TILE_FLOATS = 1 << 22


def _pairwise_sq_dists(stacked: np.ndarray) -> np.ndarray:
    """Blocked ``‖u_i − u_j‖²`` matrix.

    Identical output to the monolithic
    ``einsum("ijk,ijk->ij", diffs, diffs)`` over the full difference
    tensor — each (i, j) entry is the same elementwise subtract followed
    by the same k-ordered product sum — computed one fixed-size row tile
    at a time, so peak memory is O(tile·n·d) instead of O(n²·d).
    """
    n, d = stacked.shape
    rows = max(1, min(n, _KRUM_TILE_FLOATS // max(1, n * d)))
    sq = np.empty((n, n))
    buf = np.empty((rows, n, d))
    for i0 in range(0, n, rows):
        i1 = min(n, i0 + rows)
        r = i1 - i0
        np.subtract(stacked[i0:i1, None, :], stacked[None, :, :], out=buf[:r])
        np.einsum("ijk,ijk->ij", buf[:r], buf[:r], out=sq[i0:i1])
    return sq


def krum(updates: Sequence[np.ndarray], f: Optional[int] = None) -> np.ndarray:
    """Krum (Blanchard et al. 2017): the single update with the smallest
    summed squared distance to its ``n − f − 2`` nearest neighbors.

    ``f=None`` assumes ``⌈n/5⌉`` Byzantine clients.  When ``n < f + 3``
    (too few updates for the Krum guarantee) the combiner falls back to
    the coordinate median, which stays bounded for any minority of
    outliers.
    """
    stacked = _stacked(updates)
    n = stacked.shape[0]
    f_eff = int(np.ceil(n / 5)) if f is None else int(f)
    if n - f_eff - 2 < 1:
        return np.median(stacked, axis=0)
    sq = _pairwise_sq_dists(stacked)
    np.fill_diagonal(sq, np.inf)
    neighbor_d = np.sort(sq, axis=1)[:, : n - f_eff - 2]
    scores = neighbor_d.sum(axis=1)
    return stacked[int(np.argmin(scores))].copy()


def robust_aggregate(
    updates: Sequence[np.ndarray], spec: DefenseSpec
) -> np.ndarray:
    """Combined model delta for the non-mean robust aggregators."""
    if spec.aggregator == "median":
        return coordinate_median(updates)
    if spec.aggregator == "trimmed-mean":
        return trimmed_mean(updates, spec.trim_fraction)
    if spec.aggregator == "krum":
        return krum(updates, spec.krum_f)
    raise ValueError(
        f"aggregator {spec.aggregator!r} is not a robust combiner "
        "(mean/norm-clip delegate to the server's weighted average)"
    )
