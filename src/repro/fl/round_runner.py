"""Execution of one federated epoch (paper Alg. 1, lines 2-5).

An epoch consists of ``l_t`` global iterations; each iteration:

1. the server broadcasts ``w^{i-1}`` and the aggregated gradient ``ḡ``,
2. every *selected* client runs its DANE local solve and uploads
   ``d^i_{t,k}`` (plus its fresh local gradient),
3. the server aggregates: ``w^i = w^{i-1} + avg(d)``, ``ḡ = avg(∇F_k(w^i))``.

The runner also records everything the FedL controller needs to observe
*after* acting: per-client local accuracies ``η̂^i_{t,k}``, the participant
loss ``F̃_t(w^{l_t})``, and the all-available-clients loss ``F_t(w^{l_t})``
for constraint (3d).

Two execution engines produce bit-identical results: ``"loop"`` runs the
clients sequentially (the reference implementation), ``"batched"`` drives
all local solves through :class:`repro.fl.batched.BatchedClientEngine` in
stacked numpy ops.  ``"auto"`` (default) picks batched whenever the model
supports it (dense ``Sequential`` stacks; CNNs fall back to the loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.fl.batched import BatchedClientEngine, batched_local_losses
from repro.fl.client import FLClient
from repro.fl.compression import FLOAT_BITS, compress_update
from repro.fl.privacy import gaussian_mechanism
from repro.fl.server import FLServer
from repro.obs import get_telemetry

__all__ = ["RoundResult", "run_federated_round"]


@dataclass(frozen=True)
class RoundResult:
    """Observables of one epoch, available once the epoch has run."""

    w: np.ndarray                       # w_t^{l_t}
    iterations: int                     # l_t actually performed
    local_etas: np.ndarray              # max-over-iterations η̂_{t,k} (NaN if not selected)
    participant_loss: float             # F̃_t(w^{l_t}) (selected clients, x-weighted)
    population_loss: float              # F_t(w^{l_t}) over all available clients
    test_accuracy: float
    test_loss: float
    eta_max: float                      # max_k η̂_{t,k} over participants (paper eq. 1)
    upload_ratio: Optional[np.ndarray] = None   # (M,) mean compressed/full upload
                                        # size per participant (None → filled with
                                        # ones; 1.0 for non-participants)
    local_losses: Optional[np.ndarray] = None   # (M,) F_{t,k}(w^{l_t}) for
                                        # available clients, NaN otherwise —
                                        # the per-client sweep behind
                                        # population_loss, exposed so callers
                                        # don't recompute it

    def __post_init__(self) -> None:
        object.__setattr__(self, "w", np.asarray(self.w, dtype=float))
        object.__setattr__(self, "local_etas", np.asarray(self.local_etas, dtype=float))
        if self.upload_ratio is None:
            object.__setattr__(
                self, "upload_ratio", np.ones_like(self.local_etas)
            )
        else:
            object.__setattr__(
                self, "upload_ratio", np.asarray(self.upload_ratio, dtype=float)
            )
        if self.local_losses is not None:
            object.__setattr__(
                self, "local_losses", np.asarray(self.local_losses, dtype=float)
            )


def run_federated_round(
    server: FLServer,
    clients: Sequence[FLClient],
    selected_mask: np.ndarray,
    available_mask: np.ndarray,
    iterations: int,
    target_eta: float | None = None,
    aggregation: str = "uniform",
    compression: "CompressionSpec | None" = None,
    dp_spec: "DPSpec | None" = None,
    dp_rng: np.random.Generator | None = None,
    dp_accountant: "PrivacyAccountant | None" = None,
    engine: str = "auto",
) -> RoundResult:
    """Run ``iterations`` global iterations with the given participants.

    ``target_eta`` is forwarded to every client's local solve (the
    tolerated local accuracy η_t implied by the iteration decision).
    ``aggregation``: ``"uniform"`` (the paper's update) averages the
    differences equally; ``"weighted"`` weights by local data size
    (standard FedAvg).  ``compression`` (a
    :class:`repro.fl.compression.CompressionSpec`) lossy-compresses every
    upload before aggregation and reports the realized size ratios so the
    latency model can charge the smaller payloads.  ``engine`` selects the
    local-solve executor: ``"loop"`` (sequential reference), ``"batched"``
    (vectorized; raises if the model is unsupported), or ``"auto"``.
    """
    if aggregation not in ("uniform", "weighted"):
        raise ValueError(f"unknown aggregation {aggregation!r}")
    if engine not in ("auto", "loop", "batched"):
        raise ValueError(f"unknown engine {engine!r}")
    sel = np.asarray(selected_mask, dtype=bool)
    avail = np.asarray(available_mask, dtype=bool)
    if sel.shape != avail.shape or sel.size != len(clients):
        raise ValueError("mask shapes must match the client list")
    if np.any(sel & ~avail):
        raise ValueError("cannot select an unavailable client")
    participants: List[FLClient] = [c for c in clients if sel[c.client_id]]
    if not participants:
        raise ValueError("at least one client must be selected")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    batched_engine: Optional[BatchedClientEngine] = None
    if engine != "loop":
        supported = BatchedClientEngine.supported(server.model, participants)
        if engine == "batched" and not supported:
            raise ValueError("batched engine does not support this model")
        if supported:
            batched_engine = BatchedClientEngine(server.model, participants)

    tel = get_telemetry()
    num_available = int(avail.sum())
    # Participant sample sizes, computed once and reused for the weighted
    # aggregation and the participant-loss weights below.
    part_sizes = [c.num_samples for c in participants]
    sample_counts = part_sizes if aggregation == "weighted" else None

    def participant_grads() -> List[np.ndarray]:
        if batched_engine is not None:
            # Also primes the engine's cache so the next iteration's solve
            # reuses these gradients instead of recomputing them.
            return batched_engine.local_grads(server.w)
        return [c.local_grad(server.w) for c in participants]

    # Initial aggregated gradient at the incoming model.
    global_grad = FLServer.aggregate_gradients(participant_grads())
    eta_by_client: Dict[int, float] = {}
    ratio_sum = np.zeros(len(clients))
    compressed_bits = 0.0
    full_bits = 0.0
    prev_global_delta: np.ndarray | None = None
    for _ in range(iterations):
        w_broadcast = server.w.copy()
        updates: List[np.ndarray] = []
        with tel.timer("round.local_solve"):
            solves = (
                batched_engine.train_iteration_all(
                    w_broadcast, global_grad, target_eta=target_eta
                )
                if batched_engine is not None
                else None
            )
            for pos, client in enumerate(participants):
                if solves is not None:
                    d, eta_hat, _ = solves[pos]
                else:
                    d, eta_hat, _ = client.train_iteration(
                        w_broadcast, global_grad, target_eta=target_eta
                    )
                if dp_spec is not None:
                    # DP first (clip + noise on the raw update, [29]
                    # defense), then any compression of the privatized
                    # payload.
                    gen = dp_rng if dp_rng is not None else client.rng
                    d = gaussian_mechanism(d, dp_spec, gen)
                    if dp_accountant is not None:
                        dp_accountant.spend(dp_spec)
                if compression is not None and compression.scheme != "none":
                    comp = compress_update(
                        d,
                        compression.scheme,
                        global_direction=prev_global_delta,
                        topk_fraction=compression.topk_fraction,
                        quantize_bits=compression.quantize_bits,
                        cmfl_threshold=compression.cmfl_threshold,
                    )
                    ratio_sum[client.client_id] += comp.bits / (d.size * FLOAT_BITS)
                    compressed_bits += comp.bits
                    d = comp.vector
                else:
                    ratio_sum[client.client_id] += 1.0
                    compressed_bits += d.size * FLOAT_BITS
                full_bits += d.size * FLOAT_BITS
                updates.append(d)
                prev = eta_by_client.get(client.client_id, 0.0)
                eta_by_client[client.client_id] = max(prev, eta_hat)
        with tel.timer("round.aggregate"):
            server.aggregate_updates(
                updates,
                num_available=num_available,
                sample_counts=sample_counts,
            )
            prev_global_delta = server.w - w_broadcast
            global_grad = FLServer.aggregate_gradients(participant_grads())

    # Observables.
    local_etas = np.full(len(clients), np.nan)
    for cid, eta in eta_by_client.items():
        local_etas[cid] = eta
    # One loss sweep over the available clients feeds the participant loss,
    # the population loss and the per-client observables.
    avail_clients = [c for c in clients if avail[c.client_id]]
    if not avail_clients:
        raise ValueError("no available clients to evaluate")
    if batched_engine is not None and BatchedClientEngine.supported(
        server.model, avail_clients
    ):
        avail_losses = batched_local_losses(server.model, avail_clients, server.w)
    else:
        avail_losses = [c.local_loss(server.w) for c in avail_clients]
    loss_by_id = {
        c.client_id: float(v) for c, v in zip(avail_clients, avail_losses)
    }
    sizes = np.asarray(part_sizes, dtype=float)
    weights = sizes / sizes.sum()
    participant_loss = float(
        weights @ np.asarray([loss_by_id[c.client_id] for c in participants])
    )
    pop_weights = np.asarray([c.num_samples for c in avail_clients], dtype=float)
    pop_weights /= pop_weights.sum()
    population_loss = float(pop_weights @ np.asarray(avail_losses))
    local_losses = np.full(len(clients), np.nan)
    for cid, value in loss_by_id.items():
        local_losses[cid] = value
    upload_ratio = np.ones(len(clients))
    for c in participants:
        upload_ratio[c.client_id] = ratio_sum[c.client_id] / iterations
    if tel.enabled:
        tel.counter("round.upload_bits_full", full_bits)
        tel.counter("round.upload_bits_sent", compressed_bits)
        tel.emit(
            "round.complete",
            data={
                "iterations": iterations,
                "participants": len(participants),
                "eta_max": max(eta_by_client.values()),
                "upload_bits_full": full_bits,
                "upload_bits_sent": compressed_bits,
                "engine": "batched" if batched_engine is not None else "loop",
            },
        )
    return RoundResult(
        w=server.w.copy(),
        iterations=iterations,
        local_etas=local_etas,
        participant_loss=participant_loss,
        population_loss=population_loss,
        test_accuracy=server.test_accuracy(),
        test_loss=server.test_loss(),
        eta_max=max(eta_by_client.values()),
        upload_ratio=upload_ratio,
        local_losses=local_losses,
    )
