"""Execution of one federated epoch (paper Alg. 1, lines 2-5).

An epoch consists of ``l_t`` global iterations; each iteration:

1. the server broadcasts ``w^{i-1}`` and the aggregated gradient ``ḡ``,
2. every *selected* client runs its DANE local solve and uploads
   ``d^i_{t,k}`` (plus its fresh local gradient),
3. the server aggregates: ``w^i = w^{i-1} + avg(d)``, ``ḡ = avg(∇F_k(w^i))``.

The runner also records everything the FedL controller needs to observe
*after* acting: per-client local accuracies ``η̂^i_{t,k}``, the participant
loss ``F̃_t(w^{l_t})``, and the all-available-clients loss ``F_t(w^{l_t})``
for constraint (3d).

Two execution engines produce bit-identical results: ``"loop"`` runs the
clients sequentially (the reference implementation), ``"batched"`` drives
all local solves through :class:`repro.fl.batched.BatchedClientEngine` in
stacked numpy ops.  ``"auto"`` (default) picks batched whenever the model
supports it (dense ``Sequential`` stacks; CNNs fall back to the loop).

A third engine, ``"des"``, first simulates the round on the event-driven
network runtime (:mod:`repro.sim`) and then trains with the *per-
iteration contributor sets* the simulation produced: stragglers dropped
by a deadline, clients lost to mid-round faults, or uploads cancelled by
an async quorum simply stop contributing from that iteration on.  With
faults and deadlines disabled under sync aggregation every contributor
set is the full participant list and the engine is bit-identical to
``"loop"`` (per-client RNG streams are isolated, so skipping one
client's solve never perturbs another's draw).

The fourth engine, ``"live"``, delegates every local solve to forked
worker processes (:mod:`repro.live`): each iteration broadcasts
``(w, ḡ)`` over sockets and the arrivals — real serialized updates that
survived the shaped upload path — take the place of the in-process
solves.  Aggregation, DP, compression, adversary and defense all still
run here in the server process, in ascending-client-id order, so a
fault-free sync live round is bit-identical to ``"loop"`` while the
round's *timeline* is measured off the wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.fl.batched import BatchedClientEngine, batched_local_losses
from repro.fl.client import FLClient
from repro.fl.compression import FLOAT_BITS, compress_update
from repro.fl.defense import (
    DefenseRoundReport,
    DefenseSpec,
    TrainingDivergedError,
    robust_aggregate,
    screen_updates,
)
from repro.fl.hierarchy import shard_combine
from repro.fl.privacy import gaussian_mechanism
from repro.live.runtime import LiveRound, LiveRoundOutcome
from repro.fl.server import FLServer
from repro.obs import get_telemetry
from repro.sim.entities import RoundOutcome, SimRoundSpec, simulate_round

__all__ = ["RoundResult", "run_federated_round"]

ENGINES = ("auto", "loop", "batched", "des", "live")


@dataclass(frozen=True)
class RoundResult:
    """Observables of one epoch, available once the epoch has run."""

    w: np.ndarray                       # w_t^{l_t}
    iterations: int                     # l_t actually performed
    local_etas: np.ndarray              # max-over-iterations η̂_{t,k} (NaN if not selected)
    participant_loss: float             # F̃_t(w^{l_t}) (selected clients, x-weighted)
    population_loss: float              # F_t(w^{l_t}) over all available clients
    test_accuracy: float
    test_loss: float
    eta_max: float                      # max_k η̂_{t,k} over participants (paper eq. 1)
    upload_ratio: Optional[np.ndarray] = None   # (M,) mean compressed/full upload
                                        # size per participant (None → filled with
                                        # ones; 1.0 for non-participants)
    local_losses: Optional[np.ndarray] = None   # (M,) F_{t,k}(w^{l_t}) for
                                        # available clients, NaN otherwise —
                                        # the per-client sweep behind
                                        # population_loss, exposed so callers
                                        # don't recompute it
    completion_time: Optional[float] = None     # DES engine: simulated d(E_t)
                                        # (None for the closed-form engines)
    sim: Optional[RoundOutcome] = None  # DES engine: full round outcome
                                        # (drops, retries, timeline)
    live: Optional[LiveRoundOutcome] = None     # live engine: measured round
                                        # outcome (drops, retries, wall times)
    defense: Optional[DefenseRoundReport] = None   # quarantine bookkeeping
                                        # (None when no defense is active)

    def __post_init__(self) -> None:
        object.__setattr__(self, "w", np.asarray(self.w, dtype=float))
        object.__setattr__(self, "local_etas", np.asarray(self.local_etas, dtype=float))
        if self.upload_ratio is None:
            object.__setattr__(
                self, "upload_ratio", np.ones_like(self.local_etas)
            )
        else:
            object.__setattr__(
                self, "upload_ratio", np.asarray(self.upload_ratio, dtype=float)
            )
        if self.local_losses is not None:
            object.__setattr__(
                self, "local_losses", np.asarray(self.local_losses, dtype=float)
            )


def run_federated_round(
    server: FLServer,
    clients: Sequence[FLClient],
    selected_mask: np.ndarray,
    available_mask: np.ndarray,
    iterations: int,
    target_eta: float | None = None,
    aggregation: str = "uniform",
    compression: "CompressionSpec | None" = None,
    dp_spec: "DPSpec | None" = None,
    dp_rng: np.random.Generator | None = None,
    dp_accountant: "PrivacyAccountant | None" = None,
    engine: str = "auto",
    sim_spec: "SimRoundSpec | None" = None,
    sim_rng: np.random.Generator | None = None,
    live_round: LiveRound | None = None,
    adversary: "Adversary | None" = None,
    defense: DefenseSpec | None = None,
    epoch: int = 0,
    eval_mask: np.ndarray | None = None,
    shard_of: np.ndarray | None = None,
) -> RoundResult:
    """Run ``iterations`` global iterations with the given participants.

    ``target_eta`` is forwarded to every client's local solve (the
    tolerated local accuracy η_t implied by the iteration decision).
    ``aggregation``: ``"uniform"`` (the paper's update) averages the
    differences equally; ``"weighted"`` weights by local data size
    (standard FedAvg).  ``compression`` (a
    :class:`repro.fl.compression.CompressionSpec`) lossy-compresses every
    upload before aggregation and reports the realized size ratios so the
    latency model can charge the smaller payloads.  ``engine`` selects the
    local-solve executor: ``"loop"`` (sequential reference), ``"batched"``
    (vectorized; raises if the model is unsupported), ``"des"`` (simulate
    the round on the event-driven runtime first — requires ``sim_spec``,
    a :class:`repro.sim.entities.SimRoundSpec` whose ``client_ids`` are
    the selected clients' ids — then train on the simulated per-iteration
    contributor sets), ``"live"`` (delegate the solves to the forked
    worker fleet behind ``live_round``, a started
    :class:`repro.live.runtime.LiveRound`, and train on the *measured*
    per-iteration arrivals), or ``"auto"``.

    ``adversary`` (a :class:`repro.fl.adversary.Adversary`) corrupts
    compromised participants' payloads after DP/compression — the
    attacker controls the bytes it uploads.  ``defense`` (a
    :class:`repro.fl.defense.DefenseSpec`) screens every upload before
    aggregation: non-finite updates are quarantined (or, with no defense,
    raise a typed :class:`~repro.fl.defense.CorruptUpdateError` naming
    the client, ``epoch`` and iteration) and the surviving updates flow
    through the configured robust aggregator.  The no-defense path leaves
    values and aggregation order bit-identical.

    ``eval_mask`` (large-K observability bound) restricts the end-of-round
    loss sweep to ``available & (eval_mask | selected)`` instead of every
    available client; ``population_loss`` then estimates F_t from that
    subsample.  ``None`` keeps the exact full sweep.  ``shard_of`` (per-
    client shard labels from a :class:`repro.fl.shard.ShardPlan`) switches
    the mean/weighted aggregation to the two-level hierarchical combine
    (per-shard partial sums → global combine) — mathematically equal to
    the flat weighted average, property-tested; only sharded runs pass it.
    """
    if aggregation not in ("uniform", "weighted"):
        raise ValueError(f"unknown aggregation {aggregation!r}")
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}")
    if engine == "des" and sim_spec is None:
        raise ValueError("engine='des' requires a sim_spec")
    if engine == "live" and live_round is None:
        raise ValueError("engine='live' requires a live_round")
    if engine == "live" and dp_spec is not None and dp_rng is None:
        # Per-client RNG streams live in the forked workers; drawing DP
        # noise from the parent-side stream would silently diverge from
        # the loop engine's draw order.
        raise ValueError("engine='live' with DP requires a dedicated dp_rng")
    if engine != "live":
        live_round = None
    sel = np.asarray(selected_mask, dtype=bool)
    avail = np.asarray(available_mask, dtype=bool)
    if sel.shape != avail.shape or sel.size != len(clients):
        raise ValueError("mask shapes must match the client list")
    if np.any(sel & ~avail):
        raise ValueError("cannot select an unavailable client")
    participants: List[FLClient] = [c for c in clients if sel[c.client_id]]
    if not participants:
        raise ValueError("at least one client must be selected")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if live_round is not None:
        spec_ids = {int(i) for i in live_round.spec.client_ids}
        if spec_ids != {c.client_id for c in participants}:
            raise ValueError(
                "live_round.spec.client_ids must match the selected clients"
            )
        if live_round.spec.iterations != iterations:
            raise ValueError("live_round.spec.iterations must match iterations")
    batched_engine: Optional[BatchedClientEngine] = None
    if engine in ("auto", "batched"):
        supported = BatchedClientEngine.supported(server.model, participants)
        if engine == "batched" and not supported:
            raise ValueError("batched engine does not support this model")
        if supported:
            batched_engine = BatchedClientEngine(server.model, participants)

    tel = get_telemetry()
    # DES engine: simulate the round's network timeline first; the
    # simulated per-iteration contributor sets then gate the training
    # loop below (a client dropped at iteration i stops contributing
    # from i on, exactly like the loop engine with a shrinking mask).
    outcome: Optional[RoundOutcome] = None
    contrib_sets: Optional[List[set]] = None
    if engine == "des":
        spec_ids = {int(i) for i in sim_spec.client_ids}
        if spec_ids != {c.client_id for c in participants}:
            raise ValueError("sim_spec.client_ids must match the selected clients")
        if sim_spec.iterations != iterations:
            raise ValueError("sim_spec.iterations must match iterations")
        with tel.timer("sim.round"):
            outcome = simulate_round(sim_spec, rng=sim_rng)
        contrib_sets = [{int(i) for i in ids} for ids in outcome.contributors]
        if tel.enabled:
            _emit_sim_telemetry(tel, sim_spec, outcome)
    num_available = int(avail.sum())
    defense_report = (
        DefenseRoundReport.empty(len(clients), defense.aggregator)
        if defense is not None
        else None
    )
    # Participant sample sizes, computed once and reused for the weighted
    # aggregation and the participant-loss weights below.
    part_sizes = [c.num_samples for c in participants]
    sample_counts = part_sizes if aggregation == "weighted" else None

    def participant_grads(
        parts: Optional[Sequence[FLClient]] = None,
    ) -> List[np.ndarray]:
        if batched_engine is not None:
            # Also primes the engine's cache so the next iteration's solve
            # reuses these gradients instead of recomputing them.
            return batched_engine.local_grads(server.w)
        plist = participants if parts is None else parts
        return [c.local_grad(server.w) for c in plist]

    # Initial aggregated gradient at the incoming model.
    global_grad = FLServer.aggregate_gradients(participant_grads())
    # Flat per-client accumulators (no dicts on the hot path): zeros +
    # greater-than update is exactly the old ``max(prev, eta_hat)`` with a
    # 0.0 prior, masked to NaN below for clients that never contributed.
    eta_acc = np.zeros(len(clients))
    ratio_sum = np.zeros(len(clients))
    contrib_counts = np.zeros(len(clients), dtype=int)
    compressed_bits = 0.0
    full_bits = 0.0
    prev_global_delta: np.ndarray | None = None
    client_by_id = {c.client_id: c for c in participants}
    for it in range(iterations):
        if contrib_sets is None:
            iter_parts = participants
            iter_counts = sample_counts
        else:
            iter_parts = [
                c for c in participants if c.client_id in contrib_sets[it]
            ]
            iter_counts = (
                [c.num_samples for c in iter_parts]
                if aggregation == "weighted"
                else None
            )
        w_broadcast = server.w.copy()
        updates: List[np.ndarray] = []
        update_ids: List[int] = []
        with tel.timer("round.local_solve"):
            live_solves = None
            if live_round is not None:
                # The barrier wait *is* the solve time: workers run the
                # real DANE solves and ship back serialized updates;
                # arrivals come sorted by client id, so the aggregation
                # order below matches the loop engine's.
                arrivals = live_round.run_iteration(
                    it, w_broadcast, global_grad, target_eta=target_eta
                )
                iter_parts = [client_by_id[cid] for cid, _, _ in arrivals]
                iter_counts = (
                    [c.num_samples for c in iter_parts]
                    if aggregation == "weighted"
                    else None
                )
                live_solves = {cid: (d, eta) for cid, d, eta in arrivals}
            solves = (
                batched_engine.train_iteration_all(
                    w_broadcast, global_grad, target_eta=target_eta
                )
                if batched_engine is not None
                else None
            )
            for pos, client in enumerate(iter_parts):
                if live_solves is not None:
                    d, eta_hat = live_solves[client.client_id]
                elif solves is not None:
                    d, eta_hat, _ = solves[pos]
                else:
                    d, eta_hat, _ = client.train_iteration(
                        w_broadcast, global_grad, target_eta=target_eta
                    )
                if dp_spec is not None:
                    # DP first (clip + noise on the raw update, [29]
                    # defense), then any compression of the privatized
                    # payload.
                    gen = dp_rng if dp_rng is not None else client.rng
                    d = gaussian_mechanism(d, dp_spec, gen)
                    if dp_accountant is not None:
                        dp_accountant.spend(dp_spec)
                if compression is not None and compression.scheme != "none":
                    comp = compress_update(
                        d,
                        compression.scheme,
                        global_direction=prev_global_delta,
                        topk_fraction=compression.topk_fraction,
                        quantize_bits=compression.quantize_bits,
                        cmfl_threshold=compression.cmfl_threshold,
                    )
                    ratio_sum[client.client_id] += comp.bits / (d.size * FLOAT_BITS)
                    compressed_bits += comp.bits
                    d = comp.vector
                else:
                    ratio_sum[client.client_id] += 1.0
                    compressed_bits += d.size * FLOAT_BITS
                full_bits += d.size * FLOAT_BITS
                if adversary is not None:
                    # The attacker controls its final payload: corruption
                    # applies after DP/compression, just before upload.
                    d = adversary.corrupt_update(client.client_id, d, epoch)
                updates.append(d)
                update_ids.append(client.client_id)
                contrib_counts[client.client_id] += 1
                if eta_hat > eta_acc[client.client_id]:
                    eta_acc[client.client_id] = eta_hat
        with tel.timer("round.aggregate"):
            # Validation gate: with no defense this only *checks* (raising
            # a typed error on non-finite uploads) and passes the original
            # updates through untouched; with a defense it quarantines and
            # (under norm-clip) rescales.  Either way a NaN/Inf payload
            # can never reach the weighted average below.
            screened = screen_updates(
                updates,
                update_ids,
                defense=defense,
                epoch=epoch,
                iteration=it,
                sample_counts=iter_counts,
            )
            if defense_report is not None:
                for cid in screened.rejected_ids:
                    defense_report.rejected[cid] += 1
                for cid in screened.clipped_ids:
                    defense_report.clipped[cid] += 1
                if not screened.updates:
                    defense_report.empty_iterations += 1
            if defense is None or defense.aggregator in ("mean", "norm-clip"):
                if shard_of is not None and screened.updates:
                    # Sharded runs combine hierarchically: per-shard
                    # partial sums, then a global merge.  Weighted runs map
                    # directly onto shard_combine's weighted average; the
                    # uniform update is the same mean rescaled to the
                    # server's normalizer (sum/denom).
                    labels = shard_of[np.asarray(screened.client_ids)]
                    num_shards = int(shard_of.max()) + 1
                    if screened.sample_counts is not None:
                        w_agg = np.asarray(screened.sample_counts, dtype=float)
                        delta = shard_combine(
                            screened.updates, w_agg, labels, num_shards
                        )
                    else:
                        denom = (
                            len(screened.updates)
                            if server.normalize_by == "participants"
                            else max(1, num_available)
                        )
                        delta = shard_combine(
                            screened.updates,
                            np.ones(len(screened.updates)),
                            labels,
                            num_shards,
                        ) * (len(screened.updates) / denom)
                    server.apply_delta(delta)
                else:
                    # The server's own (weighted) average — bit-identical
                    # to the undefended path when nothing was quarantined.
                    server.aggregate_updates(
                        screened.updates,
                        num_available=num_available,
                        sample_counts=screened.sample_counts,
                    )
            elif screened.updates:
                server.apply_delta(robust_aggregate(screened.updates, defense))
            if not np.isfinite(server.w).all():
                # Honest-run fast fail: finite updates can still overflow
                # the sum (LR blow-up) — stop with a typed error instead
                # of silently training on a non-finite model.
                raise TrainingDivergedError(epoch, it)
            prev_global_delta = server.w - w_broadcast
            global_grad = FLServer.aggregate_gradients(
                participant_grads(iter_parts)
            )

    live_outcome = live_round.finish() if live_round is not None else None
    if live_outcome is not None and tel.enabled:
        _emit_live_telemetry(tel, live_round.spec, live_outcome)
    dynamic = contrib_sets is not None or live_outcome is not None

    # Observables.
    contributed = contrib_counts > 0
    local_etas = np.where(contributed, eta_acc, np.nan)
    eta_max = float(eta_acc[contributed].max())
    # One loss sweep over the available clients feeds the participant loss,
    # the population loss and the per-client observables.  With eval_mask
    # set (large-K runs) the sweep shrinks to the sampled evaluation panel
    # plus everyone selected; population_loss becomes a panel estimate.
    if eval_mask is None:
        sweep = avail
    else:
        sweep = avail & (np.asarray(eval_mask, dtype=bool) | sel)
    avail_clients = [c for c in clients if sweep[c.client_id]]
    if not avail_clients:
        raise ValueError("no available clients to evaluate")
    if batched_engine is not None and BatchedClientEngine.supported(
        server.model, avail_clients
    ):
        avail_losses = batched_local_losses(server.model, avail_clients, server.w)
    else:
        avail_losses = [c.local_loss(server.w) for c in avail_clients]
    sweep_ids = np.asarray([c.client_id for c in avail_clients])
    local_losses = np.full(len(clients), np.nan)
    local_losses[sweep_ids] = np.asarray(avail_losses, dtype=float)
    # Under DES/live, clients that never got an upload through did not
    # shape the model — the participant loss weights only actual
    # contributors.
    eval_parts = participants
    if dynamic:
        eval_parts = [c for c in participants if contrib_counts[c.client_id] > 0]
    sizes = np.asarray(
        part_sizes if not dynamic
        else [c.num_samples for c in eval_parts],
        dtype=float,
    )
    weights = sizes / sizes.sum()
    participant_loss = float(
        weights
        @ local_losses[np.asarray([c.client_id for c in eval_parts])]
    )
    pop_weights = np.asarray([c.num_samples for c in avail_clients], dtype=float)
    pop_weights /= pop_weights.sum()
    population_loss = float(pop_weights @ np.asarray(avail_losses))
    upload_ratio = np.ones(len(clients))
    for c in participants:
        n = int(contrib_counts[c.client_id])
        if n:
            # n == iterations for the closed-form engines; under DES it
            # is the number of iterations this client's upload landed.
            upload_ratio[c.client_id] = ratio_sum[c.client_id] / n
    if tel.enabled:
        tel.counter("round.upload_bits_full", full_bits)
        tel.counter("round.upload_bits_sent", compressed_bits)
        if adversary is not None:
            compromised = [
                c.client_id for c in participants
                if adversary.is_adversary(c.client_id)
            ]
            tel.emit(
                "adversary.round",
                data={
                    "attack": adversary.kind,
                    "active": adversary.active(epoch),
                    "compromised_participants": compromised,
                },
            )
        if defense_report is not None:
            tel.counter(
                "defense.rejected_updates", defense_report.total_rejected
            )
            tel.counter("defense.clipped_updates", defense_report.total_clipped)
            tel.emit(
                "defense.round",
                data={
                    "aggregator": defense_report.aggregator,
                    "rejected": {
                        str(k): int(v)
                        for k, v in enumerate(defense_report.rejected)
                        if v
                    },
                    "clipped": {
                        str(k): int(v)
                        for k, v in enumerate(defense_report.clipped)
                        if v
                    },
                    "empty_iterations": defense_report.empty_iterations,
                    "quarantined_clients": defense_report.num_quarantined,
                },
            )
        tel.emit(
            "round.complete",
            data={
                "iterations": iterations,
                "participants": len(participants),
                "eta_max": eta_max,
                "upload_bits_full": full_bits,
                "upload_bits_sent": compressed_bits,
                "engine": (
                    engine
                    if engine in ("des", "live")
                    else ("batched" if batched_engine is not None else "loop")
                ),
            },
        )
    return RoundResult(
        w=server.w.copy(),
        iterations=iterations,
        local_etas=local_etas,
        participant_loss=participant_loss,
        population_loss=population_loss,
        test_accuracy=server.test_accuracy(),
        test_loss=server.test_loss(),
        eta_max=eta_max,
        upload_ratio=upload_ratio,
        local_losses=local_losses,
        completion_time=(
            outcome.completion_time
            if outcome is not None
            else (
                live_outcome.completion_time
                if live_outcome is not None
                else None
            )
        ),
        sim=outcome,
        live=live_outcome,
        defense=defense_report,
    )


def _emit_live_telemetry(tel, spec, outcome) -> None:
    """Publish the measured round through the telemetry hub (``live.*``).

    Measured wall-clock quantities ride in the ``dur`` slot so they land
    in the event's ``ts`` block, keeping canonical telemetry lines
    comparable across runs (the PR2 isolation rule).
    """
    scale = spec.time_scale
    tel.counter("live.retries", outcome.num_retries)
    tel.counter("live.drops", len(outcome.dropped))
    tel.counter("live.deadline_hits", outcome.deadline_hits)
    tel.counter("live.worker_deaths", outcome.worker_deaths)
    tel.counter("live.worker_restarts", outcome.worker_restarts)
    tel.emit(
        "live.round",
        data={
            "iterations": spec.iterations,
            "aggregation": spec.aggregation,
            "deadline_s": spec.deadline_s,
            "quorum": spec.quorum,
            "time_scale": scale,
            "participants": int(len(spec.client_ids)),
            "survivors": int(len(outcome.survivors)),
            "dropped": {str(k): v for k, v in outcome.dropped.items()},
            "retries": outcome.num_retries,
            "deadline_hits": outcome.deadline_hits,
            "worker_deaths": outcome.worker_deaths,
            "worker_restarts": outcome.worker_restarts,
        },
        dur=outcome.completion_time * scale,
    )
    for cid in spec.client_ids:
        cid = int(cid)
        offsets = outcome.arrival_offsets.get(cid, [])
        tel.emit(
            "live.client",
            data={
                "client": cid,
                "status": outcome.dropped.get(cid, "ok"),
                "contributions": int(
                    sum(1 for ids in outcome.contributors if cid in ids)
                ),
            },
            dur=float(sum(offsets)) * scale,
        )


def _emit_sim_telemetry(tel, spec: SimRoundSpec, outcome: RoundOutcome) -> None:
    """Publish the simulated round through the telemetry hub (``sim.*``)."""
    tel.counter("sim.retries", outcome.num_retries)
    tel.counter("sim.drops", len(outcome.dropped))
    tel.counter("sim.deadline_hits", outcome.deadline_hits)
    tel.emit(
        "sim.round",
        data={
            "completion_time": outcome.completion_time,
            "iterations": spec.iterations,
            "aggregation": spec.aggregation,
            "deadline_s": spec.deadline_s,
            "quorum": spec.quorum,
            "participants": int(len(spec.client_ids)),
            "survivors": int(len(outcome.survivors)),
            "dropped": {str(k): v for k, v in outcome.dropped.items()},
            "retries": outcome.num_retries,
            "deadline_hits": outcome.deadline_hits,
            "iteration_durations": list(outcome.iteration_durations),
        },
    )
    for cid in spec.client_ids:
        cid = int(cid)
        tel.emit(
            "sim.client",
            data={
                "client": cid,
                "busy_s": outcome.client_busy_s.get(cid, 0.0),
                "last_t": outcome.client_last_t.get(cid, 0.0),
                "status": outcome.dropped.get(cid, "ok"),
                "contributions": int(
                    sum(1 for ids in outcome.contributors if cid in ids)
                ),
            },
        )
