"""Execution of one federated epoch (paper Alg. 1, lines 2-5).

An epoch consists of ``l_t`` global iterations; each iteration:

1. the server broadcasts ``w^{i-1}`` and the aggregated gradient ``ḡ``,
2. every *selected* client runs its DANE local solve and uploads
   ``d^i_{t,k}`` (plus its fresh local gradient),
3. the server aggregates: ``w^i = w^{i-1} + avg(d)``, ``ḡ = avg(∇F_k(w^i))``.

The runner also records everything the FedL controller needs to observe
*after* acting: per-client local accuracies ``η̂^i_{t,k}``, the participant
loss ``F̃_t(w^{l_t})``, and the all-available-clients loss ``F_t(w^{l_t})``
for constraint (3d).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.fl.client import FLClient
from repro.fl.compression import FLOAT_BITS, compress_update
from repro.fl.privacy import gaussian_mechanism
from repro.fl.server import FLServer
from repro.obs import get_telemetry

__all__ = ["RoundResult", "run_federated_round"]


@dataclass(frozen=True)
class RoundResult:
    """Observables of one epoch, available once the epoch has run."""

    w: np.ndarray                       # w_t^{l_t}
    iterations: int                     # l_t actually performed
    local_etas: np.ndarray              # max-over-iterations η̂_{t,k} (NaN if not selected)
    participant_loss: float             # F̃_t(w^{l_t}) (selected clients, x-weighted)
    population_loss: float              # F_t(w^{l_t}) over all available clients
    test_accuracy: float
    test_loss: float
    eta_max: float                      # max_k η̂_{t,k} over participants (paper eq. 1)
    upload_ratio: Optional[np.ndarray] = None   # (M,) mean compressed/full upload
                                        # size per participant (None → filled with
                                        # ones; 1.0 for non-participants)

    def __post_init__(self) -> None:
        object.__setattr__(self, "w", np.asarray(self.w, dtype=float))
        object.__setattr__(self, "local_etas", np.asarray(self.local_etas, dtype=float))
        if self.upload_ratio is None:
            object.__setattr__(
                self, "upload_ratio", np.ones_like(self.local_etas)
            )
        else:
            object.__setattr__(
                self, "upload_ratio", np.asarray(self.upload_ratio, dtype=float)
            )


def run_federated_round(
    server: FLServer,
    clients: Sequence[FLClient],
    selected_mask: np.ndarray,
    available_mask: np.ndarray,
    iterations: int,
    target_eta: float | None = None,
    aggregation: str = "uniform",
    compression: "CompressionSpec | None" = None,
    dp_spec: "DPSpec | None" = None,
    dp_rng: np.random.Generator | None = None,
    dp_accountant: "PrivacyAccountant | None" = None,
) -> RoundResult:
    """Run ``iterations`` global iterations with the given participants.

    ``target_eta`` is forwarded to every client's local solve (the
    tolerated local accuracy η_t implied by the iteration decision).
    ``aggregation``: ``"uniform"`` (the paper's update) averages the
    differences equally; ``"weighted"`` weights by local data size
    (standard FedAvg).  ``compression`` (a
    :class:`repro.fl.compression.CompressionSpec`) lossy-compresses every
    upload before aggregation and reports the realized size ratios so the
    latency model can charge the smaller payloads.
    """
    if aggregation not in ("uniform", "weighted"):
        raise ValueError(f"unknown aggregation {aggregation!r}")
    sel = np.asarray(selected_mask, dtype=bool)
    avail = np.asarray(available_mask, dtype=bool)
    if sel.shape != avail.shape or sel.size != len(clients):
        raise ValueError("mask shapes must match the client list")
    if np.any(sel & ~avail):
        raise ValueError("cannot select an unavailable client")
    participants: List[FLClient] = [c for c in clients if sel[c.client_id]]
    if not participants:
        raise ValueError("at least one client must be selected")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")

    tel = get_telemetry()
    num_available = int(avail.sum())
    # Initial aggregated gradient at the incoming model.
    global_grad = FLServer.aggregate_gradients(
        [c.local_grad(server.w) for c in participants]
    )
    eta_by_client: Dict[int, float] = {}
    ratio_sum = np.zeros(len(clients))
    compressed_bits = 0.0
    full_bits = 0.0
    prev_global_delta: np.ndarray | None = None
    for _ in range(iterations):
        w_broadcast = server.w.copy()
        updates: List[np.ndarray] = []
        with tel.timer("round.local_solve"):
            for client in participants:
                d, eta_hat, _ = client.train_iteration(
                    w_broadcast, global_grad, target_eta=target_eta
                )
                if dp_spec is not None:
                    # DP first (clip + noise on the raw update, [29]
                    # defense), then any compression of the privatized
                    # payload.
                    gen = dp_rng if dp_rng is not None else client.rng
                    d = gaussian_mechanism(d, dp_spec, gen)
                    if dp_accountant is not None:
                        dp_accountant.spend(dp_spec)
                if compression is not None and compression.scheme != "none":
                    comp = compress_update(
                        d,
                        compression.scheme,
                        global_direction=prev_global_delta,
                        topk_fraction=compression.topk_fraction,
                        quantize_bits=compression.quantize_bits,
                        cmfl_threshold=compression.cmfl_threshold,
                    )
                    ratio_sum[client.client_id] += comp.bits / (d.size * FLOAT_BITS)
                    compressed_bits += comp.bits
                    d = comp.vector
                else:
                    ratio_sum[client.client_id] += 1.0
                    compressed_bits += d.size * FLOAT_BITS
                full_bits += d.size * FLOAT_BITS
                updates.append(d)
                prev = eta_by_client.get(client.client_id, 0.0)
                eta_by_client[client.client_id] = max(prev, eta_hat)
        with tel.timer("round.aggregate"):
            server.aggregate_updates(
                updates,
                num_available=num_available,
                sample_counts=(
                    [c.num_samples for c in participants]
                    if aggregation == "weighted"
                    else None
                ),
            )
            prev_global_delta = server.w - w_broadcast
            global_grad = FLServer.aggregate_gradients(
                [c.local_grad(server.w) for c in participants]
            )

    # Observables.
    local_etas = np.full(len(clients), np.nan)
    for cid, eta in eta_by_client.items():
        local_etas[cid] = eta
    sizes = np.asarray([c.num_samples for c in participants], dtype=float)
    weights = sizes / sizes.sum()
    participant_loss = float(
        weights @ np.asarray([c.local_loss(server.w) for c in participants])
    )
    population_loss = server.weighted_population_loss(clients, avail)
    upload_ratio = np.ones(len(clients))
    for c in participants:
        upload_ratio[c.client_id] = ratio_sum[c.client_id] / iterations
    if tel.enabled:
        tel.counter("round.upload_bits_full", full_bits)
        tel.counter("round.upload_bits_sent", compressed_bits)
        tel.emit(
            "round.complete",
            data={
                "iterations": iterations,
                "participants": len(participants),
                "eta_max": max(eta_by_client.values()),
                "upload_bits_full": full_bits,
                "upload_bits_sent": compressed_bits,
            },
        )
    return RoundResult(
        w=server.w.copy(),
        iterations=iterations,
        local_etas=local_etas,
        participant_loss=participant_loss,
        population_loss=population_loss,
        test_accuracy=server.test_accuracy(),
        test_loss=server.test_loss(),
        eta_max=max(eta_by_client.values()),
        upload_ratio=upload_ratio,
    )
