"""Hierarchical federated learning across edge clusters (related work [2]).

Abad et al. [2] aggregate across heterogeneous cellular networks in two
levels: clients upload to a nearby small-cell **edge server**, which
aggregates locally and forwards one update over a backhaul to the cloud.
Shorter radio links mean better channels, so the intra-cluster uploads
are faster than the flat client→macro-cell uploads of the paper's model.

This module provides:

* :func:`kmeans` — plain Lloyd's algorithm (from scratch; used to place
  the edge servers at client-density centroids),
* :func:`cluster_clients` — k-means placement + assignment,
* :func:`hierarchical_epoch_latency` — two-level latency:
  ``max over clusters ( max over its participants τ_client→edge
  + τ_edge→cloud )``, with the intra-cluster FDMA band shared only among
  the cluster's participants,
* :func:`hierarchical_round` — two-level aggregation of the model
  differences (mathematically equal to a weighted flat average; what
  changes is the latency/communication structure — verified in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.config import NetworkConfig
from repro.net.fdma import achievable_rate
from repro.net.latency import transmission_latency
from repro.net.pathloss import db_to_linear, dbm_to_watt, pathloss_db

__all__ = [
    "kmeans",
    "Clustering",
    "cluster_clients",
    "hierarchical_epoch_latency",
    "hierarchical_round",
    "shard_combine",
]


def kmeans(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iters: int = 100,
    tol: float = 1e-8,
) -> Tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm: returns ``(centroids (k,d), assignments (N,))``.

    Initialized by sampling k distinct points (k-means++-lite: the first
    uniformly, the rest proportional to squared distance).  Empty clusters
    are re-seeded at the farthest point.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2:
        raise ValueError("points must be (N, d)")
    n = pts.shape[0]
    if not (1 <= k <= n):
        raise ValueError("k must be in [1, N]")
    # k-means++ seeding.
    centroids = [pts[rng.integers(n)]]
    for _ in range(k - 1):
        d2 = np.min(
            ((pts[:, None, :] - np.stack(centroids)[None]) ** 2).sum(-1), axis=1
        )
        total = d2.sum()
        if total <= 0:
            centroids.append(pts[rng.integers(n)])
            continue
        centroids.append(pts[rng.choice(n, p=d2 / total)])
    C = np.stack(centroids)
    assign = np.zeros(n, dtype=int)
    for _ in range(max_iters):
        d2 = ((pts[:, None, :] - C[None]) ** 2).sum(-1)
        assign = np.argmin(d2, axis=1)
        new_C = C.copy()
        for j in range(k):
            members = pts[assign == j]
            if members.size == 0:
                # Re-seed at the globally farthest point.
                new_C[j] = pts[np.argmax(d2.min(axis=1))]
            else:
                new_C[j] = members.mean(axis=0)
        shift = float(np.max(np.abs(new_C - C)))
        C = new_C
        if shift <= tol:
            break
    d2 = ((pts[:, None, :] - C[None]) ** 2).sum(-1)
    return C, np.argmin(d2, axis=1)


@dataclass(frozen=True)
class Clustering:
    """Edge-server placement and client assignment."""

    centroids: np.ndarray       # (k, 2) edge-server positions
    assignments: np.ndarray     # (M,) cluster index per client

    def __post_init__(self) -> None:
        object.__setattr__(self, "centroids", np.asarray(self.centroids, dtype=float))
        object.__setattr__(
            self, "assignments", np.asarray(self.assignments, dtype=int)
        )

    @property
    def num_clusters(self) -> int:
        return self.centroids.shape[0]

    def distances_to_edge(self, positions: np.ndarray) -> np.ndarray:
        """Each client's distance to its own edge server."""
        pos = np.asarray(positions, dtype=float)
        return np.linalg.norm(pos - self.centroids[self.assignments], axis=1)


def cluster_clients(
    positions: np.ndarray,
    num_clusters: int,
    rng: np.random.Generator,
) -> Clustering:
    """Place ``num_clusters`` edge servers by k-means over client positions."""
    centroids, assignments = kmeans(positions, num_clusters, rng)
    return Clustering(centroids=centroids, assignments=assignments)


def hierarchical_epoch_latency(
    clustering: Clustering,
    positions: np.ndarray,
    selected: np.ndarray,
    config: NetworkConfig,
    tau_loc: np.ndarray,
    backhaul_rate_bps: float = 100e6,
    min_distance_m: float = 1.0,
) -> float:
    """Two-level epoch latency for one global iteration.

    Each cluster's participants share that cluster's FDMA band equally
    (every edge server reuses the full ``B`` — spatial reuse); the edge
    server forwards one aggregate of ``upload_bits`` over the backhaul.
    """
    sel = np.asarray(selected, dtype=bool)
    if not sel.any():
        return 0.0
    if backhaul_rate_bps <= 0:
        raise ValueError("backhaul rate must be positive")
    pos = np.asarray(positions, dtype=float)
    dist = np.maximum(clustering.distances_to_edge(pos), min_distance_m)
    pl = np.asarray(pathloss_db(dist), dtype=float)
    gains = np.asarray(db_to_linear(-pl), dtype=float)
    p_watt = float(dbm_to_watt(config.tx_power_dbm))
    n0 = float(dbm_to_watt(config.noise_psd_dbm_hz))
    snr_hz = gains * p_watt / n0

    backhaul = config.upload_bits / backhaul_rate_bps
    worst = 0.0
    for j in range(clustering.num_clusters):
        members = sel & (clustering.assignments == j)
        count = int(members.sum())
        if count == 0:
            continue
        share = config.bandwidth_hz / count
        rates = np.asarray(achievable_rate(share, snr_hz[members]), dtype=float)
        tau_cm = np.asarray(
            transmission_latency(config.upload_bits, rates), dtype=float
        )
        cluster_latency = float(np.max(tau_loc[members] + tau_cm)) + backhaul
        worst = max(worst, cluster_latency)
    return worst


def hierarchical_round(
    updates: Sequence[np.ndarray],
    client_ids: Sequence[int],
    clustering: Clustering,
) -> np.ndarray:
    """Two-level aggregation: per-cluster mean, then mean over clusters
    weighted by cluster participant counts (= the flat mean; asserted in
    tests).  Returned for use in custom hierarchical training loops."""
    if len(updates) != len(client_ids) or not updates:
        raise ValueError("need one client id per update")
    by_cluster: dict[int, List[np.ndarray]] = {}
    for d, cid in zip(updates, client_ids):
        j = int(clustering.assignments[cid])
        by_cluster.setdefault(j, []).append(np.asarray(d, dtype=float))
    total = np.zeros_like(np.asarray(updates[0], dtype=float))
    count = 0
    for members in by_cluster.values():
        cluster_mean = np.mean(np.stack(members), axis=0)
        total += cluster_mean * len(members)
        count += len(members)
    return total / count


def shard_combine(
    updates: np.ndarray,
    weights: np.ndarray,
    labels: np.ndarray,
    num_shards: int,
) -> np.ndarray:
    """Two-level weighted aggregation: per-shard weighted partial sums,
    then a global combine over the shard aggregates.

    Mathematically equal to the flat weighted average
    ``Σ w_i u_i / Σ w_i`` — what changes is the summation structure (each
    shard reduces its own members first, as an edge aggregator would),
    property-tested for random shard counts.  Used by the sharded round
    path where updates arrive grouped by shard.
    """
    stacked = np.asarray(updates, dtype=float)
    w = np.asarray(weights, dtype=float)
    lab = np.asarray(labels, dtype=np.int64)
    if stacked.ndim != 2 or stacked.shape[0] != w.size or w.size != lab.size:
        raise ValueError("need one weight and one shard label per update row")
    if w.size == 0:
        raise ValueError("need at least one update")
    partial = np.zeros((num_shards, stacked.shape[1]))
    shard_w = np.zeros(num_shards)
    np.add.at(partial, lab, stacked * w[:, None])
    np.add.at(shard_w, lab, w)
    total_w = float(shard_w.sum())
    if total_w <= 0:
        raise ValueError("weights must sum to a positive value")
    return partial.sum(axis=0) / total_w
