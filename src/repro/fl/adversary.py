"""Adversarial (Byzantine) client behaviors for robustness studies.

The paper's FL process — like most client-selection work — assumes every
rented client returns an honest update.  This module injects the standard
poisoning models from the Byzantine-FL literature so the defense layer
(:mod:`repro.fl.defense`) and the reliability-aware selection loop can be
exercised end to end:

* ``sign-flip``  — upload ``−scale · d`` (scaled sign-flipping; moves the
  aggregate *away* from the honest descent direction),
* ``scale``      — upload ``scale · d`` (model-boosting / scaled update),
* ``gauss``      — replace the update with i.i.d. ``N(0, scale²)`` noise,
* ``nan``        — upload non-finite values (NaN with one +Inf coordinate),
* ``label-flip`` — train honestly but on label-flipped local data
  (``y → C−1−y``), the classic data-poisoning attack.

Adversary selection and noise draws live on their own
:class:`~repro.rng.RngFactory` streams (``adversary.roster`` and
``adversary.client.<k>``), so enabling an attack never perturbs the
honest clients' RNG streams — attack-free runs stay bit-identical to a
build without this module.  ``sleeper_period`` makes attackers
intermittent ("sleeper" mode: honest except every p-th epoch), which
composes with the DES fault profiles in :mod:`repro.sim.faults` — faults
drop *messages*, the adversary corrupts *content*, and both can be active
in the same round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.datasets.synthetic import Dataset

__all__ = ["ATTACKS", "Adversary"]

#: Attack kinds selectable from :class:`repro.config.AttackConfig` / the CLI.
ATTACKS = ("none", "sign-flip", "label-flip", "scale", "gauss", "nan")


@dataclass(frozen=True)
class _Roster:
    """The deterministic set of compromised clients for one experiment."""

    mask: np.ndarray                    # (M,) bool

    def __post_init__(self) -> None:
        object.__setattr__(self, "mask", np.asarray(self.mask, dtype=bool))


class Adversary:
    """Per-experiment attack state: who is compromised and how they lie.

    The roster is sampled once (``ceil(fraction · M)`` clients, chosen
    uniformly from the ``adversary.roster`` stream) and fixed for the
    whole run — the online learner's reliability feedback only works if
    misbehavior is a stable per-client trait.
    """

    def __init__(
        self,
        kind: str,
        num_clients: int,
        fraction: float,
        roster_rng: np.random.Generator,
        rng_factory,
        scale: float = 10.0,
        sleeper_period: int = 0,
    ) -> None:
        if kind not in ATTACKS:
            raise ValueError(f"unknown attack {kind!r}; known: {ATTACKS}")
        if kind == "none":
            raise ValueError("build no Adversary for attack 'none'")
        if not (0.0 < fraction < 1.0):
            raise ValueError("attack fraction must be in (0, 1)")
        if scale <= 0:
            raise ValueError("attack scale must be positive")
        if sleeper_period < 0:
            raise ValueError("sleeper_period must be >= 0")
        self.kind = kind
        self.num_clients = int(num_clients)
        self.fraction = float(fraction)
        self.scale = float(scale)
        self.sleeper_period = int(sleeper_period)
        self._rng_factory = rng_factory
        num_adv = int(np.ceil(fraction * num_clients))
        num_adv = min(max(num_adv, 1), num_clients - 1)
        chosen = roster_rng.choice(num_clients, size=num_adv, replace=False)
        mask = np.zeros(num_clients, dtype=bool)
        mask[chosen] = True
        self._roster = _Roster(mask=mask)

    @classmethod
    def from_config(cls, attack, num_clients: int, rng_factory) -> Optional["Adversary"]:
        """Build from a :class:`repro.config.AttackConfig` (None for 'none')."""
        if attack is None or attack.kind == "none":
            return None
        return cls(
            kind=attack.kind,
            num_clients=num_clients,
            fraction=attack.fraction,
            roster_rng=rng_factory.get("adversary.roster"),
            rng_factory=rng_factory,
            scale=attack.scale,
            sleeper_period=attack.sleeper_period,
        )

    # -- roster ----------------------------------------------------------------

    @property
    def mask(self) -> np.ndarray:
        """(M,) bool — which clients are compromised."""
        return self._roster.mask

    def is_adversary(self, client_id: int) -> bool:
        return bool(self._roster.mask[client_id])

    def active(self, epoch: int) -> bool:
        """Whether the attack fires this epoch (sleeper mode gates it).

        ``sleeper_period = 0`` attacks every epoch; ``p > 0`` attacks only
        on epochs with ``t % p == p − 1`` (honest the rest of the time).
        """
        if self.sleeper_period == 0:
            return True
        return epoch % self.sleeper_period == self.sleeper_period - 1

    # -- the attacks -----------------------------------------------------------

    def corrupt_update(
        self, client_id: int, d: np.ndarray, epoch: int
    ) -> np.ndarray:
        """The payload client ``client_id`` actually uploads at ``epoch``.

        Honest clients (and sleeping or data-poisoning attackers) return
        ``d`` unchanged — and *by the same object*, so the honest path
        stays allocation- and bit-identical.
        """
        if not self.is_adversary(client_id) or not self.active(epoch):
            return d
        if self.kind == "sign-flip":
            return -self.scale * d
        if self.kind == "scale":
            return self.scale * d
        if self.kind == "gauss":
            rng = self._rng_factory.get(f"adversary.client.{client_id}")
            return rng.normal(0.0, self.scale, size=d.shape)
        if self.kind == "nan":
            bad = np.full_like(np.asarray(d, dtype=float), np.nan)
            if bad.size:
                bad[0] = np.inf            # cover the Inf path too
            return bad
        return d                            # "label-flip" poisons data, not d

    def poison_data(
        self, client_id: int, data: Dataset, epoch: int, num_classes: int
    ) -> Dataset:
        """Label-flipped view of ``data`` for a compromised client.

        Only the ``label-flip`` attack touches data; every other kind (and
        honest clients) get the original object back.
        """
        if (
            self.kind != "label-flip"
            or not self.is_adversary(client_id)
            or not self.active(epoch)
        ):
            return data
        return Dataset(x=data.x, y=(num_classes - 1) - data.y)

    # -- diagnostics -----------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        return {
            "attack": self.kind,
            "fraction": self.fraction,
            "scale": self.scale,
            "sleeper_period": self.sleeper_period,
            "adversaries": [int(k) for k in np.flatnonzero(self._roster.mask)],
        }
