"""Empirical verification of the theory's assumptions.

The paper's guarantees rest on structural assumptions:

* ``F_{t,k}`` is **L-smooth** and **γ-strongly convex** (Sec. 3.1, the
  DANE convergence requirements),
* the per-slot objective/constraint gradients are bounded —
  Assumption 1's ``G_f``, ``G_h``, and the feasible-set radius ``R``.

These cannot be proven for an arbitrary NumPy model, but they can be
*measured*.  This module estimates the constants on concrete data so the
theory benches can check the assumptions hold on the actual workloads
(logistic regression with L2 is provably γ-strongly convex with
``γ = l2_reg``; the measured values confirm the implementation agrees).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.phi import Phi
from repro.core.problem import FedLProblem
from repro.datasets.synthetic import Dataset
from repro.nn.models import ClassifierModel

__all__ = [
    "CurvatureEstimate",
    "estimate_curvature",
    "assumption1_constants",
]


@dataclass(frozen=True)
class CurvatureEstimate:
    """Sampled curvature bounds of a loss surface.

    ``smoothness`` estimates L = sup ‖∇F(u) − ∇F(v)‖/‖u − v‖ and
    ``strong_convexity`` estimates γ = inf (∇F(u) − ∇F(v))ᵀ(u − v)/‖u − v‖²
    over the sampled direction pairs.  For a convex loss 0 <= γ <= L.
    """

    smoothness: float
    strong_convexity: float

    @property
    def condition_number(self) -> float:
        if self.strong_convexity <= 0:
            return float("inf")
        return self.smoothness / self.strong_convexity


def estimate_curvature(
    model: ClassifierModel,
    data: Dataset,
    w: np.ndarray,
    rng: np.random.Generator,
    num_pairs: int = 24,
    radius: float = 0.5,
) -> CurvatureEstimate:
    """Sample gradient differences around ``w`` to bound L and γ.

    Draws random pairs ``(u, v)`` within ``radius`` of ``w`` and evaluates
    the secant quantities; the max ratio lower-bounds L and the min
    curvature lower-bounds... upper-bounds γ.  (Sampling gives one-sided
    estimates: reported L can only undershoot, reported γ can only
    overshoot — the conservative directions for *checking* L-smoothness
    claims and for *falsifying* strong-convexity claims respectively.)
    """
    if num_pairs < 1:
        raise ValueError("num_pairs must be >= 1")
    if radius <= 0:
        raise ValueError("radius must be positive")
    w = np.asarray(w, dtype=float)
    l_max = 0.0
    gamma_min = np.inf
    for _ in range(num_pairs):
        du = rng.normal(size=w.size)
        dv = rng.normal(size=w.size)
        u = w + radius * du / max(np.linalg.norm(du), 1e-12)
        v = w + radius * dv / max(np.linalg.norm(dv), 1e-12)
        _, gu = model.loss_and_grad(u, data.x, data.y)
        _, gv = model.loss_and_grad(v, data.x, data.y)
        diff_w = u - v
        diff_g = gu - gv
        denom = float(diff_w @ diff_w)
        if denom < 1e-16:
            continue
        l_max = max(l_max, float(np.linalg.norm(diff_g)) / np.sqrt(denom))
        gamma_min = min(gamma_min, float(diff_g @ diff_w) / denom)
    return CurvatureEstimate(
        smoothness=l_max,
        strong_convexity=float(gamma_min) if np.isfinite(gamma_min) else 0.0,
    )


def assumption1_constants(
    problem: FedLProblem,
    rng: np.random.Generator,
    num_samples: int = 64,
) -> Tuple[float, float, float]:
    """Measured ``(G_f, G_h, R)`` for one epoch problem (Assumption 1).

    Samples Φ uniformly from the box and returns the max gradient norm of
    ``f_t``, the max norm of ``h_t``, and half the box diameter (the R in
    ``‖m − n‖ <= 2R``).
    """
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    lo, hi = problem.box_bounds()
    g_f = 0.0
    g_h = 0.0
    for _ in range(num_samples):
        v = lo + (hi - lo) * rng.random(lo.size)
        phi = Phi.from_vector(np.maximum(v, np.concatenate([np.zeros(lo.size - 1), [1.0]])))
        g_f = max(g_f, float(np.linalg.norm(problem.grad_f(phi))))
        g_h = max(g_h, float(np.linalg.norm(problem.h(phi))))
    radius = 0.5 * float(np.linalg.norm(hi - lo))
    return g_f, g_h, radius
