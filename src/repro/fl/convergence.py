"""Convergence accounting: local accuracy η and the iteration map l_t.

The paper links the decision variable ``η_t`` (the worst local convergence
accuracy tolerated this epoch) to the number of global iterations via

    l_t(η_t, θ0) = O(log(1/θ0)) / (1 − η_t),

normalized in Sec. 4.2 to ``l_t(η_t) = 1 / (1 − η_t) = ρ_t``.  The change of
variables ``ρ = 1/(1−η)`` (so ``η = 1 − 1/ρ``) is what makes the relaxed
problem convex in ``ρ``.

The local convergence accuracy achieved by the inner solver,

    G(d_final) − G* ≤ η̂ · (G(0) − G*),

cannot be computed exactly (G* is unknown); :func:`estimate_local_accuracy`
estimates it from the surrogate-value trajectory by using the best value
reached as a stand-in for G* with a geometric-tail correction.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "rho_to_eta",
    "eta_to_rho",
    "iterations_for_accuracy",
    "estimate_local_accuracy",
]

#: η̂ is clipped below 1 so ρ = 1/(1−η) stays finite.
ETA_CAP = 0.995


def rho_to_eta(rho: float) -> float:
    """``η = 1 − 1/ρ`` for ``ρ >= 1``."""
    if rho < 1.0:
        raise ValueError("rho must be >= 1")
    return 1.0 - 1.0 / rho


def eta_to_rho(eta: float) -> float:
    """``ρ = 1/(1−η)`` for ``η ∈ [0, 1)``."""
    if not (0.0 <= eta < 1.0):
        raise ValueError("eta must be in [0, 1)")
    return 1.0 / (1.0 - eta)


def iterations_for_accuracy(eta: float, theta0: float = 0.1) -> int:
    """``l_t(η, θ0) = ceil(log(1/θ0)/(1−η))`` — the un-normalized paper map.

    ``θ0`` is the target global convergence accuracy; the paper normalizes
    ``O(log(1/θ0))`` to 1, which corresponds to ``theta0 = 1/e`` here.
    """
    if not (0.0 < theta0 < 1.0):
        raise ValueError("theta0 must be in (0, 1)")
    if not (0.0 <= eta < 1.0):
        raise ValueError("eta must be in [0, 1)")
    return max(1, math.ceil(math.log(1.0 / theta0) / (1.0 - eta)))


def estimate_local_accuracy(surrogate_values: Sequence[float]) -> float:
    """Estimate η̂ = (G_J − G*)/(G_0 − G*) from the inner trajectory.

    Uses ``G* ≈ G_best − gap`` where the residual ``gap`` extrapolates the
    geometric tail of the decrease sequence: if the last decrement is
    ``δ = G_{J−1} − G_J`` and the per-step contraction is ``q``, then the
    remaining suboptimality is about ``δ·q/(1−q)``.  Falls back to treating
    the best seen value as G* when the trajectory is too short or not
    decreasing.

    Returns a value in ``[0, ETA_CAP]``; 0 means the inner solve converged
    essentially exactly, values near 1 mean it barely improved.
    """
    vals = np.asarray(list(surrogate_values), dtype=float)
    if vals.size == 0:
        raise ValueError("need at least one surrogate value")
    g0 = float(vals[0])
    g_best = float(np.min(vals))
    g_final = float(vals[-1])
    denom = g0 - g_best
    if denom <= 1e-15:
        # No progress at all → worst-case accuracy.
        return ETA_CAP if vals.size > 1 else ETA_CAP
    gap = 0.0
    if vals.size >= 3:
        d1 = vals[-2] - vals[-1]
        d2 = vals[-3] - vals[-2]
        if d2 > 1e-15 and 0.0 < d1 < d2:
            q = d1 / d2
            gap = max(0.0, d1 * q / (1.0 - q))
    g_star = g_best - gap
    eta = (g_final - g_star) / max(g0 - g_star, 1e-15)
    return float(np.clip(eta, 0.0, ETA_CAP))
