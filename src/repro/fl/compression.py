"""Communication-efficient uploads: sparsification, quantization, CMFL.

The paper's latency model charges every upload a fixed ``s`` bits; its
related work (CMFL, Wang et al. [28]) reduces communication by filtering
or compressing updates.  This module implements the three standard tools
and the bit accounting that couples them back into the latency model:

* :func:`topk_sparsify` — keep the ``k`` largest-magnitude coordinates
  (the classic gradient-sparsification scheme); transmitted size is
  ``k · (value_bits + index_bits)``.
* :func:`uniform_quantize` — symmetric uniform quantization to ``bits``
  bits per coordinate (plus one float scale).
* :func:`cmfl_relevance` — CMFL's sign-agreement score between a local
  update and the previous global update; uploads below a threshold are
  suppressed entirely (their size is 1 control bit).

All three return a :class:`CompressedUpdate` carrying both the decoded
(lossy) vector the server aggregates and the exact ``bits`` the client
sent, so the simulator's τ_cm reflects the compression.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "CompressedUpdate",
    "CompressionSpec",
    "topk_sparsify",
    "uniform_quantize",
    "cmfl_relevance",
    "compress_update",
]

#: IEEE-754 single precision per transmitted float.
FLOAT_BITS = 32


@dataclass(frozen=True)
class CompressionSpec:
    """Configuration bundle for per-upload compression."""

    scheme: str = "none"        # "none" | "topk" | "quantize" | "cmfl"
    topk_fraction: float = 0.1
    quantize_bits: int = 8
    cmfl_threshold: float = 0.6

    def __post_init__(self) -> None:
        if self.scheme not in ("none", "topk", "quantize", "cmfl"):
            raise ValueError(f"unknown compression scheme {self.scheme!r}")
        if not (0.0 < self.topk_fraction <= 1.0):
            raise ValueError("topk_fraction must be in (0, 1]")
        if not (1 <= self.quantize_bits <= 32):
            raise ValueError("quantize_bits must be in [1, 32]")
        if not (0.0 <= self.cmfl_threshold <= 1.0):
            raise ValueError("cmfl_threshold must be in [0, 1]")


@dataclass(frozen=True)
class CompressedUpdate:
    """A decoded update plus the bits its encoding occupied on the air."""

    vector: np.ndarray
    bits: float
    kept: bool = True          # False when CMFL suppressed the upload

    def __post_init__(self) -> None:
        object.__setattr__(self, "vector", np.asarray(self.vector, dtype=float))
        if self.bits < 0:
            raise ValueError("bits must be nonnegative")


def topk_sparsify(d: np.ndarray, k: int) -> CompressedUpdate:
    """Keep the k largest-|·| coordinates; zero the rest.

    Size: ``k`` values at FLOAT_BITS plus ``k`` indices at
    ``ceil(log2 P)`` bits.
    """
    d = np.asarray(d, dtype=float)
    p = d.size
    if not (1 <= k <= p):
        raise ValueError("k must be in [1, P]")
    out = np.zeros_like(d)
    idx = np.argpartition(np.abs(d), p - k)[p - k:]
    out[idx] = d[idx]
    index_bits = int(np.ceil(np.log2(max(p, 2))))
    return CompressedUpdate(vector=out, bits=float(k * (FLOAT_BITS + index_bits)))


def uniform_quantize(d: np.ndarray, bits: int) -> CompressedUpdate:
    """Symmetric uniform quantization to ``bits`` bits per coordinate.

    Values are snapped to the ``2^bits − 1`` levels spanning
    ``[−max|d|, +max|d|]``; one FLOAT_BITS scale is transmitted alongside.
    Quantization error per coordinate is at most half a step.
    """
    d = np.asarray(d, dtype=float)
    if not (1 <= bits <= 32):
        raise ValueError("bits must be in [1, 32]")
    scale = float(np.max(np.abs(d)))
    if scale == 0.0:
        return CompressedUpdate(vector=np.zeros_like(d), bits=float(FLOAT_BITS))
    levels = 2**bits - 1
    step = 2.0 * scale / levels
    q = np.round((d + scale) / step)
    decoded = q * step - scale
    return CompressedUpdate(
        vector=decoded, bits=float(d.size * bits + FLOAT_BITS)
    )


def cmfl_relevance(d: np.ndarray, global_direction: np.ndarray) -> float:
    """CMFL sign-agreement: fraction of coordinates whose sign matches the
    previous global update's sign (zeros count as agreeing)."""
    d = np.asarray(d, dtype=float)
    g = np.asarray(global_direction, dtype=float)
    if d.shape != g.shape:
        raise ValueError("shapes differ")
    if d.size == 0:
        raise ValueError("empty update")
    agree = np.sign(d) * np.sign(g) >= 0
    return float(agree.mean())


def compress_update(
    d: np.ndarray,
    scheme: str,
    global_direction: np.ndarray | None = None,
    topk_fraction: float = 0.1,
    quantize_bits: int = 8,
    cmfl_threshold: float = 0.6,
    full_bits: float | None = None,
) -> CompressedUpdate:
    """Apply one named compression scheme.

    ``scheme``: ``"none"`` | ``"topk"`` | ``"quantize"`` | ``"cmfl"``.
    ``full_bits`` overrides the uncompressed size (defaults to
    ``P · FLOAT_BITS``); CMFL-suppressed uploads cost 1 bit.
    """
    d = np.asarray(d, dtype=float)
    base_bits = float(full_bits) if full_bits is not None else float(d.size * FLOAT_BITS)
    if scheme == "none":
        return CompressedUpdate(vector=d.copy(), bits=base_bits)
    if scheme == "topk":
        k = max(1, int(round(topk_fraction * d.size)))
        return topk_sparsify(d, k)
    if scheme == "quantize":
        return uniform_quantize(d, quantize_bits)
    if scheme == "cmfl":
        if global_direction is None:
            return CompressedUpdate(vector=d.copy(), bits=base_bits)
        if cmfl_relevance(d, global_direction) < cmfl_threshold:
            return CompressedUpdate(
                vector=np.zeros_like(d), bits=1.0, kept=False
            )
        return CompressedUpdate(vector=d.copy(), bits=base_bits)
    raise ValueError(f"unknown compression scheme {scheme!r}")
