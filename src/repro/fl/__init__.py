"""Federated-learning substrate (paper Sec. 3.1).

Implements the paper's FL process:

* :mod:`repro.fl.dane` — the DANE-style local surrogate
  ``G_{t,k}(d) = F_{t,k}(w+d) + σ1/2 ‖d‖² − (∇F_{t,k}(w) − σ2 ḡ)ᵀ d``
  minimized by inner SGD (the paper's eq. for model training, following
  FEDL [7]).
* :mod:`repro.fl.client` — an FL client holding its per-epoch local data
  and producing ``(d, η̂)`` pairs.
* :mod:`repro.fl.server` — aggregation of updates and gradients.
* :mod:`repro.fl.convergence` — local-accuracy estimation ``η̂^i_{t,k}``
  and the iteration count ``l_t(η_t, θ0)`` mapping (paper eq. after (1)).
* :mod:`repro.fl.round_runner` — one full epoch: ``l_t`` iterations of
  (broadcast → local DANE → aggregate).
"""

from repro.fl.dane import DaneWorkspace, dane_surrogate_value, dane_local_step
from repro.fl.batched import (
    BatchedClientEngine,
    BatchedSequentialKernel,
    batched_local_losses,
)
from repro.fl.client import FLClient
from repro.fl.server import FLServer
from repro.fl.convergence import (
    estimate_local_accuracy,
    iterations_for_accuracy,
    rho_to_eta,
    eta_to_rho,
)
from repro.fl.round_runner import RoundResult, run_federated_round
from repro.fl.adversary import ATTACKS, Adversary
from repro.fl.defense import (
    AGGREGATORS,
    CorruptUpdateError,
    DefenseRoundReport,
    DefenseSpec,
    TrainingDivergedError,
    coordinate_median,
    krum,
    robust_aggregate,
    screen_updates,
    trimmed_mean,
)
from repro.fl.compression import (
    CompressedUpdate,
    CompressionSpec,
    cmfl_relevance,
    compress_update,
    topk_sparsify,
    uniform_quantize,
)
from repro.fl.analysis import (
    CurvatureEstimate,
    assumption1_constants,
    estimate_curvature,
)
from repro.fl.hierarchy import (
    Clustering,
    cluster_clients,
    hierarchical_epoch_latency,
    hierarchical_round,
    kmeans,
    shard_combine,
)
from repro.fl.shard import (
    ShardPlan,
    ShardedFedLPolicy,
    build_shard_plan,
    decompose_budget,
    decompose_floor,
)
from repro.fl.privacy import (
    DPSpec,
    PrivacyAccountant,
    clip_update,
    gaussian_mechanism,
)

__all__ = [
    "DaneWorkspace",
    "dane_surrogate_value",
    "dane_local_step",
    "BatchedClientEngine",
    "BatchedSequentialKernel",
    "batched_local_losses",
    "FLClient",
    "FLServer",
    "estimate_local_accuracy",
    "iterations_for_accuracy",
    "rho_to_eta",
    "eta_to_rho",
    "RoundResult",
    "run_federated_round",
    "ATTACKS",
    "Adversary",
    "AGGREGATORS",
    "CorruptUpdateError",
    "DefenseRoundReport",
    "DefenseSpec",
    "TrainingDivergedError",
    "coordinate_median",
    "krum",
    "robust_aggregate",
    "screen_updates",
    "trimmed_mean",
    "CompressedUpdate",
    "CompressionSpec",
    "cmfl_relevance",
    "compress_update",
    "topk_sparsify",
    "uniform_quantize",
    "CurvatureEstimate",
    "assumption1_constants",
    "estimate_curvature",
    "Clustering",
    "cluster_clients",
    "hierarchical_epoch_latency",
    "hierarchical_round",
    "kmeans",
    "shard_combine",
    "ShardPlan",
    "ShardedFedLPolicy",
    "build_shard_plan",
    "decompose_budget",
    "decompose_floor",
    "DPSpec",
    "PrivacyAccountant",
    "clip_update",
    "gaussian_mechanism",
]
