"""Sharded FedL selection: O(S·(K/S)²) per epoch instead of O(K²).

The flat :class:`~repro.core.fedl.FedLPolicy` solves one global selection
subproblem per epoch whose dominant costs — the RDCS pairing loop over
fractional coordinates and the constraint-matrix work inside the descent
step — grow quadratically with the population size (Theorem 4).  At
K = 10⁵ the flat path spends seconds per epoch inside ``rdcs_round``
alone.

:class:`ShardedFedLPolicy` partitions the fleet into ``S`` shards
(deterministic under the experiment seed), decomposes the global
per-epoch budget across shards proportionally to shard belief-cost mass
(with a redistribution pass for unspent slack), and runs an independent
FedL subproblem per shard — each with its own online learner and
warm-started FISTA state.  Shard decisions are combined into one global
:class:`~repro.baselines.base.Decision` (union of masks, max of
iteration counts).  The cost-aware decomposition follows Luo et al.,
"Cost-Effective Federated Learning Design"; the shard-then-select
structure follows the FedCS resource-pooling idea (see PAPERS.md).

Contracts:

* ``num_shards = 1`` delegates **wholesale** to a flat ``FedLPolicy``
  constructed with the identical arguments and the identical RNG object,
  so single-shard output is bit-identical to the flat path (gated in CI
  and by the ``[scale]`` bench layer).
* ``decompose_budget`` never allocates more than the global remaining
  budget, never allocates a shard more than its demand, and
  redistributes slack deterministically (property-tested).
* The participation floor ``n`` is decomposed exactly
  (``Σ_s n_s = min(n, available)``) proportionally to shard availability;
  when ``n < S`` the floor rotates deterministically across shards with
  the epoch index so every shard participates over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.baselines.base import Decision, EpochContext, RoundFeedback
from repro.config import FedLConfig, ShardConfig
from repro.core.fedl import FedLPolicy
from repro.core.phi import Phi
from repro.fl.hierarchy import kmeans
from repro.obs import get_telemetry

__all__ = [
    "ShardPlan",
    "build_shard_plan",
    "decompose_budget",
    "decompose_floor",
    "ShardedFedLPolicy",
]


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of client ids into shards."""

    shard_of: np.ndarray                # (K,) shard index per client
    members: Tuple[np.ndarray, ...]     # per-shard ascending client-id arrays

    def __post_init__(self) -> None:
        object.__setattr__(self, "shard_of", np.asarray(self.shard_of, dtype=np.int64))
        object.__setattr__(
            self,
            "members",
            tuple(np.asarray(m, dtype=np.int64) for m in self.members),
        )
        if sum(m.size for m in self.members) != self.shard_of.size:
            raise ValueError("members must partition the client ids")

    @property
    def num_clients(self) -> int:
        return self.shard_of.size

    @property
    def num_shards(self) -> int:
        return len(self.members)


def build_shard_plan(
    num_clients: int,
    num_shards: int,
    assignment: str = "contiguous",
    positions: Optional[np.ndarray] = None,
    rng: Optional[np.random.Generator] = None,
) -> ShardPlan:
    """Partition ``num_clients`` ids into ``num_shards`` shards.

    ``"contiguous"`` splits the id range into near-equal blocks;
    ``"kmeans"`` clusters client positions (Lloyd's algorithm from
    :mod:`repro.fl.hierarchy`) so shards align with the edge-aggregator
    geometry.  Both are deterministic given ``rng``.
    """
    if not 1 <= num_shards <= num_clients:
        raise ValueError("num_shards must be in [1, num_clients]")
    if assignment == "contiguous":
        members = np.array_split(np.arange(num_clients, dtype=np.int64), num_shards)
        shard_of = np.empty(num_clients, dtype=np.int64)
        for s, m in enumerate(members):
            shard_of[m] = s
        return ShardPlan(shard_of=shard_of, members=tuple(members))
    if assignment == "kmeans":
        if positions is None or rng is None:
            raise ValueError("kmeans assignment needs positions and rng")
        pos = np.asarray(positions, dtype=float)
        if pos.shape[0] != num_clients:
            raise ValueError("positions must have one row per client")
        _, labels = kmeans(pos, num_shards, rng)
        members = tuple(
            np.flatnonzero(labels == s).astype(np.int64) for s in range(num_shards)
        )
        return ShardPlan(shard_of=labels.astype(np.int64), members=members)
    raise ValueError(f"unknown shard assignment: {assignment!r}")


def decompose_budget(
    total: float,
    masses: np.ndarray,
    demands: np.ndarray,
) -> np.ndarray:
    """Split ``total`` across shards proportionally to ``masses``, capped
    by ``demands``, redistributing unspent slack deterministically.

    Each pass grants every unsaturated shard its mass-proportional share
    of the remaining pool (capped by its residual demand); slack from
    shards that hit their cap funds the next pass.  A pass either
    exhausts the pool or saturates at least one shard, so the fixed point
    is reached in at most ``S`` passes.  Guarantees ``Σ alloc ≤ total``
    and ``alloc_s ≤ demand_s``.
    """
    masses = np.asarray(masses, dtype=float)
    demands = np.asarray(demands, dtype=float)
    if masses.shape != demands.shape:
        raise ValueError("masses and demands must have the same shape")
    alloc = np.zeros_like(demands)
    remaining = float(total)
    for _ in range(masses.size):
        headroom = demands - alloc
        open_ = headroom > 1e-12
        if remaining <= 1e-12 or not open_.any():
            break
        weights = np.where(open_, masses, 0.0)
        weight_sum = float(weights.sum())
        if weight_sum <= 0.0:
            # Degenerate zero-mass shards with demand left: split evenly.
            weights = open_.astype(float)
            weight_sum = float(weights.sum())
        grant = np.minimum(remaining * weights / weight_sum, headroom)
        grant[~open_] = 0.0
        alloc += grant
        remaining -= float(grant.sum())
    return alloc


def decompose_floor(
    n: int,
    caps: np.ndarray,
    offset: int = 0,
) -> np.ndarray:
    """Split the participation floor ``n`` across shards.

    Proportional to capacity (``caps``, the per-shard available-client
    counts) by largest remainder, capped per shard, with the top-up order
    rotated by ``offset`` so that when ``n < S`` the sub-unit quotas
    circulate across shards over epochs instead of starving a fixed
    suffix.  Returns integer floors with ``Σ n_s = min(n, Σ caps)``.
    """
    caps = np.asarray(caps, dtype=np.int64)
    s = caps.size
    target = int(min(int(n), int(caps.sum())))
    floors = np.zeros(s, dtype=np.int64)
    if target <= 0:
        return floors
    quota = target * caps / float(caps.sum())
    floors = np.minimum(np.floor(quota).astype(np.int64), caps)
    short = target - int(floors.sum())
    order = np.argsort(-(quota - np.floor(quota)), kind="stable")
    order = np.roll(order, -(int(offset) % s))
    i = 0
    while short > 0:
        j = int(order[i % s])
        if floors[j] < caps[j]:
            floors[j] += 1
            short -= 1
        i += 1
    return floors


class ShardedFedLPolicy:
    """FedL with per-shard selection subproblems and budget decomposition.

    Drop-in :class:`~repro.baselines.base.SelectionPolicy`; constructed
    transparently by the strategy registry whenever
    ``config.shard.num_shards > 1`` so sweeps, tournaments, and the CLI
    all gain sharding without code changes.
    """

    def __init__(
        self,
        num_clients: int,
        budget: float,
        min_participants: int,
        theta: float,
        rng: np.random.Generator,
        config: Optional[FedLConfig] = None,
        cost_range: tuple[float, float] = (0.1, 12.0),
        shard: Optional[ShardConfig] = None,
        positions: Optional[np.ndarray] = None,
    ) -> None:
        shard_cfg = shard if shard is not None else ShardConfig()
        self.name = "FedL"
        self.rng = rng
        self.shard_config = shard_cfg
        self.num_clients = int(num_clients)
        num_shards = int(shard_cfg.num_shards)
        if num_shards <= 1:
            # Single shard IS the flat path: same constructor arguments,
            # same RNG object, wholesale delegation — bit-identical.
            self._flat: Optional[FedLPolicy] = FedLPolicy(
                num_clients=num_clients,
                budget=budget,
                min_participants=min_participants,
                theta=theta,
                rng=rng,
                config=config,
                cost_range=cost_range,
            )
            self.plan = build_shard_plan(num_clients, 1)
            self.children: Tuple[Optional[FedLPolicy], ...] = (self._flat,)
            self._participated = np.ones(1, dtype=bool)
            return
        self._flat = None
        # One deterministic draw block from the policy stream seeds every
        # shard's child generator (and the k-means assignment).
        seeds = rng.integers(0, 2**63 - 1, size=num_shards + 1)
        if shard_cfg.assignment == "kmeans":
            if positions is None:
                raise ValueError("kmeans shard assignment needs client positions")
            plan = build_shard_plan(
                num_clients,
                num_shards,
                "kmeans",
                positions=positions,
                rng=np.random.default_rng(int(seeds[num_shards])),
            )
        else:
            plan = build_shard_plan(num_clients, num_shards, "contiguous")
        self.plan = plan
        children = []
        for s, members in enumerate(plan.members):
            if members.size == 0:
                children.append(None)
                continue
            share = members.size / num_clients
            children.append(
                FedLPolicy(
                    num_clients=members.size,
                    budget=budget * share,
                    min_participants=max(1, min(members.size, round(min_participants * share))),
                    theta=theta,
                    rng=np.random.default_rng(int(seeds[s])),
                    config=config,
                    cost_range=cost_range,
                )
            )
        self.children = tuple(children)
        self._participated = np.zeros(num_shards, dtype=bool)

    # ------------------------------------------------------------------ select --

    def select(self, ctx: EpochContext) -> Decision:
        if self._flat is not None:
            return self._flat.select(ctx)
        if ctx.num_clients != self.plan.num_clients:
            raise ValueError("context population does not match the shard plan")
        tel = get_telemetry()
        plan = self.plan
        num_shards = plan.num_shards
        avail_counts = np.array(
            [int(ctx.available[m].sum()) for m in plan.members], dtype=np.int64
        )
        floors = decompose_floor(ctx.min_participants, avail_counts, offset=ctx.t)
        active = floors >= 1
        # Belief-cost mass: the same reliability-inflated prices the
        # flat learner descends on, so unreliable shards draw less budget.
        belief = ctx.costs
        penalty = 0.0
        for child in self.children:
            if child is not None:
                penalty = child.config.reliability_penalty
                break
        if ctx.reliability is not None and penalty > 0:
            belief = belief * (1.0 + penalty * (1.0 - ctx.reliability))
        masses = np.zeros(num_shards)
        demands = np.zeros(num_shards)
        for s, members in enumerate(plan.members):
            if not active[s]:
                continue
            avail_members = members[ctx.available[members]]
            if self.shard_config.budget_split == "uniform":
                masses[s] = float(avail_members.size)
            else:
                masses[s] = float(belief[avail_members].sum())
            demands[s] = float(ctx.costs[avail_members].sum())
        allocs = decompose_budget(ctx.remaining_budget, masses, demands)

        mask = np.zeros(self.num_clients, dtype=bool)
        frac = np.zeros(self.num_clients)
        iterations = 1
        rho = float("nan")
        self._participated = active & (avail_counts > 0)
        selected_per_shard = np.zeros(num_shards, dtype=np.int64)
        with tel.timer("shard.select"):
            for s, members in enumerate(plan.members):
                child = self.children[s]
                if child is None or not self._participated[s]:
                    continue
                sub_ctx = EpochContext(
                    t=ctx.t,
                    available=ctx.available[members],
                    costs=ctx.costs[members],
                    remaining_budget=float(allocs[s]),
                    min_participants=int(floors[s]),
                    tau_last=ctx.tau_last[members],
                    local_losses=ctx.local_losses[members],
                    tau_oracle=None if ctx.tau_oracle is None else ctx.tau_oracle[members],
                    reliability=None if ctx.reliability is None else ctx.reliability[members],
                )
                with tel.timer(f"shard.select.s{s}"):
                    decision = child.select(sub_ctx)
                mask[members[decision.selected]] = True
                if decision.fractional_x is not None:
                    frac[members] = decision.fractional_x
                iterations = max(iterations, decision.iterations)
                if np.isnan(rho) or decision.rho > rho:
                    rho = decision.rho
                selected_per_shard[s] = int(decision.selected.sum())
        tel.emit(
            "shard.select",
            data={
                "num_shards": num_shards,
                "active_shards": int(self._participated.sum()),
                "selected_per_shard": selected_per_shard,
                "alloc_total": float(allocs.sum()),
            },
            epoch=ctx.t,
        )
        return Decision(
            selected=mask, iterations=iterations, rho=rho, fractional_x=frac
        )

    # ------------------------------------------------------------------ update --

    def update(self, feedback: RoundFeedback) -> None:
        if self._flat is not None:
            self._flat.update(feedback)
            return
        for s, members in enumerate(self.plan.members):
            child = self.children[s]
            if child is None or not self._participated[s]:
                continue
            child.update(
                RoundFeedback(
                    t=feedback.t,
                    selected=feedback.selected[members],
                    tau_realized=feedback.tau_realized[members],
                    local_etas=feedback.local_etas[members],
                    local_losses=feedback.local_losses[members],
                    population_loss=feedback.population_loss,
                    cost_spent=feedback.cost_spent,
                    epoch_latency=feedback.epoch_latency,
                )
            )

    # ---------------------------------------------------------------- accessors --

    @property
    def phi(self) -> Phi:
        """Global view of the per-shard fractional decisions."""
        if self._flat is not None:
            return self._flat.phi
        x = np.zeros(self.num_clients)
        rho = 1.0
        for s, members in enumerate(self.plan.members):
            child = self.children[s]
            if child is None:
                continue
            x[members] = child.phi.x
            rho = max(rho, child.phi.rho)
        return Phi(x=x, rho=rho)

    @property
    def mu(self) -> np.ndarray:
        if self._flat is not None:
            return self._flat.mu
        return np.concatenate(
            [child.mu for child in self.children if child is not None]
        )
