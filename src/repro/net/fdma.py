"""FDMA uplink rates and bandwidth allocation (paper Sec. 3.2).

The achievable rate of client ``k`` with bandwidth ``b_{t,k}`` is

    r_{t,k} = b_{t,k} · log2(1 + h_k p_k / (N0 b_{t,k})),

with the cell-wide constraint ``Σ_k b_{t,k} = B``.  Besides the equal-share
policy (what the paper's baselines effectively assume), we provide a
water-filling-style allocator that equalizes transmission latency across
the selected clients — useful because the epoch latency is a max over
clients, so equal-latency allocation is the bandwidth-optimal choice for a
fixed selection.
"""

from __future__ import annotations

import numpy as np

from repro.net.channel import ChannelState

__all__ = ["achievable_rate", "equal_share_bandwidth", "allocate_bandwidth"]


def achievable_rate(
    bandwidth_hz: np.ndarray | float,
    snr_per_hz: np.ndarray | float,
) -> np.ndarray | float:
    """Shannon FDMA rate ``b · log2(1 + snr_hz / b)`` in bits/s.

    ``snr_per_hz = h p / N0`` has units of Hz.  The expression is concave
    and increasing in ``b`` and tends to ``snr_per_hz / ln 2`` as b → ∞.
    Zero bandwidth yields zero rate (the b → 0 limit).
    """
    b = np.asarray(bandwidth_hz, dtype=float)
    s = np.asarray(snr_per_hz, dtype=float)
    if np.any(b < 0):
        raise ValueError("bandwidth must be nonnegative")
    if np.any(s < 0):
        raise ValueError("snr must be nonnegative")
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(b > 0, b * np.log2(1.0 + np.divide(
            s, np.where(b > 0, b, 1.0))), 0.0)
    if np.isscalar(bandwidth_hz) and np.isscalar(snr_per_hz):
        return float(out)
    return out


def equal_share_bandwidth(total_hz: float, num_sharing: int) -> float:
    """Equal split of the band among ``num_sharing`` active uploaders."""
    if num_sharing <= 0:
        raise ValueError("need at least one sharing client")
    if total_hz <= 0:
        raise ValueError("total bandwidth must be positive")
    return total_hz / num_sharing


def allocate_bandwidth(
    channel: ChannelState,
    selected: np.ndarray,
    total_hz: float,
    upload_bits: float,
    policy: str = "equal",
    tol: float = 1e-9,
    max_iters: int = 100,
) -> np.ndarray:
    """Allocate the band ``B`` among the selected clients.

    Parameters
    ----------
    channel:
        Current epoch's channel state.
    selected:
        Boolean mask (M,) of uploading clients.
    policy:
        ``"equal"`` — equal share, or ``"min_latency"`` — bisection on the
        common upload latency τ so that ``Σ b_k(τ) = B`` where ``b_k(τ)``
        is the smallest bandwidth giving client k latency τ (equalizes
        τ_cm across clients, minimizing the max).

    Returns
    -------
    np.ndarray
        Per-client bandwidth in Hz (zeros for unselected clients).
    """
    sel = np.asarray(selected, dtype=bool)
    m = sel.size
    bw = np.zeros(m, dtype=float)
    count = int(sel.sum())
    if count == 0:
        return bw
    if policy == "equal":
        bw[sel] = equal_share_bandwidth(total_hz, count)
        return bw
    if policy != "min_latency":
        raise ValueError(f"unknown bandwidth policy: {policy}")

    snr = channel.snr_per_hz()[sel]

    def bits_sent(b: np.ndarray, tau: float) -> np.ndarray:
        return tau * np.asarray(achievable_rate(b, snr), dtype=float)

    def bandwidth_needed(tau: float) -> np.ndarray:
        """Smallest b_k with rate(b_k) * tau >= upload_bits, via bisection
        per client (rate is increasing in b)."""
        lo = np.zeros(count)
        hi = np.full(count, total_hz)
        # If even the full band can't meet tau, report the full band.
        feasible = bits_sent(hi, tau) >= upload_bits
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            ok = bits_sent(mid, tau) >= upload_bits
            hi = np.where(ok, mid, hi)
            lo = np.where(ok, lo, mid)
        return np.where(feasible, hi, total_hz)

    # Bisection on tau: total bandwidth needed decreases as tau grows.
    tau_lo, tau_hi = 1e-6, 1.0
    for _ in range(60):
        if float(bandwidth_needed(tau_hi).sum()) <= total_hz:
            break
        tau_hi *= 2.0
    for _ in range(max_iters):
        tau = 0.5 * (tau_lo + tau_hi)
        need = float(bandwidth_needed(tau).sum())
        if abs(need - total_hz) <= tol * total_hz:
            break
        if need > total_hz:
            tau_lo = tau
        else:
            tau_hi = tau
    b_sel = bandwidth_needed(0.5 * (tau_lo + tau_hi))
    # Scale to use exactly the full band (never helps to waste bandwidth).
    scale = total_hz / float(b_sel.sum())
    bw[sel] = b_sel * scale
    return bw
