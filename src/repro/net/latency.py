"""Latency model (paper Sec. 3.2 and 3.3).

Per local iteration of client ``k`` in epoch ``t``:

* local computation  ``τ_loc = e_k · D_{t,k} / π_k``  (cycles-per-bit ×
  bits of local data ÷ CPU frequency),
* uplink transmission  ``τ_cm = s / r_{t,k}``.

The client's epoch latency is ``d_k(t) = l_t (τ_loc + τ_cm)`` and the epoch
latency is the slowest participant, ``d(E_t) = max_k d_k(t)`` (eq. 2) —
the server aggregates only after everyone has uploaded.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "compute_latency",
    "transmission_latency",
    "client_latency",
    "epoch_latency",
]


def compute_latency(
    cycles_per_bit: np.ndarray | float,
    data_bits: np.ndarray | float,
    cpu_freq_hz: np.ndarray | float,
) -> np.ndarray | float:
    """Local computation time per iteration: ``e_k · D_bits / π_k`` seconds."""
    e = np.asarray(cycles_per_bit, dtype=float)
    d = np.asarray(data_bits, dtype=float)
    f = np.asarray(cpu_freq_hz, dtype=float)
    if np.any(e <= 0) or np.any(f <= 0):
        raise ValueError("cycles_per_bit and cpu_freq must be positive")
    if np.any(d < 0):
        raise ValueError("data size must be nonnegative")
    out = e * d / f
    return float(out) if out.ndim == 0 else out


def transmission_latency(
    upload_bits: float,
    rate_bps: np.ndarray | float,
) -> np.ndarray | float:
    """Uplink time ``s / r``; infinite when the rate is zero."""
    if upload_bits <= 0:
        raise ValueError("upload size must be positive")
    r = np.asarray(rate_bps, dtype=float)
    if np.any(r < 0):
        raise ValueError("rate must be nonnegative")
    with np.errstate(divide="ignore"):
        out = np.where(r > 0, upload_bits / np.where(r > 0, r, 1.0), np.inf)
    return float(out) if out.ndim == 0 else out


def client_latency(
    iterations: float,
    tau_loc: np.ndarray | float,
    tau_cm: np.ndarray | float,
) -> np.ndarray | float:
    """``d_k(t) = l_t (τ_loc + τ_cm)``."""
    if iterations < 0:
        raise ValueError("iterations must be nonnegative")
    out = iterations * (np.asarray(tau_loc, dtype=float) + np.asarray(tau_cm, dtype=float))
    return float(out) if np.ndim(out) == 0 else out


def epoch_latency(
    per_client_latency: np.ndarray,
    selected: np.ndarray,
) -> float:
    """``d(E_t) = max over selected clients`` (eq. 2); 0 if none selected."""
    lat = np.asarray(per_client_latency, dtype=float)
    sel = np.asarray(selected, dtype=bool)
    if lat.shape != sel.shape:
        raise ValueError("latency and selection shapes differ")
    if not sel.any():
        return 0.0
    return float(np.max(lat[sel]))
