"""Wireless edge-network substrate (paper Sec. 3.2 and 6.1).

Implements the exact channel/latency model the paper's simulator uses:

* path loss ``128.1 + 37.6 log10(d_km)`` dB with 8 dB log-normal shadowing
  (:mod:`repro.net.pathloss`, :mod:`repro.net.channel`),
* FDMA uplink rate ``r = b log2(1 + h p / (N0 b))`` over a shared
  ``B = 20`` MHz band (:mod:`repro.net.fdma`),
* per-client latency ``d_k(t) = l_t (τ_loc + τ_cm)`` with
  ``τ_loc = e_k D_{t,k} / π_k`` and ``τ_cm = s / r``
  (:mod:`repro.net.latency`).
"""

from repro.net.pathloss import pathloss_db, db_to_linear, dbm_to_watt
from repro.net.channel import ChannelModel, ChannelState
from repro.net.fdma import (
    achievable_rate,
    equal_share_bandwidth,
    allocate_bandwidth,
)
from repro.net.latency import (
    compute_latency,
    transmission_latency,
    client_latency,
    epoch_latency,
)

__all__ = [
    "pathloss_db",
    "db_to_linear",
    "dbm_to_watt",
    "ChannelModel",
    "ChannelState",
    "achievable_rate",
    "equal_share_bandwidth",
    "allocate_bandwidth",
    "compute_latency",
    "transmission_latency",
    "client_latency",
    "epoch_latency",
]
