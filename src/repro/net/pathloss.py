"""Path-loss model and dB/linear unit conversions.

The paper (Sec. 6.1, following [24]) models path loss as
``PL(d) = 128.1 + 37.6 log10(d)`` dB with ``d`` in kilometres — the standard
3GPP macro-cell urban model — plus log-normal shadow fading with an 8 dB
standard deviation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pathloss_db", "db_to_linear", "linear_to_db", "dbm_to_watt", "watt_to_dbm"]

#: 3GPP urban-macro intercept (dB) at 1 km.
PATHLOSS_INTERCEPT_DB = 128.1
#: 3GPP urban-macro slope (dB per decade of distance).
PATHLOSS_SLOPE_DB = 37.6


def pathloss_db(distance_m: np.ndarray | float) -> np.ndarray | float:
    """Deterministic path loss in dB at ``distance_m`` metres.

    ``PL = 128.1 + 37.6 log10(d_km)``.  Distances must be positive; callers
    should clamp to a minimum distance (the config's ``min_distance_m``)
    before calling.
    """
    d = np.asarray(distance_m, dtype=float)
    if np.any(d <= 0):
        raise ValueError("distance must be positive")
    out = PATHLOSS_INTERCEPT_DB + PATHLOSS_SLOPE_DB * np.log10(d / 1000.0)
    return float(out) if np.isscalar(distance_m) else out


def db_to_linear(db: np.ndarray | float) -> np.ndarray | float:
    """Convert a dB power ratio to linear scale."""
    return 10.0 ** (np.asarray(db, dtype=float) / 10.0)


def linear_to_db(lin: np.ndarray | float) -> np.ndarray | float:
    """Convert a linear power ratio to dB."""
    lin_a = np.asarray(lin, dtype=float)
    if np.any(lin_a <= 0):
        raise ValueError("linear power must be positive")
    return 10.0 * np.log10(lin_a)


def dbm_to_watt(dbm: np.ndarray | float) -> np.ndarray | float:
    """Convert dBm to watts (0 dBm = 1 mW)."""
    return 10.0 ** ((np.asarray(dbm, dtype=float) - 30.0) / 10.0)


def watt_to_dbm(watt: np.ndarray | float) -> np.ndarray | float:
    """Convert watts to dBm."""
    w = np.asarray(watt, dtype=float)
    if np.any(w <= 0):
        raise ValueError("power must be positive")
    return 10.0 * np.log10(w) + 30.0
