"""Time-varying wireless channel: shadowing and per-epoch channel gains.

Each epoch the channel gain of client ``k`` is

    h_{t,k} = 10^(−(PL(d_k) + X_{t,k}) / 10),

where ``PL`` is the 3GPP path loss (:mod:`repro.net.pathloss`) and
``X_{t,k}`` is log-normal shadow fading — one of the paper's three sources
of time variation (availability, data volume, *network connection
status*).  Shadowing evolves as a stationary AR(1) process in dB,

    X_{t+1} = φ X_t + √(1−φ²) · N(0, σ_sh²),

with ``φ = shadowing_corr``: shadowing models slowly-changing obstacles,
so it is correlated across epochs (``φ = 0`` recovers the i.i.d.
extreme).  The stationary standard deviation is exactly the configured
``σ_sh`` (8 dB per the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import NetworkConfig
from repro.net.pathloss import db_to_linear, dbm_to_watt, pathloss_db

__all__ = ["ChannelState", "ChannelModel"]


@dataclass(frozen=True)
class ChannelState:
    """Per-epoch channel snapshot for all M clients."""

    gains: np.ndarray            # linear channel gains h_{t,k}, shape (M,)
    tx_power_watt: np.ndarray    # p_k in watts, shape (M,)
    noise_psd_watt_hz: float     # N0 in W/Hz

    def __post_init__(self) -> None:
        g = np.asarray(self.gains, dtype=float)
        p = np.asarray(self.tx_power_watt, dtype=float)
        if g.shape != p.shape:
            raise ValueError("gains and tx_power must have the same shape")
        if np.any(g <= 0) or np.any(p <= 0):
            raise ValueError("gains and powers must be positive")
        object.__setattr__(self, "gains", g)
        object.__setattr__(self, "tx_power_watt", p)

    @property
    def num_clients(self) -> int:
        return self.gains.size

    def snr_per_hz(self) -> np.ndarray:
        """``h_k p_k / N0`` — SNR density used in the FDMA rate formula."""
        return self.gains * self.tx_power_watt / self.noise_psd_watt_hz


class ChannelModel:
    """Generates per-epoch :class:`ChannelState` for a fixed client layout."""

    def __init__(
        self,
        distances_m: np.ndarray,
        config: NetworkConfig,
        rng: np.random.Generator,
    ) -> None:
        d = np.asarray(distances_m, dtype=float)
        if np.any(d < 0):
            raise ValueError("distances must be nonnegative")
        self.distances_m = np.maximum(d, config.min_distance_m)
        self.config = config
        self.rng = rng
        self._pl_db = np.asarray(pathloss_db(self.distances_m), dtype=float)
        self._tx_watt = np.full(
            self.distances_m.shape, dbm_to_watt(config.tx_power_dbm)
        )
        self._n0_watt = float(dbm_to_watt(config.noise_psd_dbm_hz))
        # Stationary AR(1) start: draw from the stationary distribution.
        self._shadow_db = self.rng.normal(
            0.0, config.shadowing_std_db, size=self.distances_m.shape
        )

    @property
    def num_clients(self) -> int:
        return self.distances_m.size

    def sample(self) -> ChannelState:
        """Advance the shadowing AR(1) one epoch and return the channel."""
        phi = self.config.shadowing_corr
        innovation = self.rng.normal(
            0.0, self.config.shadowing_std_db, size=self.distances_m.shape
        )
        self._shadow_db = phi * self._shadow_db + np.sqrt(1.0 - phi**2) * innovation
        gains = np.asarray(
            db_to_linear(-(self._pl_db + self._shadow_db)), dtype=float
        )
        return ChannelState(
            gains=gains,
            tx_power_watt=self._tx_watt,
            noise_psd_watt_hz=self._n0_watt,
        )

    def mean_state(self) -> ChannelState:
        """Channel with shadowing at its mean (0 dB) — for deterministic tests."""
        gains = np.asarray(db_to_linear(-self._pl_db), dtype=float)
        return ChannelState(
            gains=gains,
            tx_power_watt=self._tx_watt,
            noise_psd_watt_hz=self._n0_watt,
        )
