"""Client population and time-varying environment substrate.

* :mod:`repro.env.population` — static client attributes: position in the
  cell, CPU frequency, cycles/bit, transmit power.
* :mod:`repro.env.availability` — per-epoch Bernoulli availability process
  (paper: "the availability of all devices obeys the same Bernoulli
  distribution").
* :mod:`repro.env.dynamics` — time-varying rental prices (AR(1) around the
  paper's uniform [0.1, 12] "dynamic price of Amazon") and Poisson data
  volumes.
"""

from repro.env.population import Population, build_population
from repro.env.availability import AvailabilityProcess, MarkovAvailabilityProcess
from repro.env.dynamics import PriceProcess, DataVolumeProcess
from repro.env.state import ClientStateArrays

__all__ = [
    "Population",
    "build_population",
    "ClientStateArrays",
    "AvailabilityProcess",
    "MarkovAvailabilityProcess",
    "PriceProcess",
    "DataVolumeProcess",
]
