"""Time-varying environment processes: rental prices and data volumes.

* **Prices** — the paper rents clients at costs "uniformly distributed in
  [0.1, 12] based on the dynamic price of Amazon".  We model each client's
  price as a mean-reverting AR(1) process around its base price, clipped to
  the paper's range: this is the closest synthetic equivalent of a spot
  price trace (documented substitution; see DESIGN.md §2).
* **Data volumes** — "all data are then transformed into online data
  followed by Poisson distribution": each epoch, client k holds
  ``D_{t,k} ~ Poisson(mean_samples)`` fresh samples (floored at 1 so the
  loss is always defined).
"""

from __future__ import annotations

import numpy as np

__all__ = ["PriceProcess", "DataVolumeProcess"]


class PriceProcess:
    """Mean-reverting AR(1) rental prices, clipped to [lo, hi].

    ``c_{t+1,k} = c̄_k + φ (c_{t,k} − c̄_k) + σ_k ε``, with
    ``σ_k = volatility · c̄_k`` so expensive clients fluctuate more in
    absolute terms (as spot markets do).
    """

    def __init__(
        self,
        base_cost: np.ndarray,
        rng: np.random.Generator,
        volatility: float = 0.15,
        mean_reversion: float = 0.7,
        clip_range: tuple[float, float] = (0.1, 12.0),
    ) -> None:
        base = np.asarray(base_cost, dtype=float)
        if np.any(base <= 0):
            raise ValueError("base costs must be positive")
        if not (0.0 <= mean_reversion <= 1.0):
            raise ValueError("mean_reversion must be in [0, 1]")
        if volatility < 0:
            raise ValueError("volatility must be nonnegative")
        lo, hi = clip_range
        if not (0 < lo <= hi):
            raise ValueError("clip_range must satisfy 0 < lo <= hi")
        self.base = base
        self.rng = rng
        self.volatility = volatility
        self.phi = mean_reversion
        self.clip_range = (lo, hi)
        self._current = np.clip(base.copy(), lo, hi)
        # Preallocated buffers for the allocation-free step_into path
        # (lazy: only runs that call step_into pay for them).
        self._vol_base: np.ndarray | None = None
        self._step_buf: np.ndarray | None = None
        self._noise_buf: np.ndarray | None = None

    @property
    def current(self) -> np.ndarray:
        """Current prices (read-only view)."""
        out = self._current.view()
        out.flags.writeable = False
        return out

    def step(self) -> np.ndarray:
        """Advance one epoch and return the new price vector (a copy)."""
        lo, hi = self.clip_range
        noise = self.rng.normal(0.0, 1.0, size=self.base.shape)
        self._current = np.clip(
            self.base
            + self.phi * (self._current - self.base)
            + self.volatility * self.base * noise,
            lo,
            hi,
        )
        return self._current.copy()

    def step_into(self, out: np.ndarray) -> np.ndarray:
        """Allocation-free :meth:`step`: advance and write into ``out``.

        Bit-identical to ``step`` (verified in tests): the elementwise
        operations are reassociated only where IEEE-754 results cannot
        change (commuted additions; ``volatility · base`` hoisted to a
        constant buffer), and ``standard_normal(out=...)`` draws the same
        deviates ``normal(0, 1, size)`` would.
        """
        if self._vol_base is None:
            self._vol_base = self.volatility * self.base
            self._step_buf = np.empty_like(self.base)
            self._noise_buf = np.empty_like(self.base)
        lo, hi = self.clip_range
        buf, noise = self._step_buf, self._noise_buf
        self.rng.standard_normal(out=noise)
        # base + phi·(cur − base) + (vol·base)·noise, term by term in place.
        np.subtract(self._current, self.base, out=buf)
        buf *= self.phi
        buf += self.base
        noise *= self._vol_base
        buf += noise
        np.clip(buf, lo, hi, out=self._current)
        np.copyto(out, self._current)
        return out


class DataVolumeProcess:
    """Poisson per-epoch local dataset sizes, floored at ``min_samples``."""

    def __init__(
        self,
        num_clients: int,
        mean_samples: float,
        rng: np.random.Generator,
        min_samples: int = 1,
        heterogeneous: bool = True,
    ) -> None:
        if num_clients < 1:
            raise ValueError("need at least one client")
        if mean_samples <= 0:
            raise ValueError("mean_samples must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.num_clients = num_clients
        self.rng = rng
        self.min_samples = min_samples
        if heterogeneous:
            # Client-specific means spread around the target (0.5x .. 1.5x),
            # giving persistent data-volume heterogeneity on top of the
            # epoch-to-epoch Poisson noise.
            self.means = mean_samples * rng.uniform(0.5, 1.5, size=num_clients)
        else:
            self.means = np.full(num_clients, float(mean_samples))

    def sample(self) -> np.ndarray:
        """Draw one epoch's per-client sample counts, dtype int64."""
        counts = self.rng.poisson(self.means)
        return np.maximum(counts, self.min_samples).astype(np.int64)

    def sample_into(self, out: np.ndarray) -> np.ndarray:
        """:meth:`sample` writing into a preallocated int64 ``out``
        (bit-identical draws; only the floor+cast copy is saved — the
        Poisson draw itself has no output-buffer API)."""
        counts = self.rng.poisson(self.means)
        np.maximum(counts, self.min_samples, out=out)
        return out
