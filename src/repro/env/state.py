"""Flat preallocated per-client state for the experiment hot loop.

At K = 10⁵⁻⁶ clients, per-client Python objects (dicts of scalars,
re-allocated ``np.where`` results every epoch) dominate the runner's
footprint and thrash the allocator.  :class:`ClientStateArrays` keeps
every mutable per-client quantity the experiment loop tracks in one flat
numpy array per field, preallocated once, with vectorized in-place
update methods (``np.copyto(..., where=...)`` instead of fresh
``np.where`` arrays).

The update methods reproduce the legacy runner's formulas **exactly**
(same elementwise operations, same masking), property-tested against
recorded trajectories in ``tests/test_shard.py``.

Arrays handed out (e.g. into an :class:`~repro.baselines.base.
EpochContext`) are live views: they reflect later in-place updates.
Policies read them synchronously inside ``select``/``update``, so
trajectories are unchanged; callers that stash state across epochs must
copy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ClientStateArrays"]


class ClientStateArrays:
    """One flat numpy array per mutable per-client field.

    Fields:

    * ``available`` — this epoch's availability mask E_t,
    * ``costs`` — this epoch's realized rental prices c_{t,k},
    * ``belief_costs`` — the reliability-inflated prices the learner
      descends on (equal to ``costs`` when no defense is active),
    * ``tau_last`` — last realized per-iteration latency (0-lookahead),
    * ``local_losses`` — last observed local loss (NaN never observed),
    * ``reliability`` — EWMA of clean (unquarantined) rounds,
    * ``cum_selected`` — how many epochs each client has been rented,
    * ``spend`` — cumulative rent paid to each client.
    """

    __slots__ = (
        "num_clients",
        "available",
        "costs",
        "belief_costs",
        "tau_last",
        "local_losses",
        "reliability",
        "cum_selected",
        "spend",
    )

    def __init__(self, num_clients: int, tau_prior: float = 1.0) -> None:
        if num_clients < 1:
            raise ValueError("need at least one client")
        k = int(num_clients)
        self.num_clients = k
        self.available = np.zeros(k, dtype=bool)
        self.costs = np.zeros(k)
        self.belief_costs = np.zeros(k)
        self.tau_last = np.full(k, float(tau_prior))
        self.local_losses = np.full(k, np.nan)
        self.reliability = np.ones(k)
        self.cum_selected = np.zeros(k, dtype=np.int64)
        self.spend = np.zeros(k)

    # ------------------------------------------------------------- per-epoch --

    def begin_epoch(
        self,
        available: np.ndarray,
        costs: np.ndarray,
        reliability_penalty: float = 0.0,
        track_reliability: bool = False,
    ) -> None:
        """Install this epoch's environment draw (in place)."""
        np.copyto(self.available, available)
        np.copyto(self.costs, costs)
        if track_reliability and reliability_penalty > 0.0:
            # Same inflation the FedL learner applies belief-side:
            # c · (1 + penalty · (1 − r)).
            np.subtract(1.0, self.reliability, out=self.belief_costs)
            self.belief_costs *= reliability_penalty
            self.belief_costs += 1.0
            self.belief_costs *= self.costs
        else:
            np.copyto(self.belief_costs, self.costs)

    def observe_latency(self, tau_real: np.ndarray, available: np.ndarray) -> None:
        """Legacy ``tau_last = np.where(available, tau_real, tau_last)``,
        without the fresh array."""
        np.copyto(self.tau_last, tau_real, where=available)

    def observe_losses(self, new_losses: np.ndarray) -> None:
        """Legacy ``np.where(np.isnan(new), old, new)`` merge, in place."""
        np.copyto(self.local_losses, new_losses, where=~np.isnan(new_losses))

    def observe_reliability(
        self,
        contributors: np.ndarray,
        clean: np.ndarray,
        ema: float,
    ) -> None:
        """Legacy masked EWMA: ``r[c] = (1−ema)·r[c] + ema·clean[c]``."""
        self.reliability[contributors] = (
            (1.0 - ema) * self.reliability[contributors]
            + ema * clean[contributors]
        )

    def charge(self, selected: np.ndarray, costs: np.ndarray) -> None:
        """Account one epoch's rentals: selection counts + spend."""
        self.cum_selected[selected] += 1
        self.spend[selected] += costs[selected]
