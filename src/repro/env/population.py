"""Static client-fleet attributes (paper Sec. 6.1).

Clients are placed uniformly at random in a disc of radius 500 m around the
server; each has a CPU frequency (heterogeneous, up to 2 GHz), a
cycles-per-bit training cost ``e_k ~ U[10, 30]``, and a transmit power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import PopulationConfig

__all__ = ["Population", "build_population"]


@dataclass(frozen=True)
class Population:
    """Immutable static attributes of the M clients."""

    positions_m: np.ndarray        # (M, 2) cartesian coordinates, server at origin
    cpu_freq_hz: np.ndarray        # (M,) π_k
    cycles_per_bit: np.ndarray     # (M,) e_k
    base_cost: np.ndarray          # (M,) mean rental price of each client
    bits_per_sample: float

    def __post_init__(self) -> None:
        pos = np.asarray(self.positions_m, dtype=float)
        if pos.ndim != 2 or pos.shape[1] != 2:
            raise ValueError("positions must have shape (M, 2)")
        m = pos.shape[0]
        for name in ("cpu_freq_hz", "cycles_per_bit", "base_cost"):
            arr = np.asarray(getattr(self, name), dtype=float)
            if arr.shape != (m,):
                raise ValueError(f"{name} must have shape ({m},)")
            if np.any(arr <= 0):
                raise ValueError(f"{name} must be positive")
            object.__setattr__(self, name, arr)
        object.__setattr__(self, "positions_m", pos)
        if self.bits_per_sample <= 0:
            raise ValueError("bits_per_sample must be positive")

    @property
    def num_clients(self) -> int:
        return self.positions_m.shape[0]

    def distances_m(self) -> np.ndarray:
        """Distance of each client from the server (origin)."""
        return np.linalg.norm(self.positions_m, axis=1)

    def state_arrays(self, tau_prior: float = 1.0) -> "ClientStateArrays":
        """Preallocate the flat mutable per-client state for this fleet."""
        from repro.env.state import ClientStateArrays

        return ClientStateArrays(self.num_clients, tau_prior=tau_prior)


def build_population(
    config: PopulationConfig,
    rng: np.random.Generator,
    cell_radius_m: float = 500.0,
) -> Population:
    """Sample a fleet per the paper's setting.

    Uniform placement in a disc is done by ``r = R √u`` (area-uniform),
    not ``r = R u`` (which would over-concentrate clients at the centre).
    """
    m = config.num_clients
    radii = cell_radius_m * np.sqrt(rng.uniform(0.0, 1.0, size=m))
    angles = rng.uniform(0.0, 2.0 * np.pi, size=m)
    positions = np.stack([radii * np.cos(angles), radii * np.sin(angles)], axis=1)

    freq = config.cpu_freq_hz * rng.uniform(
        1.0 - config.cpu_freq_jitter, 1.0, size=m
    )
    e_lo, e_hi = config.cycles_per_bit_range
    cycles = rng.uniform(e_lo, e_hi, size=m)
    c_lo, c_hi = config.cost_range
    base_cost = rng.uniform(c_lo, c_hi, size=m)
    return Population(
        positions_m=positions,
        cpu_freq_hz=freq,
        cycles_per_bit=cycles,
        base_cost=base_cost,
        bits_per_sample=config.bits_per_sample,
    )
