"""Per-epoch client availability.

The paper assumes i.i.d. Bernoulli availability per device
(:class:`AvailabilityProcess`).  Real device churn is bursty — a phone on
a charger stays available for a stretch — so we also provide
:class:`MarkovAvailabilityProcess`, a two-state (on/off) Markov chain per
client with a configurable mean sojourn, whose stationary distribution
matches the requested availability probability.  Both guarantee at least
``min_available`` clients per epoch (resampling the shortfall uniformly
from the unavailable ones) — otherwise the per-epoch participation
constraint (3b) could be infeasible by pure chance.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AvailabilityProcess", "MarkovAvailabilityProcess"]


class AvailabilityProcess:
    """Bernoulli availability with a minimum-availability floor."""

    def __init__(
        self,
        num_clients: int,
        prob: float,
        rng: np.random.Generator,
        min_available: int = 1,
    ) -> None:
        if num_clients < 1:
            raise ValueError("need at least one client")
        if not (0.0 < prob <= 1.0):
            raise ValueError("availability probability must be in (0, 1]")
        if not (1 <= min_available <= num_clients):
            raise ValueError("min_available must be in [1, num_clients]")
        self.num_clients = num_clients
        self.prob = prob
        self.rng = rng
        self.min_available = min_available

    def sample(self) -> np.ndarray:
        """Draw one epoch's availability mask, shape (M,), dtype bool."""
        mask = self.rng.random(self.num_clients) < self.prob
        shortfall = self.min_available - int(mask.sum())
        if shortfall > 0:
            off = np.flatnonzero(~mask)
            revive = self.rng.choice(off, size=shortfall, replace=False)
            mask[revive] = True
        return mask

    def expected_available(self) -> float:
        """Mean |E_t| ignoring the floor (exact when the floor rarely binds)."""
        return self.num_clients * self.prob


class MarkovAvailabilityProcess:
    """Two-state Markov availability with stationary probability ``prob``.

    Each client flips between available/unavailable with transition
    probabilities chosen so that (i) the stationary availability equals
    ``prob`` and (ii) the mean available sojourn is ``mean_on_epochs``:

        p_on_to_off = 1 / mean_on_epochs,
        p_off_to_on = p_on_to_off · prob / (1 − prob).

    ``mean_on_epochs = 1/(1 − prob)`` makes both transition probabilities
    equal to the stationary rates, recovering exactly i.i.d. Bernoulli
    behaviour; longer sojourns give bursty (positively correlated) churn,
    shorter ones anti-correlated flipping.
    """

    def __init__(
        self,
        num_clients: int,
        prob: float,
        rng: np.random.Generator,
        mean_on_epochs: float = 5.0,
        min_available: int = 1,
    ) -> None:
        if num_clients < 1:
            raise ValueError("need at least one client")
        if not (0.0 < prob < 1.0):
            raise ValueError("stationary probability must be in (0, 1)")
        if mean_on_epochs < 1.0:
            raise ValueError("mean_on_epochs must be >= 1")
        if not (1 <= min_available <= num_clients):
            raise ValueError("min_available must be in [1, num_clients]")
        self.num_clients = num_clients
        self.prob = prob
        self.rng = rng
        self.min_available = min_available
        self.p_on_off = 1.0 / mean_on_epochs
        self.p_off_on = min(1.0, self.p_on_off * prob / (1.0 - prob))
        # Start from the stationary distribution.
        self._state = rng.random(num_clients) < prob

    def sample(self) -> np.ndarray:
        """Advance the chains one epoch; return the availability mask."""
        u = self.rng.random(self.num_clients)
        flip_off = self._state & (u < self.p_on_off)
        flip_on = ~self._state & (u < self.p_off_on)
        self._state = (self._state & ~flip_off) | flip_on
        mask = self._state.copy()
        shortfall = self.min_available - int(mask.sum())
        if shortfall > 0:
            off = np.flatnonzero(~mask)
            revive = self.rng.choice(off, size=shortfall, replace=False)
            mask[revive] = True
        return mask

    def expected_available(self) -> float:
        """Stationary mean |E_t| ignoring the floor."""
        return self.num_clients * self.prob

    def intra_round_hazard(self) -> float:
        """Sojourn-consistent dropout hazard *within* one epoch.

        The chain is epoch-granular: an available client goes off at the
        next epoch boundary with probability ``p_on_off``.  Embedding
        that into continuous time over the epoch as a constant-rate
        (exponential) dropout process requires

            exp(−λ) = 1 − p_on_off  ⇒  λ = −log(1 − p_on_off),

        so the probability of dropping *sometime during* the round
        matches the chain's one-step off-transition exactly.  The
        event-driven runtime's fault layer consumes this rate (see
        :meth:`repro.sim.faults.FaultProfile.from_churn`), keeping
        intra-round churn a refinement of — not a second model beside —
        the epoch-granular chain.  This is a pure function of the
        transition matrix: it draws nothing from the chain's RNG, so the
        epoch-level marginals are untouched.
        """
        return float(-np.log1p(-self.p_on_off))

    def dropout_times(
        self, num_clients: int, round_seconds: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample per-client intra-round dropout instants (seconds from
        round start; ``inf`` = survives the round) at the sojourn-
        consistent hazard.  ``rng`` must be a *separate* stream from the
        chain's own: the chain's epoch-granular draws stay untouched."""
        if rng is self.rng:
            raise ValueError(
                "dropout_times needs its own RNG stream; using the chain's "
                "would perturb the epoch-granular marginals"
            )
        from repro.sim.faults import sample_dropout_times

        return sample_dropout_times(
            num_clients, self.intra_round_hazard(), round_seconds, rng
        )
