"""Seeded random-number-generation discipline.

Every stochastic component in the simulator (channel fading, client
availability, data generation, rounding, SGD shuffling, ...) draws from its
own :class:`numpy.random.Generator`, spawned deterministically from a single
experiment seed.  This gives two properties that matter for a reproduction:

* **Bitwise reproducibility** — the same seed always yields the same
  trajectory, regardless of how many other components consume randomness.
* **Component independence** — adding a new random consumer does not perturb
  the streams of existing ones, because each stream is keyed by a stable
  string label rather than by call order.

Usage::

    root = RngFactory(seed=42)
    chan_rng = root.get("net.channel")
    avail_rng = root.get("env.availability")

``get`` is memoized: asking twice for the same key returns the same
generator object (so a component can keep drawing from where it left off).
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngFactory", "derive_seed"]


def derive_seed(seed: int, key: str) -> int:
    """Derive a 64-bit child seed from ``seed`` and a string ``key``.

    Uses SHA-256 over the (seed, key) pair so distinct keys give
    statistically independent child seeds.  Stable across Python versions
    and platforms (unlike ``hash``).
    """
    payload = f"{seed}:{key}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little")


class RngFactory:
    """Deterministic factory of named, independent random generators."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._cache: Dict[str, np.random.Generator] = {}

    def get(self, key: str) -> np.random.Generator:
        """Return the memoized generator for ``key`` (create on first use)."""
        gen = self._cache.get(key)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.seed, key))
            self._cache[key] = gen
        return gen

    def fresh(self, key: str) -> np.random.Generator:
        """Return a *new* generator for ``key``, resetting its stream."""
        gen = np.random.default_rng(derive_seed(self.seed, key))
        self._cache[key] = gen
        return gen

    def child(self, key: str) -> "RngFactory":
        """Return a sub-factory whose streams are independent of this one."""
        return RngFactory(derive_seed(self.seed, f"child:{key}"))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RngFactory(seed={self.seed}, streams={sorted(self._cache)})"
