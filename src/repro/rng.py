"""Seeded random-number-generation discipline.

Every stochastic component in the simulator (channel fading, client
availability, data generation, rounding, SGD shuffling, ...) draws from its
own :class:`numpy.random.Generator`, spawned deterministically from a single
experiment seed.  This gives two properties that matter for a reproduction:

* **Bitwise reproducibility** — the same seed always yields the same
  trajectory, regardless of how many other components consume randomness.
* **Component independence** — adding a new random consumer does not perturb
  the streams of existing ones, because each stream is keyed by a stable
  string label rather than by call order.

Usage::

    root = RngFactory(seed=42)
    chan_rng = root.get("net.channel")
    avail_rng = root.get("env.availability")

``get`` is memoized: asking twice for the same key returns the same
generator object (so a component can keep drawing from where it left off).
"""

from __future__ import annotations

import copy
import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngFactory", "derive_seed"]


def derive_seed(seed: int, key: str) -> int:
    """Derive a 64-bit child seed from ``seed`` and a string ``key``.

    Uses SHA-256 over the (seed, key) pair so distinct keys give
    statistically independent child seeds.  Stable across Python versions
    and platforms (unlike ``hash``).
    """
    payload = f"{seed}:{key}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little")


class RngFactory:
    """Deterministic factory of named, independent random generators."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._cache: Dict[str, np.random.Generator] = {}

    def get(self, key: str) -> np.random.Generator:
        """Return the memoized generator for ``key`` (create on first use)."""
        gen = self._cache.get(key)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.seed, key))
            self._cache[key] = gen
        return gen

    def fresh(self, key: str) -> np.random.Generator:
        """Return a *new* generator for ``key``, resetting its stream."""
        gen = np.random.default_rng(derive_seed(self.seed, key))
        self._cache[key] = gen
        return gen

    def child(self, key: str) -> "RngFactory":
        """Return a sub-factory whose streams are independent of this one."""
        return RngFactory(derive_seed(self.seed, f"child:{key}"))

    # -- checkpointing -----------------------------------------------------------

    def state_dict(self) -> Dict[str, dict]:
        """Bit-generator state of every stream created so far.

        The values are the nested plain-python dicts numpy exposes via
        ``Generator.bit_generator.state`` (for the default PCG64: the
        128-bit state/increment integers plus the cached-uint32 pair), so
        the result is JSON-serializable as-is.  Streams not yet created
        are absent — they are deterministic functions of ``seed`` and
        their key, so a resumed factory recreates them identically on
        first ``get``.
        """
        # The .state property builds a fresh nested dict on every access,
        # so no defensive copy is needed on capture (restore still copies:
        # the caller's dict must not be mutated by the setter).
        return {
            key: gen.bit_generator.state for key, gen in self._cache.items()
        }

    def load_state(self, states: Dict[str, dict]) -> None:
        """Restore streams captured by :meth:`state_dict`.

        Each named stream is (re)created through :meth:`get` and its bit
        generator fast-forwarded to the saved state, so subsequent draws
        continue bit-identically from the capture point.  Streams already
        handed out keep their object identity (holders see the restored
        stream); cached streams absent from ``states`` are left alone.
        """
        for key, state in states.items():
            gen = self.get(key)
            if state["bit_generator"] != gen.bit_generator.state["bit_generator"]:
                raise ValueError(
                    f"stream {key!r}: bit generator "
                    f"{state['bit_generator']!r} does not match the "
                    f"factory's {gen.bit_generator.state['bit_generator']!r}"
                )
            gen.bit_generator.state = copy.deepcopy(state)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RngFactory(seed={self.seed}, streams={sorted(self._cache)})"
