"""FedCS selection baseline (Nishio & Yonetani [21]).

"Selects as many clients as possible to train and terminates the model
training upon a fixed deadline in each epoch."  Greedy packing: sort
available clients by their (estimated) per-iteration latency and admit
clients, fastest first, while the epoch (``iterations ×`` the slowest
admitted client's latency) still meets the deadline and the budget allows.

0-lookahead version: latency estimates are last epoch's realizations
(``ctx.tau_last``), exactly like FedL sees.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Decision, EpochContext, RoundFeedback, enforce_feasibility

__all__ = ["FedCSPolicy"]


class FedCSPolicy:
    """Deadline-constrained greedy max-participation."""

    def __init__(
        self,
        rng: np.random.Generator,
        deadline_s: float | None = None,
        iterations: int = 2,
        adaptive_quantile: float = 0.6,
    ) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline must be positive")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not (0.0 < adaptive_quantile <= 1.0):
            raise ValueError("adaptive_quantile must be in (0, 1]")
        self.name = "FedCS"
        self.rng = rng
        self.deadline_s = deadline_s
        self.iterations = iterations
        self.adaptive_quantile = adaptive_quantile

    def _deadline(self, ctx: EpochContext) -> float:
        """Fixed deadline if configured, else an adaptive one.

        The original FedCS tunes its deadline to the deployment; absent
        that tuning we set it at the ``adaptive_quantile`` of the latest
        latency estimates, so FedCS admits "as many clients as possible"
        short of the stragglers — the behaviour the paper describes.
        """
        if self.deadline_s is not None:
            return self.deadline_s
        tau = ctx.tau_last[ctx.available]
        return self.iterations * float(np.quantile(tau, self.adaptive_quantile))

    def select(self, ctx: EpochContext) -> Decision:
        avail = np.flatnonzero(ctx.available)
        tau = ctx.tau_last[avail]
        order = avail[np.argsort(tau, kind="stable")]
        mask = np.zeros(ctx.num_clients, dtype=bool)
        spend = 0.0
        deadline = self._deadline(ctx)
        for k in order:
            # Admitting k makes k the slowest so far (sorted order).
            epoch_time = self.iterations * ctx.tau_last[k]
            if mask.sum() >= ctx.min_participants and (
                epoch_time > deadline
                or spend + ctx.costs[k] > ctx.remaining_budget
            ):
                break
            mask[k] = True
            spend += ctx.costs[k]
        mask = enforce_feasibility(mask, ctx, self.rng)
        return Decision(selected=mask, iterations=self.iterations)

    def update(self, feedback: RoundFeedback) -> None:
        """FedCS keeps no internal state (estimates flow in via ctx)."""
