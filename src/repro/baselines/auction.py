"""Truthful procurement (reverse) auction for client rental.

The paper's related work includes incentive mechanisms — Zhou et al. [33]
design "a truthful procurement auction for incentivizing heterogeneous
clients".  This module implements the classic single-round version of
that machinery so the repository covers the incentive side of the client
market the paper's cost model abstracts away:

* each client submits a **bid** (its claimed per-epoch rental cost; the
  true cost is private),
* the server scores clients by ``bid / quality`` (quality = any
  nonnegative merit, e.g. inverse latency or data volume) and procures
  the ``n`` best,
* winners are paid their **critical value** — the highest bid at which
  they would still have won (the procurement analogue of second-price) —
  capped by budget feasibility.

With critical-value payments, truthful bidding is a dominant strategy
(Myerson): the property tests verify monotonicity, individual
rationality (payment >= bid >= true cost), and that misreporting never
helps a bidder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["AuctionResult", "run_procurement_auction"]


@dataclass(frozen=True)
class AuctionResult:
    """Winners and payments of one procurement auction."""

    winners: np.ndarray       # (M,) bool
    payments: np.ndarray      # (M,) payment per client (0 for losers)
    total_payment: float
    feasible: bool            # True if the payments fit the budget

    def __post_init__(self) -> None:
        object.__setattr__(self, "winners", np.asarray(self.winners, dtype=bool))
        object.__setattr__(self, "payments", np.asarray(self.payments, dtype=float))


def run_procurement_auction(
    bids: np.ndarray,
    quality: np.ndarray,
    n: int,
    budget: Optional[float] = None,
) -> AuctionResult:
    """Score-based procurement with critical-value payments.

    Parameters
    ----------
    bids:
        Claimed per-epoch costs (positive).
    quality:
        Nonnegative merit per client; higher is better.  Score =
        ``bid / quality`` (infinite for zero quality → never procured
        unless needed to fill ``n``).
    n:
        Number of clients to procure.
    budget:
        Optional cap on the total payment; if the critical payments
        exceed it, the result is returned with ``feasible=False`` (the
        caller decides whether to skip the epoch — payments cannot be
        scaled down without breaking truthfulness).

    Returns
    -------
    AuctionResult
        ``payments[k]`` for a winner k is ``score_{n+1} · quality_k``
        (the bid at which k would drop to position n+1); when there is no
        (n+1)-th bidder the winner is paid its own bid (no competition →
        no information to cap with).
    """
    bids = np.asarray(bids, dtype=float)
    quality = np.asarray(quality, dtype=float)
    m = bids.size
    if quality.shape != (m,):
        raise ValueError("bids and quality must share a shape")
    if np.any(bids <= 0):
        raise ValueError("bids must be positive")
    if np.any(quality < 0):
        raise ValueError("quality must be nonnegative")
    if not (1 <= n <= m):
        raise ValueError("n must be in [1, M]")

    with np.errstate(divide="ignore"):
        scores = np.where(quality > 0, bids / np.where(quality > 0, quality, 1.0), np.inf)
    order = np.argsort(scores, kind="stable")
    winners_idx = order[:n]
    winners = np.zeros(m, dtype=bool)
    winners[winners_idx] = True

    payments = np.zeros(m)
    if n < m and np.isfinite(scores[order[n]]):
        threshold = float(scores[order[n]])
        payments[winners_idx] = threshold * quality[winners_idx]
        # A winner with zero quality (possible only when fewer than n
        # finite-score clients exist) is paid its bid.
        zero_q = winners & (quality == 0)
        payments[zero_q] = bids[zero_q]
    else:
        # No losing bidder to define the critical value.
        payments[winners_idx] = bids[winners_idx]
    # Critical payments never undercut the winner's own bid.
    payments[winners_idx] = np.maximum(
        payments[winners_idx], bids[winners_idx]
    )
    total = float(payments.sum())
    feasible = budget is None or total <= budget + 1e-9
    return AuctionResult(
        winners=winners, payments=payments, total_payment=total, feasible=feasible
    )
