"""Client-selection policies: the paper's three baselines plus oracles.

All policies implement the :class:`repro.baselines.base.SelectionPolicy`
protocol with the paper's **0-lookahead** contract: at decision time a
policy sees only *past* realizations (last epoch's latencies, losses,
accuracies) plus the static catalogue (costs, availability, budget state).

* :mod:`repro.baselines.fedavg` — uniform random selection of n clients
  (McMahan et al. [19]).
* :mod:`repro.baselines.fedcs` — deadline-greedy: pack as many clients as
  fit a per-epoch deadline, fastest first (Nishio & Yonetani [21]).
* :mod:`repro.baselines.pow_d` — power-of-choice: sample d candidates,
  keep the n with the largest local losses (Cho et al. [5]).
* :mod:`repro.baselines.oracle` — per-slot offline optimum with true
  current-epoch inputs (regret reference; explicitly 1-lookahead).

FedL itself lives in :mod:`repro.core.fedl` and implements the same
protocol.
"""

from repro.baselines.base import (
    Decision,
    EpochContext,
    RoundFeedback,
    SelectionPolicy,
)
from repro.baselines.fedavg import FedAvgPolicy
from repro.baselines.fedcs import FedCSPolicy
from repro.baselines.pow_d import PowDPolicy
from repro.baselines.oracle import GreedyOraclePolicy
from repro.baselines.ucb import UCBPolicy
from repro.baselines.overselect import OverSelectPolicy
from repro.baselines.auction import AuctionResult, run_procurement_auction

__all__ = [
    "Decision",
    "EpochContext",
    "RoundFeedback",
    "SelectionPolicy",
    "FedAvgPolicy",
    "FedCSPolicy",
    "PowDPolicy",
    "GreedyOraclePolicy",
    "UCBPolicy",
    "OverSelectPolicy",
    "AuctionResult",
    "run_procurement_auction",
]
