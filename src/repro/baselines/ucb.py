"""UCB multi-armed-bandit client selection (the paper's reference [30]
class: Xia et al., "Multi-armed bandit-based client scheduling for
federated learning").

Each client is an arm; pulling it (selecting it) reveals its
per-iteration latency, and the reward is the negative latency.  Per
epoch the policy picks the ``n`` available arms with the highest upper
confidence bound

    UCB_k = r̄_k + c · sqrt( ln(t+1) / N_k ),

with never-pulled arms ranked first (infinite bonus).  Honest bandit
feedback: only *participants'* realized latencies update the statistics —
unlike FedL, the policy does not use the passively-observed latencies of
unselected clients, which is exactly the exploration/exploitation
handicap the bandit formulation carries.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Decision, EpochContext, RoundFeedback, enforce_feasibility

__all__ = ["UCBPolicy"]


class UCBPolicy:
    """UCB1 over clients with negative-latency rewards."""

    def __init__(
        self,
        num_clients: int,
        rng: np.random.Generator,
        exploration: float = 0.5,
        iterations: int = 2,
    ) -> None:
        if num_clients < 1:
            raise ValueError("need at least one client")
        if exploration < 0:
            raise ValueError("exploration must be nonnegative")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.name = "UCB"
        self.rng = rng
        self.exploration = exploration
        self.iterations = iterations
        self.pulls = np.zeros(num_clients, dtype=np.int64)
        self.mean_reward = np.zeros(num_clients)
        self.t = 0

    def _scores(self, available: np.ndarray) -> np.ndarray:
        bonus = np.where(
            self.pulls > 0,
            self.exploration
            * np.sqrt(np.log(self.t + 1.0) / np.maximum(self.pulls, 1)),
            np.inf,
        )
        scores = self.mean_reward + bonus
        return np.where(available, scores, -np.inf)

    def select(self, ctx: EpochContext) -> Decision:
        scores = self._scores(ctx.available)
        n = min(ctx.min_participants, int(ctx.available.sum()))
        # Random tie-breaking among equal scores (e.g. many unexplored arms).
        jitter = self.rng.random(scores.size) * 1e-9
        order = np.argsort(-(scores + jitter), kind="stable")
        mask = np.zeros(ctx.num_clients, dtype=bool)
        mask[order[:n]] = True
        mask = enforce_feasibility(mask, ctx, self.rng)
        return Decision(selected=mask, iterations=self.iterations)

    def update(self, feedback: RoundFeedback) -> None:
        self.t += 1
        sel = np.flatnonzero(feedback.selected)
        for k in sel:
            reward = -float(feedback.tau_realized[k])
            self.pulls[k] += 1
            self.mean_reward[k] += (reward - self.mean_reward[k]) / self.pulls[k]
