"""Over-selection straggler mitigation (wrapper policy).

Synchronous FL pays for its slowest participant (paper eq. 2).  A classic
mitigation is to rent ``extra`` additional clients and stop the round
once the original quorum has uploaded — trading rental cost for latency
tail-cutting, and hedging against mid-round crashes.

:class:`OverSelectPolicy` wraps ANY base policy: it forwards the base
decision with ``extra`` additional fastest-estimated clients appended and
the quorum set to the base selection size.  The experiment runner
implements the quorum semantics (epoch latency = quorum-th fastest
participant; only the quorum's updates aggregate).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Decision, EpochContext, RoundFeedback, SelectionPolicy

__all__ = ["OverSelectPolicy"]


class OverSelectPolicy:
    """Wrap a base policy with rent-extra / take-fastest-quorum semantics."""

    def __init__(self, base: SelectionPolicy, extra: int = 2) -> None:
        if extra < 1:
            raise ValueError("extra must be >= 1")
        self.base = base
        self.extra = extra
        self.name = f"{base.name}+over{extra}"

    def select(self, ctx: EpochContext) -> Decision:
        decision = self.base.select(ctx)
        mask = decision.selected.copy()
        quorum = int(mask.sum())
        # Add the `extra` fastest-estimated unselected available clients
        # that still fit the budget.
        candidates = np.flatnonzero(ctx.available & ~mask)
        order = candidates[np.argsort(ctx.tau_last[candidates], kind="stable")]
        spend = float(ctx.costs[mask].sum())
        added = 0
        for k in order:
            if added >= self.extra:
                break
            if spend + ctx.costs[k] > ctx.remaining_budget:
                continue
            mask[k] = True
            spend += ctx.costs[k]
            added += 1
        return Decision(
            selected=mask,
            iterations=decision.iterations,
            rho=decision.rho,
            fractional_x=decision.fractional_x,
            quorum=quorum,
        )

    def update(self, feedback: RoundFeedback) -> None:
        self.base.update(feedback)
