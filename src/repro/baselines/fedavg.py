"""FedAvg selection baseline (McMahan et al. [19]).

"The server randomly selects participants to train the model" — uniform
random choice of ``n`` available clients per epoch, fixed iteration count.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Decision, EpochContext, RoundFeedback, enforce_feasibility

__all__ = ["FedAvgPolicy"]


class FedAvgPolicy:
    """Uniform random n-client selection."""

    def __init__(
        self,
        rng: np.random.Generator,
        iterations: int = 2,
        sample_size: int | None = None,
    ) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.name = "FedAvg"
        self.rng = rng
        self.iterations = iterations
        self.sample_size = sample_size  # default: exactly n

    def select(self, ctx: EpochContext) -> Decision:
        avail = np.flatnonzero(ctx.available)
        want = self.sample_size if self.sample_size is not None else ctx.min_participants
        want = min(max(want, ctx.min_participants), avail.size)
        pick = self.rng.choice(avail, size=want, replace=False)
        mask = np.zeros(ctx.num_clients, dtype=bool)
        mask[pick] = True
        mask = enforce_feasibility(mask, ctx, self.rng)
        return Decision(selected=mask, iterations=self.iterations)

    def update(self, feedback: RoundFeedback) -> None:
        """FedAvg is stateless."""
