"""Power-of-choice selection baseline (Cho et al. [5]).

Pow-d samples a candidate set of ``d`` available clients uniformly at
random, then keeps the ``n`` candidates with the **largest** current local
losses — biasing participation toward clients the model currently serves
worst ("emphasizes selection fairness ... selects clients with larger
local losses").

Local losses come from ``ctx.local_losses``, i.e. the most recent
observation of each client's loss at the current global model (NaN for
clients never yet probed; NaNs rank last).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Decision, EpochContext, RoundFeedback, enforce_feasibility

__all__ = ["PowDPolicy"]


class PowDPolicy:
    """Sample d candidates, keep the n with the largest local loss."""

    def __init__(
        self,
        rng: np.random.Generator,
        d: int = 15,
        iterations: int = 2,
    ) -> None:
        if d < 1:
            raise ValueError("d must be >= 1")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.name = "Pow-d"
        self.rng = rng
        self.d = d
        self.iterations = iterations

    def select(self, ctx: EpochContext) -> Decision:
        avail = np.flatnonzero(ctx.available)
        d = min(self.d, avail.size)
        candidates = self.rng.choice(avail, size=d, replace=False)
        losses = ctx.local_losses[candidates]
        # NaN (never observed) sorts last: replace with -inf so observed
        # high-loss clients win; if everything is NaN fall back to random.
        keyed = np.where(np.isnan(losses), -np.inf, losses)
        n = min(ctx.min_participants, d)
        top = candidates[np.argsort(-keyed, kind="stable")[:n]]
        mask = np.zeros(ctx.num_clients, dtype=bool)
        mask[top] = True
        mask = enforce_feasibility(mask, ctx, self.rng)
        return Decision(selected=mask, iterations=self.iterations)

    def update(self, feedback: RoundFeedback) -> None:
        """Stateless; losses arrive through the context."""
