"""Selection-policy protocol shared by FedL and all baselines.

The experiment runner drives every policy through the same two-phase
cycle per epoch ``t``:

1. ``select(ctx)`` — the policy returns a :class:`Decision` (participant
   mask + number of global iterations) using only information available
   *before* the epoch runs (0-lookahead: ``ctx`` carries the **previous**
   epoch's realized latencies/losses, never the current ones).
2. the runner executes the epoch and calls ``update(feedback)`` with the
   realized observables so the policy can learn.

``ctx.tau_oracle`` is the one deliberate exception: the true
current-epoch per-iteration latencies, provided *only* for the oracle
baseline and lookahead ablations.  Honest policies must not read it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

import numpy as np

__all__ = ["EpochContext", "Decision", "RoundFeedback", "SelectionPolicy"]


@dataclass(frozen=True)
class EpochContext:
    """Everything a 0-lookahead policy may see before epoch ``t`` runs."""

    t: int                          # epoch index (0-based)
    available: np.ndarray           # (M,) bool — E_t is announced up front
    costs: np.ndarray               # (M,) current rental prices c_{t,k}
    remaining_budget: float         # C minus spend so far
    min_participants: int           # n
    tau_last: np.ndarray            # (M,) last realized per-iteration latency
                                    #       (prior estimate at t=0)
    local_losses: np.ndarray        # (M,) last local losses at current w
                                    #       (NaN where never observed)
    tau_oracle: Optional[np.ndarray] = None   # true τ of THIS epoch (oracle only)
    reliability: Optional[np.ndarray] = None  # (M,) in [0,1]; EWMA of clean
                                              #       rounds (defense active only)

    def __post_init__(self) -> None:
        m = np.asarray(self.available).size
        for name in ("available", "costs", "tau_last", "local_losses"):
            arr = np.asarray(getattr(self, name))
            if arr.shape != (m,):
                raise ValueError(f"{name} must have shape ({m},)")
        object.__setattr__(self, "available", np.asarray(self.available, dtype=bool))
        for name in ("costs", "tau_last", "local_losses"):
            object.__setattr__(self, name, np.asarray(getattr(self, name), dtype=float))
        if self.tau_oracle is not None:
            arr = np.asarray(self.tau_oracle, dtype=float)
            if arr.shape != (m,):
                raise ValueError("tau_oracle shape mismatch")
            object.__setattr__(self, "tau_oracle", arr)
        if self.reliability is not None:
            arr = np.asarray(self.reliability, dtype=float)
            if arr.shape != (m,):
                raise ValueError("reliability shape mismatch")
            if np.any(arr < 0.0) or np.any(arr > 1.0):
                raise ValueError("reliability must lie in [0, 1]")
            object.__setattr__(self, "reliability", arr)
        if self.min_participants < 1:
            raise ValueError("min_participants must be >= 1")

    @property
    def num_clients(self) -> int:
        return self.available.size

    def affordable(self, mask: np.ndarray) -> bool:
        """True if renting ``mask`` fits the remaining budget."""
        return float(self.costs[np.asarray(mask, dtype=bool)].sum()) <= self.remaining_budget + 1e-9


@dataclass(frozen=True)
class Decision:
    """A policy's output for one epoch.

    ``quorum`` enables over-selection straggler mitigation: when set to
    ``q < selected.sum()``, the epoch ends as soon as the ``q`` fastest
    participants finish — the remaining (rented, paid) stragglers' updates
    are discarded.  ``None`` means everyone must finish (the paper's
    synchronous model).
    """

    selected: np.ndarray            # (M,) bool participant mask
    iterations: int                 # l_t global iterations this epoch
    rho: float = float("nan")       # fractional ρ_t (FedL diagnostic)
    fractional_x: Optional[np.ndarray] = None   # pre-rounding x̃ (diagnostic)
    quorum: Optional[int] = None    # straggler-mitigation quorum

    def __post_init__(self) -> None:
        sel = np.asarray(self.selected, dtype=bool)
        object.__setattr__(self, "selected", sel)
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if not sel.any():
            raise ValueError("a decision must select at least one client")
        if self.quorum is not None and self.quorum < 1:
            raise ValueError("quorum must be >= 1 when set")


@dataclass(frozen=True)
class RoundFeedback:
    """Realized observables handed back to the policy after the epoch."""

    t: int
    selected: np.ndarray            # what actually ran (post-rounding)
    tau_realized: np.ndarray        # (M,) true per-iteration latency this epoch
    local_etas: np.ndarray          # (M,) η̂_{t,k}; NaN for non-participants
    local_losses: np.ndarray        # (M,) F_{t,k}(w) after the epoch (NaN unavailable)
    population_loss: float          # F_t(w^{l_t}) over available clients
    cost_spent: float
    epoch_latency: float            # max over participants of l_t·τ

    def __post_init__(self) -> None:
        object.__setattr__(self, "selected", np.asarray(self.selected, dtype=bool))
        for name in ("tau_realized", "local_etas", "local_losses"):
            object.__setattr__(self, name, np.asarray(getattr(self, name), dtype=float))


@runtime_checkable
class SelectionPolicy(Protocol):
    """Protocol implemented by FedL and every baseline."""

    name: str

    def select(self, ctx: EpochContext) -> Decision:
        """Choose participants and iteration count for the coming epoch."""
        ...

    def update(self, feedback: RoundFeedback) -> None:
        """Ingest the epoch's realized observables."""
        ...


def enforce_feasibility(
    mask: np.ndarray,
    ctx: EpochContext,
    rng: np.random.Generator,
) -> np.ndarray:
    """Repair a selection so it is feasible: available-only, >= n clients,
    within budget.  Shared by all policies.

    Repairs, in order: drop unavailable picks; top up to ``n`` with the
    cheapest unselected available clients; drop the most expensive extras
    (never below ``n``) while over budget.  If even the ``n`` cheapest
    available clients exceed the remaining budget the selection is returned
    over budget — the runner then terminates the FL process (budget
    exhausted, paper Alg. 1 line 1).
    """
    sel = np.asarray(mask, dtype=bool).copy()
    sel &= ctx.available
    n = ctx.min_participants
    avail_idx = np.flatnonzero(ctx.available)
    # Top up to n with cheapest available.
    if sel.sum() < n:
        candidates = avail_idx[~sel[avail_idx]]
        order = candidates[np.argsort(ctx.costs[candidates], kind="stable")]
        need = n - int(sel.sum())
        sel[order[:need]] = True
    # Trim while over budget (keep at least n).
    while sel.sum() > n and float(ctx.costs[sel].sum()) > ctx.remaining_budget:
        chosen = np.flatnonzero(sel)
        worst = chosen[np.argmax(ctx.costs[chosen])]
        sel[worst] = False
    return sel
