"""Per-slot offline oracle (regret reference; deliberately 1-lookahead).

Selects, with knowledge of the TRUE current-epoch latencies
(``ctx.tau_oracle``), the feasible n-subset minimizing the epoch latency
``max_k τ_k`` subject to the budget — i.e. the per-slot optimum of the
paper's objective (2) for a fixed iteration count.  Because latency is a
max, the optimal n-subset under a budget can be found by a sweep: sort by
τ; for each prefix-defining slowest client, take the cheapest n clients no
slower; feasible candidates are compared by their slowest member.

This is the comparator ``Φ*_t`` in the dynamic-regret definition
(Sec. 5): honest online policies are measured against it.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Decision, EpochContext, RoundFeedback, enforce_feasibility

__all__ = ["GreedyOraclePolicy", "best_subset_max_latency"]


def best_subset_max_latency(
    tau: np.ndarray,
    costs: np.ndarray,
    n: int,
    budget: float,
) -> np.ndarray | None:
    """Cheapest-feasible minimizer of ``max_k τ_k`` over n-subsets.

    Returns a boolean mask, or ``None`` if no n-subset fits the budget.
    Sweep over the candidate slowest client in increasing-τ order; for the
    prefix of clients at least as fast, the cheapest n form the best
    subset with that max-latency; the first affordable one wins.
    """
    tau = np.asarray(tau, dtype=float)
    costs = np.asarray(costs, dtype=float)
    m = tau.size
    if not (1 <= n <= m):
        return None
    order = np.argsort(tau, kind="stable")
    for j in range(n - 1, m):
        prefix = order[: j + 1]
        cheap = prefix[np.argsort(costs[prefix], kind="stable")[:n]]
        if float(costs[cheap].sum()) <= budget + 1e-9:
            mask = np.zeros(m, dtype=bool)
            mask[cheap] = True
            return mask
    return None


class GreedyOraclePolicy:
    """Per-slot optimal selection with true current-epoch latencies."""

    def __init__(self, rng: np.random.Generator, iterations: int = 2) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.name = "Oracle"
        self.rng = rng
        self.iterations = iterations

    def select(self, ctx: EpochContext) -> Decision:
        if ctx.tau_oracle is None:
            raise ValueError("GreedyOraclePolicy requires ctx.tau_oracle")
        avail = np.flatnonzero(ctx.available)
        sub = best_subset_max_latency(
            ctx.tau_oracle[avail],
            ctx.costs[avail],
            min(ctx.min_participants, avail.size),
            ctx.remaining_budget,
        )
        mask = np.zeros(ctx.num_clients, dtype=bool)
        if sub is not None:
            mask[avail[sub]] = True
        else:
            # Budget exhausted for any n-subset: fall back to cheapest n;
            # the runner will detect overspend and stop.
            cheapest = avail[np.argsort(ctx.costs[avail])[: ctx.min_participants]]
            mask[cheapest] = True
        mask = enforce_feasibility(mask, ctx, self.rng)
        return Decision(selected=mask, iterations=self.iterations)

    def update(self, feedback: RoundFeedback) -> None:
        """Oracle is stateless."""
