"""Command-line interface.

Ten subcommands::

    python -m repro run      --policy FedL --dataset fmnist --budget 600 \
                             [--param KEY=VALUE ...] [--telemetry out/trace]
    python -m repro sim      --policy FedL --aggregation deadline \
                             --deadline 0.05 --faults flaky-uplink \
                             [--telemetry out/trace]
    python -m repro live     --policy FedL --workers 4 --time-scale 25 \
                             [--faults stress | --calibrate --out CAL.json]
    python -m repro compare  --dataset fmnist --budget 1200 [--non-iid]
    python -m repro sweep    --dataset fmnist --budgets 300 800 2000 \
                             --seeds 0 1 2 --workers 4 [--telemetry out/trace] \
                             --cache-dir ~/.cache/repro/sweeps
    python -m repro tournament [--quick] [--list] [--strategies A B] \
                             [--scenarios X Y] [--seeds 0 1 2] \
                             [--out REPORT.json] [--cache-dir DIR] \
                             [--telemetry out/trace]
    python -m repro trace    out/trace [--run PREFIX] \
                             [--follow [--poll 0.5] [--timeout 60]]
    python -m repro profile  out/trace [--diff other/trace] [--top 10]
    python -m repro regret   --horizons 25 50 100
    python -m repro bench    [--quick] [--out BENCH.json] \
                             [--check BENCH_PR3.json --tolerance 0.2] \
                             [--overhead [--max-null-overhead 0.02]] \
                             [--compare A.json B.json]

``tournament`` runs every registered selection strategy (the zoo in
:mod:`repro.strategies`) across a scenario matrix (partition skew, price
regimes, Byzantine attacks, availability churn, DES fault profiles)
through the sweep engine + cache, and prints a ranked report (per-
scenario winners, overall ranking, head-to-head wins); ``--out`` also
persists the report JSON.  ``--param KEY=VALUE`` (run/sweep) overrides a
strategy's registry parameters — unknown strategies or parameters exit
with code 2.

``sim`` is ``run`` on the event-driven network runtime
(:mod:`repro.sim`): each round is simulated message-by-message with the
chosen aggregation policy (sync barrier, deadline drop, K-quorum async)
and fault profile (stragglers, upload retries, mid-round dropout), and
``repro trace`` renders per-client round timelines from the recorded
``sim.*`` events.  ``sweep`` accepts the same runtime knobs
(``--engine des --aggregation ... --faults ...``) so grids can compare
aggregation policies under faults.

``live`` is ``run`` on the live multi-process runtime (:mod:`repro.
live`): forked worker processes execute the real local solves and stream
serialized updates back over sockets through a token-bucket bandwidth
shaper, so round timelines are *measured* wall clock instead of closed
form.  It shares ``sim``'s aggregation/fault knobs (one physics, two
engines) and adds ``--workers``, ``--time-scale``, ``--transport`` and
``--round-timeout``.  ``live --calibrate`` runs the same scenario
through the DES and the live runtime per fault profile and prints the
divergence table (predicted vs measured round latency, barrier fill
times, drop counts) plus a fault-free live-vs-loop bit-identity verdict;
``--out`` persists the report JSON.

``run``/``sim``/``sweep`` also take the robustness knobs
(``--attack sign-flip --attack-fraction 0.2 --defense trimmed-mean``):
``--attack`` plants deterministic Byzantine clients
(:mod:`repro.fl.adversary`) and ``--defense`` screens and robustly
aggregates their uploads (:mod:`repro.fl.defense`); quarantine totals
appear in the run summary and in ``repro trace``.

``run``/``compare``/``sweep`` accept ``--save out.json`` to persist the
traces/results (see :mod:`repro.experiments.persistence`).  ``sweep``
runs its policies × budgets × seeds grid through the process-parallel
sweep engine (:mod:`repro.experiments.sweep`) with per-job progress on
stderr (``--quiet`` silences it); ``--cache-dir`` makes re-runs serve
finished jobs from disk.  ``--telemetry DIR`` records a structured JSONL
event trace plus a ``manifest.json`` (see :mod:`repro.obs`) that
``repro trace DIR`` renders as timing tables and controller
trajectories; finalize also exports ``metrics.json`` and a
Prometheus-style ``metrics.prom``.

``trace --follow`` tails a live trace directory while the run is in
flight, printing one status line per completed epoch (accuracy, regret,
fit, budget headroom, quarantine count, latency, accuracy sparkline) and
exiting 0 once the run finalizes.  ``profile`` reconstructs the temporal
phase tree from a finished trace's manifest — self vs. cumulative time,
call counts, per-epoch cost — and ``--diff`` compares two trace
directories phase by phase.  ``bench --overhead`` audits what the
telemetry layer itself costs (disabled vs. enabled hubs per layer, with
per-hook-site attribution); ``bench --compare A.json B.json`` prints a
per-layer delta table between two saved bench reports.

Exit codes: 0 on success, 2 on argument errors (both argparse failures
and semantic validation like non-positive budgets), 1 on runtime errors.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro import __version__
from repro.checkpoint import CheckpointError, ExperimentInterrupted
from repro.config import CheckpointConfig, LiveConfig, SimConfig
from repro.fl.adversary import ATTACKS
from repro.fl.defense import AGGREGATORS, CorruptUpdateError, TrainingDivergedError
from repro.experiments.figures import accuracy_vs_time, run_policy_suite
from repro.experiments.persistence import save_results, save_traces
from repro.experiments.reporting import format_series, format_table
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import POLICY_NAMES, experiment_config, make_policy
from repro.experiments.sweep import (
    PolicySpec,
    SweepCache,
    SweepJob,
    SweepProgress,
    run_sweep,
)
from repro.experiments.tables import headline_claims
from repro.live import LiveError, run_calibration
from repro.live.calibrate import DEFAULT_PROFILES
from repro.obs import Telemetry, render_trace, use_telemetry
from repro.rng import RngFactory
from repro.sim.entities import AGGREGATION_POLICIES
from repro.sim.faults import FAULT_PROFILES, ParticipationFloorError
from repro.strategies import STRATEGY_REGISTRY, StrategyError, strategy_names

__all__ = ["main", "build_parser"]

#: Every strategy the CLI can name — the registry, in registration order.
ALL_POLICIES = strategy_names()

#: Exit code for argument/usage errors (matches argparse's own).
EXIT_USAGE = 2


def _usage_error(message: str) -> int:
    print(f"repro: error: {message}", file=sys.stderr)
    return EXIT_USAGE


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FedL reproduction: online client selection for "
        "federated edge learning under budget constraint (ICPP '22).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", default="fmnist", choices=["fmnist", "cifar10"])
        p.add_argument("--non-iid", action="store_true")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--clients", type=int, default=20)
        p.add_argument("--participants", type=int, default=5)
        p.add_argument("--epochs", type=int, default=80)
        p.add_argument("--save", type=str, default=None, metavar="PATH.json")

    def scaling(p: argparse.ArgumentParser) -> None:
        p.add_argument("--num-clients", dest="clients", type=int,
                       default=argparse.SUPPRESS, metavar="K",
                       help="alias of --clients (large-K convention)")
        p.add_argument("--num-shards", type=int, default=None, metavar="S",
                       help="partition the fleet into S shards: per-shard "
                       "FedL selection + hierarchical aggregation. Default: "
                       "auto (clients//500 once clients >= 5000, else 1); "
                       "pass 1 to force the flat path")
        p.add_argument("--eval-sample", type=int, default=None, metavar="N",
                       help="estimate the population loss from a fresh "
                       "random panel of N available clients per epoch "
                       "instead of sweeping all of them. Default: auto "
                       "(2000 once clients >= 10000); pass 0 to force the "
                       "exact full sweep")
        p.add_argument("--quiet", action="store_true",
                       help="suppress the periodic epoch-throughput "
                       "heartbeat on stderr")

    def robustness(p: argparse.ArgumentParser) -> None:
        p.add_argument("--attack", default=None, choices=list(ATTACKS),
                       help="plant deterministic Byzantine clients with this "
                       "behavior (default: none)")
        p.add_argument("--attack-fraction", type=float, default=None,
                       metavar="FRAC",
                       help="fraction of clients compromised, in (0, 1) "
                       "(requires --attack; default 0.2)")
        p.add_argument("--defense", default=None, choices=list(AGGREGATORS),
                       help="update screening + robust aggregation rule "
                       "(default: none = plain weighted mean, corrupt "
                       "uploads abort the run)")

    def checkpointing(p: argparse.ArgumentParser) -> None:
        p.add_argument("--checkpoint-dir", type=str, default=None,
                       metavar="DIR",
                       help="write atomic round-granular snapshots into DIR "
                       "every --checkpoint-interval epochs (restart the run "
                       "bit-identically with --resume DIR)")
        p.add_argument("--checkpoint-interval", type=int, default=10,
                       metavar="N",
                       help="epochs between snapshots (default 10)")
        p.add_argument("--checkpoint-keep", type=int, default=2, metavar="N",
                       help="snapshots retained in --checkpoint-dir "
                       "(default 2; older ones are pruned)")
        p.add_argument("--resume", type=str, default=None, metavar="DIR",
                       help="resume from the newest snapshot in DIR; the "
                       "experiment config comes from the snapshot, so "
                       "scenario flags are ignored. Checkpointing continues "
                       "into the same directory unless --checkpoint-dir "
                       "overrides it")

    p_run = sub.add_parser("run", help="run one policy end to end")
    common(p_run)
    scaling(p_run)
    robustness(p_run)
    checkpointing(p_run)
    p_run.add_argument("--policy", default="FedL", choices=ALL_POLICIES)
    p_run.add_argument("--param", action="append", default=[], metavar="KEY=VALUE",
                       help="override a strategy registry parameter "
                       "(repeatable; values are JSON, e.g. --param d=9)")
    p_run.add_argument("--budget", type=float, default=800.0)
    p_run.add_argument("--telemetry", type=str, default=None, metavar="DIR",
                       help="record a structured JSONL event trace + manifest "
                       "into DIR (render it with `repro trace DIR`)")

    p_sim = sub.add_parser(
        "sim",
        help="run one policy on the event-driven network runtime "
        "(message-level DES: stragglers, deadlines, retries, async)",
    )
    common(p_sim)
    scaling(p_sim)
    robustness(p_sim)
    checkpointing(p_sim)
    p_sim.add_argument("--policy", default="FedL", choices=ALL_POLICIES)
    p_sim.add_argument("--budget", type=float, default=800.0)
    p_sim.add_argument("--quick", action="store_true",
                       help="smoke mode: cap the run at 5 epochs")
    p_sim.add_argument("--aggregation", default="sync",
                       choices=list(AGGREGATION_POLICIES),
                       help="server aggregation policy for each round")
    p_sim.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                       help="round deadline (required with "
                       "--aggregation deadline): updates arriving later "
                       "are dropped, the round closes at the deadline")
    p_sim.add_argument("--quorum", type=int, default=None, metavar="K",
                       help="aggregate as soon as K updates arrive "
                       "(required with --aggregation async)")
    p_sim.add_argument("--faults", default="none",
                       choices=sorted(FAULT_PROFILES),
                       help="named fault profile (dropout hazard, upload "
                       "failures + retries)")
    p_sim.add_argument("--telemetry", type=str, default=None, metavar="DIR",
                       help="record sim.* round/client events for "
                       "`repro trace DIR` per-client timelines")

    p_liv = sub.add_parser(
        "live",
        help="run one policy on the live multi-process runtime (forked "
        "workers, real sockets, shaped uploads), or calibrate it "
        "against the DES",
    )
    common(p_liv)
    scaling(p_liv)
    checkpointing(p_liv)
    p_liv.add_argument("--policy", default="FedL", choices=ALL_POLICIES)
    p_liv.add_argument("--budget", type=float, default=800.0)
    p_liv.add_argument("--quick", action="store_true",
                       help="smoke mode: cap the run at 5 epochs")
    p_liv.add_argument("--aggregation", default="sync",
                       choices=list(AGGREGATION_POLICIES),
                       help="server aggregation policy for each round")
    p_liv.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                       help="round deadline in simulated seconds (required "
                       "with --aggregation deadline)")
    p_liv.add_argument("--quorum", type=int, default=None, metavar="K",
                       help="aggregate as soon as K updates arrive "
                       "(required with --aggregation async)")
    p_liv.add_argument("--faults", default="none",
                       choices=sorted(FAULT_PROFILES),
                       help="named fault profile (dropout hazard, upload "
                       "failures + retries), realized on the wall clock")
    p_liv.add_argument("--workers", type=int, default=2, metavar="N",
                       help="forked client worker processes (default 2)")
    p_liv.add_argument("--time-scale", type=float, default=None, metavar="X",
                       help="wall seconds per simulated second (default 1; "
                       "--calibrate defaults to 25 so shaped sleeps "
                       "dominate host overhead)")
    p_liv.add_argument("--transport", default="unix",
                       choices=["unix", "tcp"],
                       help="worker socket transport (default unix "
                       "socketpair; tcp = loopback TCP)")
    p_liv.add_argument("--round-timeout", type=float, default=60.0,
                       metavar="SECONDS",
                       help="wall-clock safety cap per iteration barrier")
    p_liv.add_argument("--calibrate", action="store_true",
                       help="run the scenario through DES and live per "
                       "fault profile and print the divergence table "
                       "(+ fault-free live-vs-loop bit-identity check)")
    p_liv.add_argument("--profiles", nargs="+", default=None,
                       choices=sorted(FAULT_PROFILES),
                       help="fault profiles for --calibrate "
                       "(default: none flaky-uplink stress)")
    p_liv.add_argument("--out", type=str, default=None, metavar="REPORT.json",
                       help="persist the --calibrate report as JSON")
    p_liv.add_argument("--telemetry", type=str, default=None, metavar="DIR",
                       help="record live.* round/client events plus the "
                       "runtime's measured per-client stats files")

    p_cmp = sub.add_parser("compare", help="run the four-policy paper suite")
    common(p_cmp)
    p_cmp.add_argument("--budget", type=float, default=1200.0)
    p_cmp.add_argument("--target", type=float, default=0.7,
                       help="accuracy target for the completion-time table")
    p_cmp.add_argument("--chart", action="store_true",
                       help="render an ASCII accuracy-vs-time chart")

    p_swp = sub.add_parser(
        "sweep",
        help="budget sweep (paper Figs. 6-7) on the parallel sweep engine",
    )
    common(p_swp)
    robustness(p_swp)
    p_swp.add_argument("--budgets", type=float, nargs="+",
                       default=[300.0, 800.0, 2000.0])
    p_swp.add_argument("--seeds", type=int, nargs="+", default=None,
                       help="repeat each budget over these seeds "
                       "(default: just --seed); losses are averaged")
    p_swp.add_argument("--policies", nargs="+", default=list(POLICY_NAMES),
                       choices=list(ALL_POLICIES))
    p_swp.add_argument("--param", action="append", default=[], metavar="KEY=VALUE",
                       help="strategy registry parameter override applied to "
                       "every policy in the grid that declares it "
                       "(repeatable; values are JSON)")
    def positive_int(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return value

    p_swp.add_argument("--workers", type=positive_int, default=None,
                       help="worker processes (default: all cores; 1 = serial)")
    p_swp.add_argument("--engine", default=None,
                       choices=["loop", "batched", "des"],
                       help="override the per-round training engine "
                       "(des = event-driven network runtime)")
    p_swp.add_argument("--aggregation", default=None,
                       choices=list(AGGREGATION_POLICIES),
                       help="DES aggregation policy (implies --engine des "
                       "semantics; pair with --deadline/--quorum)")
    p_swp.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                       help="DES round deadline for --aggregation deadline")
    p_swp.add_argument("--quorum", type=int, default=None, metavar="K",
                       help="DES quorum for --aggregation async")
    p_swp.add_argument("--faults", default=None,
                       choices=sorted(FAULT_PROFILES),
                       help="DES fault profile for every job")
    p_swp.add_argument("--cache-dir", type=str, default=None, metavar="DIR",
                       help="reuse/store per-job results in this directory "
                       "(a second identical sweep only runs cache misses)")
    p_swp.add_argument("--checkpoint-dir", type=str, default=None,
                       metavar="DIR",
                       help="give every job a snapshot directory under "
                       "DIR/jobs/<job-key>; a crashed sweep resumes each "
                       "job from its newest surviving snapshot")
    p_swp.add_argument("--checkpoint-interval", type=int, default=10,
                       metavar="N",
                       help="epochs between per-job snapshots (default 10)")
    p_swp.add_argument("--checkpoint-keep", type=int, default=2, metavar="N",
                       help="snapshots retained per job (default 2)")
    p_swp.add_argument("--telemetry", type=str, default=None, metavar="DIR",
                       help="record per-job/worker JSONL event traces + a "
                       "merged manifest into DIR")
    p_swp.add_argument("--quiet", "--no-progress", dest="quiet",
                       action="store_true",
                       help="suppress the per-job progress lines on stderr")

    p_trn = sub.add_parser(
        "tournament",
        help="rank every registered strategy across a scenario matrix "
        "(partitions, prices, attacks, churn) via the sweep engine",
    )
    p_trn.add_argument("--list", action="store_true", dest="list_registry",
                       help="list registered strategies and scenarios, "
                       "then exit")
    p_trn.add_argument("--quick", action="store_true",
                       help="tiny smoke-scale matrix (synchronous quick "
                       "scenarios, 1 seed, seconds per strategy)")
    p_trn.add_argument("--strategies", nargs="+", default=None, metavar="NAME",
                       help="restrict to these registered strategies "
                       "(default: the whole registry)")
    p_trn.add_argument("--scenarios", nargs="+", default=None, metavar="NAME",
                       help="restrict to these scenarios (default: quick "
                       "matrix with --quick, else every scenario)")
    p_trn.add_argument("--seeds", type=int, nargs="+", default=None,
                       help="seeds per cell (default: 0 with --quick, "
                       "else 0 1 2)")
    p_trn.add_argument("--workers", type=positive_int, default=None,
                       help="worker processes (default: all cores; "
                       "1 = serial)")
    p_trn.add_argument("--cache-dir", type=str, default=None, metavar="DIR",
                       help="reuse/store per-cell results in this directory")
    p_trn.add_argument("--out", type=str, default=None, metavar="REPORT.json",
                       help="also persist the report as versioned JSON")
    p_trn.add_argument("--telemetry", type=str, default=None, metavar="DIR",
                       help="record per-job/worker JSONL event traces + a "
                       "merged manifest and metrics export into DIR")
    p_trn.add_argument("--quiet", "--no-progress", dest="quiet",
                       action="store_true",
                       help="suppress the per-job progress lines on stderr")

    p_trc = sub.add_parser(
        "trace",
        help="render a recorded --telemetry directory (timing tables, "
        "dual/regret/fit trajectories)",
    )
    p_trc.add_argument("directory", type=str, metavar="DIR")
    p_trc.add_argument("--run", type=str, default=None, metavar="PREFIX",
                       help="only render trajectories for run ids matching "
                       "this prefix")
    p_trc.add_argument("--no-chart", action="store_true",
                       help="skip the ASCII chart (sparklines only)")
    p_trc.add_argument("--follow", action="store_true",
                       help="tail the trace live: stream one line per "
                       "completed epoch until the run finalizes")
    p_trc.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                       help="polling interval for --follow (default 0.5)")
    p_trc.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="give up following after this much wall time "
                       "(default: wait until the run finalizes)")

    p_prf = sub.add_parser(
        "profile",
        help="hierarchical phase profile of a finished trace directory "
        "(self vs cumulative time, per-epoch cost, hot-phase ranking)",
    )
    p_prf.add_argument("directory", type=str, metavar="DIR")
    p_prf.add_argument("--diff", type=str, default=None, metavar="DIR2",
                       help="also diff against a second trace directory "
                       "(per-phase delta table, regression highlighting)")
    p_prf.add_argument("--top", type=int, default=10, metavar="N",
                       help="hot phases to rank by self time (default 10)")
    p_prf.add_argument("--json", type=str, default=None, metavar="PATH.json",
                       dest="json_out",
                       help="also write the profile document as JSON")

    p_reg = sub.add_parser("regret", help="dynamic regret/fit growth check")
    p_reg.add_argument("--horizons", type=int, nargs="+", default=[25, 50, 100])
    p_reg.add_argument("--seed", type=int, default=5)

    p_bch = sub.add_parser(
        "bench",
        help="hot-path performance benchmark (FL engine, epoch solver, "
        "NN kernels) with an optional regression gate",
    )
    p_bch.add_argument("--quick", action="store_true",
                       help="smaller config for CI smoke runs")
    p_bch.add_argument("--clients", type=int, default=None,
                       help="FL-layer client count (default: 100, or 40 "
                       "with --quick)")
    p_bch.add_argument("--epochs", type=int, default=None,
                       help="FL-layer epoch count (default: 200, or 40 "
                       "with --quick)")
    p_bch.add_argument("--seed", type=int, default=0)
    p_bch.add_argument("--out", type=str, default=None, metavar="PATH.json",
                       help="write the versioned JSON report here")
    p_bch.add_argument("--check", type=str, default=None, metavar="BASELINE.json",
                       help="compare against a baseline report; exit 1 when "
                       "a gated ratio regresses past --tolerance or "
                       "bit-identity breaks")
    p_bch.add_argument("--tolerance", type=float, default=0.2,
                       help="allowed fractional regression for --check "
                       "(default 0.2 = 20%%)")
    p_bch.add_argument("--strict", action="store_true",
                       help="with --check, also gate absolute throughputs "
                       "(same-machine baselines only)")
    p_bch.add_argument("--pre-pr-seconds", type=float, default=None,
                       help="wall seconds of the pre-PR loop reference at "
                       "the same FL config (measured from a worktree of "
                       "the parent commit); recorded in the report")
    p_bch.add_argument("--overhead", action="store_true",
                       help="run the telemetry overhead audit instead of "
                       "the throughput bench: disabled vs enabled hubs "
                       "per layer with hook-site attribution")
    p_bch.add_argument("--max-null-overhead", type=float, default=0.02,
                       metavar="FRAC",
                       help="with --overhead, fail (exit 1) when the "
                       "estimated disabled-telemetry cost of any layer "
                       "exceeds this fraction of its runtime "
                       "(default 0.02 = 2%%)")
    p_bch.add_argument("--compare", nargs=2, default=None,
                       metavar=("A.json", "B.json"),
                       help="print a per-layer delta table between two "
                       "saved bench reports, then exit")
    p_bch.add_argument("--layers", nargs="+", default=None, metavar="LAYER",
                       help="run only these bench layers (space- or "
                       "comma-separated; known: fl, solver, nn, sim, "
                       "scale; default: all)")
    p_bch.add_argument("--checkpoint-overhead", action="store_true",
                       help="measure what periodic snapshots cost an "
                       "otherwise-identical run (interval=10) and verify "
                       "the checkpointed run stays bit-identical; exit 1 "
                       "when the overhead exceeds --max-ckpt-overhead")
    p_bch.add_argument("--max-ckpt-overhead", type=float, default=0.02,
                       metavar="FRAC",
                       help="allowed checkpoint wall-clock overhead "
                       "fraction for --checkpoint-overhead "
                       "(default 0.02 = 2%%)")
    p_bch.add_argument("--crash-smoke", action="store_true",
                       help="run the SIGKILL crash/resume drill instead of "
                       "the throughput bench: fork a checkpointing run, "
                       "kill it at a randomized epoch, resume from disk, "
                       "and verify the recovery is bit-identical to an "
                       "uninterrupted reference (exit 1 on mismatch)")
    p_bch.add_argument("--engine", default="loop",
                       choices=["loop", "batched", "des", "live"],
                       help="training engine for --crash-smoke "
                       "(default loop)")
    return parser


def _validate_common(args: argparse.Namespace) -> Optional[str]:
    """Semantic argument validation shared by run/compare/sweep."""
    if args.clients < 1:
        return "--clients must be >= 1"
    if args.participants < 1 or args.participants > args.clients:
        return "--participants must be in [1, --clients]"
    if args.epochs < 1:
        return "--epochs must be >= 1"
    budgets = getattr(args, "budgets", None)
    if budgets is not None and any(b <= 0 for b in budgets):
        return "--budgets must all be positive"
    budget = getattr(args, "budget", None)
    if budget is not None and budget <= 0:
        return "--budget must be positive"
    return None


def _validate_sim_args(
    aggregation: Optional[str],
    deadline: Optional[float],
    quorum: Optional[int],
) -> Optional[str]:
    """Semantic validation of the event-driven-runtime knobs (sim/sweep)."""
    if aggregation == "deadline":
        if deadline is None:
            return "--aggregation deadline requires --deadline"
        if deadline <= 0:
            return "--deadline must be positive"
    elif deadline is not None:
        return "--deadline only applies with --aggregation deadline"
    if aggregation == "async":
        if quorum is None:
            return "--aggregation async requires --quorum"
        if quorum < 1:
            return "--quorum must be >= 1"
    elif quorum is not None:
        return "--quorum only applies with --aggregation async"
    return None


def _validate_attack_args(
    attack: Optional[str],
    fraction: Optional[float],
) -> Optional[str]:
    """Semantic validation of the robustness knobs (run/sim/sweep)."""
    if fraction is not None:
        if attack is None or attack == "none":
            return "--attack-fraction only applies with --attack"
        if not (0.0 < fraction < 1.0):
            return "--attack-fraction must be in (0, 1)"
    return None


def _attack_overlay(cfg, args: argparse.Namespace):
    """Overlay --attack/--attack-fraction/--defense onto a config.

    With neither flag set the config is returned unchanged, keeping the
    benign path exactly what it was before these flags existed.
    """
    if args.attack in (None, "none") and args.defense in (None, "none"):
        return cfg
    attack = dataclasses.replace(
        cfg.attack,
        kind=args.attack or "none",
        fraction=(
            args.attack_fraction
            if args.attack_fraction is not None
            else cfg.attack.fraction
        ),
    )
    defense = dataclasses.replace(
        cfg.defense, aggregator=args.defense or "none"
    )
    return dataclasses.replace(cfg, attack=attack, defense=defense)


#: Epoch-throughput heartbeat cadence (seconds) for run/sim; suppressed
#: by --quiet.
HEARTBEAT_S = 10.0

#: Auto-sharding thresholds: populations at or above SHARD_AUTO_CLIENTS
#: default to clients // SHARD_AUTO_DIVISOR shards; populations at or
#: above EVAL_AUTO_CLIENTS default to an EVAL_AUTO_SAMPLE-client
#: evaluation panel.  Explicit --num-shards / --eval-sample always win.
SHARD_AUTO_CLIENTS = 5_000
SHARD_AUTO_DIVISOR = 500
EVAL_AUTO_CLIENTS = 10_000
EVAL_AUTO_SAMPLE = 2_000


def _validate_scaling_args(args: argparse.Namespace) -> Optional[str]:
    """Semantic validation of --num-shards / --eval-sample (run/sim)."""
    num_shards = getattr(args, "num_shards", None)
    if num_shards is not None:
        if num_shards < 1:
            return "--num-shards must be >= 1"
        if num_shards > args.clients:
            return "--num-shards cannot exceed --clients"
    eval_sample = getattr(args, "eval_sample", None)
    if eval_sample is not None and eval_sample < 0:
        return "--eval-sample must be >= 0 (0 = exact full sweep)"
    return None


def _scaling_overlay(cfg, args: argparse.Namespace):
    """Overlay --num-shards/--eval-sample (with large-K auto-defaults).

    With no flags and a small fleet the config is returned unchanged, so
    the pre-sharding path stays exactly what it was.
    """
    clients = cfg.population.num_clients
    num_shards = getattr(args, "num_shards", None)
    if num_shards is None:
        num_shards = (
            max(1, clients // SHARD_AUTO_DIVISOR)
            if clients >= SHARD_AUTO_CLIENTS
            else 1
        )
    num_shards = min(num_shards, clients)
    eval_sample = getattr(args, "eval_sample", None)
    if eval_sample is None:
        eval_sample = EVAL_AUTO_SAMPLE if clients >= EVAL_AUTO_CLIENTS else 0
    eval_opt = None if eval_sample == 0 else int(eval_sample)
    if num_shards == 1 and eval_opt is None:
        return cfg
    return dataclasses.replace(
        cfg,
        shard=dataclasses.replace(
            cfg.shard, num_shards=num_shards, eval_sample=eval_opt
        ),
    )


def _validate_checkpoint_args(args: argparse.Namespace) -> Optional[str]:
    """Semantic validation of the checkpoint/resume knobs (run/sim/live/
    sweep; sweep has no --resume — its jobs auto-resume per job dir)."""
    if args.checkpoint_interval < 1:
        return "--checkpoint-interval must be >= 1"
    if args.checkpoint_keep < 1:
        return "--checkpoint-keep must be >= 1"
    resume = getattr(args, "resume", None)
    if resume is not None and not Path(resume).is_dir():
        return f"--resume: no such checkpoint directory: {resume}"
    return None


def _checkpoint_overlay(cfg, args: argparse.Namespace):
    """Overlay --checkpoint-dir/--checkpoint-interval/--checkpoint-keep."""
    if args.checkpoint_dir is None:
        return cfg
    return cfg.replace(
        checkpoint=CheckpointConfig(
            directory=args.checkpoint_dir,
            interval=args.checkpoint_interval,
            keep=args.checkpoint_keep,
        )
    )


def _resume_hint(command: str, directory: str) -> None:
    print(
        f"repro: resume with: repro {command} --resume {directory}",
        file=sys.stderr,
    )


def _resume_run(args: argparse.Namespace, command: str) -> int:
    """Shared --resume path for run/sim/live.

    The entire experiment config (engine included) comes from the
    snapshot; only the checkpoint destination can be overridden.  Exit
    codes follow the documented contract: 2 for bad arguments (handled
    by the caller's validation), 1 for unrecoverable runtime failures or
    a further interruption, 0 on completion.
    """
    from repro.checkpoint import resume_experiment

    override = None
    if args.checkpoint_dir is not None:
        override = CheckpointConfig(
            directory=args.checkpoint_dir,
            interval=args.checkpoint_interval,
            keep=args.checkpoint_keep,
        )
    try:
        result = resume_experiment(
            args.resume,
            heartbeat_s=None if getattr(args, "quiet", False) else HEARTBEAT_S,
            checkpoint_override=override,
        )
    except CheckpointError as exc:
        print(f"repro: cannot resume: {exc}", file=sys.stderr)
        return 1
    except ExperimentInterrupted as exc:
        print(f"repro: {exc}", file=sys.stderr)
        _resume_hint(command, exc.directory)
        return 1
    except ParticipationFloorError as exc:
        print(f"repro: run aborted: {exc}", file=sys.stderr)
        return 1
    except LiveError as exc:
        print(f"repro: live runtime failed: {exc}", file=sys.stderr)
        return 1
    except (CorruptUpdateError, TrainingDivergedError) as exc:
        print(f"repro: training aborted: {exc}", file=sys.stderr)
        return 1
    tr = result.trace
    print(
        f"policy={tr.policy_name} resumed={args.resume} "
        f"epochs={len(tr)} stop={result.stop_reason}"
    )
    print(
        f"final_accuracy={tr.final_accuracy:.4f} "
        f"sim_time={tr.times[-1]:.1f}s spend={tr.total_spend:.1f}"
    )
    if args.save:
        path = save_traces({tr.policy_name: tr}, args.save)
        print(f"saved -> {path}")
    return 0


def _parse_params(pairs: Sequence[str]) -> dict:
    """Parse repeated ``--param KEY=VALUE`` flags into an override dict.

    Values are JSON (``3``, ``0.5``, ``true``, ``"des"``), with a bare-
    string fallback so ``--param base=FedCS`` works unquoted.  Raises
    :class:`~repro.strategies.StrategyError` on malformed items so the
    caller maps it to exit code 2.
    """
    params: dict = {}
    for item in pairs:
        key, sep, raw = item.partition("=")
        if not sep or not key:
            raise StrategyError(f"--param expects KEY=VALUE, got {item!r}")
        try:
            value = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        if value is not None and not isinstance(value, (bool, int, float, str)):
            raise StrategyError(
                f"--param {key}: value must be a scalar, got {raw!r}"
            )
        params[key] = value
    return params


def _cmd_run(args: argparse.Namespace) -> int:
    error = (
        _validate_common(args)
        or _validate_scaling_args(args)
        or _validate_attack_args(args.attack, args.attack_fraction)
        or _validate_checkpoint_args(args)
    )
    if error:
        return _usage_error(error)
    if args.resume is not None:
        return _resume_run(args, "run")
    cfg = experiment_config(
        dataset=args.dataset,
        iid=not args.non_iid,
        budget=args.budget,
        seed=args.seed,
        num_clients=args.clients,
        min_participants=args.participants,
        max_epochs=args.epochs,
    )
    cfg = _scaling_overlay(cfg, args)
    cfg = _attack_overlay(cfg, args)
    cfg = _checkpoint_overlay(cfg, args)
    try:
        params = _parse_params(args.param)
        policy = make_policy(
            args.policy, cfg, RngFactory(args.seed).get("cli.policy"),
            params=params or None,
        )
    except StrategyError as exc:
        return _usage_error(str(exc))
    hub = (
        Telemetry.for_directory(
            args.telemetry, run_id=f"{args.policy}[seed={args.seed}]"
        )
        if args.telemetry
        else None
    )
    try:
        with use_telemetry(hub):
            result = run_experiment(
                policy, cfg,
                heartbeat_s=None if args.quiet else HEARTBEAT_S,
            )
    except (CorruptUpdateError, TrainingDivergedError) as exc:
        print(f"repro: training aborted: {exc}", file=sys.stderr)
        return 1
    except ExperimentInterrupted as exc:
        print(f"repro: {exc}", file=sys.stderr)
        _resume_hint("run", exc.directory)
        return 1
    except CheckpointError as exc:
        print(f"repro: checkpoint failure: {exc}", file=sys.stderr)
        return 1
    if hub is not None:
        hub.finalize(
            meta={"command": "run", "policy": args.policy, "seed": args.seed}
        )
        print(f"telemetry -> {args.telemetry}", file=sys.stderr)
    tr = result.trace
    print(f"policy={tr.policy_name} epochs={len(tr)} stop={result.stop_reason}")
    print(
        f"final_accuracy={tr.final_accuracy:.4f} "
        f"sim_time={tr.times[-1]:.1f}s spend={tr.total_spend:.1f}"
    )
    if args.attack not in (None, "none") or args.defense not in (None, "none"):
        print(
            f"attack={cfg.attack.kind} defense={cfg.defense.aggregator} "
            f"quarantined_updates="
            f"{sum(r.num_quarantined for r in tr.records)}"
        )
    if args.save:
        path = save_traces({tr.policy_name: tr}, args.save)
        print(f"saved -> {path}")
    return 0


def _cmd_sim(args: argparse.Namespace) -> int:
    error = (
        _validate_common(args)
        or _validate_scaling_args(args)
        or _validate_sim_args(args.aggregation, args.deadline, args.quorum)
        or _validate_attack_args(args.attack, args.attack_fraction)
        or _validate_checkpoint_args(args)
    )
    if error:
        return _usage_error(error)
    if args.resume is not None:
        return _resume_run(args, "sim")
    max_epochs = min(args.epochs, 5) if args.quick else args.epochs
    cfg = experiment_config(
        dataset=args.dataset,
        iid=not args.non_iid,
        budget=args.budget,
        seed=args.seed,
        num_clients=args.clients,
        min_participants=args.participants,
        max_epochs=max_epochs,
    )
    cfg = _scaling_overlay(cfg, args)
    cfg = dataclasses.replace(
        cfg,
        training=dataclasses.replace(cfg.training, engine="des"),
        sim=SimConfig(
            aggregation=args.aggregation,
            deadline_s=args.deadline,
            quorum=args.quorum,
            faults=args.faults,
        ),
    )
    cfg = _attack_overlay(cfg, args)
    cfg = _checkpoint_overlay(cfg, args)
    policy = make_policy(args.policy, cfg, RngFactory(args.seed).get("cli.policy"))
    hub = (
        Telemetry.for_directory(
            args.telemetry, run_id=f"{args.policy}[seed={args.seed}]"
        )
        if args.telemetry
        else None
    )
    try:
        with use_telemetry(hub):
            result = run_experiment(
                policy, cfg,
                heartbeat_s=None if args.quiet else HEARTBEAT_S,
            )
    except ParticipationFloorError as exc:
        print(f"repro: simulation aborted: {exc}", file=sys.stderr)
        return 1
    except (CorruptUpdateError, TrainingDivergedError) as exc:
        print(f"repro: training aborted: {exc}", file=sys.stderr)
        return 1
    except ExperimentInterrupted as exc:
        print(f"repro: {exc}", file=sys.stderr)
        _resume_hint("sim", exc.directory)
        return 1
    except CheckpointError as exc:
        print(f"repro: checkpoint failure: {exc}", file=sys.stderr)
        return 1
    if hub is not None:
        hub.finalize(
            meta={
                "command": "sim",
                "policy": args.policy,
                "seed": args.seed,
                "aggregation": args.aggregation,
                "faults": args.faults,
            }
        )
        print(f"telemetry -> {args.telemetry}", file=sys.stderr)
    tr = result.trace
    print(
        f"policy={tr.policy_name} engine=des aggregation={args.aggregation} "
        f"faults={args.faults} epochs={len(tr)} stop={result.stop_reason}"
    )
    print(
        f"final_accuracy={tr.final_accuracy:.4f} "
        f"sim_time={tr.times[-1]:.1f}s spend={tr.total_spend:.1f} "
        f"failed_clients={sum(r.num_failed for r in tr.records)}"
    )
    if args.attack not in (None, "none") or args.defense not in (None, "none"):
        print(
            f"attack={cfg.attack.kind} defense={cfg.defense.aggregator} "
            f"quarantined_updates="
            f"{sum(r.num_quarantined for r in tr.records)}"
        )
    if args.save:
        path = save_traces({tr.policy_name: tr}, args.save)
        print(f"saved -> {path}")
    return 0


def _validate_live_args(args: argparse.Namespace) -> Optional[str]:
    """Semantic validation of the live-runtime knobs."""
    if args.workers < 1:
        return "--workers must be >= 1"
    if args.time_scale is not None and args.time_scale <= 0:
        return "--time-scale must be positive"
    if args.round_timeout <= 0:
        return "--round-timeout must be positive"
    if args.out is not None and not args.calibrate:
        return "--out only applies with --calibrate"
    if args.profiles is not None and not args.calibrate:
        return "--profiles only applies with --calibrate"
    return None


def _cmd_live(args: argparse.Namespace) -> int:
    error = (
        _validate_common(args)
        or _validate_scaling_args(args)
        or _validate_sim_args(args.aggregation, args.deadline, args.quorum)
        or _validate_live_args(args)
        or _validate_checkpoint_args(args)
    )
    if error:
        return _usage_error(error)
    if args.resume is not None:
        return _resume_run(args, "live")
    max_epochs = min(args.epochs, 5) if args.quick else args.epochs
    time_scale = args.time_scale
    if time_scale is None:
        time_scale = 25.0 if args.calibrate else 1.0
    cfg = experiment_config(
        dataset=args.dataset,
        iid=not args.non_iid,
        budget=args.budget,
        seed=args.seed,
        num_clients=args.clients,
        min_participants=args.participants,
        max_epochs=max_epochs,
    )
    cfg = _scaling_overlay(cfg, args)
    cfg = dataclasses.replace(
        cfg,
        training=dataclasses.replace(cfg.training, engine="live"),
        sim=SimConfig(
            aggregation=args.aggregation,
            deadline_s=args.deadline,
            quorum=args.quorum,
            faults=args.faults,
        ),
        live=LiveConfig(
            workers=args.workers,
            time_scale=time_scale,
            transport=args.transport,
            round_timeout_s=args.round_timeout,
        ),
    )
    cfg = _checkpoint_overlay(cfg, args)
    if args.calibrate:
        profiles = tuple(args.profiles) if args.profiles else DEFAULT_PROFILES
        try:
            report = run_calibration(cfg, policy=args.policy, profiles=profiles)
        except (LiveError, ParticipationFloorError) as exc:
            print(f"repro: calibration aborted: {exc}", file=sys.stderr)
            return 1
        print(report.render())
        if args.out:
            path = report.save(args.out)
            print(f"saved -> {path}")
        if report.bit_identical is False:
            print(
                "repro: fault-free live run is NOT bit-identical to the "
                "loop engine",
                file=sys.stderr,
            )
            return 1
        return 0
    policy = make_policy(args.policy, cfg, RngFactory(args.seed).get("cli.policy"))
    hub = (
        Telemetry.for_directory(
            args.telemetry, run_id=f"{args.policy}[seed={args.seed}]"
        )
        if args.telemetry
        else None
    )
    try:
        with use_telemetry(hub):
            result = run_experiment(
                policy, cfg,
                heartbeat_s=None if args.quiet else HEARTBEAT_S,
                live_stats_dir=args.telemetry,
            )
    except ParticipationFloorError as exc:
        print(f"repro: live run aborted: {exc}", file=sys.stderr)
        return 1
    except LiveError as exc:
        print(f"repro: live runtime failed: {exc}", file=sys.stderr)
        return 1
    except (CorruptUpdateError, TrainingDivergedError) as exc:
        print(f"repro: training aborted: {exc}", file=sys.stderr)
        return 1
    except ExperimentInterrupted as exc:
        print(f"repro: {exc}", file=sys.stderr)
        _resume_hint("live", exc.directory)
        return 1
    except CheckpointError as exc:
        print(f"repro: checkpoint failure: {exc}", file=sys.stderr)
        return 1
    if hub is not None:
        hub.finalize(
            meta={
                "command": "live",
                "policy": args.policy,
                "seed": args.seed,
                "aggregation": args.aggregation,
                "faults": args.faults,
                "workers": args.workers,
                "time_scale": time_scale,
            }
        )
        print(f"telemetry -> {args.telemetry}", file=sys.stderr)
    tr = result.trace
    print(
        f"policy={tr.policy_name} engine=live workers={args.workers} "
        f"time_scale={time_scale:g} aggregation={args.aggregation} "
        f"faults={args.faults} epochs={len(tr)} stop={result.stop_reason}"
    )
    print(
        f"final_accuracy={tr.final_accuracy:.4f} "
        f"measured_time={tr.times[-1]:.1f}s spend={tr.total_spend:.1f} "
        f"failed_clients={sum(r.num_failed for r in tr.records)}"
    )
    if args.save:
        path = save_traces({tr.policy_name: tr}, args.save)
        print(f"saved -> {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    error = _validate_common(args)
    if error:
        return _usage_error(error)
    traces = run_policy_suite(
        args.dataset,
        iid=not args.non_iid,
        budget=args.budget,
        seed=args.seed,
        num_clients=args.clients,
        max_epochs=args.epochs,
    )
    series = accuracy_vs_time(traces)
    print(
        format_series(
            series, "seconds", "accuracy",
            title=f"accuracy vs time — {args.dataset}",
        )
    )
    if args.chart:
        from repro.experiments.plotting import ascii_chart

        print()
        print(ascii_chart(series, x_label="seconds", y_label="accuracy"))
    rows = {
        name: {
            "final acc": round(tr.final_accuracy, 3),
            f"t({args.target:.0%})": tr.time_to_accuracy(args.target),
            "epochs": len(tr),
            "spend": round(tr.total_spend, 1),
        }
        for name, tr in traces.items()
    }
    print()
    print(format_table(rows, title="summary"))
    claims = headline_claims(traces, target=args.target)
    print(
        f"\nFedL completion-time saving vs best baseline: "
        f"{claims['time_saving_pct']:.0f}%"
    )
    if args.save:
        path = save_traces(traces, args.save)
        print(f"saved -> {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    error = (
        _validate_common(args)
        or _validate_sim_args(args.aggregation, args.deadline, args.quorum)
        or _validate_attack_args(args.attack, args.attack_fraction)
        or _validate_checkpoint_args(args)
    )
    if error:
        return _usage_error(error)
    engine = args.engine
    if engine is None and any(
        v is not None for v in (args.aggregation, args.faults)
    ):
        engine = "des"  # the runtime knobs only bind on the DES engine
    seeds = args.seeds if args.seeds else [args.seed]
    if not seeds:
        return _usage_error("--seeds must name at least one seed")
    # --param overrides bind per policy to the parameters it declares;
    # a key no policy in the grid declares is a usage error.
    try:
        params = _parse_params(args.param)
    except StrategyError as exc:
        return _usage_error(str(exc))
    declared = {
        name: {p.name for p in STRATEGY_REGISTRY[name].params}
        for name in args.policies
    }
    for key in params:
        if not any(key in names for names in declared.values()):
            return _usage_error(
                f"--param {key}: no selected policy declares this parameter"
            )
    policy_params = {
        name: {k: v for k, v in params.items() if k in declared[name]}
        for name in args.policies
    }
    spec_kwargs = dict(
        engine=engine,
        aggregation=args.aggregation,
        sim_deadline_s=args.deadline,
        quorum=args.quorum,
        fault_profile=args.faults,
        attack=args.attack,
        attack_fraction=args.attack_fraction,
        defense=args.defense,
    )
    jobs = []
    for seed in seeds:
        for budget in args.budgets:
            cfg = experiment_config(
                dataset=args.dataset,
                iid=not args.non_iid,
                budget=budget,
                seed=seed,
                num_clients=args.clients,
                min_participants=args.participants,
                max_epochs=args.epochs,
            )
            cfg = _checkpoint_overlay(cfg, args)
            jobs.extend(
                SweepJob(
                    policy=PolicySpec(
                        name=name, params=policy_params[name], **spec_kwargs
                    ),
                    config=cfg,
                )
                for name in args.policies
            )

    cache = SweepCache(args.cache_dir) if args.cache_dir else None

    # Progress and structured events share the telemetry hub: with
    # --telemetry the hub also records the JSONL trace, otherwise it only
    # echoes progress lines; --quiet silences the echo either way.
    progress_stream = None if args.quiet else sys.stderr
    if args.telemetry:
        hub = Telemetry.for_directory(
            args.telemetry, run_id="sweep", progress_stream=progress_stream
        )
    else:
        hub = Telemetry(progress_stream=progress_stream)

    def report(event: SweepProgress) -> None:
        cfg = event.job.config
        tag = "cache" if event.cached else "ran"
        hub.progress(
            f"[{event.done:>3}/{event.total}] {event.job.policy.name:<8s} "
            f"budget={cfg.budget:g} seed={cfg.seed} ({tag})"
        )

    results = run_sweep(
        jobs, workers=args.workers, cache=cache, progress=report, telemetry=hub
    )
    if args.telemetry:
        hub.finalize(
            meta={
                "command": "sweep",
                "jobs": len(jobs),
                "policies": list(args.policies),
                "budgets": [float(b) for b in args.budgets],
                "seeds": [int(s) for s in seeds],
            }
        )
        print(f"telemetry -> {args.telemetry}", file=sys.stderr)
    else:
        hub.close()

    # Mean final loss per (policy, budget) across seeds.
    losses: dict = {}
    for job, res in zip(jobs, results):
        losses.setdefault(job.policy.name, {}).setdefault(
            float(job.config.budget), []
        ).append(res.trace.final_loss)
    series = {
        name: [(b, float(np.mean(v))) for b, v in sorted(by_budget.items())]
        for name, by_budget in losses.items()
    }
    print(
        format_series(
            series, "budget", "final loss",
            title=f"budget impact — {args.dataset}",
        )
    )
    if args.save:
        named = {
            f"{job.policy.name}[budget={job.config.budget:g},seed={job.config.seed}]": res
            for job, res in zip(jobs, results)
        }
        path = save_results(named, args.save)
        print(f"saved -> {path}")
    return 0


def _cmd_tournament(args: argparse.Namespace) -> int:
    from repro.experiments.tournament import (
        SCENARIOS,
        UnknownScenarioError,
        format_report,
        full_base_config,
        get_scenario,
        quick_base_config,
        run_tournament,
        save_report,
        scenario_names,
    )
    from repro.strategies import get_strategy

    if args.list_registry:
        print("registered strategies:")
        for name, spec in STRATEGY_REGISTRY.items():
            caps = ",".join(spec.capabilities()) or "-"
            print(f"  {name:<14} [{caps}] {spec.description}")
        print("scenarios:")
        for scenario in SCENARIOS:
            tag = " (quick)" if scenario.quick else ""
            print(f"  {scenario.name:<16}{tag} {scenario.description}")
        return 0

    for name in args.strategies or []:
        try:
            get_strategy(name)
        except StrategyError as exc:
            return _usage_error(str(exc))
    for name in args.scenarios or []:
        try:
            get_scenario(name)
        except UnknownScenarioError as exc:
            return _usage_error(str(exc))
    seeds = args.seeds if args.seeds else ([0] if args.quick else [0, 1, 2])
    base = quick_base_config() if args.quick else full_base_config()
    scenarios = args.scenarios or list(scenario_names(quick=args.quick))
    cache = SweepCache(args.cache_dir) if args.cache_dir else None

    def report_progress(event: SweepProgress) -> None:
        if args.quiet:
            return
        tag = "cache" if event.cached else "ran"
        print(
            f"[{event.done:>3}/{event.total}] "
            f"{event.job.policy.name:<14s} seed={event.job.config.seed} "
            f"({tag})",
            file=sys.stderr,
        )

    hub = (
        Telemetry.for_directory(args.telemetry, run_id="tournament")
        if args.telemetry
        else None
    )
    started = time.time()
    try:
        report = run_tournament(
            strategies=args.strategies,
            scenarios=scenarios,
            seeds=seeds,
            base_config=base,
            workers=args.workers,
            cache=cache,
            progress=report_progress,
            telemetry=hub,
        )
    except ParticipationFloorError as exc:
        print(f"repro: tournament aborted: {exc}", file=sys.stderr)
        return 1
    if hub is not None:
        hub.finalize(
            meta={
                "command": "tournament",
                "strategies": list(args.strategies or []),
                "scenarios": list(scenarios),
                "seeds": [int(s) for s in seeds],
            }
        )
        print(f"telemetry -> {args.telemetry}", file=sys.stderr)
    print(format_report(report))
    if args.out:
        path = save_report(
            report, args.out,
            ts={"generated_unix": time.time(), "elapsed_s": time.time() - started},
        )
        print(f"report -> {path}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    directory = Path(args.directory).expanduser()
    if args.follow:
        # Follow mode tails a run that may still be starting up: the
        # directory (or its first events file) may not exist yet, so the
        # static validations below do not apply — --timeout bounds the
        # wait instead.
        if args.poll <= 0:
            return _usage_error("--poll must be positive")
        if args.timeout is not None and args.timeout < 0:
            return _usage_error("--timeout must be >= 0")
        from repro.obs import follow_trace

        return follow_trace(
            directory, run=args.run, poll_s=args.poll, timeout_s=args.timeout
        )
    if not directory.is_dir():
        return _usage_error(f"not a telemetry directory: {directory}")
    if not any(directory.glob("events*.jsonl")):
        return _usage_error(f"no events*.jsonl files under {directory}")
    print(render_trace(directory, run=args.run, chart=not args.no_chart))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import profile_directory, render_diff, render_profile

    if args.top < 1:
        return _usage_error("--top must be >= 1")
    directory = Path(args.directory).expanduser()
    if not directory.is_dir():
        return _usage_error(f"not a telemetry directory: {directory}")
    profile = profile_directory(directory)
    if profile is None:
        return _usage_error(
            f"no manifest.json under {directory} (profile needs a "
            "finalized trace; is the run still in flight?)"
        )
    print(render_profile(profile, top=args.top, label=str(directory)), end="")
    if args.diff:
        other_dir = Path(args.diff).expanduser()
        if not other_dir.is_dir():
            return _usage_error(f"not a telemetry directory: {other_dir}")
        other = profile_directory(other_dir)
        if other is None:
            return _usage_error(f"no manifest.json under {other_dir}")
        print()
        print(
            render_diff(
                profile, other, label_a=str(directory), label_b=str(other_dir)
            ),
            end="",
        )
    if args.json_out:
        path = Path(args.json_out).expanduser()
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps(profile, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        tmp.replace(path)
        print(f"profile -> {path}", file=sys.stderr)
    return 0


def _cmd_regret(args: argparse.Namespace) -> int:
    from repro.core.online_learner import OnlineLearner
    from repro.core.problem import EpochInputs, FedLProblem
    from repro.core.regret import dynamic_fit, dynamic_regret

    factory = RngFactory(args.seed)
    m = 8
    print(f"{'T':>6} {'Reg_d':>10} {'Fit_d':>10} {'Fit_d/T':>10}")
    for horizon in args.horizons:
        rng = factory.fresh(f"stream.{horizon}")
        base_tau = rng.uniform(0.2, 2.0, m)
        base_eta = rng.uniform(0.2, 0.7, m)
        problems = []
        for t in range(horizon):
            drift = 0.2 * np.sin(2 * np.pi * t / 40.0 + np.arange(m))
            problems.append(
                FedLProblem(
                    EpochInputs(
                        tau=np.clip(base_tau + drift, 0.05, None),
                        costs=rng.uniform(0.5, 3.0, m),
                        available=np.ones(m, bool),
                        eta_hat=np.clip(base_eta + 0.1 * drift, 0.0, 0.9),
                        loss_gap=0.3,
                        loss_sensitivity=np.full(m, -0.12),
                        remaining_budget=1e6,
                        min_participants=3,
                    ),
                    rho_max=6.0,
                )
            )
        step = horizon ** (-1.0 / 3.0)
        learner = OnlineLearner(m, beta=step, delta=step, rho_max=6.0)
        decisions = []
        for prob in problems:
            phi = learner.descent_step(prob.inputs)
            decisions.append(phi)
            learner.dual_ascent(prob.h(phi))
        reg, _ = dynamic_regret(problems, decisions)
        fit = dynamic_fit(problems, decisions)
        print(f"{horizon:>6} {reg:>10.2f} {fit:>10.2f} {fit / horizon:>10.3f}")
    return 0


def _bench_crash_smoke(args: argparse.Namespace) -> int:
    """``repro bench --crash-smoke``: the SIGKILL crash/resume drill.

    Exit 0 iff the victim died by SIGKILL and the resumed run matched
    the uninterrupted reference bit-for-bit (modulo measured wall time
    for the live engine).
    """
    import tempfile

    from repro.checkpoint.crashsmoke import run_crash_resume_smoke

    cfg = experiment_config(
        budget=200.0, seed=args.seed, num_clients=8,
        min_participants=2, max_epochs=12,
    )
    if args.engine != "loop":
        cfg = cfg.replace(
            training=dataclasses.replace(cfg.training, engine=args.engine)
        )
    if args.engine == "live":
        cfg = cfg.replace(
            live=LiveConfig(
                workers=2, time_scale=0.01, transport="unix",
                round_timeout_s=30.0,
            )
        )
    with tempfile.TemporaryDirectory(prefix="repro-crash-smoke-") as tmp:
        report = run_crash_resume_smoke(
            cfg, workdir=tmp, interval=3, smoke_seed=args.seed
        )
    report["engine"] = args.engine
    for key in (
        "engine", "policy", "crash_epoch", "interval",
        "killed_by_sigkill", "final_w_equal", "traces_equal", "ok",
    ):
        print(f"{key}={report[key]}")
    if args.out:
        path = Path(args.out).expanduser()
        tmp_path = path.with_name(path.name + ".tmp")
        tmp_path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        tmp_path.replace(path)
        print(f"report -> {path}")
    if not report["ok"]:
        print("repro: crash-resume smoke FAILED", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench import (
        bench_overhead,
        check_overhead,
        check_regression,
        compare_reports,
        format_compare,
        format_overhead,
        format_report,
        load_report,
        run_bench,
        save_report,
    )

    if args.crash_smoke:
        return _bench_crash_smoke(args)

    if args.checkpoint_overhead:
        from repro.experiments.bench import (
            bench_checkpoint_overhead,
            check_checkpoint_overhead,
        )

        if not (0.0 < args.max_ckpt_overhead < 1.0):
            return _usage_error("--max-ckpt-overhead must be in (0, 1)")
        report = bench_checkpoint_overhead(quick=args.quick, seed=args.seed)
        for key in (
            "clients", "epochs", "interval", "snapshots_per_run",
            "disabled_seconds", "enabled_seconds",
            "checkpoint_write_seconds", "overhead_fraction",
            "bit_identical",
        ):
            value = report[key]
            if isinstance(value, float):
                value = f"{value:.4f}"
            print(f"{key}={value}")
        if args.out:
            path = save_report(report, args.out)
            print(f"report -> {path}")
        failures = check_checkpoint_overhead(
            report, max_fraction=args.max_ckpt_overhead
        )
        if failures:
            for failure in failures:
                print(f"repro: {failure}", file=sys.stderr)
            return 1
        print(
            f"\ncheckpoint overhead gate: OK "
            f"(<= {args.max_ckpt_overhead:.1%} at interval="
            f"{report['interval']})"
        )
        return 0

    if args.compare is not None:
        path_a, path_b = args.compare
        try:
            report_a = load_report(path_a)
            report_b = load_report(path_b)
        except (OSError, ValueError) as exc:
            return _usage_error(f"cannot read report: {exc}")
        rows = compare_reports(report_a, report_b)
        print(format_compare(rows, label_a=path_a, label_b=path_b))
        return 0

    if args.overhead:
        if not (0.0 < args.max_null_overhead < 1.0):
            return _usage_error("--max-null-overhead must be in (0, 1)")
        report = bench_overhead(quick=args.quick, seed=args.seed)
        print(format_overhead(report))
        if args.out:
            path = Path(args.out).expanduser()
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_text(
                json.dumps(report, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            tmp.replace(path)
            print(f"\nreport -> {path}")
        failures = check_overhead(
            report, max_null_fraction=args.max_null_overhead
        )
        if failures:
            print("\nOVERHEAD GATE FAILED:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print(
            f"\noverhead gate: OK (disabled-telemetry cost <= "
            f"{args.max_null_overhead:.1%} per layer)"
        )
        return 0

    if args.clients is not None and args.clients < 2:
        return _usage_error("--clients must be >= 2")
    if args.epochs is not None and args.epochs < 1:
        return _usage_error("--epochs must be >= 1")
    if not (0.0 < args.tolerance < 1.0):
        return _usage_error("--tolerance must be in (0, 1)")
    baseline = None
    if args.check:
        try:
            baseline = load_report(args.check)
        except (OSError, ValueError) as exc:
            return _usage_error(f"cannot read baseline: {exc}")
    layers = None
    if args.layers is not None:
        layers = [
            name for item in args.layers for name in item.split(",") if name
        ]
        if not layers:
            return _usage_error("--layers must name at least one layer")
    try:
        report = run_bench(
            quick=args.quick,
            num_clients=args.clients,
            max_epochs=args.epochs,
            seed=args.seed,
            pre_pr_seconds=args.pre_pr_seconds,
            layers=layers,
        )
    except ValueError as exc:
        return _usage_error(str(exc))
    print(format_report(report))
    if args.out:
        path = save_report(report, args.out)
        print(f"\nreport -> {path}")
    if baseline is not None:
        failures = check_regression(
            report, baseline, tolerance=args.tolerance, strict=args.strict
        )
        if failures:
            print(f"\nREGRESSION vs {args.check}:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print(f"\nregression check vs {args.check}: OK")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "sim": _cmd_sim,
        "live": _cmd_live,
        "compare": _cmd_compare,
        "sweep": _cmd_sweep,
        "tournament": _cmd_tournament,
        "trace": _cmd_trace,
        "profile": _cmd_profile,
        "regret": _cmd_regret,
        "bench": _cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
