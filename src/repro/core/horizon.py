"""Stopping-time bounds and step-size rule (paper Sec. 4.2, Corollary 1).

Given the long-term budget ``C`` and the per-epoch minimum of ``n``
participants, the FL life cycle ends at an epoch ``T_C`` bounded by

    C / (n · c_max)  <=  T_C  <=  C / (n · c_min),

because each epoch spends at least ``n · c_min`` and at most ... well, at
least ``n·c_min`` when thrifty and at least ``n·c_max`` never exceeded per
forced participant.  Corollary 1 prescribes the step sizes
``β = δ = O(T_C^{-1/3})`` that give ``Reg_d = O(T_C^{2/3})`` and
``Fit_d = O(T_C^{2/3})``.
"""

from __future__ import annotations

import math
from typing import Tuple

__all__ = ["horizon_bounds", "corollary1_step_size"]


def horizon_bounds(
    budget: float,
    min_participants: int,
    cost_min: float,
    cost_max: float,
) -> Tuple[float, float]:
    """``(T_lower, T_upper)`` bounds on the stopping epoch T_C."""
    if budget <= 0:
        raise ValueError("budget must be positive")
    if min_participants < 1:
        raise ValueError("min_participants must be >= 1")
    if not (0 < cost_min <= cost_max):
        raise ValueError("need 0 < cost_min <= cost_max")
    lower = budget / (min_participants * cost_max)
    upper = budget / (min_participants * cost_min)
    return lower, upper


def corollary1_step_size(
    budget: float,
    min_participants: int,
    cost_min: float,
    cost_max: float,
    scale: float = 1.0,
) -> float:
    """``β = δ = scale · T̂_C^{−1/3}``.

    Uses the geometric mean of the T_C bounds as the horizon estimate —
    the paper only requires the *order* ``O(T_C^{-1/3})``, leaving the
    constant as a tuning knob (``scale``).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    lower, upper = horizon_bounds(budget, min_participants, cost_min, cost_max)
    t_hat = math.sqrt(lower * upper)
    return scale * t_hat ** (-1.0 / 3.0)
