"""FedL: the paper's contribution (Sec. 4-5).

* :mod:`repro.core.phi` — the aggregated decision vector
  ``Φ_t = [x_{t,1..M}, ρ_t]``.
* :mod:`repro.core.problem` — the reformulated per-epoch problem: the
  objective ``f_t``, budget/participation constraints ``p, q``, and the
  convergence constraint vector ``h_t`` (Sec. 4.2).
* :mod:`repro.core.horizon` — stopping-time bounds ``T_C`` and the
  ``β = δ = O(T_C^{-1/3})`` step-size rule of Corollary 1.
* :mod:`repro.core.online_learner` — the descent step (eq. 8) and dual
  ascent (eq. 9).
* :mod:`repro.core.rounding` — RDCS dependent rounding (Alg. 2) and the
  independent-rounding baseline.
* :mod:`repro.core.fedl` — the FedL controller (Alg. 1) packaged as a
  :class:`repro.baselines.base.SelectionPolicy`.
* :mod:`repro.core.regret` — dynamic regret / dynamic fit and the
  per-slot offline comparator (Sec. 5 definitions).
* :mod:`repro.core.bounds` — the Lemma 2 / Theorem 2 bound values.
"""

from repro.core.phi import Phi
from repro.core.problem import EpochInputs, FedLProblem
from repro.core.horizon import horizon_bounds, corollary1_step_size
from repro.core.online_learner import OnlineLearner, LearnerState
from repro.core.rounding import rdcs_round, independent_round
from repro.core.fedl import FedLPolicy
from repro.core.regret import (
    dynamic_regret,
    dynamic_fit,
    solve_per_slot_optimum,
)
from repro.core.bounds import (
    mu_hat_bound,
    regret_bound,
    path_length,
    constraint_variation,
)

__all__ = [
    "Phi",
    "EpochInputs",
    "FedLProblem",
    "horizon_bounds",
    "corollary1_step_size",
    "OnlineLearner",
    "LearnerState",
    "rdcs_round",
    "independent_round",
    "FedLPolicy",
    "dynamic_regret",
    "dynamic_fit",
    "solve_per_slot_optimum",
    "mu_hat_bound",
    "regret_bound",
    "path_length",
    "constraint_variation",
]
