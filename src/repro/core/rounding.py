"""Online rounding: RDCS (paper Alg. 2) and the independent baseline.

RDCS — Randomized Dependent Client Selection — repeatedly picks a pair of
still-fractional coordinates ``(i, j)`` and shifts mass between them:

    ζ1 = min(1 − x_i, x_j),   ζ2 = min(x_i, 1 − x_j)
    with prob ζ2/(ζ1+ζ2):  x_i += ζ1, x_j −= ζ1
    with prob ζ1/(ζ1+ζ2):  x_i −= ζ2, x_j += ζ2

Each operation makes at least one of the pair integral, keeps the sum
exactly constant, and is a martingale in every coordinate —
which yields Theorem 3: ``E[x_k] = x̃_k``.  When the fractional total is
not an integer a single fractional coordinate survives the pairing loop;
it is resolved by an (unavoidable) independent Bernoulli round, so the
realized sum is ``floor(Σx̃)`` or ``ceil(Σx̃)`` and the marginals are still
exact.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rdcs_round", "independent_round"]

_ATOL = 1e-12


def _snap(x: np.ndarray) -> np.ndarray:
    """Snap values within tolerance of {0, 1} exactly onto them."""
    x = np.where(np.abs(x) <= _ATOL, 0.0, x)
    x = np.where(np.abs(x - 1.0) <= _ATOL, 1.0, x)
    return x


def independent_round(
    x_frac: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Round each coordinate independently: 1 w.p. x̃_k, else 0.

    Preserves marginals but neither the sum nor any joint structure —
    the straw-man the paper argues against (it "may generate an infeasible
    solution or lead to an excessive system latency").
    """
    x = np.asarray(x_frac, dtype=float)
    if np.any((x < -_ATOL) | (x > 1.0 + _ATOL)):
        raise ValueError("fractions must lie in [0, 1]")
    x = np.clip(x, 0.0, 1.0)
    return (rng.random(x.shape) < x).astype(float)


def rdcs_round(x_frac: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Dependent rounding per Alg. 2; returns a 0/1 vector.

    Guarantees (tested property-based):
      * every output coordinate is exactly 0 or 1,
      * ``E[x_k] = x̃_k`` for every k,
      * the realized sum is in ``{floor(Σx̃), ceil(Σx̃)}``.
    """
    x = np.asarray(x_frac, dtype=float).copy()
    if x.ndim != 1:
        raise ValueError("x_frac must be 1-D")
    if np.any((x < -_ATOL) | (x > 1.0 + _ATOL)):
        raise ValueError("fractions must lie in [0, 1]")
    x = _snap(np.clip(x, 0.0, 1.0))

    frac_idx = list(np.flatnonzero((x > 0.0) & (x < 1.0)))
    while len(frac_idx) >= 2:
        # Randomly choose the interacting pair (paper line 1).
        pos_i, pos_j = rng.choice(len(frac_idx), size=2, replace=False)
        i, j = frac_idx[pos_i], frac_idx[pos_j]
        zeta1 = min(1.0 - x[i], x[j])
        zeta2 = min(x[i], 1.0 - x[j])
        total = zeta1 + zeta2
        if total <= _ATOL:
            # Both already integral (numerically); drop them.
            x[i], x[j] = round(x[i]), round(x[j])
        elif rng.random() < zeta2 / total:
            x[i] += zeta1
            x[j] -= zeta1
        else:
            x[i] -= zeta2
            x[j] += zeta2
        x[i] = _snap(np.asarray([x[i]]))[0]
        x[j] = _snap(np.asarray([x[j]]))[0]
        frac_idx = [k for k in frac_idx if 0.0 < x[k] < 1.0]

    if frac_idx:  # one leftover fractional coordinate
        k = frac_idx[0]
        x[k] = 1.0 if rng.random() < x[k] else 0.0
    return x
