"""The aggregated decision vector Φ_t = [x_{t,1..M}, ρ_t] (paper Sec. 4.2).

``x`` holds the (possibly fractional) selection of each of the M clients;
``ρ = 1/(1−η)`` encodes the iteration-control decision.  The class provides
the flat-vector view used by the solvers and convenience accessors used by
the problem definitions, keeping index arithmetic in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Phi"]


@dataclass(frozen=True)
class Phi:
    """Immutable decision point: selection fractions + iteration control."""

    x: np.ndarray          # (M,) selection fractions in [0, 1]
    rho: float             # ρ >= 1

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=float)
        if x.ndim != 1:
            raise ValueError("x must be 1-D")
        object.__setattr__(self, "x", x)
        if not np.isfinite(self.rho) or self.rho < 1.0:
            raise ValueError("rho must be finite and >= 1")

    @property
    def num_clients(self) -> int:
        return self.x.size

    @property
    def eta(self) -> float:
        """The maximal local accuracy η = 1 − 1/ρ implied by ρ."""
        return 1.0 - 1.0 / self.rho

    @property
    def iterations(self) -> int:
        """Integer iteration count l_t = ceil(ρ)."""
        return int(np.ceil(self.rho - 1e-9))

    # -- flat-vector interface (solvers see [x..., rho]) -------------------------

    def to_vector(self) -> np.ndarray:
        return np.concatenate([self.x, [self.rho]])

    @staticmethod
    def from_vector(v: np.ndarray) -> "Phi":
        v = np.asarray(v, dtype=float)
        if v.size < 2:
            raise ValueError("vector must hold at least one client plus rho")
        return Phi(x=v[:-1].copy(), rho=float(v[-1]))

    def clip(self, rho_max: float = np.inf) -> "Phi":
        """Project onto the box x ∈ [0,1]^M, ρ ∈ [1, rho_max]."""
        return Phi(
            x=np.clip(self.x, 0.0, 1.0),
            rho=float(np.clip(self.rho, 1.0, rho_max)),
        )

    def distance(self, other: "Phi") -> float:
        """Euclidean distance in the flat representation."""
        if other.num_clients != self.num_clients:
            raise ValueError("dimension mismatch")
        return float(np.linalg.norm(self.to_vector() - other.to_vector()))
