"""Offline optimum of P1 with budget coupling (hindsight benchmark).

The paper's dynamic regret compares against per-slot optima, which ignore
the *budget coupling* across epochs (each slot is given the full remaining
budget).  The true offline benchmark for P1 — "with all inputs known,
choose per-epoch selections minimizing total latency subject to the
TOTAL budget" — is a knapsack-like problem.  This module solves it by
dynamic programming over a discretized budget axis:

1. Per epoch, enumerate the efficient frontier of (cost, epoch-latency)
   pairs over feasible n-subsets: for each candidate slowest client (in
   increasing-τ order) the cheapest n-subset no slower
   (:func:`epoch_frontier` — the same sweep as the per-slot oracle, kept
   for every latency level instead of the first affordable one).
2. DP across epochs on a budget grid: ``best[b] = min total latency
   spending at most b``.

The discretization makes the result an upper bound on the true optimum
within one grid step of cost per epoch; tests cross-check against brute
force on tiny instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["EpochOption", "epoch_frontier", "offline_optimum"]


@dataclass(frozen=True)
class EpochOption:
    """One efficient (cost, latency, mask) choice for an epoch."""

    cost: float
    latency: float
    mask: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "mask", np.asarray(self.mask, dtype=bool))


def epoch_frontier(
    tau: np.ndarray,
    costs: np.ndarray,
    available: np.ndarray,
    n: int,
    iterations: float = 1.0,
) -> List[EpochOption]:
    """Efficient (cost, latency) frontier of n-subsets for one epoch.

    Sweeps the candidate slowest client in increasing-τ order; for each
    prefix the cheapest n members give the best cost at that latency.
    Dominated options (worse in both cost and latency) are pruned, so the
    returned list has strictly increasing cost and strictly decreasing
    latency.
    """
    tau = np.asarray(tau, dtype=float)
    costs = np.asarray(costs, dtype=float)
    avail_idx = np.flatnonzero(np.asarray(available, dtype=bool))
    m = tau.size
    if avail_idx.size < n or n < 1:
        return []
    order = avail_idx[np.argsort(tau[avail_idx], kind="stable")]
    options: List[EpochOption] = []
    best_cost = np.inf
    for j in range(n - 1, order.size):
        prefix = order[: j + 1]
        cheap = prefix[np.argsort(costs[prefix], kind="stable")[:n]]
        cost = float(costs[cheap].sum())
        latency = float(iterations * tau[order[j]])
        if cost < best_cost - 1e-12:
            mask = np.zeros(m, dtype=bool)
            mask[cheap] = True
            options.append(EpochOption(cost=cost, latency=latency, mask=mask))
            best_cost = cost
    return options


def offline_optimum(
    tau_per_epoch: Sequence[np.ndarray],
    costs_per_epoch: Sequence[np.ndarray],
    available_per_epoch: Sequence[np.ndarray],
    budget: float,
    n: int,
    iterations: float = 1.0,
    grid_points: int = 200,
) -> Tuple[float, List[np.ndarray]]:
    """Hindsight-optimal total latency and selections under the budget.

    Epochs that cannot be afforded are skipped (consistent with the
    budget-exhaustion semantics of Alg. 1: the process simply stops);
    skipping an epoch contributes zero latency, so the DP trades off how
    many — and which — epochs to run.  Returns ``(total_latency, masks)``
    with an all-``False`` mask for skipped epochs.

    Budget is discretized to ``grid_points`` levels; the reported latency
    is exact for the selections returned (only optimality is approximate).
    """
    horizon = len(tau_per_epoch)
    if not (len(costs_per_epoch) == len(available_per_epoch) == horizon):
        raise ValueError("per-epoch inputs must share a length")
    if budget <= 0:
        raise ValueError("budget must be positive")
    if grid_points < 2:
        raise ValueError("grid_points must be >= 2")

    step = budget / (grid_points - 1)

    def q(cost: float) -> int:
        """Grid units consumed by ``cost`` (rounded up: conservative)."""
        return int(np.ceil(cost / step - 1e-12))

    NEG = -1
    # value[b] = (min achieved total latency, #epochs run) using <= b units.
    INF = float("inf")
    value = np.zeros(grid_points)
    runs = np.zeros(grid_points, dtype=int)
    choice: List[List[int]] = []   # per epoch, per budget level: option idx or -1
    frontiers: List[List[EpochOption]] = []

    # We must maximize epochs run (the FL process wants to keep training)
    # while minimizing latency; the paper's objective is latency alone,
    # but "skip everything" trivially minimizes it.  The correct offline
    # benchmark therefore lexicographically maximizes epochs run, then
    # minimizes latency — matching an FL process that always continues
    # while it can pay.
    for t in range(horizon):
        frontier = epoch_frontier(
            tau_per_epoch[t], costs_per_epoch[t], available_per_epoch[t],
            n, iterations,
        )
        frontiers.append(frontier)
        new_value = value.copy()
        new_runs = runs.copy()
        row = [NEG] * grid_points
        for b in range(grid_points):
            # Option: skip epoch t (inherit).
            best_v, best_r, best_c = value[b], runs[b], NEG
            for idx, opt in enumerate(frontier):
                units = q(opt.cost)
                if units > b:
                    continue
                cand_r = runs[b - units] + 1
                cand_v = value[b - units] + opt.latency
                if cand_r > best_r or (cand_r == best_r and cand_v < best_v):
                    best_v, best_r, best_c = cand_v, cand_r, idx
            new_value[b], new_runs[b], row[b] = best_v, best_r, best_c
        value, runs = new_value, new_runs
        choice.append(row)

    # Backtrack from the full budget.
    masks: List[np.ndarray] = []
    b = grid_points - 1
    total = float(value[b])
    m = np.asarray(tau_per_epoch[0]).size
    for t in range(horizon - 1, -1, -1):
        idx = choice[t][b]
        if idx == NEG:
            masks.append(np.zeros(m, dtype=bool))
        else:
            opt = frontiers[t][idx]
            masks.append(opt.mask.copy())
            b -= q(opt.cost)
    masks.reverse()
    return total, masks
