"""Theoretical bound values (paper Lemma 2, Theorem 2, Corollary 1).

These functions compute the *numerical values* of the paper's bounds for a
given trajectory so the benchmark harness can verify the theory on
simulated streams:

* :func:`mu_hat_bound` — Lemma 2, eq. (12): the uniform dual bound
  ``‖μ̂‖ = δ G_h + (2 G_f R + R²/(2β) + δ G_h²/2) / (ξ − V̂(h))``.
* :func:`regret_bound` — Theorem 2, eq. (13a): ``R_{T_C}``.
* :func:`path_length` — eq. (13b): ``V({Φ*_t}) = Σ ‖Φ*_t − Φ*_{t−1}‖``.
* :func:`constraint_variation` — eq. (13c): ``V({h_t})`` via sampling the
  feasible box (the exact max over X̃ is itself an optimization; a sampled
  max is a lower bound, which is the conservative direction for checking
  the regret bound holds).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.phi import Phi
from repro.core.problem import FedLProblem

__all__ = ["mu_hat_bound", "regret_bound", "path_length", "constraint_variation"]


def mu_hat_bound(
    delta: float,
    beta: float,
    g_f: float,
    g_h: float,
    radius: float,
    xi: float,
    v_hat_h: float,
) -> float:
    """Lemma 2 eq. (12).  Requires Assumption 2's ``ξ > V̂(h)``."""
    if xi <= v_hat_h:
        raise ValueError("Assumption 2 violated: need xi > V_hat(h)")
    if min(delta, beta, g_f, g_h, radius) <= 0:
        raise ValueError("all bound inputs must be positive")
    return delta * g_h + (
        2.0 * g_f * radius + radius**2 / (2.0 * beta) + delta * g_h**2 / 2.0
    ) / (xi - v_hat_h)


def regret_bound(
    t_c: int,
    beta: float,
    delta: float,
    g_f: float,
    g_h: float,
    radius: float,
    mu_hat: float,
    v_phi_star: float,
    v_h: float,
) -> float:
    """Theorem 2 eq. (13a): the ``R_{T_C}`` upper bound on Reg_d."""
    if t_c < 1:
        raise ValueError("t_c must be >= 1")
    return (
        beta * g_f**2 * t_c / 2.0
        + mu_hat * v_h
        + delta * g_h**2 * t_c / 2.0
        + radius * v_phi_star / beta
        + radius**2 / (2.0 * beta)
    )


def path_length(optima: Sequence[Phi]) -> float:
    """eq. (13b): ``Σ_t ‖Φ*_t − Φ*_{t−1}‖`` (first term against itself = 0)."""
    total = 0.0
    prev: Phi | None = None
    for phi in optima:
        if prev is not None:
            total += phi.distance(prev)
        prev = phi
    return total


def constraint_variation(
    problems: Sequence[FedLProblem],
    rng: np.random.Generator,
    num_samples: int = 64,
) -> float:
    """eq. (13c): ``Σ_t max_Φ ‖[h_{t+1}(Φ) − h_t(Φ)]⁺‖`` by sampled max.

    Samples Φ uniformly from each slot's box (a lower bound on the true
    max over X̃, adequate for checking growth *rates*).
    """
    if len(problems) < 2:
        return 0.0
    total = 0.0
    for prev, nxt in zip(problems[:-1], problems[1:]):
        lo, hi = prev.box_bounds()
        hi_s = np.where(np.isfinite(hi), hi, lo + 1.0)
        best = 0.0
        for _ in range(num_samples):
            v = lo + (hi_s - lo) * rng.random(lo.size)
            phi = Phi.from_vector(np.maximum(v, np.concatenate([np.zeros(lo.size - 1), [1.0]])))
            diff = np.maximum(nxt.h(phi) - prev.h(phi), 0.0)
            best = max(best, float(np.linalg.norm(diff)))
        total += best
    return total
