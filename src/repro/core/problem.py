"""The reformulated per-epoch problem (paper Sec. 4.2).

With ``Φ_t = [x, ρ]`` the paper defines::

    f_t(Φ)  = Σ_k ρ x_k (τ_loc + τ_cm)          (objective; eq. 4 relaxation)
    p(Φ)    = Σ_k c_k x_k − C_remaining ≤ 0      (budget, constraint 5a per slot)
    q(Φ)    = n − Σ_k x_k ≤ 0                    (participation, 5b)
    h_t(Φ)  = [h0, h1, …, hM]                    (convergence, 5c)

    h0(Φ)  = F_t(w + avg_k x_k d_k) − θ          — linearized around the
              last observation:  loss_gap + sᵀx, where s_k estimates the
              marginal loss effect of selecting client k,
    hk(Φ)  = η̂_k x_k ρ − ρ + 1                  — with η̂_k the OBSERVED
              local accuracy of client k (Theorem 1: hk ≤ 0 ⇔
              η̂_k x_k ≤ 1 − 1/ρ = η_t, i.e. constraint 3c).

``f_t`` and ``p, q`` are exact; ``h_t`` is the observable surrogate (the
true quantities are revealed only after acting — the paper's 0-lookahead
setting, which is precisely why the dual ascent uses *realized* h values
while the descent step uses the surrogate).

All quantities for unavailable clients are masked out: ``x_k`` is pinned
to 0 by the box and their ``h_k`` rows are identically zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.phi import Phi
from repro.solvers.projections import alternating_projections, project_box, project_halfspace

__all__ = ["EpochInputs", "FedLProblem"]


@dataclass(frozen=True)
class EpochInputs:
    """Observable inputs the learner holds when deciding epoch ``t``.

    At decision time these are *previous-epoch* realizations (0-lookahead);
    for the dual ascent the runner builds one from the realized values.
    """

    tau: np.ndarray            # (M,) per-iteration latency estimate
    costs: np.ndarray          # (M,) rental prices
    available: np.ndarray      # (M,) bool — E_t IS known at decision time
    eta_hat: np.ndarray        # (M,) observed/prior local accuracies, in [0,1)
    loss_gap: float            # F_t(w) − θ at the last observation
    loss_sensitivity: np.ndarray  # (M,) ∂(loss)/∂x_k estimate (<= 0 helps)
    remaining_budget: float
    min_participants: int

    def __post_init__(self) -> None:
        m = np.asarray(self.tau).size
        for name in ("tau", "costs", "eta_hat", "loss_sensitivity"):
            arr = np.asarray(getattr(self, name), dtype=float)
            if arr.shape != (m,):
                raise ValueError(f"{name} must have shape ({m},)")
            object.__setattr__(self, name, arr)
        avail = np.asarray(self.available, dtype=bool)
        if avail.shape != (m,):
            raise ValueError("available mask shape mismatch")
        object.__setattr__(self, "available", avail)
        if np.any(self.tau < 0):
            raise ValueError("latencies must be nonnegative")
        if np.any(self.costs < 0):
            raise ValueError("costs must be nonnegative")
        if np.any((self.eta_hat < 0) | (self.eta_hat >= 1)):
            raise ValueError("eta_hat must lie in [0, 1)")
        if self.min_participants < 1:
            raise ValueError("min_participants must be >= 1")
        if self.min_participants > int(avail.sum()):
            raise ValueError("fewer available clients than min_participants")

    @property
    def num_clients(self) -> int:
        return self.tau.size


class FedLProblem:
    """Callable pieces of the reformulated problem for one epoch.

    ``objective`` selects the latency surrogate:

    * ``"sum"`` (paper, eq. 4): ``f = ρ Σ_k x_k τ_k`` — the convex upper
      bound the paper optimizes.
    * ``"softmax"`` (ablation): ``f = ρ · (1/α) log(Σ_k x_k e^{α τ_k} + 1)``
      — a smooth surrogate of the true epoch latency ``ρ max_{sel} τ``
      (tight as α → ∞; the +1 keeps it defined at x = 0, contributing a
      latency floor of 0 since log 1 = 0).
    """

    def __init__(
        self,
        inputs: EpochInputs,
        rho_max: float = 8.0,
        objective: str = "sum",
        softmax_alpha: float = 4.0,
    ) -> None:
        if rho_max < 1:
            raise ValueError("rho_max must be >= 1")
        if objective not in ("sum", "softmax"):
            raise ValueError(f"unknown objective {objective!r}")
        if softmax_alpha <= 0:
            raise ValueError("softmax_alpha must be positive")
        self.inputs = inputs
        self.rho_max = float(rho_max)
        self.objective = objective
        self.softmax_alpha = float(softmax_alpha)
        self._avail = inputs.available
        # Effective per-client latency: zero for unavailable clients (they
        # cannot be selected; keeps f and its gradient well-defined).
        self._tau_eff = np.where(self._avail, inputs.tau, 0.0)
        if objective == "softmax":
            # e^{ατ} per client, 0 for unavailable (they never contribute).
            self._exp_tau = np.where(
                self._avail, np.exp(self.softmax_alpha * self._tau_eff), 0.0
            )

    # -- objective -----------------------------------------------------------

    def f(self, phi: Phi) -> float:
        """Latency surrogate at Φ (see class docstring)."""
        if self.objective == "sum":
            return float(phi.rho * (phi.x @ self._tau_eff))
        z = float(np.clip(phi.x, 0.0, None) @ self._exp_tau) + 1.0
        return float(phi.rho * np.log(z) / self.softmax_alpha)

    def grad_f(self, phi: Phi) -> np.ndarray:
        """Gradient of ``f_t`` in the flat [x..., ρ] representation."""
        if self.objective == "sum":
            gx = phi.rho * self._tau_eff
            grho = float(phi.x @ self._tau_eff)
            return np.concatenate([gx, [grho]])
        z = float(np.clip(phi.x, 0.0, None) @ self._exp_tau) + 1.0
        smax = np.log(z) / self.softmax_alpha
        gx = phi.rho * self._exp_tau / (self.softmax_alpha * z)
        return np.concatenate([gx, [smax]])

    # -- long-term constraint vector h_t ----------------------------------------

    def h(self, phi: Phi) -> np.ndarray:
        """``h_t(Φ) ∈ R^{M+1}``: [global-loss row, per-client rows]."""
        inp = self.inputs
        h0 = inp.loss_gap + float(inp.loss_sensitivity @ phi.x)
        hk = np.where(
            self._avail,
            inp.eta_hat * phi.x * phi.rho - phi.rho + 1.0,
            0.0,
        )
        return np.concatenate([[h0], hk])

    def grad_mu_h(self, phi: Phi, mu: np.ndarray) -> np.ndarray:
        """∇_Φ (μᵀ h_t(Φ)) in the flat representation."""
        mu = np.asarray(mu, dtype=float)
        if mu.shape != (self.inputs.num_clients + 1,):
            raise ValueError("mu must have M+1 entries")
        mu0, muk = mu[0], mu[1:]
        mk = np.where(self._avail, muk, 0.0)
        gx = mu0 * self.inputs.loss_sensitivity + mk * self.inputs.eta_hat * phi.rho
        grho = float(mk @ (self.inputs.eta_hat * phi.x - 1.0))
        return np.concatenate([gx, [grho]])

    def hess_mu_h(self, mu: np.ndarray) -> np.ndarray:
        """Hessian of μᵀh (constant in Φ): only x_k–ρ cross terms."""
        m = self.inputs.num_clients
        mu = np.asarray(mu, dtype=float)
        mk = np.where(self._avail, mu[1:], 0.0)
        H = np.zeros((m + 1, m + 1))
        cross = mk * self.inputs.eta_hat
        H[:m, m] = cross
        H[m, :m] = cross
        return H

    # -- feasible set X̃ (box ∩ budget ∩ participation) ---------------------------

    def box_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Elementwise bounds on [x..., ρ]: unavailable clients pinned to 0."""
        m = self.inputs.num_clients
        lo = np.zeros(m + 1)
        lo[m] = 1.0
        hi_x = np.where(self._avail, 1.0, 0.0).astype(float)
        hi = np.concatenate([hi_x, [self.rho_max]])
        return lo, hi

    def project(self, v: np.ndarray) -> np.ndarray:
        """Euclidean projection onto X̃ in the flat representation.

        Fast path: clip to the box; if exactly one of the two halfspaces
        (budget cᵀx <= C, participation Σx >= n) is violated, the KKT
        solution is ``clip(v ∓ λ·normal)`` with λ found by bisection (the
        clipped sum is monotone in λ).  Only when both bind simultaneously
        — rare in practice — fall back to Dykstra over all three sets.
        """
        lo, hi = self.box_bounds()
        costs = np.concatenate([self.inputs.costs, [0.0]])
        part = self._avail.astype(float)
        n = float(self.inputs.min_participants)
        budget = self.inputs.remaining_budget
        v = np.asarray(v, dtype=float)

        def budget_ok(u: np.ndarray) -> bool:
            return float(costs @ u) <= budget + 1e-10

        def part_ok(u: np.ndarray) -> bool:
            return float(part @ u[:-1]) >= n - 1e-10

        x0 = np.clip(v, lo, hi)
        if budget_ok(x0) and part_ok(x0):
            return x0
        if not part_ok(x0) and budget_ok(x0):
            # Raise availability coordinates: x(λ) = clip(v + λ·1_avail).
            direction = np.concatenate([part, [0.0]])
            lam_lo, lam_hi = 0.0, 1.0
            while float(part @ np.clip(v + lam_hi * direction, lo, hi)[:-1]) < n:
                lam_hi *= 2.0
                if lam_hi > 1e8:
                    break
            for _ in range(50):
                lam = 0.5 * (lam_lo + lam_hi)
                if float(part @ np.clip(v + lam * direction, lo, hi)[:-1]) < n:
                    lam_lo = lam
                else:
                    lam_hi = lam
            cand = np.clip(v + lam_hi * direction, lo, hi)
            if budget_ok(cand):
                return cand
        elif not budget_ok(x0) and part_ok(x0):
            # Lower along the cost vector: x(λ) = clip(v − λ·c).
            lam_lo, lam_hi = 0.0, 1.0
            while float(costs @ np.clip(v - lam_hi * costs, lo, hi)) > budget:
                lam_hi *= 2.0
                if lam_hi > 1e8:
                    break
            for _ in range(50):
                lam = 0.5 * (lam_lo + lam_hi)
                if float(costs @ np.clip(v - lam * costs, lo, hi)) > budget:
                    lam_lo = lam
                else:
                    lam_hi = lam
            cand = np.clip(v - lam_hi * costs, lo, hi)
            if part_ok(cand):
                return cand
        # Both halfspaces interact: Dykstra over the three sets.
        neg_part = np.concatenate([-part, [0.0]])
        projections = [
            lambda u: project_box(u, lo, hi),
            lambda u: project_halfspace(u, costs, budget),
            lambda u: project_halfspace(u, neg_part, -n),
        ]
        return alternating_projections(v, projections)

    def constraint_matrix(self) -> Tuple[np.ndarray, np.ndarray]:
        """All constraints as ``A v <= b`` rows (for the interior-point solver)."""
        m = self.inputs.num_clients
        lo, hi = self.box_bounds()
        rows = []
        rhs = []
        eye = np.eye(m + 1)
        for i in range(m + 1):
            rows.append(eye[i])            # v_i <= hi_i
            rhs.append(hi[i])
            rows.append(-eye[i])           # -v_i <= -lo_i
            rhs.append(-lo[i])
        budget_row = np.concatenate([self.inputs.costs, [0.0]])
        rows.append(budget_row)
        rhs.append(self.inputs.remaining_budget)
        part_row = np.concatenate([-self._avail.astype(float), [0.0]])
        rows.append(part_row)
        rhs.append(-float(self.inputs.min_participants))
        return np.asarray(rows), np.asarray(rhs)

    def interior_point(self) -> Optional[np.ndarray]:
        """A strictly interior point of X̃, if one exists.

        Spread the participation requirement over the cheapest available
        clients with headroom; returns None when the budget leaves no
        strictly feasible slack.
        """
        inp = self.inputs
        m = inp.num_clients
        avail_idx = np.flatnonzero(self._avail)
        a = avail_idx.size
        n = inp.min_participants
        # Fractions slightly above n/a on all available clients.
        base = min(0.98, (n / a) + 0.5 * (1.0 - n / a))
        x = np.zeros(m)
        x[avail_idx] = base
        # Shrink toward the cheapest-n corner until the budget has slack.
        for _ in range(60):
            cost = float(inp.costs @ x)
            if cost < inp.remaining_budget * (1.0 - 1e-6) and x[avail_idx].sum() > n * (1 + 1e-6):
                rho = 1.0 + 0.5 * (self.rho_max - 1.0)
                return np.concatenate([x, [rho]])
            # Move mass to the cheapest clients, keeping Σx just above n.
            order = avail_idx[np.argsort(inp.costs[avail_idx], kind="stable")]
            target = np.zeros(m)
            keep = min(a, n + 1)
            target[order[:keep]] = min(0.98, (n * (1 + 1e-3)) / keep)
            x = 0.5 * x + 0.5 * target
        cost = float(inp.costs @ x)
        if cost < inp.remaining_budget and x[avail_idx].sum() > n:
            rho = 1.0 + 0.5 * (self.rho_max - 1.0)
            return np.concatenate([x, [rho]])
        return None
