"""The reformulated per-epoch problem (paper Sec. 4.2).

With ``Φ_t = [x, ρ]`` the paper defines::

    f_t(Φ)  = Σ_k ρ x_k (τ_loc + τ_cm)          (objective; eq. 4 relaxation)
    p(Φ)    = Σ_k c_k x_k − C_remaining ≤ 0      (budget, constraint 5a per slot)
    q(Φ)    = n − Σ_k x_k ≤ 0                    (participation, 5b)
    h_t(Φ)  = [h0, h1, …, hM]                    (convergence, 5c)

    h0(Φ)  = F_t(w + avg_k x_k d_k) − θ          — linearized around the
              last observation:  loss_gap + sᵀx, where s_k estimates the
              marginal loss effect of selecting client k,
    hk(Φ)  = η̂_k x_k ρ − ρ + 1                  — with η̂_k the OBSERVED
              local accuracy of client k (Theorem 1: hk ≤ 0 ⇔
              η̂_k x_k ≤ 1 − 1/ρ = η_t, i.e. constraint 3c).

``f_t`` and ``p, q`` are exact; ``h_t`` is the observable surrogate (the
true quantities are revealed only after acting — the paper's 0-lookahead
setting, which is precisely why the dual ascent uses *realized* h values
while the descent step uses the surrogate).

All quantities for unavailable clients are masked out: ``x_k`` is pinned
to 0 by the box and their ``h_k`` rows are identically zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.phi import Phi

__all__ = ["EpochInputs", "FedLProblem"]

#: Interleaved ``+e_i, -e_i`` box-constraint rows per dimension.  These are
#: dimension-only constants rebuilt identically every epoch by the
#: interior-point path, so share them process-wide (read-only).
_BOX_ROWS_CACHE: Dict[int, np.ndarray] = {}


def _box_constraint_rows(dim: int) -> np.ndarray:
    rows = _BOX_ROWS_CACHE.get(dim)
    if rows is None:
        eye = np.eye(dim)
        rows = np.empty((2 * dim, dim))
        rows[0::2] = eye
        rows[1::2] = -eye
        rows.setflags(write=False)
        _BOX_ROWS_CACHE[dim] = rows
    return rows


@dataclass(frozen=True)
class EpochInputs:
    """Observable inputs the learner holds when deciding epoch ``t``.

    At decision time these are *previous-epoch* realizations (0-lookahead);
    for the dual ascent the runner builds one from the realized values.
    """

    tau: np.ndarray            # (M,) per-iteration latency estimate
    costs: np.ndarray          # (M,) rental prices
    available: np.ndarray      # (M,) bool — E_t IS known at decision time
    eta_hat: np.ndarray        # (M,) observed/prior local accuracies, in [0,1)
    loss_gap: float            # F_t(w) − θ at the last observation
    loss_sensitivity: np.ndarray  # (M,) ∂(loss)/∂x_k estimate (<= 0 helps)
    remaining_budget: float
    min_participants: int

    def __post_init__(self) -> None:
        m = np.asarray(self.tau).size
        for name in ("tau", "costs", "eta_hat", "loss_sensitivity"):
            arr = np.asarray(getattr(self, name), dtype=float)
            if arr.shape != (m,):
                raise ValueError(f"{name} must have shape ({m},)")
            object.__setattr__(self, name, arr)
        avail = np.asarray(self.available, dtype=bool)
        if avail.shape != (m,):
            raise ValueError("available mask shape mismatch")
        object.__setattr__(self, "available", avail)
        if np.any(self.tau < 0):
            raise ValueError("latencies must be nonnegative")
        if np.any(self.costs < 0):
            raise ValueError("costs must be nonnegative")
        if np.any((self.eta_hat < 0) | (self.eta_hat >= 1)):
            raise ValueError("eta_hat must lie in [0, 1)")
        if self.min_participants < 1:
            raise ValueError("min_participants must be >= 1")
        if self.min_participants > int(avail.sum()):
            raise ValueError("fewer available clients than min_participants")

    @property
    def num_clients(self) -> int:
        return self.tau.size


class FedLProblem:
    """Callable pieces of the reformulated problem for one epoch.

    ``objective`` selects the latency surrogate:

    * ``"sum"`` (paper, eq. 4): ``f = ρ Σ_k x_k τ_k`` — the convex upper
      bound the paper optimizes.
    * ``"softmax"`` (ablation): ``f = ρ · (1/α) log(Σ_k x_k e^{α τ_k} + 1)``
      — a smooth surrogate of the true epoch latency ``ρ max_{sel} τ``
      (tight as α → ∞; the +1 keeps it defined at x = 0, contributing a
      latency floor of 0 since log 1 = 0).
    """

    def __init__(
        self,
        inputs: EpochInputs,
        rho_max: float = 8.0,
        objective: str = "sum",
        softmax_alpha: float = 4.0,
    ) -> None:
        if rho_max < 1:
            raise ValueError("rho_max must be >= 1")
        if objective not in ("sum", "softmax"):
            raise ValueError(f"unknown objective {objective!r}")
        if softmax_alpha <= 0:
            raise ValueError("softmax_alpha must be positive")
        self.inputs = inputs
        self.rho_max = float(rho_max)
        self.objective = objective
        self.softmax_alpha = float(softmax_alpha)
        self._avail = inputs.available
        # Effective per-client latency: zero for unavailable clients (they
        # cannot be selected; keeps f and its gradient well-defined).
        self._tau_eff = np.where(self._avail, inputs.tau, 0.0)
        if objective == "softmax":
            # e^{ατ} per client, 0 for unavailable (they never contribute).
            self._exp_tau = np.where(
                self._avail, np.exp(self.softmax_alpha * self._tau_eff), 0.0
            )
        # Feasible-set geometry, precomputed once: project() is the hot
        # call of the projected-gradient solver (hundreds of evaluations
        # per epoch), so none of these should be rebuilt per call.
        m = inputs.num_clients
        lo = np.zeros(m + 1)
        lo[m] = 1.0
        hi = np.concatenate([self._avail.astype(float), [self.rho_max]])
        self._lo = lo
        self._hi = hi
        self._costs_ext = np.concatenate([inputs.costs, [0.0]])
        self._part = self._avail.astype(float)
        self._part_ext = np.concatenate([self._part, [0.0]])
        self._neg_part_ext = -self._part_ext
        self._costs_nrm2 = float(self._costs_ext @ self._costs_ext)
        self._part_nrm2 = float(self._neg_part_ext @ self._neg_part_ext)
        self._constraints: Optional[Tuple[np.ndarray, np.ndarray]] = None
        # Can budget and participation hold simultaneously?  When the n
        # cheapest available clients already exceed the remaining budget
        # the intersection is empty: no point running a projection to
        # convergence — Dykstra just cycles between the inconsistent sets.
        avail_costs = np.sort(inputs.costs[self._avail], kind="stable")
        n_req = inputs.min_participants
        min_cost = float(avail_costs[:n_req].sum())
        self._intersection_feasible = min_cost <= inputs.remaining_budget + 1e-9

    # -- objective -----------------------------------------------------------

    def f(self, phi: Phi) -> float:
        """Latency surrogate at Φ (see class docstring)."""
        if self.objective == "sum":
            return float(phi.rho * (phi.x @ self._tau_eff))
        z = float(np.clip(phi.x, 0.0, None) @ self._exp_tau) + 1.0
        return float(phi.rho * np.log(z) / self.softmax_alpha)

    def grad_f(self, phi: Phi) -> np.ndarray:
        """Gradient of ``f_t`` in the flat [x..., ρ] representation."""
        if self.objective == "sum":
            gx = phi.rho * self._tau_eff
            grho = float(phi.x @ self._tau_eff)
            return np.concatenate([gx, [grho]])
        z = float(np.clip(phi.x, 0.0, None) @ self._exp_tau) + 1.0
        smax = np.log(z) / self.softmax_alpha
        gx = phi.rho * self._exp_tau / (self.softmax_alpha * z)
        return np.concatenate([gx, [smax]])

    # -- long-term constraint vector h_t ----------------------------------------

    def h(self, phi: Phi) -> np.ndarray:
        """``h_t(Φ) ∈ R^{M+1}``: [global-loss row, per-client rows]."""
        inp = self.inputs
        h0 = inp.loss_gap + float(inp.loss_sensitivity @ phi.x)
        hk = np.where(
            self._avail,
            inp.eta_hat * phi.x * phi.rho - phi.rho + 1.0,
            0.0,
        )
        return np.concatenate([[h0], hk])

    def grad_mu_h(self, phi: Phi, mu: np.ndarray) -> np.ndarray:
        """∇_Φ (μᵀ h_t(Φ)) in the flat representation."""
        mu = np.asarray(mu, dtype=float)
        if mu.shape != (self.inputs.num_clients + 1,):
            raise ValueError("mu must have M+1 entries")
        mu0, muk = mu[0], mu[1:]
        mk = np.where(self._avail, muk, 0.0)
        gx = mu0 * self.inputs.loss_sensitivity + mk * self.inputs.eta_hat * phi.rho
        grho = float(mk @ (self.inputs.eta_hat * phi.x - 1.0))
        return np.concatenate([gx, [grho]])

    def hess_mu_h(self, mu: np.ndarray) -> np.ndarray:
        """Hessian of μᵀh (constant in Φ): only x_k–ρ cross terms."""
        m = self.inputs.num_clients
        mu = np.asarray(mu, dtype=float)
        mk = np.where(self._avail, mu[1:], 0.0)
        H = np.zeros((m + 1, m + 1))
        cross = mk * self.inputs.eta_hat
        H[:m, m] = cross
        H[m, :m] = cross
        return H

    # -- feasible set X̃ (box ∩ budget ∩ participation) ---------------------------

    def box_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Elementwise bounds on [x..., ρ]: unavailable clients pinned to 0."""
        return self._lo.copy(), self._hi.copy()

    def project(self, v: np.ndarray) -> np.ndarray:
        """Euclidean projection onto X̃ in the flat representation.

        Fast path: clip to the box; if exactly one of the two halfspaces
        (budget cᵀx <= C, participation Σx >= n) is violated, the KKT
        solution is ``clip(v ∓ λ·normal)`` with λ found by bisection (the
        clipped sum is monotone in λ).  Only when both bind simultaneously
        — rare in practice — fall back to Dykstra over all three sets.
        """
        lo, hi = self._lo, self._hi
        costs = self._costs_ext
        part = self._part
        n = float(self.inputs.min_participants)
        budget = self.inputs.remaining_budget
        v = np.asarray(v, dtype=float)

        def budget_ok(u: np.ndarray) -> bool:
            return float(costs @ u) <= budget + 1e-10

        def part_ok(u: np.ndarray) -> bool:
            return float(part @ u[:-1]) >= n - 1e-10

        x0 = np.clip(v, lo, hi)
        if budget_ok(x0) and part_ok(x0):
            return x0
        if not part_ok(x0) and budget_ok(x0):
            # Raise availability coordinates: x(λ) = clip(v + λ·1_avail).
            res = self._clip_line_root(v, self._part_ext, self._part_ext, n, True)
            if res is not None and budget_ok(res[0]):
                return res[0]
        elif not budget_ok(x0) and part_ok(x0):
            # Lower along the cost vector: x(λ) = clip(v − λ·c).
            res = self._clip_line_root(v, -costs, costs, budget, False)
            if res is not None and part_ok(res[0]):
                return res[0]
        # Both halfspaces interact.
        if not self._intersection_feasible:
            # Empty intersection: no projection exists.  Return Dykstra's
            # bounded compromise between the sets (the historical behavior,
            # minus the hundreds of sweeps that can never converge).
            return self._dykstra(v, max_iters=80)
        # Newton on the two-multiplier dual; parametric scalar root when
        # Newton stalls on a kink; Dykstra as the last resort.
        x = self._project_dual_newton(v)
        if x is None:
            x = self._dual_parametric_root(v)
        return x if x is not None else self._dykstra(v)

    def _clip_line_root(
        self,
        v: np.ndarray,
        direction: np.ndarray,
        weights: np.ndarray,
        target: float,
        increasing: bool,
    ) -> Optional[Tuple[np.ndarray, float]]:
        """Exact smallest ``λ >= 0`` with ``wᵀ clip(v + λd, lo, hi) = target``.

        ``g(λ) = wᵀ clip(v + λd)`` is piecewise linear and monotone along
        the line, with kinks only where a coordinate enters/leaves its
        bounds.  Evaluating g at every kink in one broadcast clip and
        interpolating inside the crossing segment replaces the former
        50-step bisection (hundreds of thousands of ``np.clip`` calls per
        experiment) with ~6 vector ops.  Returns ``(x(λ*), λ*)``, or None
        when g never reaches ``target`` (caller falls through to the
        coupled-constraint path).
        """
        lo, hi = self._lo, self._hi
        act = direction != 0.0
        va, da = v[act], direction[act]
        wa = weights[act]
        # Free interval of coordinate i along the ray: (enter_i, exit_i).
        rising = da > 0.0
        enter = (np.where(rising, lo[act], hi[act]) - va) / da
        exit_ = (np.where(rising, hi[act], lo[act]) - va) / da
        wd = wa * da
        g0 = float(weights @ np.clip(v, lo, hi))
        s0 = float(wd[(enter <= 0.0) & (exit_ > 0.0)].sum())
        # Slope-change events at positive λ, swept with prefix sums.
        em, xm = enter > 0.0, exit_ > 0.0
        ev_lam = np.concatenate([enter[em], exit_[xm]])
        ev_dw = np.concatenate([wd[em], -wd[xm]])
        order = np.argsort(ev_lam, kind="stable")
        seg_start = np.concatenate([[0.0], ev_lam[order]])
        seg_slope = np.concatenate([[s0], s0 + np.cumsum(ev_dw[order])])
        g_start = np.empty(seg_start.size)
        g_start[0] = g0
        g_start[1:] = g0 + np.cumsum(seg_slope[:-1] * np.diff(seg_start))
        ok = g_start >= target if increasing else g_start <= target
        if not ok.any():
            return None                       # g saturates before target
        idx = int(np.argmax(ok))
        if idx == 0:
            return np.clip(v, lo, hi), 0.0
        ll = float(seg_start[idx - 1])
        sl = float(seg_slope[idx - 1])
        lam_star = ll + (target - float(g_start[idx - 1])) / sl if sl != 0.0 else float(seg_start[idx])
        if not (ll <= lam_star <= float(seg_start[idx])):
            lam_star = float(seg_start[idx])
        x = np.clip(v + lam_star * direction, lo, hi)
        # g is exactly linear on the segment, so x misses target only by
        # rounding; if that rounding lands on the infeasible side, return
        # the feasible kink endpoint instead.
        gx = float(weights @ x)
        if (gx < target - 1e-10) if increasing else (gx > target + 1e-10):
            lam_star = float(seg_start[idx])
            return np.clip(v + lam_star * direction, lo, hi), lam_star
        return x, lam_star

    def _dual_parametric_root(self, v: np.ndarray) -> Optional[np.ndarray]:
        """Coupled-case projection as a scalar root problem in λ.

        For a pinned budget multiplier λ, the optimal participation
        multiplier ``ν*(λ)`` (exact inner solve via
        :meth:`_clip_line_root`) keeps the participation row feasible with
        complementarity by construction.  What remains is the monotone
        piecewise-linear scalar equation ``GB(λ) = cᵀx(λ, ν*(λ)) − C = 0``,
        bracketed and solved by Illinois regula falsi — robust where
        semismooth Newton stalls on a kink, and immune to the zigzag of
        2-block dual coordinate ascent.  Returns None when the root cannot
        be certified (caller falls back to Dykstra).
        """
        c = self._costs_ext
        p = self._part_ext
        budget = float(self.inputs.remaining_budget)
        n = float(self.inputs.min_participants)
        scale_b = 1.0 + abs(budget)
        lo, hi = self._lo, self._hi

        def eval_lam(lam: float):
            """(x, GB) at (λ, ν*(λ)); None if the inner solve fails."""
            base = v - lam * c
            xb = np.clip(base, lo, hi)
            if float(p @ xb) >= n:            # participation slack: ν* = 0
                x = xb
            else:
                res = self._clip_line_root(base, p, p, n, True)
                if res is None:
                    return None
                x = res[0]
            return x, float(c @ x) - budget

        r = eval_lam(0.0)
        if r is None:
            return None
        x_lo, gb_lo = r
        if gb_lo <= 1e-10 * scale_b:          # budget slack at λ = 0
            return x_lo
        lam_lo, lam_hi = 0.0, 1.0
        for _ in range(60):                   # bracket: double until GB <= 0
            r = eval_lam(lam_hi)
            if r is None:
                return None
            x_hi, gb_hi = r
            if gb_hi <= 0.0:
                break
            lam_lo, x_lo, gb_lo = lam_hi, x_hi, gb_hi
            lam_hi *= 2.0
        else:
            return None
        side = 0
        for _ in range(100):
            if gb_hi == gb_lo:
                break
            lam_m = (lam_lo * gb_hi - lam_hi * gb_lo) / (gb_hi - gb_lo)
            if not (lam_lo < lam_m < lam_hi):
                lam_m = 0.5 * (lam_lo + lam_hi)
            r = eval_lam(lam_m)
            if r is None:
                return None
            x_m, gb_m = r
            if abs(gb_m) <= 1e-10 * scale_b:
                return x_m
            if gb_m > 0.0:
                lam_lo, x_lo, gb_lo = lam_m, x_m, gb_m
                if side == 1:
                    gb_hi *= 0.5              # Illinois anti-stall halving
                side = 1
            else:
                lam_hi, x_hi, gb_hi = lam_m, x_m, gb_m
                if side == -1:
                    gb_lo *= 0.5
                side = -1
        # Bracket collapsed without an exact hit: the feasible endpoint is
        # within the bracket's width of the true projection.
        return x_hi if abs(gb_hi) <= 1e-8 * scale_b else None

    def _project_dual_newton(self, v: np.ndarray) -> Optional[np.ndarray]:
        """Projection with both halfspaces potentially active.

        The KKT solution is ``x(λ, ν) = clip(v − λc + ν·1_avail, lo, hi)``
        with multipliers ``λ, ν >= 0`` for the budget and participation
        halfspaces.  That leaves a 2-D piecewise-linear complementarity
        system, solved by damped semismooth Newton — typically <10
        iterations of O(M) work, where Dykstra needs hundreds of sweeps.
        Returns None when KKT cannot be certified (degenerate geometry or
        an empty intersection); the caller then falls back to Dykstra.
        """
        lo, hi = self._lo, self._hi
        c = self._costs_ext
        p = self._part_ext
        budget = float(self.inputs.remaining_budget)
        n = float(self.inputs.min_participants)
        scale_b = 1.0 + abs(budget)
        scale_p = 1.0 + n
        def residual(lam: float, nu: float):
            z = v - lam * c + nu * p
            x = np.clip(z, lo, hi)
            gb = float(c @ x) - budget          # budget violation (want <= 0)
            gp = n - float(p @ x)               # participation violation
            # Complementarity residuals: an active multiplier must pin its
            # constraint to equality; an inactive one only needs g <= 0.
            rb = gb if lam > 0.0 else max(gb, 0.0)
            rp = gp if nu > 0.0 else max(gp, 0.0)
            err = max(abs(rb) / scale_b, abs(rp) / scale_p)
            return z, x, gb, gp, err

        lam = 0.0
        nu = 0.0
        z, x, gb, gp, err = residual(lam, nu)
        for _ in range(60):
            if err <= 1e-10:
                return x
            free = (z > lo) & (z < hi)
            cf = c[free]
            pf = p[free]
            acc = float(cf @ cf)
            app = float(pf @ pf)
            acp = float(cf @ pf)
            # Which multipliers move: those active or violated.
            do_b = lam > 0.0 or gb > 0.0
            do_p = nu > 0.0 or gp > 0.0
            if do_b and do_p:
                det = acc * app - acp * acp
                if det <= 1e-14 * max(1.0, acc * app):
                    return None
                dlam = (app * gb + acp * gp) / det
                dnu = (acp * gb + acc * gp) / det
            elif do_b:
                if acc <= 0.0:
                    return None
                dlam, dnu = gb / acc, 0.0
            elif do_p:
                if app <= 0.0:
                    return None
                dlam, dnu = 0.0, gp / app
            else:                               # both satisfied, both zero
                return x
            # Damped step: accept the largest halving that shrinks the
            # residual (the complementarity system is piecewise linear, so
            # an undamped step can overshoot across kinks).
            t = 1.0
            for _ in range(12):
                lam_t = max(0.0, lam + t * dlam)
                nu_t = max(0.0, nu + t * dnu)
                z_t, x_t, gb_t, gp_t, err_t = residual(lam_t, nu_t)
                if err_t < err:
                    lam, nu = lam_t, nu_t
                    z, x, gb, gp, err = z_t, x_t, gb_t, gp_t, err_t
                    break
                t *= 0.5
            else:
                return None
        return None

    def _dykstra(self, v: np.ndarray, tol: float = 1e-10, max_iters: int = 500) -> np.ndarray:
        """Dykstra over box ∩ budget ∩ participation, fused.

        Performs exactly the floating-point operations of
        :func:`repro.solvers.projections.alternating_projections` composed
        with ``project_box`` / ``project_halfspace`` (same sweep order,
        same increment bookkeeping) but without per-call closure dispatch
        and revalidation — this loop runs tens of thousands of inner
        projections per experiment.
        """
        lo, hi = self._lo, self._hi
        costs, c_nrm2 = self._costs_ext, self._costs_nrm2
        neg_part, p_nrm2 = self._neg_part_ext, self._part_nrm2
        budget = self.inputs.remaining_budget
        neg_n = -float(self.inputs.min_participants)
        x = np.asarray(v, dtype=float).copy()
        inc_box = np.zeros_like(x)
        inc_budget = np.zeros_like(x)
        inc_part = np.zeros_like(x)
        for _ in range(max_iters):
            y = x + inc_box
            x_new = np.clip(y, lo, hi)
            inc_box = y - x_new
            max_shift = float(np.max(np.abs(x_new - x)))
            x = x_new

            y = x + inc_budget
            gap = float(costs @ y) - budget
            x_new = y if gap <= 0.0 else y - (gap / c_nrm2) * costs
            inc_budget = y - x_new
            max_shift = max(max_shift, float(np.max(np.abs(x_new - x))))
            x = x_new

            y = x + inc_part
            gap = float(neg_part @ y) - neg_n
            x_new = y if gap <= 0.0 else y - (gap / p_nrm2) * neg_part
            inc_part = y - x_new
            max_shift = max(max_shift, float(np.max(np.abs(x_new - x))))
            x = x_new
            if max_shift <= tol:
                break
        return x

    def constraint_matrix(self) -> Tuple[np.ndarray, np.ndarray]:
        """All constraints as ``A v <= b`` rows (for the interior-point solver).

        The box rows (interleaved ``±e_i``) depend only on the dimension,
        so they come from a module-level cache; the assembled system is
        cached on the instance.
        """
        if self._constraints is not None:
            return self._constraints
        m = self.inputs.num_clients
        lo, hi = self._lo, self._hi
        box_rows = _box_constraint_rows(m + 1)
        box_rhs = np.empty(2 * (m + 1))
        box_rhs[0::2] = hi                 # v_i <= hi_i
        box_rhs[1::2] = -lo                # -v_i <= -lo_i
        budget_row = np.concatenate([self.inputs.costs, [0.0]])
        part_row = np.concatenate([-self._avail.astype(float), [0.0]])
        a = np.vstack([box_rows, budget_row, part_row])
        b = np.concatenate(
            [box_rhs, [self.inputs.remaining_budget, -float(self.inputs.min_participants)]]
        )
        self._constraints = (a, b)
        return self._constraints

    def interior_point(self) -> Optional[np.ndarray]:
        """A strictly interior point of X̃, if one exists.

        Spread the participation requirement over the cheapest available
        clients with headroom; returns None when the budget leaves no
        strictly feasible slack.
        """
        inp = self.inputs
        m = inp.num_clients
        avail_idx = np.flatnonzero(self._avail)
        a = avail_idx.size
        n = inp.min_participants
        # Fractions slightly above n/a on all available clients.
        base = min(0.98, (n / a) + 0.5 * (1.0 - n / a))
        x = np.zeros(m)
        x[avail_idx] = base
        # Shrink toward the cheapest-n corner until the budget has slack.
        for _ in range(60):
            cost = float(inp.costs @ x)
            if cost < inp.remaining_budget * (1.0 - 1e-6) and x[avail_idx].sum() > n * (1 + 1e-6):
                rho = 1.0 + 0.5 * (self.rho_max - 1.0)
                return np.concatenate([x, [rho]])
            # Move mass to the cheapest clients, keeping Σx just above n.
            order = avail_idx[np.argsort(inp.costs[avail_idx], kind="stable")]
            target = np.zeros(m)
            keep = min(a, n + 1)
            target[order[:keep]] = min(0.98, (n * (1 + 1e-3)) / keep)
            x = 0.5 * x + 0.5 * target
        cost = float(inp.costs @ x)
        if cost < inp.remaining_budget and x[avail_idx].sum() > n:
            rho = 1.0 + 0.5 * (self.rho_max - 1.0)
            return np.concatenate([x, [rho]])
        return None
