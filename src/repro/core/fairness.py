"""Fairness-aware client selection — the paper's stated future work.

The paper closes with "We will consider selection fairness to further
expand the CS capabilities".  This module implements that extension in the
same online toolbox the paper uses:

* :class:`ParticipationTracker` — long-term participation accounting:
  per-client selection counts/rates and Jain's fairness index
  ``(Σp)² / (M Σp²)`` (1 = perfectly even participation).
* :class:`FairFedLPolicy` — FedL plus a **virtual-queue** fairness bias
  (the standard Lyapunov device for long-term constraints, the same
  family as the paper's dual ascent): each client carries a queue
  ``Q_k ← [Q_k + r_min − 1{selected}]⁺`` measuring its deficit against a
  target participation rate ``r_min``; before rounding, the fractional
  selection is biased by ``κ · Q_k`` (normalized), so chronically
  under-selected available clients get pulled in.  With ``κ = 0`` the
  policy reduces exactly to FedL.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Decision, EpochContext, RoundFeedback, enforce_feasibility
from repro.core.fedl import FedLPolicy
from repro.core.rounding import independent_round, rdcs_round

__all__ = ["ParticipationTracker", "FairFedLPolicy", "jain_index"]


def jain_index(values: np.ndarray) -> float:
    """Jain's fairness index of nonnegative values: ``(Σv)²/(n Σv²)``.

    1 when all values are equal; → 1/n when one value dominates.
    Defined as 1.0 for the all-zeros vector (vacuously fair).
    """
    v = np.asarray(values, dtype=float)
    if v.ndim != 1 or v.size == 0:
        raise ValueError("values must be a nonempty 1-D array")
    if np.any(v < 0):
        raise ValueError("values must be nonnegative")
    denom = v.size * float(v @ v)
    if denom == 0.0:
        return 1.0
    return float(v.sum()) ** 2 / denom


class ParticipationTracker:
    """Long-term participation accounting for a fixed fleet."""

    def __init__(self, num_clients: int) -> None:
        if num_clients < 1:
            raise ValueError("need at least one client")
        self.counts = np.zeros(num_clients, dtype=np.int64)
        self.available_epochs = np.zeros(num_clients, dtype=np.int64)
        self.epochs = 0

    def record(self, selected: np.ndarray, available: np.ndarray) -> None:
        sel = np.asarray(selected, dtype=bool)
        avail = np.asarray(available, dtype=bool)
        if sel.shape != (self.counts.size,) or avail.shape != sel.shape:
            raise ValueError("mask shape mismatch")
        self.counts += sel
        self.available_epochs += avail
        self.epochs += 1

    def rates(self) -> np.ndarray:
        """Participation rate per client over epochs it was available."""
        denom = np.maximum(self.available_epochs, 1)
        return self.counts / denom

    def fairness(self) -> float:
        """Jain's index of the participation rates."""
        if self.epochs == 0:
            return 1.0
        return jain_index(self.rates())


class FairFedLPolicy(FedLPolicy):
    """FedL with a virtual-queue long-term fairness bias."""

    def __init__(
        self,
        *args,
        fair_rate: float = 0.1,
        fairness_weight: float = 0.5,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if not (0.0 <= fair_rate < 1.0):
            raise ValueError("fair_rate must be in [0, 1)")
        if fairness_weight < 0:
            raise ValueError("fairness_weight must be nonnegative")
        self.name = "Fair-FedL"
        self.fair_rate = fair_rate
        self.fairness_weight = fairness_weight
        m = self.eta_hat.size
        self.queues = np.zeros(m)
        self.tracker = ParticipationTracker(m)
        self._last_available: np.ndarray | None = None

    def select(self, ctx: EpochContext) -> Decision:
        phi, x_frac = self.fractional_decision(ctx)
        # Virtual-queue bias: normalize queues to [0, 1] and blend in.
        if self.fairness_weight > 0 and self.queues.max() > 0:
            bias = self.queues / self.queues.max()
            x_frac = np.where(
                ctx.available,
                np.clip(x_frac + self.fairness_weight * bias, 0.0, 1.0),
                0.0,
            )
        if self.config.rounding == "rdcs":
            x_int = rdcs_round(x_frac, self.rng)
        else:
            x_int = independent_round(x_frac, self.rng)
        mask = x_int > 0.5
        if not mask.any():
            order = np.argsort(-x_frac, kind="stable")
            mask = np.zeros_like(mask)
            mask[order[: ctx.min_participants]] = True
        mask = enforce_feasibility(mask, ctx, self.rng)
        self._last_available = ctx.available.copy()
        return Decision(
            selected=mask,
            iterations=phi.iterations,
            rho=phi.rho,
            fractional_x=x_frac,
        )

    def update(self, feedback: RoundFeedback) -> None:
        super().update(feedback)
        avail = (
            self._last_available
            if self._last_available is not None
            else np.ones_like(feedback.selected)
        )
        self.tracker.record(feedback.selected, avail)
        # Q_k ← [Q_k + r_min·1{available} − 1{selected}]⁺
        self.queues = np.maximum(
            self.queues
            + self.fair_rate * avail.astype(float)
            - feedback.selected.astype(float),
            0.0,
        )
