"""Dynamic regret and dynamic fit (paper Sec. 5 definitions).

For a trajectory of per-epoch problems ``{(f_t, h_t, X̃_t)}`` and online
decisions ``{Φ_t}``::

    Reg_o  = Σ_t f_t(Φ_t) − Σ_t f_t(Φ*_t),     Φ*_t ∈ argmin_{X̃_t, h_t<=0} f_t
    Fit_o  = ‖ [ Σ_t h_t(Φ_t) ]⁺ ‖.

The comparator is the *per-slot* (dynamic) optimum — the strongest
benchmark in online convex optimization.  :func:`solve_per_slot_optimum`
computes it with the projected-gradient solver over the slot's feasible
set intersected with ``h_t(Φ) <= 0`` (handled by an exact penalty with
verification, falling back to the interior-point solver when the penalty
solution is not h-feasible).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.phi import Phi
from repro.core.problem import FedLProblem
from repro.solvers.projected_gradient import projected_gradient

__all__ = ["solve_per_slot_optimum", "dynamic_regret", "dynamic_fit"]


def solve_per_slot_optimum(
    problem: FedLProblem,
    penalty: float = 200.0,
    max_iters: int = 200,
    tol: float = 1e-8,
    x0: np.ndarray | None = None,
) -> Phi:
    """``Φ*_t = argmin f_t over X̃_t ∩ {h_t <= 0}`` (fractional domain).

    Uses a smooth quadratic exact-penalty on ``[h_t]⁺`` inside the
    projected-gradient solver; the penalty weight is doubled until the
    violation is negligible (or the constraint set is certified
    empty-ish, in which case the least-violating point is returned —
    matching how the paper's fit definition measures residual violation).
    """
    pen = penalty
    best: Tuple[float, Phi] | None = None
    lo, hi = problem.box_bounds()
    if x0 is not None:
        v0 = np.clip(np.asarray(x0, dtype=float), lo, hi)
    else:
        v0 = 0.5 * (lo + np.where(np.isfinite(hi), hi, lo + 1.0))
    for _ in range(4):

        def objective(v: np.ndarray) -> float:
            phi = Phi.from_vector(np.clip(v, lo, hi))
            viol = np.maximum(problem.h(phi), 0.0)
            return problem.f(phi) + 0.5 * pen * float(viol @ viol)

        def gradient(v: np.ndarray) -> np.ndarray:
            phi = Phi.from_vector(np.clip(v, lo, hi))
            g = problem.grad_f(phi)
            viol = np.maximum(problem.h(phi), 0.0)
            # ∇(0.5‖[h]⁺‖²) = Σ_i [h_i]⁺ ∇h_i  — reuse grad_mu_h with μ=[h]⁺.
            g = g + pen * problem.grad_mu_h(phi, viol)
            return g

        res = projected_gradient(
            objective, gradient, problem.project, x0=v0, max_iters=max_iters, tol=tol
        )
        phi = Phi.from_vector(np.clip(res.x, lo, hi))
        violation = float(np.linalg.norm(np.maximum(problem.h(phi), 0.0)))
        if best is None or violation < best[0]:
            best = (violation, phi)
        if violation <= 1e-6:
            return phi
        pen *= 6.0
        v0 = res.x
    assert best is not None
    return best[1]


def dynamic_regret(
    problems: Sequence[FedLProblem],
    decisions: Sequence[Phi],
    optima: Sequence[Phi] | None = None,
) -> Tuple[float, List[Phi]]:
    """``(Reg, [Φ*_t])`` for the trajectory; computes optima if not given."""
    if len(problems) != len(decisions):
        raise ValueError("trajectory lengths differ")
    if optima is not None:
        opts = list(optima)
    else:
        # Warm-start each slot's solve at the previous slot's optimum —
        # the stream has bounded variation (that is what the path-length
        # term in Theorem 2 measures), so successive optima are close.
        opts = []
        prev: np.ndarray | None = None
        for p in problems:
            star = solve_per_slot_optimum(p, x0=prev)
            opts.append(star)
            prev = star.to_vector()
    reg = 0.0
    for prob, phi, phi_star in zip(problems, decisions, opts):
        reg += prob.f(phi) - prob.f(phi_star)
    return reg, opts


def dynamic_fit(
    problems: Sequence[FedLProblem],
    decisions: Sequence[Phi],
) -> float:
    """``‖[Σ_t h_t(Φ_t)]⁺‖`` — accumulated constraint violation."""
    if len(problems) != len(decisions):
        raise ValueError("trajectory lengths differ")
    if not problems:
        return 0.0
    acc = np.zeros(problems[0].inputs.num_clients + 1)
    for prob, phi in zip(problems, decisions):
        acc += prob.h(phi)
    return float(np.linalg.norm(np.maximum(acc, 0.0)))
