"""The online saddle-point learner (paper Sec. 4.3, eqs. 8-9).

State: the fractional decision ``Φ̃_t`` and the Lagrange multiplier
``μ_t ∈ R^{M+1}_{>=0}`` (one dual per row of ``h_t``).  Per epoch:

* **Dual ascent** (eq. 9), using the *realized* constraint values:
  ``μ_{t+1} = [μ_t + δ h_t(Φ̃_t)]⁺``.
* **Modified descent** (eq. 8): with the newest observable surrogate of
  ``f_t, h_t``, solve

      min_Φ  ∇f_t(Φ̃_t)ᵀ(Φ − Φ̃_t) + μ_{t+1}ᵀ h_t(Φ) + ‖Φ − Φ̃_t‖²/(2β)

  over the relaxed feasible set X̃ (box ∩ budget ∩ participation).  Two
  interchangeable solvers: projected gradient (default, via Dykstra
  projections) and the from-scratch interior-point filter line-search
  method (the paper's reference [26]); tests assert they agree.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.phi import Phi
from repro.core.problem import EpochInputs, FedLProblem
from repro.obs import get_telemetry
from repro.solvers.interior_point import solve_interior_point
from repro.solvers.projected_gradient import (
    ProjectedGradientState,
    projected_gradient,
)

__all__ = ["LearnerState", "OnlineLearner"]


@dataclass
class LearnerState:
    """Mutable learner state carried across epochs."""

    phi: Phi
    mu: np.ndarray            # (M+1,) nonnegative duals

    def __post_init__(self) -> None:
        self.mu = np.asarray(self.mu, dtype=float)
        if self.mu.shape != (self.phi.num_clients + 1,):
            raise ValueError("mu must have M+1 entries")
        if np.any(self.mu < 0):
            raise ValueError("duals must be nonnegative")


class OnlineLearner:
    """Implements the alternating descent/ascent updates."""

    def __init__(
        self,
        num_clients: int,
        beta: float,
        delta: float,
        rho_max: float = 8.0,
        solver: str = "projected_gradient",
        solver_max_iters: int = 200,
        solver_tol: float = 1e-7,
        x_init: float = 0.5,
        objective: str = "sum",
        warm_start: bool = False,
    ) -> None:
        if beta <= 0 or delta <= 0:
            raise ValueError("step sizes must be positive")
        if solver not in ("projected_gradient", "interior_point"):
            raise ValueError(f"unknown solver {solver!r}")
        self.beta = beta
        self.delta = delta
        self.rho_max = float(rho_max)
        self.solver = solver
        self.solver_max_iters = solver_max_iters
        self.solver_tol = solver_tol
        self.objective = objective
        # Consecutive epoch subproblems are O(β) perturbations of each
        # other, so (optionally) carry the projected-gradient step-size /
        # residual state across epochs.  Off by default: a cold learner is
        # the bit-exact reference the equivalence tests compare against.
        self.warm_start = bool(warm_start)
        self._pg_state: ProjectedGradientState | None = None
        self._first_solve_iters: int | None = None
        # μ_1 = 0 (Lemma 2's initialization).  Φ starts with moderate
        # selection fractions and a conservative iteration level (ρ = 2,
        # the baselines' fixed value) rather than mid-box: the descent step
        # only moves O(β) per epoch, so the starting point is the behaviour
        # for the first ~1/β epochs.
        rho0 = float(np.clip(2.0, 1.0, rho_max))
        if not (0.0 <= x_init <= 1.0):
            raise ValueError("x_init must be in [0, 1]")
        self.state = LearnerState(
            phi=Phi(x=np.full(num_clients, x_init), rho=rho0),
            mu=np.zeros(num_clients + 1),
        )

    # -- eq. (9): dual ascent on realized constraint values -------------------------

    def dual_ascent(self, h_realized: np.ndarray) -> np.ndarray:
        """``μ ← [μ + δ h]⁺`` with the realized h_t(Φ̃_t)."""
        h = np.asarray(h_realized, dtype=float)
        if h.shape != self.state.mu.shape:
            raise ValueError("h must have M+1 entries")
        self.state.mu = np.maximum(self.state.mu + self.delta * h, 0.0)
        tel = get_telemetry()
        if tel.enabled:
            tel.emit(
                "learner.ascent",
                data={
                    "mu": self.state.mu,
                    "h": h,
                    "mu_max": float(self.state.mu.max()),
                    "fit_increment": float(np.maximum(h, 0.0).sum()),
                },
            )
        return self.state.mu

    # -- eq. (8): modified descent step --------------------------------------------

    def descent_step(self, inputs: EpochInputs) -> Phi:
        """Solve the per-epoch subproblem; updates and returns Φ̃_{t+1}."""
        problem = FedLProblem(inputs, rho_max=self.rho_max, objective=self.objective)
        phi_prev = self.state.phi
        # If the fleet size changed (it cannot in this simulator) we would
        # re-dimension here; assert instead.
        if phi_prev.num_clients != inputs.num_clients:
            raise ValueError("client count changed mid-run")
        v_prev = phi_prev.to_vector()
        grad_f_prev = problem.grad_f(phi_prev)
        mu = self.state.mu
        # μᵀh(Φ) expanded once: h is bilinear in (x, ρ), so the penalty is
        # mu0·(gap + sᵀx) + ρ·(w1ᵀx) − ρ·Σw + Σw with w = μ_k·η̂_k over
        # available clients.  The closures below run hundreds of times per
        # epoch inside the solver, so no Phi objects, no concatenations.
        m_clients = inputs.num_clients
        mu0 = float(mu[0])
        w1 = np.where(problem._avail, mu[1:] * inputs.eta_hat, 0.0)
        w_sum = float(w1.sum())
        sens = inputs.loss_sensitivity
        gap = float(inputs.loss_gap)
        inv_beta = 1.0 / self.beta
        floor = np.zeros(m_clients + 1)
        floor[m_clients] = 1.0

        def objective(v: np.ndarray) -> float:
            dv = v - v_prev
            vf = np.maximum(v, floor)          # penalty sees the floored point
            x, rho = vf[:m_clients], float(vf[m_clients])
            lin = float(grad_f_prev @ dv)
            pen = (
                mu0 * (gap + float(sens @ x))
                + rho * float(w1 @ x)
                + (1.0 - rho) * w_sum
            )
            prox = float(dv @ dv) * (0.5 * inv_beta)
            return lin + pen + prox

        def gradient(v: np.ndarray) -> np.ndarray:
            vf = np.maximum(v, floor)
            x, rho = vf[:m_clients], float(vf[m_clients])
            g = grad_f_prev + (v - v_prev) * inv_beta
            g[:m_clients] += mu0 * sens + rho * w1
            g[m_clients] += float(w1 @ x) - w_sum
            return g

        tel = get_telemetry()
        t0 = time.perf_counter() if tel.enabled else 0.0
        warm_hit = False
        iterations_saved = 0
        if self.solver == "projected_gradient":
            carried = self._pg_state if self.warm_start else None
            warm_hit = carried is not None
            res = projected_gradient(
                objective,
                gradient,
                problem.project,
                x0=v_prev,
                max_iters=self.solver_max_iters,
                tol=self.solver_tol,
                state=carried,
            )
            v_new = res.x
            if self.warm_start:
                self._pg_state = ProjectedGradientState.from_result(res)
                if self._first_solve_iters is None:
                    self._first_solve_iters = int(res.iterations)
                elif warm_hit:
                    # Iterations saved relative to this run's cold first
                    # solve — the observable the trace report aggregates.
                    iterations_saved = max(
                        0, self._first_solve_iters - int(res.iterations)
                    )
        else:
            A, b = problem.constraint_matrix()

            def hessian(v: np.ndarray) -> np.ndarray:
                return problem.hess_mu_h(mu) + np.eye(v.size) / self.beta

            res = solve_interior_point(
                objective,
                gradient,
                hessian,
                A,
                b,
                x0=v_prev,
                x_interior=problem.interior_point(),
                tol=self.solver_tol,
                max_outer=20,
            )
            v_new = res.x
        # Numerical guard: snap into the box.
        lo, hi = problem.box_bounds()
        v_new = np.clip(v_new, lo, hi)
        self.state.phi = Phi.from_vector(v_new)
        if tel.enabled:
            dt = time.perf_counter() - t0
            tel.registry.record_timer(f"solver.{self.solver}", dt)
            residual = (
                res.grad_norm if self.solver == "projected_gradient" else res.barrier_mu
            )
            tel.counter("solver.iterations", int(res.iterations))
            if warm_hit:
                tel.counter("solver.warm_start_hits", 1)
                tel.counter("solver.iterations_saved", iterations_saved)
            tel.emit(
                "learner.descent",
                data={
                    "solver": self.solver,
                    "iterations": int(res.iterations),
                    "converged": bool(res.converged),
                    "residual": float(residual),
                    "objective": problem.f(self.state.phi),
                    "rho": self.state.phi.rho,
                    "x_sum": float(self.state.phi.x.sum()),
                    "budget_headroom": float(inputs.remaining_budget),
                    "warm_start": self.warm_start,
                    "warm_start_hit": warm_hit,
                    "iterations_saved": iterations_saved,
                },
                dur=dt,
            )
        return self.state.phi

    # -- checkpointing -----------------------------------------------------------

    def state_dict(self) -> dict:
        """All mutable learner state as JSON-ready plain types.

        Covers the primal/dual iterates *and* the solver carry-over (the
        FISTA warm-start step/residual plus the cold-solve iteration
        reference), so a learner restored mid-run re-solves the next
        epoch's subproblem bit-identically to one that never stopped.
        """
        pg = self._pg_state
        return {
            "x": [float(v) for v in self.state.phi.x],
            "rho": float(self.state.phi.rho),
            "mu": [float(v) for v in self.state.mu],
            "pg_state": (
                None
                if pg is None
                else {
                    "step": float(pg.step),
                    "residual": float(pg.residual),
                    "iterations": int(pg.iterations),
                }
            ),
            "first_solve_iters": (
                None
                if self._first_solve_iters is None
                else int(self._first_solve_iters)
            ),
        }

    def load_state(self, payload: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        x = np.asarray(payload["x"], dtype=float)
        if x.shape != self.state.phi.x.shape:
            raise ValueError("client count changed since checkpoint")
        self.state = LearnerState(
            phi=Phi(x=x, rho=float(payload["rho"])),
            mu=np.asarray(payload["mu"], dtype=float),
        )
        pg = payload.get("pg_state")
        self._pg_state = (
            None
            if pg is None
            else ProjectedGradientState(
                step=float(pg["step"]),
                residual=float(pg["residual"]),
                iterations=int(pg["iterations"]),
            )
        )
        first = payload.get("first_solve_iters")
        self._first_solve_iters = None if first is None else int(first)

    # -- accessors ---------------------------------------------------------------

    @property
    def phi(self) -> Phi:
        return self.state.phi

    @property
    def mu(self) -> np.ndarray:
        return self.state.mu.copy()

    def reset_phi(self, phi: Phi) -> None:
        """Override the primal state (used after infeasible-epoch repairs)."""
        if phi.num_clients != self.state.phi.num_clients:
            raise ValueError("dimension mismatch")
        self.state.phi = phi
