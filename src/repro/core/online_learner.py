"""The online saddle-point learner (paper Sec. 4.3, eqs. 8-9).

State: the fractional decision ``Φ̃_t`` and the Lagrange multiplier
``μ_t ∈ R^{M+1}_{>=0}`` (one dual per row of ``h_t``).  Per epoch:

* **Dual ascent** (eq. 9), using the *realized* constraint values:
  ``μ_{t+1} = [μ_t + δ h_t(Φ̃_t)]⁺``.
* **Modified descent** (eq. 8): with the newest observable surrogate of
  ``f_t, h_t``, solve

      min_Φ  ∇f_t(Φ̃_t)ᵀ(Φ − Φ̃_t) + μ_{t+1}ᵀ h_t(Φ) + ‖Φ − Φ̃_t‖²/(2β)

  over the relaxed feasible set X̃ (box ∩ budget ∩ participation).  Two
  interchangeable solvers: projected gradient (default, via Dykstra
  projections) and the from-scratch interior-point filter line-search
  method (the paper's reference [26]); tests assert they agree.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.phi import Phi
from repro.core.problem import EpochInputs, FedLProblem
from repro.obs import get_telemetry
from repro.solvers.interior_point import solve_interior_point
from repro.solvers.projected_gradient import projected_gradient

__all__ = ["LearnerState", "OnlineLearner"]


@dataclass
class LearnerState:
    """Mutable learner state carried across epochs."""

    phi: Phi
    mu: np.ndarray            # (M+1,) nonnegative duals

    def __post_init__(self) -> None:
        self.mu = np.asarray(self.mu, dtype=float)
        if self.mu.shape != (self.phi.num_clients + 1,):
            raise ValueError("mu must have M+1 entries")
        if np.any(self.mu < 0):
            raise ValueError("duals must be nonnegative")


class OnlineLearner:
    """Implements the alternating descent/ascent updates."""

    def __init__(
        self,
        num_clients: int,
        beta: float,
        delta: float,
        rho_max: float = 8.0,
        solver: str = "projected_gradient",
        solver_max_iters: int = 200,
        solver_tol: float = 1e-7,
        x_init: float = 0.5,
        objective: str = "sum",
    ) -> None:
        if beta <= 0 or delta <= 0:
            raise ValueError("step sizes must be positive")
        if solver not in ("projected_gradient", "interior_point"):
            raise ValueError(f"unknown solver {solver!r}")
        self.beta = beta
        self.delta = delta
        self.rho_max = float(rho_max)
        self.solver = solver
        self.solver_max_iters = solver_max_iters
        self.solver_tol = solver_tol
        self.objective = objective
        # μ_1 = 0 (Lemma 2's initialization).  Φ starts with moderate
        # selection fractions and a conservative iteration level (ρ = 2,
        # the baselines' fixed value) rather than mid-box: the descent step
        # only moves O(β) per epoch, so the starting point is the behaviour
        # for the first ~1/β epochs.
        rho0 = float(np.clip(2.0, 1.0, rho_max))
        if not (0.0 <= x_init <= 1.0):
            raise ValueError("x_init must be in [0, 1]")
        self.state = LearnerState(
            phi=Phi(x=np.full(num_clients, x_init), rho=rho0),
            mu=np.zeros(num_clients + 1),
        )

    # -- eq. (9): dual ascent on realized constraint values -------------------------

    def dual_ascent(self, h_realized: np.ndarray) -> np.ndarray:
        """``μ ← [μ + δ h]⁺`` with the realized h_t(Φ̃_t)."""
        h = np.asarray(h_realized, dtype=float)
        if h.shape != self.state.mu.shape:
            raise ValueError("h must have M+1 entries")
        self.state.mu = np.maximum(self.state.mu + self.delta * h, 0.0)
        tel = get_telemetry()
        if tel.enabled:
            tel.emit(
                "learner.ascent",
                data={
                    "mu": self.state.mu,
                    "h": h,
                    "mu_max": float(self.state.mu.max()),
                    "fit_increment": float(np.maximum(h, 0.0).sum()),
                },
            )
        return self.state.mu

    # -- eq. (8): modified descent step --------------------------------------------

    def descent_step(self, inputs: EpochInputs) -> Phi:
        """Solve the per-epoch subproblem; updates and returns Φ̃_{t+1}."""
        problem = FedLProblem(inputs, rho_max=self.rho_max, objective=self.objective)
        phi_prev = self.state.phi
        # If the fleet size changed (it cannot in this simulator) we would
        # re-dimension here; assert instead.
        if phi_prev.num_clients != inputs.num_clients:
            raise ValueError("client count changed mid-run")
        v_prev = phi_prev.to_vector()
        grad_f_prev = problem.grad_f(phi_prev)
        mu = self.state.mu

        def objective(v: np.ndarray) -> float:
            phi = Phi.from_vector(np.maximum(v, [*np.zeros(v.size - 1), 1.0]))
            lin = float(grad_f_prev @ (v - v_prev))
            pen = float(mu @ problem.h(phi))
            prox = float(np.sum((v - v_prev) ** 2)) / (2.0 * self.beta)
            return lin + pen + prox

        def gradient(v: np.ndarray) -> np.ndarray:
            phi = Phi.from_vector(np.maximum(v, [*np.zeros(v.size - 1), 1.0]))
            return (
                grad_f_prev
                + problem.grad_mu_h(phi, mu)
                + (v - v_prev) / self.beta
            )

        tel = get_telemetry()
        t0 = time.perf_counter() if tel.enabled else 0.0
        if self.solver == "projected_gradient":
            res = projected_gradient(
                objective,
                gradient,
                problem.project,
                x0=v_prev,
                max_iters=self.solver_max_iters,
                tol=self.solver_tol,
            )
            v_new = res.x
        else:
            A, b = problem.constraint_matrix()

            def hessian(v: np.ndarray) -> np.ndarray:
                return problem.hess_mu_h(mu) + np.eye(v.size) / self.beta

            res = solve_interior_point(
                objective,
                gradient,
                hessian,
                A,
                b,
                x0=v_prev,
                x_interior=problem.interior_point(),
                tol=self.solver_tol,
                max_outer=20,
            )
            v_new = res.x
        # Numerical guard: snap into the box.
        lo, hi = problem.box_bounds()
        v_new = np.clip(v_new, lo, hi)
        self.state.phi = Phi.from_vector(v_new)
        if tel.enabled:
            dt = time.perf_counter() - t0
            tel.registry.record_timer(f"solver.{self.solver}", dt)
            residual = (
                res.grad_norm if self.solver == "projected_gradient" else res.barrier_mu
            )
            tel.emit(
                "learner.descent",
                data={
                    "solver": self.solver,
                    "iterations": int(res.iterations),
                    "converged": bool(res.converged),
                    "residual": float(residual),
                    "objective": problem.f(self.state.phi),
                    "rho": self.state.phi.rho,
                    "x_sum": float(self.state.phi.x.sum()),
                    "budget_headroom": float(inputs.remaining_budget),
                },
                dur=dt,
            )
        return self.state.phi

    # -- accessors ---------------------------------------------------------------

    @property
    def phi(self) -> Phi:
        return self.state.phi

    @property
    def mu(self) -> np.ndarray:
        return self.state.mu.copy()

    def reset_phi(self, phi: Phi) -> None:
        """Override the primal state (used after infeasible-epoch repairs)."""
        if phi.num_clients != self.state.phi.num_clients:
            raise ValueError("dimension mismatch")
        self.state.phi = phi
