"""FedL controller (paper Alg. 1) as a SelectionPolicy.

Wires together the online learner (eqs. 8-9), the RDCS rounding (Alg. 2),
and the running estimates of the quantities the learner can only observe
after acting:

* ``η̂_k`` — per-client local convergence accuracy, exponential moving
  average of the realized values (prior 0.5 before first observation),
* ``loss_gap`` — latest ``F_t(w) − θ``,
* ``loss_sensitivity`` — per-client EMA of the marginal loss improvement
  attributed to participation (the linearized ``h0`` coefficients).

Per epoch:

1. ``select``: build :class:`EpochInputs` from the context + estimates,
   run the descent step (8) to get ``Φ̃_{t+1}``, round ``x̃`` with RDCS,
   repair feasibility, and return the decision with ``l_t = ceil(ρ)``.
2. ``update``: refresh estimates with realized values and run the dual
   ascent (9) on the realized ``h_t(Φ̃_t)``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import Decision, EpochContext, RoundFeedback, enforce_feasibility
from repro.config import FedLConfig
from repro.core.online_learner import OnlineLearner
from repro.core.phi import Phi
from repro.core.problem import EpochInputs
from repro.core.horizon import corollary1_step_size
from repro.core.rounding import independent_round, rdcs_round

__all__ = ["FedLPolicy"]

#: Prior local accuracy before a client has ever been observed.
ETA_PRIOR = 0.5
#: EMA weight on the newest observation.
EMA_WEIGHT = 0.4
#: η̂ must stay strictly below 1 for ρ = 1/(1−η) to make sense.
ETA_CLIP = 0.99


class FedLPolicy:
    """Online-learning client selection + iteration control."""

    def __init__(
        self,
        num_clients: int,
        budget: float,
        min_participants: int,
        theta: float,
        rng: np.random.Generator,
        config: Optional[FedLConfig] = None,
        cost_range: tuple[float, float] = (0.1, 12.0),
    ) -> None:
        cfg = config if config is not None else FedLConfig()
        self.name = "FedL"
        self.rng = rng
        self.theta = float(theta)
        self.config = cfg
        c_lo, c_hi = cost_range
        default_step = corollary1_step_size(
            budget, min_participants, c_lo, c_hi, scale=cfg.step_scale
        )
        beta = cfg.beta if cfg.beta is not None else default_step
        delta = cfg.delta if cfg.delta is not None else default_step
        self.learner = OnlineLearner(
            num_clients=num_clients,
            beta=beta,
            delta=delta,
            rho_max=cfg.rho_max,
            solver=cfg.solver,
            solver_max_iters=cfg.solver_max_iters,
            solver_tol=cfg.solver_tol,
            # Start near the participation floor: early epochs then select
            # roughly n clients (with RDCS providing the exploration).
            x_init=min(1.0, min_participants / num_clients),
            objective=cfg.objective,
            warm_start=cfg.solver_warm_start,
        )
        # Observable-quantity estimates.
        self.eta_hat = np.full(num_clients, ETA_PRIOR)
        self.loss_gap = 1.0                     # optimistic "loss above θ" prior
        self.loss_sensitivity = np.full(num_clients, -0.01)
        self._last_pop_loss: Optional[float] = None
        self._last_inputs: Optional[EpochInputs] = None

    # ------------------------------------------------------------------ select --

    def fractional_decision(self, ctx: EpochContext) -> tuple[Phi, np.ndarray]:
        """Run the descent step; return (Φ̃_{t+1}, rounded-ready x̃).

        Split out so extensions (e.g. the fairness variant) can bias the
        fractional selection before rounding.
        """
        costs = ctx.costs
        if ctx.reliability is not None and self.config.reliability_penalty > 0:
            # Belief-side cost inflation only: clients flagged by the
            # defense layer look more expensive to the learner, so the
            # descent step deprioritizes them — but budget accounting and
            # feasibility repair (enforce_feasibility) keep real prices.
            costs = costs * (
                1.0 + self.config.reliability_penalty * (1.0 - ctx.reliability)
            )
        inputs = EpochInputs(
            tau=np.nan_to_num(ctx.tau_last, nan=1.0, posinf=1e3),
            costs=costs,
            available=ctx.available,
            eta_hat=np.clip(self.eta_hat, 0.0, ETA_CLIP),
            loss_gap=self.loss_gap,
            loss_sensitivity=self.loss_sensitivity,
            remaining_budget=ctx.remaining_budget,
            min_participants=ctx.min_participants,
        )
        self._last_inputs = inputs
        phi = self.learner.descent_step(inputs)
        x_frac = np.where(ctx.available, np.clip(phi.x, 0.0, 1.0), 0.0)
        return phi, x_frac

    def select(self, ctx: EpochContext) -> Decision:
        phi, x_frac = self.fractional_decision(ctx)
        if self.config.rounding == "rdcs":
            x_int = rdcs_round(x_frac, self.rng)
        else:
            x_int = independent_round(x_frac, self.rng)
        mask = x_int > 0.5
        if not mask.any():
            # Degenerate all-zeros rounding: fall back to the top fractions.
            order = np.argsort(-x_frac, kind="stable")
            mask = np.zeros_like(mask)
            mask[order[: ctx.min_participants]] = True
        mask = enforce_feasibility(mask, ctx, self.rng)
        return Decision(
            selected=mask,
            iterations=phi.iterations,
            rho=phi.rho,
            fractional_x=x_frac,
        )

    # ------------------------------------------------------------------ update --

    def update(self, feedback: RoundFeedback) -> None:
        sel = feedback.selected
        # η̂ EMA with realized local accuracies.
        observed = np.isfinite(feedback.local_etas)
        self.eta_hat[observed] = (
            (1 - EMA_WEIGHT) * self.eta_hat[observed]
            + EMA_WEIGHT * np.clip(feedback.local_etas[observed], 0.0, ETA_CLIP)
        )
        # Global-loss constraint bookkeeping.
        new_gap = feedback.population_loss - self.theta
        if self._last_pop_loss is not None:
            improvement = self._last_pop_loss - feedback.population_loss
            num_sel = max(1, int(sel.sum()))
            per_client = -max(improvement, 0.0) / num_sel
            self.loss_sensitivity[sel] = (
                (1 - EMA_WEIGHT) * self.loss_sensitivity[sel]
                + EMA_WEIGHT * per_client
            )
        self._last_pop_loss = feedback.population_loss
        self.loss_gap = new_gap

        # Dual ascent on the REALIZED h_t at the fractional decision Φ̃_t.
        phi = self.learner.phi
        eta_real = np.where(
            np.isfinite(feedback.local_etas),
            np.clip(feedback.local_etas, 0.0, ETA_CLIP),
            self.eta_hat,
        )
        hk = eta_real * phi.x * phi.rho - phi.rho + 1.0
        hk = np.where(sel | np.isfinite(feedback.local_etas), hk, 0.0)
        h_realized = np.concatenate([[new_gap], hk])
        self.learner.dual_ascent(h_realized)

    # ---------------------------------------------------------------- accessors --

    @property
    def phi(self) -> Phi:
        return self.learner.phi

    @property
    def mu(self) -> np.ndarray:
        return self.learner.mu
