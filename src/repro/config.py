"""Configuration dataclasses for the FedL simulator.

Groups the paper's experimental knobs (Sec. 6.1 "Basic Setting") into typed,
validated config objects.  Defaults follow the paper where stated:

* ``M = 100`` clients uniformly placed in a disc of radius 500 m,
* path loss ``128.1 + 37.6 log10 d`` (d in km), 8 dB shadowing,
* noise PSD ``N0 = -174`` dBm/Hz, bandwidth ``B = 20`` MHz,
* CPU cycles/bit uniform in ``[10, 30]``, max CPU 2 GHz, tx power 10 dBm,
* rental cost uniform in ``[0.1, 12]`` ("dynamic price of Amazon"),
* availability i.i.d. Bernoulli per epoch.

All configs are frozen; derived experiment variants are built with
:func:`dataclasses.replace`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "NetworkConfig",
    "PopulationConfig",
    "DataConfig",
    "TrainingConfig",
    "SimConfig",
    "LiveConfig",
    "AttackConfig",
    "DefenseConfig",
    "FedLConfig",
    "ShardConfig",
    "CheckpointConfig",
    "ExperimentConfig",
]


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ValueError(msg)


@dataclass(frozen=True)
class NetworkConfig:
    """Wireless edge-network parameters (paper Sec. 3.2 / 6.1)."""

    bandwidth_hz: float = 20e6          # B, total FDMA bandwidth
    noise_psd_dbm_hz: float = -174.0    # N0
    cell_radius_m: float = 500.0
    shadowing_std_db: float = 8.0
    shadowing_corr: float = 0.9         # AR(1) epoch-to-epoch correlation
                                        # (shadowing is quasi-static; 0 = the
                                        # i.i.d.-per-epoch extreme)
    tx_power_dbm: float = 10.0          # p_k^max for every client
    upload_bits: float = 80e3           # s, per-iteration model upload size
    min_distance_m: float = 1.0         # keep path loss finite at the center
    bandwidth_policy: str = "equal"     # "equal" | "min_latency" FDMA split
    mac: str = "fdma"                   # "fdma" (paper) | "tdma" sequential slots

    def __post_init__(self) -> None:
        _require(self.bandwidth_hz > 0, "bandwidth_hz must be positive")
        _require(self.cell_radius_m > 0, "cell_radius_m must be positive")
        _require(self.upload_bits > 0, "upload_bits must be positive")
        _require(
            0 < self.min_distance_m <= self.cell_radius_m,
            "min_distance_m must be in (0, cell_radius_m]",
        )
        _require(
            0.0 <= self.shadowing_corr < 1.0, "shadowing_corr must be in [0, 1)"
        )
        _require(
            self.bandwidth_policy in ("equal", "min_latency"),
            "unknown bandwidth_policy",
        )
        _require(self.mac in ("fdma", "tdma"), "unknown mac")


@dataclass(frozen=True)
class PopulationConfig:
    """Client fleet parameters (paper Sec. 6.1)."""

    num_clients: int = 100              # M
    cycles_per_bit_range: Tuple[float, float] = (10.0, 30.0)   # e_k
    cpu_freq_hz: float = 2e9            # f_k^max
    cpu_freq_jitter: float = 0.5        # heterogeneity: freq ~ U[(1-j), 1]*max
    cost_range: Tuple[float, float] = (0.1, 12.0)              # c_{t,k}
    availability_prob: float = 0.8      # per-epoch availability probability
    availability_model: str = "bernoulli"   # "bernoulli" (paper) | "markov"
    availability_sojourn: float = 5.0   # mean on-stretch (markov model only)
    bits_per_sample: float = 512.0      # dataset sample size in bits
    cost_volatility: float = 0.15       # AR(1) innovation scale for prices
    failure_prob: float = 0.0           # per-epoch chance a SELECTED client
                                        # crashes mid-round (update lost,
                                        # rent still paid)

    def __post_init__(self) -> None:
        _require(self.num_clients >= 1, "need at least one client")
        lo, hi = self.cycles_per_bit_range
        _require(0 < lo <= hi, "cycles_per_bit_range must be 0 < lo <= hi")
        lo, hi = self.cost_range
        _require(0 < lo <= hi, "cost_range must be 0 < lo <= hi")
        _require(0 < self.availability_prob <= 1, "availability_prob in (0,1]")
        _require(
            self.availability_model in ("bernoulli", "markov"),
            "unknown availability_model",
        )
        _require(self.availability_sojourn >= 1.0, "availability_sojourn >= 1")
        _require(
            not (self.availability_model == "markov" and self.availability_prob >= 1.0),
            "markov availability needs prob < 1",
        )
        _require(0 <= self.cpu_freq_jitter < 1, "cpu_freq_jitter in [0,1)")
        _require(self.cost_volatility >= 0, "cost_volatility must be >= 0")
        _require(0.0 <= self.failure_prob < 1.0, "failure_prob in [0,1)")


@dataclass(frozen=True)
class DataConfig:
    """Dataset / partition parameters (paper Sec. 6.1 "Data")."""

    dataset: str = "fmnist"             # "fmnist" | "cifar10"
    iid: bool = True
    partition: str = "paper"            # non-IID scheme: "paper" | "dirichlet"
    non_iid_principal_frac: float = 0.8  # share drawn from the principal class pool
    dirichlet_alpha: float = 0.5        # concentration for the dirichlet scheme
    samples_per_client: int = 60        # mean per-epoch local dataset size
    poisson_arrivals: bool = True       # data volume ~ Poisson(mean) per epoch
    num_classes: int = 10
    test_samples: int = 1000
    feature_noise: float = 0.35         # generator noise scale (task difficulty)
    downscale: int = 2                  # spatial downscale factor (1 = the
                                        # paper's full 28×28 / 32×32 images)

    def __post_init__(self) -> None:
        _require(self.dataset in ("fmnist", "cifar10"), "unknown dataset")
        _require(
            0.0 <= self.non_iid_principal_frac <= 1.0,
            "non_iid_principal_frac in [0,1]",
        )
        _require(self.samples_per_client >= 1, "samples_per_client >= 1")
        _require(self.num_classes >= 2, "num_classes >= 2")
        _require(self.test_samples >= 1, "test_samples >= 1")
        _require(self.downscale in (1, 2, 4), "downscale must be 1, 2 or 4")
        _require(self.partition in ("paper", "dirichlet"), "unknown partition")
        _require(self.dirichlet_alpha > 0, "dirichlet_alpha must be positive")


@dataclass(frozen=True)
class TrainingConfig:
    """Local-training / DANE parameters (paper Sec. 3.1-2)."""

    model: str = "mlp"                  # "logreg" | "mlp" | "cnn"
    hidden_units: Tuple[int, ...] = (64,)
    local_solver: str = "dane"          # "dane" (paper) | "fedprox" [15]
    momentum: float = 0.0               # heavy-ball inner momentum [17]
    aggregation: str = "uniform"        # "uniform" (paper) | "weighted" FedAvg
    compression: str = "none"           # "none" | "topk" | "quantize" | "cmfl" [28]
    topk_fraction: float = 0.1
    quantize_bits: int = 8
    cmfl_threshold: float = 0.6
    dp_noise_multiplier: Optional[float] = None   # None = no DP; σ of the
                                                  # Gaussian mechanism [29]
    dp_clip_norm: float = 1.0           # Δ, per-upload L2 sensitivity
    local_sgd_steps: int = 10           # max gradient steps j per iteration
                                        # (cap; the η_t target stops earlier)
    engine: str = "auto"                # round execution: "auto" | "loop" |
                                        # "batched" (bit-identical engines) |
                                        # "des" | "live"
    sgd_lr: float = 0.05                # α
    sigma1: float = 1.0                 # DANE proximal weight σ1
    sigma2: float = 1.0                 # DANE gradient-correction weight σ2
    batch_size: int = 32
    l2_reg: float = 1e-4
    theta0: float = 0.1                 # global convergence accuracy θ0
    theta: float = 0.5                  # desired global-loss upper bound θ

    def __post_init__(self) -> None:
        _require(self.model in ("logreg", "mlp", "cnn"), "unknown model")
        _require(self.local_sgd_steps >= 1, "local_sgd_steps >= 1")
        _require(self.sgd_lr > 0, "sgd_lr must be positive")
        _require(self.sigma1 >= 0 and self.sigma2 >= 0, "sigmas must be >= 0")
        _require(0 < self.theta0 < 1, "theta0 in (0,1)")
        _require(self.theta > 0, "theta must be positive")
        _require(self.local_solver in ("dane", "fedprox"), "unknown local_solver")
        _require(
            self.engine in ("auto", "loop", "batched", "des", "live"),
            "unknown engine",
        )
        _require(0.0 <= self.momentum < 1.0, "momentum in [0,1)")
        _require(self.aggregation in ("uniform", "weighted"), "unknown aggregation")
        _require(
            self.compression in ("none", "topk", "quantize", "cmfl"),
            "unknown compression",
        )
        _require(0.0 < self.topk_fraction <= 1.0, "topk_fraction in (0,1]")
        _require(1 <= self.quantize_bits <= 32, "quantize_bits in [1,32]")
        _require(0.0 <= self.cmfl_threshold <= 1.0, "cmfl_threshold in [0,1]")
        if self.dp_noise_multiplier is not None:
            _require(self.dp_noise_multiplier > 0, "dp_noise_multiplier > 0")
        _require(self.dp_clip_norm > 0, "dp_clip_norm > 0")


@dataclass(frozen=True)
class SimConfig:
    """Event-driven runtime knobs (``TrainingConfig.engine = "des"``).

    Ignored by the closed-form loop/batched engines.  ``faults`` names a
    preset from :data:`repro.sim.faults.FAULT_PROFILES`; under the
    Markov availability model the preset's dropout hazard is replaced by
    the chain's sojourn-consistent intra-round hazard.
    """

    aggregation: str = "sync"           # "sync" | "deadline" | "async"
    deadline_s: Optional[float] = None  # per-iteration barrier deadline
    quorum: Optional[int] = None        # async: aggregate after K uploads
    faults: str = "none"                # named fault profile

    def __post_init__(self) -> None:
        _require(
            self.aggregation in ("sync", "deadline", "async"),
            "unknown sim aggregation",
        )
        if self.aggregation == "deadline":
            _require(
                self.deadline_s is not None and self.deadline_s > 0,
                "deadline aggregation needs deadline_s > 0",
            )
        elif self.deadline_s is not None:
            _require(self.deadline_s > 0, "deadline_s must be positive")
        if self.aggregation == "async":
            _require(
                self.quorum is not None and self.quorum >= 1,
                "async aggregation needs quorum >= 1",
            )
        # Lazy import: repro.sim.faults depends only on numpy, so this
        # cannot cycle back into the config layer.
        from repro.sim.faults import FAULT_PROFILES

        _require(
            self.faults in FAULT_PROFILES,
            f"unknown fault profile (known: {sorted(FAULT_PROFILES)})",
        )


@dataclass(frozen=True)
class LiveConfig:
    """Live multi-process runtime knobs (``TrainingConfig.engine = "live"``).

    Ignored by every other engine.  The live engine forks ``workers``
    client processes and *measures* round timelines instead of computing
    them; ``time_scale`` maps one simulated second to that many wall
    seconds (0.01 = run 100x faster than the modeled hardware, at the
    cost of shaping resolution).  Barrier policy and fault profile come
    from :class:`SimConfig` — the live engine shares the DES's physics.
    """

    workers: int = 2                    # forked client processes
    time_scale: float = 1.0             # wall seconds per simulated second
    transport: str = "unix"             # "unix" socketpair | "tcp" loopback
    chunk_bytes: int = 16384            # shaped-upload chunk size
    round_timeout_s: float = 60.0       # wall safety cap per iteration barrier
    worker_heartbeat_s: float = 0.5     # worker liveness beacon period (wall);
                                        # 0 disables the staleness watchdog
    worker_stale_s: float = 0.0         # silence -> wedged threshold;
                                        # 0 = auto (see LiveRuntime)
    max_worker_restarts: int = 2        # per-worker supervised restart budget
    restart_backoff_s: float = 0.1      # exponential restart backoff base

    def __post_init__(self) -> None:
        _require(self.workers >= 1, "workers must be >= 1")
        _require(self.time_scale > 0, "time_scale must be positive")
        _require(self.transport in ("unix", "tcp"), "unknown live transport")
        _require(self.chunk_bytes >= 1024, "chunk_bytes must be >= 1024")
        _require(self.round_timeout_s > 0, "round_timeout_s must be positive")
        _require(self.worker_heartbeat_s >= 0, "worker_heartbeat_s must be >= 0")
        _require(self.worker_stale_s >= 0, "worker_stale_s must be >= 0")
        _require(self.max_worker_restarts >= 0, "max_worker_restarts must be >= 0")
        _require(self.restart_backoff_s >= 0, "restart_backoff_s must be >= 0")


@dataclass(frozen=True)
class AttackConfig:
    """Adversarial client injection (see :mod:`repro.fl.adversary`).

    ``kind = "none"`` (default) disables the adversary entirely — no RNG
    stream is touched and the run is bit-identical to an attack-free
    build.  The roster (``⌈fraction · M⌉`` compromised clients) is fixed
    per experiment; ``sleeper_period = p > 0`` makes attackers honest
    except on every ``p``-th epoch.
    """

    kind: str = "none"                  # member of repro.fl.adversary.ATTACKS
    fraction: float = 0.2               # compromised share of the fleet
    scale: float = 10.0                 # sign-flip/scale multiplier, gauss σ
    sleeper_period: int = 0             # 0 = always active

    def __post_init__(self) -> None:
        # Lazy import keeps config importable without the fl package cycle.
        from repro.fl.adversary import ATTACKS

        _require(self.kind in ATTACKS, f"unknown attack (known: {ATTACKS})")
        if self.kind != "none":
            _require(0.0 < self.fraction < 1.0, "attack fraction in (0,1)")
        _require(self.scale > 0, "attack scale must be positive")
        _require(self.sleeper_period >= 0, "sleeper_period must be >= 0")


@dataclass(frozen=True)
class DefenseConfig:
    """Update-validation gate + robust aggregation (:mod:`repro.fl.defense`).

    ``aggregator = "none"`` (default) keeps the paper's plain pipeline:
    the finite-value gate still fast-fails on corrupt updates, but values
    and aggregation order are untouched (bit-identical, bench-gated).
    """

    aggregator: str = "none"            # member of repro.fl.defense.AGGREGATORS
    trim_fraction: float = 0.2          # trimmed-mean extremes per side
    norm_bound: Optional[float] = None  # norm-clip bound (None = adaptive)
    krum_f: Optional[int] = None        # assumed Byzantine count for krum

    def __post_init__(self) -> None:
        from repro.fl.defense import AGGREGATORS

        _require(
            self.aggregator in AGGREGATORS,
            f"unknown defense aggregator (known: {AGGREGATORS})",
        )
        _require(
            0.0 <= self.trim_fraction < 0.5, "trim_fraction must be in [0, 0.5)"
        )
        if self.norm_bound is not None:
            _require(self.norm_bound > 0, "norm_bound must be positive")
        if self.krum_f is not None:
            _require(self.krum_f >= 1, "krum_f must be >= 1")


@dataclass(frozen=True)
class FedLConfig:
    """FedL controller hyper-parameters (Sec. 4.3 / Corollary 1)."""

    beta: Optional[float] = None        # primal step size; None → step_scale·T_C^{-1/3}
    delta: Optional[float] = None       # dual step size;  None → step_scale·T_C^{-1/3}
    step_scale: float = 3.0             # the O(·) constant in Corollary 1's rule
    rho_max: float = 8.0                # cap on ρ_t = 1/(1-η_t)
    solver: str = "projected_gradient"  # "projected_gradient" | "interior_point"
    solver_max_iters: int = 200
    solver_tol: float = 1e-7
    rounding: str = "rdcs"              # "rdcs" | "independent"
    objective: str = "sum"              # "sum" (paper eq. 4) | "softmax" (ablation)
    solver_warm_start: bool = True      # carry Φ̃/step-size/iteration state
                                        # across epochs in descent_step
    reliability_penalty: float = 4.0    # cost inflation per unit unreliability
                                        # (only applied when the runner feeds
                                        # a reliability score, i.e. a defense
                                        # aggregator is active)

    def __post_init__(self) -> None:
        if self.beta is not None:
            _require(self.beta > 0, "beta must be positive")
        if self.delta is not None:
            _require(self.delta > 0, "delta must be positive")
        _require(self.step_scale > 0, "step_scale must be positive")
        _require(self.rho_max >= 1, "rho_max must be >= 1 (ρ = 1/(1-η) >= 1)")
        _require(
            self.solver in ("projected_gradient", "interior_point"),
            "unknown solver",
        )
        _require(self.rounding in ("rdcs", "independent"), "unknown rounding")
        _require(self.objective in ("sum", "softmax"), "unknown objective")
        _require(self.reliability_penalty >= 0, "reliability_penalty must be >= 0")


@dataclass(frozen=True)
class ShardConfig:
    """Sharded-selection architecture for large client populations.

    ``num_shards = 1`` (default) is the flat path: selection runs as a
    single global FedL subproblem and every output is bit-identical to
    pre-shard builds.  With ``num_shards = S > 1`` the fleet is
    partitioned into S shards (deterministic under the experiment seed),
    the per-epoch budget is decomposed across shards, and the O(K²)
    selection subproblem runs per shard — O(S·(K/S)²) total.

    ``eval_sample`` bounds the per-epoch full-population loss sweep (and
    the matching data installation) to a random subsample of the
    available clients; ``None`` keeps the exact legacy sweep.  Only
    meaningful at large K where the sweep itself dominates.
    """

    num_shards: int = 1
    assignment: str = "contiguous"      # "contiguous" | "kmeans" (positions)
    budget_split: str = "mass"          # "mass" (belief-cost mass) | "uniform"
    eval_sample: Optional[int] = None   # None = exact full-population sweep

    def __post_init__(self) -> None:
        _require(self.num_shards >= 1, "num_shards must be >= 1")
        _require(
            self.assignment in ("contiguous", "kmeans"), "unknown shard assignment"
        )
        _require(
            self.budget_split in ("mass", "uniform"), "unknown budget_split"
        )
        if self.eval_sample is not None:
            _require(self.eval_sample >= 1, "eval_sample must be >= 1")


@dataclass(frozen=True)
class CheckpointConfig:
    """Round-granular checkpointing (:mod:`repro.checkpoint`).

    ``directory = None`` (default) disables checkpointing entirely — no
    state capture, no extra I/O, trajectories untouched.  With a
    directory set, the runner snapshots the *full* experiment state
    (model, learner duals, RNG streams, reliability EWMAs, budget,
    partial trace) every ``interval`` completed epochs, atomically, and
    ``repro run/sim/live --resume <dir>`` restarts the run
    bit-identically from the newest snapshot.  Checkpointing never
    perturbs the trajectory, so the sweep cache fingerprint excludes
    this section.
    """

    directory: Optional[str] = None     # None = checkpointing disabled
    interval: int = 10                  # epochs between snapshots
    keep: int = 2                       # retained snapshots (older pruned)

    def __post_init__(self) -> None:
        _require(self.interval >= 1, "checkpoint interval must be >= 1")
        _require(self.keep >= 1, "checkpoint keep must be >= 1")


@dataclass(frozen=True)
class ExperimentConfig:
    """Top-level experiment description."""

    seed: int = 0
    budget: float = 400.0               # C
    min_participants: int = 5           # n
    max_epochs: int = 500               # safety cap on the budget-driven loop
    network: NetworkConfig = field(default_factory=NetworkConfig)
    population: PopulationConfig = field(default_factory=PopulationConfig)
    data: DataConfig = field(default_factory=DataConfig)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    sim: SimConfig = field(default_factory=SimConfig)
    live: LiveConfig = field(default_factory=LiveConfig)
    attack: AttackConfig = field(default_factory=AttackConfig)
    defense: DefenseConfig = field(default_factory=DefenseConfig)
    fedl: FedLConfig = field(default_factory=FedLConfig)
    shard: ShardConfig = field(default_factory=ShardConfig)
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)

    def __post_init__(self) -> None:
        _require(self.budget > 0, "budget must be positive")
        _require(self.min_participants >= 1, "min_participants >= 1")
        _require(
            self.min_participants <= self.population.num_clients,
            "min_participants cannot exceed the number of clients",
        )
        _require(self.max_epochs >= 1, "max_epochs >= 1")
        _require(
            self.shard.num_shards <= self.population.num_clients,
            "num_shards cannot exceed the number of clients",
        )

    def replace(self, **kwargs) -> "ExperimentConfig":
        """Convenience alias for :func:`dataclasses.replace`."""
        return dataclasses.replace(self, **kwargs)
