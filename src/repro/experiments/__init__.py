"""Experiment harness: paper scenarios, the online FL loop, and the
figure/table regeneration entry points (see DESIGN.md §4 for the index).
"""

from repro.experiments.metrics import EpochRecord, Trace
from repro.experiments.runner import ExperimentResult, Simulation, run_experiment
from repro.experiments.scenarios import (
    experiment_config,
    make_policy,
    POLICY_NAMES,
)
from repro.experiments.tables import (
    time_to_accuracy,
    rounds_to_accuracy,
    accuracy_at_time,
    headline_claims,
)
from repro.experiments.reporting import format_table, format_series
from repro.experiments.persistence import (
    save_traces,
    load_traces,
    save_results,
    load_results,
    result_to_dict,
    result_from_dict,
    config_to_dict,
    config_from_dict,
)
from repro.experiments.sweep import (
    PolicySpec,
    SweepCache,
    SweepJob,
    job_key,
    run_sweep,
    results_identical,
)
from repro.experiments.tournament import (
    SCENARIOS,
    ScenarioSpec,
    format_report,
    load_report,
    run_tournament,
    save_report,
    scenario_names,
)
from repro.experiments.validation import validate_trace
from repro.experiments.stats import (
    Band,
    aggregate_on_rounds,
    aggregate_on_times,
    multi_seed_suite,
)

__all__ = [
    "EpochRecord",
    "Trace",
    "ExperimentResult",
    "Simulation",
    "run_experiment",
    "experiment_config",
    "make_policy",
    "POLICY_NAMES",
    "time_to_accuracy",
    "rounds_to_accuracy",
    "accuracy_at_time",
    "headline_claims",
    "format_table",
    "format_series",
    "save_traces",
    "load_traces",
    "save_results",
    "load_results",
    "result_to_dict",
    "result_from_dict",
    "config_to_dict",
    "config_from_dict",
    "PolicySpec",
    "SweepCache",
    "SweepJob",
    "job_key",
    "run_sweep",
    "results_identical",
    "SCENARIOS",
    "ScenarioSpec",
    "run_tournament",
    "format_report",
    "save_report",
    "load_report",
    "scenario_names",
    "validate_trace",
    "Band",
    "aggregate_on_rounds",
    "aggregate_on_times",
    "multi_seed_suite",
]
