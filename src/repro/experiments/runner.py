"""The online federated-learning experiment loop (paper Alg. 1 end-to-end).

``Simulation`` wires every substrate together from an
:class:`repro.config.ExperimentConfig`; ``run_experiment`` drives one
policy through the budget-constrained FL process:

per epoch t (while budget lasts):
  1. draw the environment: availability E_t, prices c_{t,k}, data volumes
     D_{t,k}, channel gains;
  2. hand the policy its 0-lookahead context (last epoch's realized
     latencies/losses) and get back (participants, l_t);
  3. charge the budget; stop if the epoch cannot be paid;
  4. run l_t federated iterations (DANE local solves + aggregation);
  5. realize the epoch latency — bandwidth is shared FDMA-equally among
     the actual uploaders, so τ_cm depends on the selection size;
  6. record metrics, feed the realized observables back to the policy.

Latency is *simulated* wall-clock computed from the paper's model; the
experiment itself runs as fast as NumPy allows.
"""

from __future__ import annotations

import dataclasses
import signal
import sys
import threading
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.baselines.base import Decision, EpochContext, RoundFeedback, SelectionPolicy
from repro.config import ExperimentConfig
from repro.datasets import (
    build_client_streams,
    dirichlet_class_distributions,
    iid_class_distributions,
    non_iid_class_distributions,
    synthetic_cifar10,
    synthetic_fmnist,
)
from repro.env import (
    AvailabilityProcess,
    DataVolumeProcess,
    MarkovAvailabilityProcess,
    PriceProcess,
    build_population,
)
from repro.experiments.metrics import EpochRecord, Trace
from repro.fl import FLClient, FLServer, run_federated_round
from repro.fl.adversary import Adversary
from repro.fl.compression import CompressionSpec
from repro.fl.defense import DefenseSpec
from repro.fl.privacy import DPSpec, PrivacyAccountant
from repro.net import ChannelModel, achievable_rate, compute_latency, transmission_latency
from repro.nn import build_model
from repro.obs import get_telemetry
from repro.rng import RngFactory
from repro.sim.entities import SimRoundSpec
from repro.sim.faults import fault_profile

__all__ = ["Simulation", "ExperimentResult", "run_experiment"]

#: EWMA weight of the newest "clean round" observation in the per-client
#: reliability score fed back into selection when a defense is active.
RELIABILITY_EMA = 0.5


@dataclass
class ExperimentResult:
    """Everything a figure/table needs from one run.

    ``policy`` is an optional JSON-ready description of how the policy
    was built (the sweep engine's :class:`~repro.experiments.sweep.
    PolicySpec` as a dict) so persisted results stay self-describing even
    for parameterized strategies; plain ``run_experiment`` calls leave it
    ``None``.
    """

    trace: Trace
    config: ExperimentConfig
    stop_reason: str
    final_w: np.ndarray
    policy: Optional[dict] = None


class Simulation:
    """All substrates instantiated for one experiment configuration."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config
        self.rng = RngFactory(config.seed)
        # --- environment ---------------------------------------------------
        self.population = build_population(
            config.population, self.rng.get("env.population"),
            cell_radius_m=config.network.cell_radius_m,
        )
        self.channel = ChannelModel(
            self.population.distances_m(), config.network, self.rng.get("net.channel")
        )
        if config.population.availability_model == "markov":
            self.availability = MarkovAvailabilityProcess(
                config.population.num_clients,
                config.population.availability_prob,
                self.rng.get("env.availability"),
                mean_on_epochs=config.population.availability_sojourn,
                min_available=config.min_participants,
            )
        else:
            self.availability = AvailabilityProcess(
                config.population.num_clients,
                config.population.availability_prob,
                self.rng.get("env.availability"),
                min_available=config.min_participants,
            )
        self.prices = PriceProcess(
            self.population.base_cost,
            self.rng.get("env.prices"),
            volatility=config.population.cost_volatility,
            clip_range=config.population.cost_range,
        )
        self.volumes = DataVolumeProcess(
            config.population.num_clients,
            config.data.samples_per_client,
            self.rng.get("env.volumes"),
            heterogeneous=config.data.poisson_arrivals,
        )
        # --- data ------------------------------------------------------------
        data_rng = self.rng.get("data.generator")
        downscale = config.data.downscale  # 1 = paper-scale images
        if config.data.dataset == "fmnist":
            self.generator = synthetic_fmnist(
                data_rng, noise=config.data.feature_noise, downscale=downscale
            )
            image_shape = (28 // downscale, 28 // downscale, 1)
        else:
            self.generator = synthetic_cifar10(
                data_rng, noise=config.data.feature_noise, downscale=downscale
            )
            image_shape = (32 // downscale, 32 // downscale, 3)
        m = config.population.num_clients
        if config.data.iid:
            dists = iid_class_distributions(m, config.data.num_classes)
        elif config.data.partition == "dirichlet":
            dists = dirichlet_class_distributions(
                m,
                config.data.num_classes,
                self.rng.get("data.partition"),
                alpha=config.data.dirichlet_alpha,
            )
        else:
            dists = non_iid_class_distributions(
                m,
                config.data.num_classes,
                self.rng.get("data.partition"),
                principal_frac=config.data.non_iid_principal_frac,
            )
        self.streams = build_client_streams(self.generator, dists, self.rng)
        self.test_set = self.generator.test_set(
            config.data.test_samples, rng=self.rng.get("data.test")
        )
        # --- model & FL actors -----------------------------------------------
        self.model = build_model(
            config.training.model,
            self.generator.num_features,
            config.data.num_classes,
            self.rng.get("model.init"),
            hidden=config.training.hidden_units,
            image_shape=image_shape,
            l2_reg=config.training.l2_reg,
            cnn_scale=0.5,
        )
        self.clients = [
            FLClient(
                k,
                self.model,
                self.rng.get(f"fl.client.{k}"),
                sgd_steps=config.training.local_sgd_steps,
                sgd_lr=config.training.sgd_lr,
                sigma1=config.training.sigma1,
                sigma2=config.training.sigma2,
                batch_size=config.training.batch_size,
                local_solver=config.training.local_solver,
                momentum=config.training.momentum,
            )
            for k in range(m)
        ]
        self.server = FLServer(self.model, self.model.get_params(), self.test_set)
        tc = config.training
        self.compression = (
            CompressionSpec(
                scheme=tc.compression,
                topk_fraction=tc.topk_fraction,
                quantize_bits=tc.quantize_bits,
                cmfl_threshold=tc.cmfl_threshold,
            )
            if tc.compression != "none"
            else None
        )
        self.dp_spec = (
            DPSpec(
                clip_norm=tc.dp_clip_norm,
                noise_multiplier=tc.dp_noise_multiplier,
            )
            if tc.dp_noise_multiplier is not None
            else None
        )
        self.dp_accountant = PrivacyAccountant()
        # --- robustness ------------------------------------------------------
        # Both default to None ("none" in the config): the adversary draws
        # only from its own RNG streams and the defense gate is check-only,
        # so attack-free runs stay bit-identical.
        self.adversary = Adversary.from_config(config.attack, m, self.rng)
        self.defense_spec = DefenseSpec.from_config(config.defense)

    # ------------------------------------------------------------------------

    def realized_tau(
        self,
        data_counts: np.ndarray,
        channel_state,
        num_sharing: int,
        selected: Optional[np.ndarray] = None,
        upload_ratio: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-iteration latency τ_loc + τ_cm for every client (see
        :meth:`realized_tau_components` for the split)."""
        tau_loc, tau_cm = self.realized_tau_components(
            data_counts,
            channel_state,
            num_sharing,
            selected=selected,
            upload_ratio=upload_ratio,
        )
        return tau_loc + tau_cm

    def realized_tau_components(
        self,
        data_counts: np.ndarray,
        channel_state,
        num_sharing: int,
        selected: Optional[np.ndarray] = None,
        upload_ratio: Optional[np.ndarray] = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Per-iteration ``(τ_loc, τ_cm)`` for every client.

        With the ``"equal"`` bandwidth policy (paper default) every client
        is priced at an equal ``B / num_sharing`` FDMA share.  Under
        ``"min_latency"`` and a concrete ``selected`` mask, the band is
        split across the selected uploaders to equalize their upload time
        (optimal for the max-latency objective); unselected clients keep
        the equal-share estimate so their τ remains defined for the
        policies' bookkeeping.

        Under ``mac = "tdma"`` uploaders transmit sequentially at the full
        band: every selected client's τ_cm is charged the *sum* of the
        selected slots (the round ends after the last slot), so the
        existing max-over-participants epoch latency stays correct.
        """
        bits = data_counts * self.population.bits_per_sample
        tau_loc = compute_latency(
            self.population.cycles_per_bit, bits, self.population.cpu_freq_hz
        )
        total = self.config.network.bandwidth_hz
        if self.config.network.mac == "tdma":
            rates = np.asarray(
                achievable_rate(total, channel_state.snr_per_hz()), dtype=float
            )
            tau_cm = np.asarray(
                transmission_latency(self.config.network.upload_bits, rates),
                dtype=float,
            )
            if upload_ratio is not None:
                tau_cm = tau_cm * np.asarray(upload_ratio, dtype=float)
            if selected is not None and np.any(selected):
                sel = np.asarray(selected, dtype=bool)
                slot_total = float(tau_cm[sel].sum())
                tau_cm = np.where(sel, slot_total, tau_cm)
            return np.asarray(tau_loc, dtype=float), tau_cm
        share = total / max(1, num_sharing)
        rates = np.asarray(
            achievable_rate(share, channel_state.snr_per_hz()), dtype=float
        )
        if (
            self.config.network.bandwidth_policy == "min_latency"
            and selected is not None
            and np.any(selected)
        ):
            from repro.net import allocate_bandwidth

            bw = allocate_bandwidth(
                channel_state,
                selected,
                total,
                self.config.network.upload_bits,
                policy="min_latency",
            )
            sel = np.asarray(selected, dtype=bool)
            rates[sel] = np.asarray(
                achievable_rate(bw[sel], channel_state.snr_per_hz()[sel]),
                dtype=float,
            )
        tau_cm = np.asarray(
            transmission_latency(self.config.network.upload_bits, rates),
            dtype=float,
        )
        if upload_ratio is not None:
            # Compressed uploads shrink the payload proportionally.
            tau_cm = tau_cm * np.asarray(upload_ratio, dtype=float)
        return np.asarray(tau_loc, dtype=float), tau_cm

    @property
    def bits_per_sample(self) -> float:
        return self.population.bits_per_sample


def _install_epoch_data(
    sim: Simulation,
    adversary: Optional[Adversary],
    ids: np.ndarray,
    counts: np.ndarray,
    t: int,
    num_classes: int,
) -> None:
    """Install this epoch's local data on the given clients.  A
    label-flipping adversary poisons its local dataset here; every other
    attack corrupts the upload inside the round instead."""
    if adversary is None:
        for k in ids:
            sim.clients[k].set_data(sim.streams[k].draw(int(counts[k])))
    else:
        for k in ids:
            data = adversary.poison_data(
                int(k),
                sim.streams[k].draw(int(counts[k])),
                t,
                num_classes,
            )
            sim.clients[k].set_data(data)


def run_experiment(
    policy: SelectionPolicy,
    config: ExperimentConfig,
    simulation: Optional[Simulation] = None,
    target_accuracy: Optional[float] = None,
    heartbeat_s: Optional[float] = None,
    live_stats_dir: Optional[str] = None,
    resume=None,
) -> ExperimentResult:
    """Drive ``policy`` through the budget-constrained FL process.

    ``heartbeat_s`` (CLI ``repro sim``/``repro run`` progress heartbeat)
    prints an epoch-throughput line to stderr at most every that many
    seconds; ``None`` (the default, and under ``--quiet``) stays silent.

    With ``training.engine = "live"`` the epoch loop runs on a forked
    worker fleet (:mod:`repro.live`): the fleet is forked once up front —
    before any client RNG stream is consumed, so worker-side streams stay
    continuous with the loop engine's — reused across every epoch, and
    torn down on exit even when the run raises.  ``live_stats_dir``
    (optional) collects the runtime's measured per-client stats files.

    With ``config.checkpoint.directory`` set, the loop snapshots the
    full experiment state every ``config.checkpoint.interval`` completed
    epochs (see :mod:`repro.checkpoint`), and a SIGTERM/SIGINT flushes a
    final snapshot before raising
    :class:`~repro.checkpoint.errors.ExperimentInterrupted`.

    ``resume`` (a :class:`repro.checkpoint.ResumeState`, normally via
    :func:`repro.checkpoint.snapshot.resume_experiment`) restarts the
    loop mid-run; callers must pass a ``simulation`` whose RNG streams
    and carried state were restored from the same snapshot, and the
    resumed run is then bit-identical to an uninterrupted one.
    """
    sim = simulation if simulation is not None else Simulation(config)
    live_runtime = None
    if config.training.engine == "live":
        from repro.live.runtime import LiveRuntime

        live_runtime = LiveRuntime(
            sim.clients,
            num_workers=config.live.workers,
            transport=config.live.transport,
            chunk_bytes=config.live.chunk_bytes,
            round_timeout_s=config.live.round_timeout_s,
            stats_dir=live_stats_dir,
            worker_heartbeat_s=config.live.worker_heartbeat_s,
            worker_stale_s=config.live.worker_stale_s,
            max_worker_restarts=config.live.max_worker_restarts,
            restart_backoff_s=config.live.restart_backoff_s,
        )
    try:
        return _run_experiment_loop(
            policy, config, sim, target_accuracy, heartbeat_s, live_runtime, resume
        )
    finally:
        if live_runtime is not None:
            live_runtime.close()


def _run_experiment_loop(
    policy: SelectionPolicy,
    config: ExperimentConfig,
    sim: Simulation,
    target_accuracy: Optional[float],
    heartbeat_s: Optional[float],
    live_runtime,
    resume=None,
) -> ExperimentResult:
    m = config.population.num_clients
    if resume is not None:
        trace = resume.trace
    else:
        trace = Trace(policy_name=getattr(policy, "name", type(policy).__name__))
    tel = get_telemetry()
    if tel.enabled:
        tel.emit(
            "run.start",
            data={
                "policy": trace.policy_name,
                "budget": config.budget,
                "max_epochs": config.max_epochs,
                "num_clients": m,
                "seed": config.seed,
            },
        )
    remaining = config.budget
    cumulative_time = 0.0
    # Flat preallocated per-client state (tau_last / local_losses /
    # reliability / costs / spend), updated in place every epoch — no
    # per-client Python objects or reallocation on the hot path.
    state = sim.population.state_arrays()
    if resume is None:
        # Prior latency estimate before anything is observed: mean data
        # volume, mean channel, band shared n ways.
        mean_counts = np.full(m, config.data.samples_per_client, dtype=float)
        np.copyto(
            state.tau_last,
            sim.realized_tau(
                mean_counts, sim.channel.mean_state(), config.min_participants
            ),
        )
    else:
        remaining = resume.remaining
        cumulative_time = resume.cumulative_time
        for name, values in resume.arrays.items():
            np.copyto(getattr(state, name), values)
    counts_buf = np.empty(m, dtype=np.int64)
    stop_reason = "max_epochs"
    final_w = (
        resume.final_w.copy() if resume is not None else sim.server.w.copy()
    )
    epochs_done = resume.epochs_done if resume is not None else 0
    done_at_start = epochs_done
    start_epoch = resume.next_epoch if resume is not None else 0
    run_t0 = time.monotonic()
    last_beat = run_t0

    # --- checkpointing -------------------------------------------------------
    # Enabled only when a directory is configured; the disabled path does
    # no work per epoch beyond one None check.  SIGTERM/SIGINT are turned
    # into a deferred final-snapshot flush at the next epoch boundary
    # (handlers restored on exit; only touched from the main thread).
    ckpt = config.checkpoint
    ckpt_dir = None
    interrupted: list = []
    prev_handlers = {}
    if ckpt.directory is not None:
        from repro.checkpoint import prepare_checkpoint_dir

        ckpt_dir = prepare_checkpoint_dir(ckpt.directory)
        if threading.current_thread() is threading.main_thread():

            def _on_signal(signum, frame):
                interrupted.append(signal.Signals(signum).name)

            for sig in (signal.SIGTERM, signal.SIGINT):
                prev_handlers[sig] = signal.signal(sig, _on_signal)

    try:
        return _drive_epochs(
            policy=policy,
            config=config,
            sim=sim,
            target_accuracy=target_accuracy,
            heartbeat_s=heartbeat_s,
            live_runtime=live_runtime,
            trace=trace,
            state=state,
            counts_buf=counts_buf,
            remaining=remaining,
            cumulative_time=cumulative_time,
            final_w=final_w,
            epochs_done=epochs_done,
            done_at_start=done_at_start,
            start_epoch=start_epoch,
            run_t0=run_t0,
            last_beat=last_beat,
            stop_reason=stop_reason,
            ckpt_dir=ckpt_dir,
            interrupted=interrupted,
            tel=tel,
        )
    finally:
        for sig, handler in prev_handlers.items():
            signal.signal(sig, handler)


def _drive_epochs(
    *,
    policy,
    config,
    sim,
    target_accuracy,
    heartbeat_s,
    live_runtime,
    trace,
    state,
    counts_buf,
    remaining,
    cumulative_time,
    final_w,
    epochs_done,
    done_at_start,
    start_epoch,
    run_t0,
    last_beat,
    stop_reason,
    ckpt_dir,
    interrupted,
    tel,
):
    m = config.population.num_clients
    ckpt = config.checkpoint
    # Per-client reliability (EWMA of "this round produced no rejected or
    # clipped updates"); only maintained — and only surfaced to policies —
    # when a defense aggregator is active, so the default path is unchanged.
    track_reliability = sim.defense_spec is not None
    # Hoisted once: the adversary (or its absence) is fixed for the whole
    # run, so the benign path never re-tests it inside per-client loops.
    adversary = sim.adversary
    # Large-K observability bound: with shard.eval_sample set, data is
    # installed lazily on contributors plus a freshly sampled evaluation
    # panel *after* selection (selection never reads client data, and each
    # client's data stream is an independent RNG, so draw order across
    # clients does not matter), and the round's loss sweep shrinks to that
    # panel.  None keeps the exact full-population behaviour.
    eval_sample = config.shard.eval_sample
    eval_rng = sim.rng.get("env.eval") if eval_sample is not None else None
    # Sharded runs aggregate hierarchically (per-shard partial sums, then
    # a global combine) using the policy's shard labels.
    shard_of = (
        policy.plan.shard_of
        if config.shard.num_shards > 1 and hasattr(policy, "plan")
        else None
    )
    if ckpt_dir is not None:
        from repro.checkpoint import ExperimentInterrupted, write_snapshot

    for t in range(start_epoch, config.max_epochs):
        if tel.enabled:
            tel.set_epoch(t)
        available = sim.availability.sample()
        costs = sim.prices.step_into(state.costs)
        counts = sim.volumes.sample_into(counts_buf)
        channel_state = sim.channel.sample()
        eval_mask: Optional[np.ndarray] = None
        if eval_sample is None:
            # Install this epoch's local data on every available client
            # (deferred until after selection under eval_sample).
            _install_epoch_data(
                sim,
                adversary,
                np.flatnonzero(available),
                counts,
                t,
                config.data.num_classes,
            )

        if tel.enabled:
            tel.emit(
                "epoch.start",
                data={
                    "num_available": int(available.sum()),
                    "remaining_budget": remaining,
                },
            )
        tau_oracle = sim.realized_tau(counts, channel_state, config.min_participants)
        ctx = EpochContext(
            t=t,
            available=available,
            costs=costs,
            remaining_budget=remaining,
            min_participants=config.min_participants,
            tau_last=state.tau_last,
            local_losses=state.local_losses,
            tau_oracle=tau_oracle,
            reliability=state.reliability.copy() if track_reliability else None,
        )
        with tel.timer("experiment.select"):
            decision: Decision = policy.select(ctx)
        sel = decision.selected & available
        if int(sel.sum()) < 1:
            stop_reason = "no_selection"
            break
        cost = float(costs[sel].sum())
        if cost > remaining + 1e-9:
            stop_reason = "budget_exhausted"
            break
        if tel.enabled:
            tel.emit(
                "epoch.decision",
                data={
                    "selected": np.flatnonzero(sel),
                    "num_selected": int(sel.sum()),
                    "iterations": decision.iterations,
                    "rho": decision.rho,
                    "cost": cost,
                },
            )

        # Failure injection: rented clients may crash mid-round.  Rent is
        # still charged (the rental happened); the crashed clients' updates
        # are lost and they do not gate the epoch latency.  At least one
        # survivor is guaranteed so the round remains defined.
        survivors = sel.copy()
        if config.population.failure_prob > 0.0:
            fail_rng = sim.rng.get("env.failures")
            crashed = sel & (
                fail_rng.random(m) < config.population.failure_prob
            )
            if crashed.all() or not (sel & ~crashed).any():
                keep = fail_rng.choice(np.flatnonzero(sel))
                crashed[keep] = False
            survivors = sel & ~crashed

        # Quorum semantics (over-selection): the epoch ends once the
        # quorum fastest survivors finish; the remaining stragglers are
        # rented but their updates are discarded.
        contributors = survivors
        if decision.quorum is not None and decision.quorum < int(survivors.sum()):
            tau_rank = sim.realized_tau(
                counts, channel_state, int(survivors.sum()), selected=survivors
            )
            surv_idx = np.flatnonzero(survivors)
            fastest = surv_idx[np.argsort(tau_rank[surv_idx], kind="stable")]
            contributors = np.zeros(m, dtype=bool)
            contributors[fastest[: decision.quorum]] = True

        # Tolerated local accuracy from the iteration decision: η = 1 − 1/ρ
        # (fractional ρ when the policy provides one, else the integer l_t).
        rho_eff = decision.rho if np.isfinite(decision.rho) else float(decision.iterations)
        target_eta = max(0.0, 1.0 - 1.0 / max(rho_eff, 1.0))

        # Event-driven / live engines: build the network timeline spec
        # from the same τ components the closed-form latency below uses,
        # so that a fault-free sync round reproduces epoch_latency
        # bit-exactly (DES) or tracks it up to host overhead (live).
        use_des = config.training.engine == "des"
        use_live = config.training.engine == "live"
        sim_spec = None
        sim_rng = None
        live_spec = None
        live_rng = None
        if use_des or use_live:
            tau_loc_c, tau_cm_c = sim.realized_tau_components(
                counts,
                channel_state,
                int(contributors.sum()),
                selected=contributors,
            )
            profile = fault_profile(config.sim.faults)
            if profile.dropout_hazard > 0.0 and isinstance(
                sim.availability, MarkovAvailabilityProcess
            ):
                # Sojourn-consistent churn: reuse the Markov chain's
                # intra-round hazard instead of the preset's generic rate.
                profile = dataclasses.replace(
                    profile,
                    dropout_hazard=float(sim.availability.intra_round_hazard()),
                )
            ids = np.flatnonzero(contributors)
        if use_des:
            sim_spec = SimRoundSpec(
                client_ids=ids,
                tau_loc=tau_loc_c[ids],
                tau_cm=tau_cm_c[ids],
                iterations=decision.iterations,
                aggregation=config.sim.aggregation,
                deadline_s=config.sim.deadline_s,
                quorum=config.sim.quorum,
                faults=profile,
                # Only guard the runtime's own drops: the pre-existing
                # failure injection may already run below the global floor.
                min_participants=min(config.min_participants, int(ids.size)),
                # The per-message timeline only feeds sim.* telemetry and
                # gantt views — skip the allocations when nobody listens.
                record_timeline=tel.enabled,
            )
            if profile.stochastic:
                sim_rng = sim.rng.get("sim.runtime")
        elif use_live:
            from repro.live.runtime import LiveRoundSpec

            live_spec = LiveRoundSpec(
                client_ids=ids,
                tau_loc=tau_loc_c[ids],
                tau_cm=tau_cm_c[ids],
                iterations=decision.iterations,
                aggregation=config.sim.aggregation,
                deadline_s=config.sim.deadline_s,
                quorum=config.sim.quorum,
                faults=profile,
                min_participants=min(config.min_participants, int(ids.size)),
                time_scale=config.live.time_scale,
            )
            if profile.stochastic:
                # A dedicated stream: live fault realizations are drawn
                # with the same machinery but independently of the DES,
                # so calibration compares two honest samples.
                live_rng = sim.rng.get("live.faults")

        if eval_sample is not None:
            # Sample this epoch's evaluation panel from the available
            # clients, then lazily install data for exactly the clients
            # the round will touch: contributors plus the panel.
            avail_idx = np.flatnonzero(available)
            eval_mask = np.zeros(m, dtype=bool)
            n_panel = min(int(eval_sample), int(avail_idx.size))
            if n_panel > 0:
                eval_mask[
                    eval_rng.choice(avail_idx, size=n_panel, replace=False)
                ] = True
            _install_epoch_data(
                sim,
                adversary,
                np.flatnonzero(contributors | eval_mask),
                counts,
                t,
                config.data.num_classes,
            )

        live_round = None
        if use_live:
            # Ship this epoch's (possibly poisoned) contributor datasets
            # to the owning workers — the exact arrays the parent-side
            # clients hold, so worker solves match the loop engine's.
            live_runtime.install_data(
                {int(k): sim.clients[k].data for k in ids}
            )
            live_round = live_runtime.begin_round(live_spec, live_rng)

        with tel.timer("experiment.round"):
            result = run_federated_round(
                sim.server,
                sim.clients,
                contributors,
                available,
                iterations=decision.iterations,
                target_eta=target_eta,
                aggregation=config.training.aggregation,
                compression=sim.compression,
                dp_spec=sim.dp_spec,
                dp_rng=sim.rng.get("fl.dp"),
                dp_accountant=sim.dp_accountant,
                engine=config.training.engine,
                sim_spec=sim_spec,
                sim_rng=sim_rng,
                live_round=live_round,
                adversary=sim.adversary,
                defense=sim.defense_spec,
                epoch=t,
                eval_mask=eval_mask,
                shard_of=shard_of,
            )
        final_w = result.w
        # Realized latencies: the band was shared by the actual uploaders
        # (crashed clients never finished; quorum stragglers' uploads are
        # cut off, so neither gates the epoch), with compressed payloads
        # charged their realized size.
        tau_real = sim.realized_tau(
            counts,
            channel_state,
            int(contributors.sum()),
            selected=contributors,
            upload_ratio=result.upload_ratio,
        )
        if use_des or use_live:
            # The simulated (DES) or measured (live) timeline realizes
            # the epoch latency directly (equal to the closed form below
            # when fault-free and sync; shorter with deadline/async,
            # longer with retries or host overhead).
            epoch_latency = float(result.completion_time)
        else:
            epoch_latency = decision.iterations * float(np.max(tau_real[contributors]))
        remaining -= cost
        cumulative_time += epoch_latency
        state.charge(sel, costs)

        # Refresh the 0-lookahead observables for the next epoch (in
        # place; identical to the old np.where reassignments).
        state.observe_latency(tau_real, available)
        # The round already swept every available client's loss at the
        # final model for its population loss; reuse instead of recomputing.
        if result.local_losses is not None:
            new_losses = result.local_losses.copy()
        else:
            new_losses = np.full(m, np.nan)
            for k in np.flatnonzero(available):
                new_losses[k] = sim.clients[k].local_loss(sim.server.w)
        state.observe_losses(new_losses)

        num_failed = int(sel.sum()) - int(survivors.sum())
        if use_des and result.sim is not None:
            num_failed += len(result.sim.dropped)
        if use_live and result.live is not None:
            num_failed += len(result.live.dropped)

        num_quarantined = 0
        if result.defense is not None:
            num_quarantined = result.defense.num_quarantined
            if track_reliability:
                # A participant's round was "clean" when none of its
                # uploads were rejected or clipped; the EWMA of that signal
                # is the reliability score the FedL policy converts into a
                # cost-side penalty (quarantined clients price themselves
                # out of the selection).
                flagged = (
                    result.defense.rejected + result.defense.clipped
                ) > 0
                clean = np.where(flagged, 0.0, 1.0)
                state.observe_reliability(contributors, clean, RELIABILITY_EMA)

        trace.append(
            EpochRecord(
                t=t,
                test_accuracy=result.test_accuracy,
                test_loss=result.test_loss,
                population_loss=result.population_loss,
                epoch_latency=epoch_latency,
                cumulative_time=cumulative_time,
                cost_spent=cost,
                remaining_budget=remaining,
                num_selected=int(sel.sum()),
                num_available=int(available.sum()),
                iterations=decision.iterations,
                rho=decision.rho,
                eta_max=result.eta_max,
                num_failed=num_failed,
                num_quarantined=num_quarantined,
            )
        )
        if tel.enabled:
            tel.emit(
                "epoch.complete",
                data={
                    "test_accuracy": result.test_accuracy,
                    "test_loss": result.test_loss,
                    "population_loss": result.population_loss,
                    "epoch_latency": epoch_latency,
                    "cumulative_time": cumulative_time,
                    "remaining_budget": remaining,
                    "num_failed": num_failed,
                    "num_quarantined": num_quarantined,
                },
            )
        feedback_mask = contributors
        if use_des or use_live:
            # Clients the runtime dropped before any upload landed have no
            # observed η̂/τ — don't feed them back as if they participated.
            feedback_mask = contributors & ~np.isnan(result.local_etas)
        policy.update(
            RoundFeedback(
                t=t,
                selected=feedback_mask,
                tau_realized=tau_real,
                local_etas=result.local_etas,
                local_losses=new_losses,
                population_loss=result.population_loss,
                cost_spent=cost,
                epoch_latency=epoch_latency,
            )
        )
        epochs_done += 1
        if heartbeat_s is not None:
            now = time.monotonic()
            if now - last_beat >= heartbeat_s:
                rate = (epochs_done - done_at_start) / max(now - run_t0, 1e-9)
                print(
                    f"[repro] epoch {t + 1}/{config.max_epochs} | "
                    f"{rate:.2f} epochs/s | "
                    f"budget {remaining:.1f}/{config.budget:.1f} | "
                    f"acc {result.test_accuracy:.3f}",
                    file=sys.stderr,
                    flush=True,
                )
                last_beat = now
        if target_accuracy is not None and result.test_accuracy >= target_accuracy:
            stop_reason = "target_accuracy"
            break
        # Paper Alg. 1: loop while C >= 0; stop when even the cheapest
        # feasible epoch cannot be paid.  np.partition + small sort avoids
        # the full O(K log K) sort at large K; the ascending summation
        # order (and hence the value) is bit-identical to the old
        # np.sort(...)[:n].sum().
        avail_costs = costs[available]
        n_min = config.min_participants
        if avail_costs.size > n_min:
            cheapest = np.sort(
                np.partition(avail_costs, n_min - 1)[:n_min]
            ).sum()
        else:
            cheapest = np.sort(avail_costs).sum()
        if remaining < float(cheapest):
            stop_reason = "budget_exhausted"
            break
        # Snapshot at the epoch boundary, *after* every stop condition:
        # a run that stops here never resumes past its own stopping
        # point, so resume stays bit-identical to uninterrupted runs.
        if ckpt_dir is not None:
            flush = bool(interrupted)
            if flush or (t + 1) % ckpt.interval == 0:
                with tel.timer("checkpoint.write"):
                    extra = (
                        live_runtime.client_rng_states()
                        if live_runtime is not None
                        else None
                    )
                    write_snapshot(
                        ckpt_dir,
                        sim=sim,
                        policy=policy,
                        state=state,
                        trace=trace,
                        next_epoch=t + 1,
                        remaining=remaining,
                        cumulative_time=cumulative_time,
                        epochs_done=epochs_done,
                        final_w=final_w,
                        keep=ckpt.keep,
                        extra_rng_states=extra,
                    )
            if flush:
                raise ExperimentInterrupted(interrupted[0], str(ckpt_dir), t + 1)

    if tel.enabled:
        tel.set_epoch(None)
        tel.emit(
            "run.complete",
            data={
                "stop_reason": stop_reason,
                "epochs": len(trace),
                "final_accuracy": (
                    trace.final_accuracy if len(trace) else None
                ),
                "total_spend": trace.total_spend,
            },
        )
    return ExperimentResult(
        trace=trace, config=config, stop_reason=stop_reason, final_w=final_w
    )
