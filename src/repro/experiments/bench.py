"""Reproducible performance benchmark for the three hot-path layers.

``repro bench`` times (1) the FL execution layer — the loop engine vs the
vectorized :class:`repro.fl.batched.BatchedClientEngine` on a fig6-style
smoke experiment, asserting the two produce bit-identical
``ExperimentResult`` outputs — (2) the per-epoch descent solver cold vs
warm-started, and (3) the NN kernels (conv im2col caches, in-place SGD).
All timings flow through the PR-2 telemetry registry
(:class:`repro.obs.MetricsRegistry`), so the same timer names appear in
``repro trace`` reports of instrumented runs.

The JSON report (``--out``) is versioned via ``schema_version``;
``BENCH_PR3.json`` at the repo root is the first committed point of the
perf trajectory.  :func:`check_regression` gates CI: machine-independent
*ratios* (batched-vs-loop speedup, warm-vs-cold solver speedup, kernel
cache speedups) are always compared against the baseline, absolute
throughputs only when the configs match and ``strict`` is requested —
absolute ops/sec are machine-specific, ratios are not.
"""

from __future__ import annotations

import dataclasses
import io
import json
import platform
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.obs import Telemetry, use_telemetry

__all__ = [
    "SCHEMA_VERSION",
    "OVERHEAD_SCHEMA_VERSION",
    "BENCH_LAYERS",
    "bench_fl_engine",
    "bench_solver",
    "bench_nn_kernels",
    "bench_sim",
    "bench_scale",
    "bench_live",
    "run_bench",
    "bench_overhead",
    "bench_checkpoint_overhead",
    "check_checkpoint_overhead",
    "check_overhead",
    "format_overhead",
    "compare_reports",
    "format_compare",
    "check_regression",
    "format_report",
]

# v2: adds the "sim" layer (event-driven runtime overhead vs the
# closed-form latency model) — BENCH_PR4.json is the first v2 baseline.
# v3: adds the "scale" layer (sharded vs flat FedL selection at large K)
# — BENCH_PR8.json is the first v3 baseline.
# v4: adds the "live" layer (multi-process engine overhead vs the loop
# engine) — BENCH_PR9.json is the first v4 baseline.
# v5: adds the "checkpoint" layer (periodic-snapshot cost measured in
# situ, plus the checkpointed-vs-plain bit-identity invariant) —
# BENCH_PR10.json is the first v5 baseline.
SCHEMA_VERSION = 5

#: Layers ``run_bench`` knows how to run, in execution order; the CLI's
#: ``--layers`` flag filters this set.
BENCH_LAYERS = ("fl", "solver", "nn", "sim", "scale", "live", "checkpoint")

#: Ratio metrics gated by :func:`check_regression` regardless of config —
#: both sides of each ratio are measured in the same process on the same
#: machine, so the quotient transfers across hosts.  Only ratios over
#: seconds-scale timings (fl) or deterministic counts (solver) are gated;
#: warm_speedup / conv_cache_speedup / sgd_in_place_speedup divide
#: millisecond-scale timings and are reported but not gated — a 20% gate
#: on those would flake on allocator/cache noise.
RATIO_KEYS = (
    ("fl", "speedup_vs_loop"),
    ("solver", "warm_iter_ratio"),
    ("scale", "speedup_vs_flat_k10000"),
)

#: Absolute throughput metrics (higher is better), gated only under
#: ``strict`` with matching configs.
THROUGHPUT_KEYS = (
    ("fl", "batched_epochs_per_s"),
    ("solver", "warm_solves_per_s"),
    ("nn", "conv_steps_per_s"),
    ("sim", "rounds_per_s"),
)


def _mem_hub(run_id: str) -> Telemetry:
    """An enabled in-memory hub: events go to a StringIO, the registry is
    readable afterwards.  Keeps the instrumented code paths identical to a
    ``--telemetry`` run without touching disk."""
    return Telemetry(sink=io.StringIO(), run_id=run_id)


# -- layer 1: FL engine --------------------------------------------------------


def bench_fl_engine(
    num_clients: int = 100,
    budget: float = 9000.0,
    max_epochs: int = 200,
    seed: int = 0,
) -> Dict[str, Any]:
    """Loop engine vs batched engine on the fig6-style smoke experiment.

    Both arms run the full experiment (FedL policy, warm-started solver)
    and must produce bit-identical ``ExperimentResult`` outputs — the
    equality is part of the report and :func:`check_regression` fails on
    any mismatch.
    """
    from repro.experiments.runner import run_experiment
    from repro.experiments.scenarios import experiment_config, make_policy

    cfg = experiment_config(
        num_clients=num_clients, budget=budget, max_epochs=max_epochs, seed=seed
    )
    results = {}
    timings = {}
    solver_stats = {}
    for engine in ("loop", "batched"):
        c = cfg.replace(
            training=dataclasses.replace(cfg.training, engine=engine),
            fedl=dataclasses.replace(cfg.fedl, solver_warm_start=True),
        )
        policy = make_policy("FedL", c, np.random.default_rng(c.seed))
        hub = _mem_hub(f"bench.fl.{engine}")
        t0 = time.perf_counter()
        with use_telemetry(hub):
            with hub.timer(f"bench.fl.{engine}"):
                results[engine] = run_experiment(policy, c)
        timings[engine] = time.perf_counter() - t0
        counters = hub.registry.counters
        pg = hub.registry.timers.get("solver.projected_gradient")
        solver_stats[engine] = {
            "solve_count": pg.count if pg else 0,
            "solve_total_s": pg.total_s if pg else 0.0,
            "iterations": counters.get("solver.iterations", 0.0),
            "warm_start_hits": counters.get("solver.warm_start_hits", 0.0),
            "iterations_saved": counters.get("solver.iterations_saved", 0.0),
        }
    rl, rb = results["loop"], results["batched"]
    identical = bool(
        np.array_equal(rl.final_w, rb.final_w) and rl.trace.equals(rb.trace)
    )
    epochs = len(rb.trace)
    loop_s, batched_s = timings["loop"], timings["batched"]
    return {
        "config": {
            "num_clients": num_clients,
            "budget": budget,
            "max_epochs": max_epochs,
            "seed": seed,
        },
        "epochs": epochs,
        "identical": identical,
        "loop_seconds": loop_s,
        "batched_seconds": batched_s,
        "speedup_vs_loop": loop_s / batched_s if batched_s > 0 else float("inf"),
        "loop_epochs_per_s": epochs / loop_s if loop_s > 0 else 0.0,
        "batched_epochs_per_s": epochs / batched_s if batched_s > 0 else 0.0,
        "batched_epoch_latency_s": batched_s / epochs if epochs else 0.0,
        "solver_iters_per_epoch": (
            solver_stats["batched"]["iterations"] / epochs if epochs else 0.0
        ),
        "solver_stats": solver_stats,
    }


# -- layer 2: epoch solver -----------------------------------------------------


def _epoch_problem_stream(num_clients: int, horizon: int, seed: int):
    """Synthetic drifting epoch subproblems (same family as ``repro regret``)."""
    from repro.core.problem import EpochInputs, FedLProblem

    rng = np.random.default_rng(seed)
    base_tau = rng.uniform(0.2, 2.0, num_clients)
    base_eta = rng.uniform(0.2, 0.7, num_clients)
    problems = []
    for t in range(horizon):
        drift = 0.2 * np.sin(2 * np.pi * t / 40.0 + np.arange(num_clients))
        problems.append(
            FedLProblem(
                EpochInputs(
                    tau=np.clip(base_tau + drift, 0.05, None),
                    costs=rng.uniform(0.5, 3.0, num_clients),
                    available=np.ones(num_clients, bool),
                    eta_hat=np.clip(base_eta + 0.1 * drift, 0.0, 0.9),
                    loss_gap=0.3,
                    loss_sensitivity=np.full(num_clients, -0.12),
                    remaining_budget=1e6,
                    min_participants=3,
                ),
                rho_max=6.0,
            )
        )
    return problems


def bench_solver(
    num_clients: int = 30, horizon: int = 50, seed: int = 0
) -> Dict[str, Any]:
    """Cold vs warm-started descent solves over a drifting epoch stream."""
    from repro.core.online_learner import OnlineLearner

    problems = _epoch_problem_stream(num_clients, horizon, seed)
    out: Dict[str, Any] = {
        "config": {"num_clients": num_clients, "horizon": horizon, "seed": seed}
    }
    stats = {}
    for mode, warm in (("cold", False), ("warm", True)):
        learner = OnlineLearner(
            num_clients, beta=0.2, delta=0.2, rho_max=6.0, warm_start=warm
        )
        hub = _mem_hub(f"bench.solver.{mode}")
        t0 = time.perf_counter()
        with use_telemetry(hub):
            for prob in problems:
                phi = learner.descent_step(prob.inputs)
                learner.dual_ascent(prob.h(phi))
        total = time.perf_counter() - t0
        counters = hub.registry.counters
        stats[mode] = {
            "total_s": total,
            "solves_per_s": horizon / total if total > 0 else 0.0,
            "iterations": counters.get("solver.iterations", 0.0),
            "iters_per_solve": counters.get("solver.iterations", 0.0) / horizon,
            "warm_start_hits": counters.get("solver.warm_start_hits", 0.0),
            "iterations_saved": counters.get("solver.iterations_saved", 0.0),
        }
    out.update(
        cold=stats["cold"],
        warm=stats["warm"],
        warm_speedup=(
            stats["cold"]["total_s"] / stats["warm"]["total_s"]
            if stats["warm"]["total_s"] > 0
            else float("inf")
        ),
        # Deterministic for a fixed (config, seed): total descent iterations
        # cold / warm.  This is what check_regression gates on.
        warm_iter_ratio=(
            stats["cold"]["iterations"] / stats["warm"]["iterations"]
            if stats["warm"]["iterations"] > 0
            else float("inf")
        ),
        warm_solves_per_s=stats["warm"]["solves_per_s"],
    )
    return out


# -- layer 3: NN kernels -------------------------------------------------------


def bench_nn_kernels(repeats: int = 30, seed: int = 0) -> Dict[str, Any]:
    """Conv im2col-cache effect and in-place SGD on representative shapes."""
    from repro.nn import conv as conv_mod
    from repro.nn.conv import Conv2D
    from repro.nn.optim import SGD

    rng = np.random.default_rng(seed)
    x = rng.normal(size=(16, 28, 28, 1))

    def conv_step(layer: Conv2D) -> None:
        out = layer.forward(x)
        layer.backward(np.ones_like(out))

    # Cold: geometry caches empty, first call pays the index build.
    conv_mod._INDICES_CACHE.clear()
    conv_mod._FLAT_PIX_CACHE.clear()
    layer = Conv2D(1, 8, 3, rng=np.random.default_rng(seed))
    t0 = time.perf_counter()
    conv_step(layer)
    cold_s = time.perf_counter() - t0
    # Steady state: caches warm, gather buffer preallocated.
    t0 = time.perf_counter()
    for _ in range(repeats):
        conv_step(layer)
    steady_s = (time.perf_counter() - t0) / repeats

    w = rng.normal(size=500_000)
    g = rng.normal(size=500_000)
    # Untimed warmup so the allocating arm does not pay first-touch page
    # faults that the in-place arm never would.
    warm_opt = SGD(lr=0.05)
    w_warm = w.copy()
    for _ in range(3):
        w_warm = warm_opt.step(w_warm, g)
    opt_copy = SGD(lr=0.05)
    t0 = time.perf_counter()
    w_c = w.copy()
    for _ in range(repeats):
        w_c = opt_copy.step(w_c, g)
    copy_s = (time.perf_counter() - t0) / repeats
    opt_inplace = SGD(lr=0.05, in_place=True)
    w_i = w.copy()
    t0 = time.perf_counter()
    for _ in range(repeats):
        w_i = opt_inplace.step(w_i, g)
    inplace_s = (time.perf_counter() - t0) / repeats
    return {
        "config": {"repeats": repeats, "seed": seed},
        "conv_cold_s": cold_s,
        "conv_steady_s": steady_s,
        "conv_cache_speedup": cold_s / steady_s if steady_s > 0 else float("inf"),
        "conv_steps_per_s": 1.0 / steady_s if steady_s > 0 else 0.0,
        "sgd_copy_step_s": copy_s,
        "sgd_in_place_step_s": inplace_s,
        "sgd_in_place_speedup": copy_s / inplace_s if inplace_s > 0 else float("inf"),
        "sgd_results_equal": bool(np.array_equal(w_c, w_i)),
    }


# -- layer 4: event-driven runtime ---------------------------------------------


def bench_sim(
    num_clients: int = 32,
    iterations: int = 5,
    rounds: int = 200,
    seed: int = 0,
) -> Dict[str, Any]:
    """DES round simulation vs the closed-form latency model.

    The DES engine replaces one closed-form ``epoch_latency`` evaluation
    with a full message-level simulation, so its cost *is* its overhead
    ratio — and its correctness anchor is that the fault-free sync answer
    matches the closed form bit-for-bit on every round (``exact`` is part
    of the report; :func:`check_regression` fails when it breaks).  A
    second arm measures the fault machinery (retries/backoff) under the
    ``flaky-uplink`` profile.
    """
    from repro.net.latency import client_latency, epoch_latency
    from repro.sim import (
        ParticipationFloorError,
        SimRoundSpec,
        fault_profile,
        simulate_round,
    )

    rng = np.random.default_rng(seed)
    draws = [
        (rng.uniform(0.01, 3.0, num_clients), rng.uniform(0.005, 1.0, num_clients))
        for _ in range(rounds)
    ]
    ids = np.arange(num_clients)
    sel = np.ones(num_clients, bool)

    t0 = time.perf_counter()
    closed = [
        epoch_latency(np.atleast_1d(client_latency(iterations, loc, cm)), sel)
        for loc, cm in draws
    ]
    closed_s = time.perf_counter() - t0

    exact = True
    events = 0
    t0 = time.perf_counter()
    for (loc, cm), expected in zip(draws, closed):
        out = simulate_round(
            SimRoundSpec(client_ids=ids, tau_loc=loc, tau_cm=cm,
                         iterations=iterations)
        )
        exact = exact and out.completion_time == expected
        events += len(out.timeline)
    des_s = time.perf_counter() - t0

    flaky = fault_profile("flaky-uplink")
    fault_rng = np.random.default_rng(seed + 1)
    retries = 0
    floored = 0
    t0 = time.perf_counter()
    for loc, cm in draws:
        try:
            out = simulate_round(
                SimRoundSpec(client_ids=ids, tau_loc=loc, tau_cm=cm,
                             iterations=iterations, faults=flaky),
                rng=fault_rng,
            )
            retries += out.num_retries
        except ParticipationFloorError:  # pragma: no cover - measure-zero
            floored += 1
    faulted_s = time.perf_counter() - t0

    return {
        "config": {
            "num_clients": num_clients,
            "iterations": iterations,
            "rounds": rounds,
            "seed": seed,
        },
        "exact": bool(exact),
        "closed_form_seconds": closed_s,
        "des_seconds": des_s,
        "overhead_ratio": des_s / closed_s if closed_s > 0 else float("inf"),
        "rounds_per_s": rounds / des_s if des_s > 0 else 0.0,
        "events_per_round": events / rounds if rounds else 0.0,
        "faulted_seconds": faulted_s,
        "faulted_rounds_per_s": rounds / faulted_s if faulted_s > 0 else 0.0,
        "faulted_retries": retries,
        "faulted_floored_rounds": floored,
    }


# -- layer 4b: live multi-process engine ---------------------------------------


def bench_live(
    num_clients: int = 8,
    min_participants: int = 3,
    epochs: int = 10,
    seed: int = 0,
) -> Dict[str, Any]:
    """Live-engine transport overhead vs the in-process loop engine.

    Runs the same small experiment through both engines; the quotient is
    the measured price of real process isolation — fork, per-iteration
    socket frames, token-bucket-shaped uploads, barrier waits — over the
    loop engine's in-process arithmetic.  The correctness anchor is the
    live engine's headline contract: the fault-free live run must train
    the *bit-identical* model (``exact``; :func:`check_regression` fails
    when it breaks).
    """
    import dataclasses

    from repro.config import LiveConfig
    from repro.experiments.runner import run_experiment
    from repro.experiments.scenarios import experiment_config, make_policy
    from repro.rng import RngFactory

    base = experiment_config(
        budget=60.0 * epochs,
        seed=seed,
        num_clients=num_clients,
        min_participants=min_participants,
        max_epochs=epochs,
    )
    results: Dict[str, Any] = {}
    seconds: Dict[str, float] = {}
    for engine in ("loop", "live"):
        cfg = base.replace(
            training=dataclasses.replace(base.training, engine=engine),
            live=LiveConfig(workers=2),
        )
        policy = make_policy(
            "FedAvg", cfg, RngFactory(cfg.seed).get("cli.policy")
        )
        t0 = time.perf_counter()
        results[engine] = run_experiment(policy, cfg)
        seconds[engine] = time.perf_counter() - t0
    rounds = len(results["live"].trace.records)
    return {
        "config": {
            "num_clients": num_clients,
            "min_participants": min_participants,
            "epochs": epochs,
            "seed": seed,
        },
        "exact": bool(
            np.array_equal(results["loop"].final_w, results["live"].final_w)
        ),
        "rounds": rounds,
        "loop_seconds": seconds["loop"],
        "live_seconds": seconds["live"],
        "overhead_ratio": (
            seconds["live"] / seconds["loop"]
            if seconds["loop"] > 0
            else float("inf")
        ),
        "rounds_per_s": rounds / seconds["live"] if seconds["live"] > 0 else 0.0,
    }


# -- layer 5: population scaling (sharded selection) ---------------------------


def _drive_selection(policy, num_clients: int, epochs: int, budget: float,
                     min_participants: int, seed: int):
    """Run ``policy`` over a synthetic ctx stream; returns (masks, seconds).

    The stream is derived purely from ``seed``, so two policies driven
    with the same arguments see identical epochs — the basis for both the
    flat-vs-sharded timing comparison and the S=1 bit-identity check.
    """
    from repro.baselines.base import EpochContext, RoundFeedback

    env = np.random.default_rng(seed)
    remaining = budget
    masks = []
    total = 0.0
    for t in range(epochs):
        available = env.random(num_clients) < 0.9
        costs = env.uniform(0.1, 12.0, num_clients)
        tau = env.uniform(0.2, 3.0, num_clients)
        losses = env.uniform(0.1, 2.0, num_clients)
        etas = env.uniform(0.2, 0.8, num_clients)
        ctx = EpochContext(
            t=t,
            available=available,
            costs=costs,
            remaining_budget=remaining,
            min_participants=min_participants,
            tau_last=tau,
            local_losses=losses,
        )
        t0 = time.perf_counter()
        decision = policy.select(ctx)
        sel = decision.selected & available
        cost = float(costs[sel].sum())
        remaining -= cost
        policy.update(
            RoundFeedback(
                t=t,
                selected=sel,
                tau_realized=tau,
                local_etas=np.where(sel, etas, np.nan),
                local_losses=losses,
                population_loss=1.0,
                cost_spent=cost,
                epoch_latency=float(decision.iterations),
            )
        )
        total += time.perf_counter() - t0
        masks.append(sel)
    return masks, total


def bench_scale(
    populations: "tuple[int, ...]" = (1_000, 10_000),
    epochs: int = 3,
    seed: int = 0,
) -> Dict[str, Any]:
    """Sharded vs flat FedL selection at large client populations.

    The FedL hot path is the O(F²) dependent-rounding pairing loop over
    the fractional support; sharding replaces it with S independent
    O((F/S)²) subproblems.  Both arms run the *full* select+update policy
    pipeline (FISTA descent, RDCS rounding, feasibility repair, learner
    feedback) on identical synthetic epoch streams — no model training, so
    the timing isolates the selection layer the tentpole optimises.

    Also checks, at K=100, that a single-shard :class:`ShardedFedLPolicy`
    reproduces the flat :class:`FedLPolicy` decisions bit-identically
    (``single_shard_identical`` — gated by :func:`check_regression`).
    """
    from repro.config import ShardConfig
    from repro.core.fedl import FedLPolicy
    from repro.fl.shard import ShardedFedLPolicy

    theta = 0.5
    per_population: Dict[str, Any] = {}
    out: Dict[str, Any] = {
        "config": {
            "populations": list(populations),
            "epochs": epochs,
            "seed": seed,
        },
    }
    for k in populations:
        n_min = max(4, k // 100)
        num_shards = max(2, k // 500)
        budget = 1e9  # unconstrained: keeps selection sizes comparable
        flat = FedLPolicy(
            k, budget, n_min, theta, np.random.default_rng(seed)
        )
        flat_masks, flat_s = _drive_selection(
            flat, k, epochs, budget, n_min, seed
        )
        sharded = ShardedFedLPolicy(
            k, budget, n_min, theta, np.random.default_rng(seed),
            shard=ShardConfig(num_shards=num_shards),
        )
        shard_masks, shard_s = _drive_selection(
            sharded, k, epochs, budget, n_min, seed
        )
        per_population[str(k)] = {
            "num_shards": num_shards,
            "min_participants": n_min,
            "flat_seconds": flat_s,
            "sharded_seconds": shard_s,
            "flat_epochs_per_s": epochs / flat_s if flat_s > 0 else 0.0,
            "sharded_epochs_per_s": epochs / shard_s if shard_s > 0 else 0.0,
            "speedup_vs_flat": flat_s / shard_s if shard_s > 0 else float("inf"),
            "flat_mean_selected": float(
                np.mean([m.sum() for m in flat_masks])
            ),
            "sharded_mean_selected": float(
                np.mean([m.sum() for m in shard_masks])
            ),
        }
    out["per_population"] = per_population
    for k in populations:
        out[f"speedup_vs_flat_k{k}"] = per_population[str(k)]["speedup_vs_flat"]
        out[f"sharded_epochs_per_s_k{k}"] = per_population[str(k)][
            "sharded_epochs_per_s"
        ]
    # S=1 bit-identity at K=100: same rng seed, same stream -> identical
    # masks on every epoch.
    k_id = 100
    flat = FedLPolicy(k_id, 500.0, 10, theta, np.random.default_rng(seed))
    single = ShardedFedLPolicy(
        k_id, 500.0, 10, theta, np.random.default_rng(seed),
        shard=ShardConfig(num_shards=1),
    )
    masks_a, _ = _drive_selection(flat, k_id, 20, 500.0, 10, seed)
    masks_b, _ = _drive_selection(single, k_id, 20, 500.0, 10, seed)
    out["single_shard_identical"] = bool(
        len(masks_a) == len(masks_b)
        and all(np.array_equal(a, b) for a, b in zip(masks_a, masks_b))
    )
    return out


# -- assembly ------------------------------------------------------------------


def run_bench(
    quick: bool = False,
    num_clients: Optional[int] = None,
    max_epochs: Optional[int] = None,
    seed: int = 0,
    pre_pr_seconds: Optional[float] = None,
    layers: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """Run the benchmark layers; returns the versioned JSON-ready report.

    ``pre_pr_seconds`` (optional) is the wall time of the pre-PR loop
    reference at the same FL config, measured from a worktree of the
    parent commit — it cannot be re-measured from this tree, so it is
    passed in and recorded alongside the in-process numbers.

    ``layers`` (optional) restricts the run to a subset of
    :data:`BENCH_LAYERS` — e.g. ``["fl", "scale"]``.  Skipped layers are
    absent from the report; :func:`check_regression` only gates sections
    that are present.
    """
    if layers is not None:
        unknown = sorted(set(layers) - set(BENCH_LAYERS))
        if unknown:
            raise ValueError(
                f"unknown bench layer(s) {unknown}; known: {list(BENCH_LAYERS)}"
            )
    selected = set(BENCH_LAYERS if layers is None else layers)
    clients = num_clients if num_clients is not None else (40 if quick else 100)
    epochs = max_epochs if max_epochs is not None else (40 if quick else 200)
    budget = 9000.0
    report: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "quick": quick,
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "created_unix": time.time(),
        },
    }
    if "fl" in selected:
        fl = bench_fl_engine(
            num_clients=clients, budget=budget, max_epochs=epochs, seed=seed
        )
        if pre_pr_seconds is not None:
            fl["pre_pr_seconds"] = float(pre_pr_seconds)
            fl["speedup_vs_pre_pr"] = (
                float(pre_pr_seconds) / fl["batched_seconds"]
                if fl["batched_seconds"] > 0
                else float("inf")
            )
        report["fl"] = fl
    if "solver" in selected:
        report["solver"] = bench_solver(
            num_clients=min(clients, 30), horizon=20 if quick else 50, seed=seed
        )
    if "nn" in selected:
        report["nn"] = bench_nn_kernels(repeats=10 if quick else 30, seed=seed)
    if "sim" in selected:
        report["sim"] = bench_sim(
            num_clients=min(clients, 32), rounds=50 if quick else 200, seed=seed
        )
    if "scale" in selected:
        # Quick mode stays at populations where the flat reference is
        # cheap; the committed baseline uses the full (1e3, 1e4) pair.
        report["scale"] = bench_scale(
            populations=(500, 2_000) if quick else (1_000, 10_000),
            epochs=2 if quick else 3,
            seed=seed,
        )
    if "live" in selected:
        report["live"] = bench_live(epochs=4 if quick else 10, seed=seed)
    if "checkpoint" in selected:
        report["checkpoint"] = bench_checkpoint_overhead(
            quick=quick, seed=seed
        )
    return report


def check_regression(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.2,
    strict: bool = False,
) -> List[str]:
    """Compare a bench report against a baseline; returns failure strings.

    Always checked: FL bit-identity, and every :data:`RATIO_KEYS` ratio
    (fails when ``current < baseline · (1 − tolerance)``).  Absolute
    throughputs (:data:`THROUGHPUT_KEYS`) are checked only when ``strict``
    and the FL configs match — they do not transfer across machines.
    """
    failures: List[str] = []
    # Exactness invariants, checked whenever the section ran (a --layers
    # subset run simply skips the absent sections).
    if "fl" in current and not current["fl"].get("identical", False):
        failures.append("fl: loop and batched engines are no longer bit-identical")
    if "nn" in current and not current["nn"].get("sgd_results_equal", False):
        failures.append("nn: in-place SGD no longer matches the allocating path")
    if "sim" in current and not current["sim"].get("exact", False):
        failures.append(
            "sim: DES no longer reproduces the closed-form epoch latency "
            "bit-exactly"
        )
    if "scale" in current and not current["scale"].get(
        "single_shard_identical", False
    ):
        failures.append(
            "scale: single-shard sharded policy no longer matches the flat "
            "FedL policy bit-identically"
        )
    if "live" in current and not current["live"].get("exact", False):
        failures.append(
            "live: fault-free live engine no longer trains a bit-identical "
            "model to the loop engine"
        )
    if "checkpoint" in current:
        failures += check_checkpoint_overhead(current["checkpoint"])
    if int(baseline.get("schema_version", 0)) != SCHEMA_VERSION:
        failures.append(
            f"baseline schema_version {baseline.get('schema_version')} "
            f"!= {SCHEMA_VERSION}; regenerate the baseline"
        )
        return failures

    def lookup(report: Dict[str, Any], section: str, key: str) -> Optional[float]:
        value = report.get(section, {}).get(key)
        return float(value) if isinstance(value, (int, float)) else None

    keys = list(RATIO_KEYS)
    configs_match = current.get("fl", {}).get("config") == baseline.get(
        "fl", {}
    ).get("config")
    if strict and configs_match:
        keys += list(THROUGHPUT_KEYS)
    for section, key in keys:
        cur = lookup(current, section, key)
        base = lookup(baseline, section, key)
        if cur is None or base is None:
            continue
        floor = base * (1.0 - tolerance)
        if cur < floor:
            failures.append(
                f"{section}.{key}: {cur:.3f} < {floor:.3f} "
                f"(baseline {base:.3f}, tolerance {tolerance:.0%})"
            )
    return failures


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of :func:`run_bench` output.  Sections
    skipped by ``--layers`` are simply absent."""
    fl = report.get("fl")
    solver = report.get("solver")
    nn = report.get("nn")
    sim = report.get("sim")
    scale = report.get("scale")
    live = report.get("live")
    lines = [
        f"repro bench (schema v{report['schema_version']}"
        + (", quick)" if report.get("quick") else ")"),
    ]
    if fl is not None:
        lines += [
            "",
            f"[fl]      {fl['config']['num_clients']} clients x {fl['epochs']} epochs "
            f"(budget {fl['config']['budget']:g})",
            f"          loop    {fl['loop_seconds']:8.2f}s  "
            f"({fl['loop_epochs_per_s']:6.2f} epochs/s)",
            f"          batched {fl['batched_seconds']:8.2f}s  "
            f"({fl['batched_epochs_per_s']:6.2f} epochs/s)  "
            f"speedup {fl['speedup_vs_loop']:.2f}x",
            f"          bit-identical results: {fl['identical']}   "
            f"solver iters/epoch: {fl['solver_iters_per_epoch']:.1f}",
        ]
        if "speedup_vs_pre_pr" in fl:
            lines.append(
                f"          pre-PR reference {fl['pre_pr_seconds']:.2f}s  "
                f"-> speedup {fl['speedup_vs_pre_pr']:.2f}x"
            )
    if solver is not None:
        lines += [
            "",
            f"[solver]  {solver['config']['num_clients']} clients x "
            f"{solver['config']['horizon']} epoch subproblems",
            f"          cold {solver['cold']['total_s']:.3f}s "
            f"({solver['cold']['iters_per_solve']:.1f} iters/solve)   "
            f"warm {solver['warm']['total_s']:.3f}s "
            f"({solver['warm']['iters_per_solve']:.1f} iters/solve)   "
            f"speedup {solver['warm_speedup']:.2f}x",
            f"          warm hits {solver['warm']['warm_start_hits']:.0f}, "
            f"iterations saved {solver['warm']['iterations_saved']:.0f}",
        ]
    if nn is not None:
        lines += [
            "",
            f"[nn]      conv cold {nn['conv_cold_s'] * 1e3:.2f}ms, steady "
            f"{nn['conv_steady_s'] * 1e3:.2f}ms "
            f"({nn['conv_steps_per_s']:.0f} steps/s, cache speedup "
            f"{nn['conv_cache_speedup']:.2f}x)",
            f"          sgd step copy {nn['sgd_copy_step_s'] * 1e3:.3f}ms, "
            f"in-place {nn['sgd_in_place_step_s'] * 1e3:.3f}ms "
            f"({nn['sgd_in_place_speedup']:.2f}x, results equal: "
            f"{nn['sgd_results_equal']})",
        ]
    if sim is not None:
        lines += [
            "",
            f"[sim]     {sim['config']['num_clients']} clients x "
            f"{sim['config']['iterations']} iterations x "
            f"{sim['config']['rounds']} rounds",
            f"          des {sim['des_seconds']:.3f}s "
            f"({sim['rounds_per_s']:.0f} rounds/s, "
            f"{sim['events_per_round']:.0f} events/round)   "
            f"closed form {sim['closed_form_seconds']:.3f}s   "
            f"overhead {sim['overhead_ratio']:.1f}x",
            f"          bit-exact vs closed form: {sim['exact']}   "
            f"flaky-uplink {sim['faulted_rounds_per_s']:.0f} rounds/s "
            f"({sim['faulted_retries']} retries)",
        ]
    if scale is not None:
        lines += [
            "",
            f"[scale]   FedL selection, {scale['config']['epochs']} epochs "
            f"per population",
        ]
        for k, row in scale["per_population"].items():
            lines.append(
                f"          K={int(k):>6}  flat {row['flat_epochs_per_s']:8.2f} ep/s  "
                f"sharded (S={row['num_shards']}) "
                f"{row['sharded_epochs_per_s']:8.2f} ep/s  "
                f"speedup {row['speedup_vs_flat']:.2f}x  "
                f"(|sel| {row['flat_mean_selected']:.0f} vs "
                f"{row['sharded_mean_selected']:.0f})"
            )
        lines.append(
            f"          single-shard bit-identical to flat: "
            f"{scale['single_shard_identical']}"
        )
    if live is not None:
        lines += [
            "",
            f"[live]    {live['config']['num_clients']} clients x "
            f"{live['rounds']} rounds (forked workers, socket frames)",
            f"          loop {live['loop_seconds']:.3f}s   live "
            f"{live['live_seconds']:.3f}s "
            f"({live['rounds_per_s']:.1f} rounds/s)   "
            f"overhead {live['overhead_ratio']:.1f}x",
            f"          bit-identical model vs loop: {live['exact']}",
        ]
    ckpt = report.get("checkpoint")
    if ckpt is not None:
        lines += [
            "",
            f"[ckpt]    {ckpt['clients']} clients x {ckpt['epochs']} epochs, "
            f"snapshot every {ckpt['interval']} "
            f"({ckpt['snapshots_per_run']} snapshots)",
            f"          run {ckpt['enabled_seconds']:.3f}s   writes "
            f"{ckpt['checkpoint_write_seconds'] * 1e3:.1f}ms   "
            f"overhead {ckpt['overhead_fraction']:.2%}",
            f"          bit-identical vs uncheckpointed: "
            f"{ckpt['bit_identical']}",
        ]
    return "\n".join(lines)


def load_report(path: str | Path) -> Dict[str, Any]:
    """Read a bench JSON file (raises on missing/invalid)."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "schema_version" not in payload:
        raise ValueError(f"not a bench report: {path}")
    return payload


def save_report(report: Dict[str, Any], path: str | Path) -> Path:
    """Atomically write the report as stable, diff-friendly JSON.

    Delegates to :func:`~repro.experiments.persistence.atomic_write_text`
    so a crash mid-write leaves no torn file and no temp-file litter
    (in-flight temps are reaped at interpreter exit).
    """
    from repro.experiments.persistence import atomic_write_text

    path = Path(path)
    atomic_write_text(path, json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


# -- checkpoint overhead -------------------------------------------------------


def bench_checkpoint_overhead(
    quick: bool = True,
    seed: int = 0,
    interval: int = 10,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Measure what periodic snapshots cost an otherwise-identical run.

    Times the same FedL experiment with checkpointing disabled and with
    snapshots every ``interval`` epochs (best-of-``repeats`` each, so a
    scheduler hiccup cannot fake a regression), and asserts the two runs
    stay bit-identical — checkpointing is pure observation and must not
    perturb a single RNG draw.
    """
    import tempfile

    from repro.config import CheckpointConfig
    from repro.experiments.runner import run_experiment
    from repro.experiments.scenarios import experiment_config, make_policy
    from repro.rng import RngFactory

    clients = 20 if quick else 40
    epochs = 40 if quick else 100
    base = experiment_config(
        budget=9000.0, seed=seed, num_clients=clients,
        min_participants=5, max_epochs=epochs,
    )

    def run_once(config, hub=None) -> tuple:
        policy = make_policy(
            "FedL", config, RngFactory(seed).get("bench.checkpoint")
        )
        started = time.perf_counter()
        with use_telemetry(hub):
            result = run_experiment(policy, config)
        return time.perf_counter() - started, result

    disabled_s, ref = run_once(
        base.replace(checkpoint=CheckpointConfig(directory=None))
    )
    # The snapshot cost (tens of ms per run) is far below run-to-run
    # scheduler noise on a quick config, so an A/B wall-clock diff is
    # useless.  Instead the runner's "checkpoint.write" timer measures
    # the added work in situ; best-of-``repeats`` guards the remaining
    # jitter inside a single run.
    write_s, wall_s, ckpt = float("inf"), float("inf"), None
    for _ in range(repeats):
        hub = _mem_hub("bench-checkpoint")
        with tempfile.TemporaryDirectory(prefix="repro-bench-ckpt-") as tmp:
            enabled_s, ckpt = run_once(
                base.replace(
                    checkpoint=CheckpointConfig(
                        directory=tmp, interval=interval
                    )
                ),
                hub=hub,
            )
        stat = hub.registry.timers.get("checkpoint.write")
        if stat is not None and stat.total_s < write_s:
            write_s, wall_s = stat.total_s, enabled_s
    baseline_s = max(wall_s - write_s, 1e-9)
    return {
        "quick": quick,
        "clients": clients,
        "epochs": epochs,
        "interval": interval,
        "repeats": repeats,
        "snapshots_per_run": epochs // interval,
        "disabled_seconds": disabled_s,
        "enabled_seconds": wall_s,
        "checkpoint_write_seconds": write_s,
        "overhead_fraction": write_s / baseline_s,
        "bit_identical": bool(
            ckpt.final_w.tobytes() == ref.final_w.tobytes()
            and ckpt.trace.equals(ref.trace)
        ),
    }


def check_checkpoint_overhead(
    report: Dict[str, Any], max_fraction: float = 0.02
) -> List[str]:
    """Gate the drill: snapshots must stay cheap and observation-only."""
    failures: List[str] = []
    frac = float(report.get("overhead_fraction", 0.0))
    if frac > max_fraction:
        failures.append(
            f"checkpoint overhead {frac:.2%} at interval="
            f"{report.get('interval')} exceeds the {max_fraction:.0%} "
            f"ceiling"
        )
    if not report.get("bit_identical", False):
        failures.append(
            "checkpointed run is NOT bit-identical to the uncheckpointed "
            "reference"
        )
    return failures


# -- overhead audit ------------------------------------------------------------

OVERHEAD_SCHEMA_VERSION = 1

#: Null-hub primitives microbenchmarked by :func:`bench_overhead`.  These
#: are the *only* things a disabled-telemetry run pays at each hook site:
#: ``guard`` is the ``get_telemetry()`` + ``.enabled`` check every emit
#: site performs before building a payload, ``timer`` is one no-op
#: ``with tel.timer(...)`` block, ``counter``/``emit`` are the direct
#: no-op calls.
NULL_PRIMITIVES = ("guard", "timer", "counter", "emit")


def _bench_null_primitives(reps: int = 200_000) -> Dict[str, float]:
    """Nanoseconds per op for each disabled-telemetry primitive."""
    from repro.obs import NULL_TELEMETRY, get_telemetry, use_telemetry

    out: Dict[str, float] = {}
    with use_telemetry(NULL_TELEMETRY):
        t0 = time.perf_counter()
        for _ in range(reps):
            tel = get_telemetry()
            if tel.enabled:  # pragma: no cover - never true here
                pass
        out["guard"] = (time.perf_counter() - t0) / reps * 1e9

        tel = get_telemetry()
        t0 = time.perf_counter()
        for _ in range(reps):
            with tel.timer("bench.null"):
                pass
        out["timer"] = (time.perf_counter() - t0) / reps * 1e9

        t0 = time.perf_counter()
        for _ in range(reps):
            tel.counter("bench.null")
        out["counter"] = (time.perf_counter() - t0) / reps * 1e9

        t0 = time.perf_counter()
        for _ in range(reps):
            tel.emit("bench.null")
        out["emit"] = (time.perf_counter() - t0) / reps * 1e9
    return out


def _overhead_layer(name: str, runner) -> Dict[str, Any]:
    """A/B one layer: disabled (null hub) vs enabled (in-memory sink).

    ``runner()`` executes the layer's workload once under whatever hub is
    current.  The enabled arm's hub is inspected afterwards for hook
    activation counts — events emitted, timer records, counter bumps —
    which is what attributes cost to specific hook sites.
    """
    from repro.obs import NULL_TELEMETRY, use_telemetry

    with use_telemetry(NULL_TELEMETRY):
        runner()  # warmup: caches, allocator, imports
        t0 = time.perf_counter()
        runner()
        disabled_s = time.perf_counter() - t0
    hub = _mem_hub(f"bench.overhead.{name}")
    with use_telemetry(hub):
        t0 = time.perf_counter()
        runner()
        enabled_s = time.perf_counter() - t0
    events = int(hub._seq)
    event_kinds: Dict[str, int] = {}
    hub._sink.seek(0)
    for line in hub._sink:
        try:
            kind = json.loads(line).get("kind", "?")
        except json.JSONDecodeError:
            continue
        event_kinds[kind] = event_kinds.get(kind, 0) + 1
    bytes_written = hub._sink.tell()
    timer_records = {
        tname: int(stat.count) for tname, stat in sorted(hub.registry.timers.items())
    }
    counter_names = sorted(hub.registry.counters)
    overhead_s = enabled_s - disabled_s
    return {
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "overhead_s": overhead_s,
        "overhead_frac": overhead_s / disabled_s if disabled_s > 0 else 0.0,
        "events": events,
        "event_kinds": dict(sorted(event_kinds.items())),
        "timer_records": timer_records,
        "timer_records_total": int(sum(timer_records.values())),
        "counters": counter_names,
        "bytes_written": int(bytes_written),
    }


def bench_overhead(quick: bool = True, seed: int = 0) -> Dict[str, Any]:
    """Telemetry overhead audit: enabled vs NullTelemetry, per layer.

    Two questions, answered per layer (batched FL, DES FL, defended FL,
    solver stream):

    1. **What does ``--telemetry`` cost?**  Direct A/B wall time of the
       same workload under the null hub vs an enabled in-memory hub,
       with the enabled arm's hook activations (events per kind, timer
       records per name) as the attribution of where that cost lands.
    2. **What does the *disabled* instrumentation cost?**  There is no
       uninstrumented build to diff against, so the audit microbenchmarks
       the four null-hub primitives (enabled-guard, no-op timer block,
       no-op counter, no-op emit) and multiplies by the hook activation
       counts observed in the enabled arm: an upper-bound estimate of the
       seconds a disabled run spends inside telemetry hooks, reported as
       a fraction of the disabled wall time.  CI gates this fraction
       (:func:`check_overhead`, default ceiling 2%).
    """
    import dataclasses as _dc

    from repro.config import AttackConfig, DefenseConfig
    from repro.experiments.runner import run_experiment
    from repro.experiments.scenarios import experiment_config, make_policy

    clients = 16 if quick else 40
    epochs = 8 if quick else 40
    base = experiment_config(
        num_clients=clients, budget=9000.0, max_epochs=epochs, seed=seed
    )

    def fl_runner(cfg):
        def run() -> None:
            policy = make_policy("FedL", cfg, np.random.default_rng(cfg.seed))
            run_experiment(policy, cfg)

        return run

    cfg_batched = base.replace(
        training=_dc.replace(base.training, engine="batched"),
        fedl=_dc.replace(base.fedl, solver_warm_start=True),
    )
    cfg_des = base.replace(training=_dc.replace(base.training, engine="des"))
    cfg_defended = base.replace(
        attack=AttackConfig(kind="sign-flip", fraction=0.25),
        defense=DefenseConfig(aggregator="trimmed-mean"),
    )

    def solver_runner() -> None:
        from repro.core.online_learner import OnlineLearner

        learner = OnlineLearner(
            min(clients, 30), beta=0.2, delta=0.2, rho_max=6.0, warm_start=True
        )
        for prob in _epoch_problem_stream(min(clients, 30), 20, seed):
            phi = learner.descent_step(prob.inputs)
            learner.dual_ascent(prob.h(phi))

    layers = {
        "fl.batched": _overhead_layer("fl.batched", fl_runner(cfg_batched)),
        "fl.des": _overhead_layer("fl.des", fl_runner(cfg_des)),
        "fl.defended": _overhead_layer("fl.defended", fl_runner(cfg_defended)),
        "solver": _overhead_layer("solver", solver_runner),
    }
    null_ns = _bench_null_primitives(50_000 if quick else 200_000)
    for layer in layers.values():
        # Disabled-run estimate: every emit site pays one guard, every
        # timer site one null with-block.  Counter sites sit inside
        # enabled guards in the built-in instrumentation, so the guard
        # term already covers them; adding the counter term anyway keeps
        # the estimate an upper bound.
        est_ns = (
            layer["events"] * (null_ns["guard"] + null_ns["emit"])
            + layer["timer_records_total"] * null_ns["timer"]
        )
        layer["est_null_s"] = est_ns / 1e9
        layer["est_null_frac"] = (
            layer["est_null_s"] / layer["disabled_s"]
            if layer["disabled_s"] > 0
            else 0.0
        )
    return {
        "schema_version": OVERHEAD_SCHEMA_VERSION,
        "kind": "overhead-audit",
        "quick": quick,
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "created_unix": time.time(),
        },
        "config": {"num_clients": clients, "max_epochs": epochs, "seed": seed},
        "null_primitives_ns": {k: null_ns[k] for k in NULL_PRIMITIVES},
        "layers": layers,
    }


def check_overhead(
    report: Dict[str, Any], max_null_fraction: float = 0.02
) -> List[str]:
    """Gate the audit: the estimated NullTelemetry share of each layer's
    disabled wall time must stay under ``max_null_fraction``."""
    failures: List[str] = []
    for name, layer in sorted(report.get("layers", {}).items()):
        frac = float(layer.get("est_null_frac", 0.0))
        if frac > max_null_fraction:
            failures.append(
                f"{name}: estimated disabled-telemetry overhead "
                f"{frac:.2%} exceeds the {max_null_fraction:.0%} ceiling "
                f"({layer.get('events', 0)} events, "
                f"{layer.get('timer_records_total', 0)} timer records)"
            )
    return failures


def format_overhead(report: Dict[str, Any]) -> str:
    """Human-readable overhead audit table."""
    null_ns = report.get("null_primitives_ns", {})
    lines = [
        "telemetry overhead audit"
        + (" (quick)" if report.get("quick") else ""),
        "",
        "null-hub primitives: "
        + "  ".join(
            f"{k}={null_ns.get(k, 0.0):.0f}ns" for k in NULL_PRIMITIVES
        ),
        "",
        f"{'layer':<14} {'disabled':>9} {'enabled':>9} {'overhead':>9} "
        f"{'events':>7} {'timers':>7} {'est-null':>9} {'null%':>7}",
    ]
    lines.append("-" * len(lines[-1]))
    for name, layer in sorted(report.get("layers", {}).items()):
        lines.append(
            f"{name:<14} {layer['disabled_s']:>8.3f}s {layer['enabled_s']:>8.3f}s "
            f"{layer['overhead_frac']:>8.1%} "
            f"{layer['events']:>7} {layer['timer_records_total']:>7} "
            f"{layer['est_null_s'] * 1e6:>7.1f}us {layer['est_null_frac']:>7.3%}"
        )
    lines.append("")
    lines.append("hook sites (enabled arm):")
    for name, layer in sorted(report.get("layers", {}).items()):
        kinds = ", ".join(
            f"{k}x{v}"
            for k, v in sorted(
                layer["event_kinds"].items(), key=lambda kv: (-kv[1], kv[0])
            )[:5]
        )
        timers = ", ".join(
            f"{k}x{v}"
            for k, v in sorted(
                layer["timer_records"].items(), key=lambda kv: (-kv[1], kv[0])
            )[:5]
        )
        pad = " " * (len(name) + 2)
        lines.append(f"  {name}: events [{kinds or '-'}]")
        lines.append(f"  {pad}timers [{timers or '-'}]")
    return "\n".join(lines)


# -- report comparison ---------------------------------------------------------

#: Metrics compared by ``repro bench --compare`` with the direction that
#: counts as an improvement.  Sections absent from either report (e.g.
#: ``sim`` in a schema-v1 file) are skipped, not failed.
COMPARE_METRICS = (
    ("fl", "loop_epochs_per_s", "higher"),
    ("fl", "batched_epochs_per_s", "higher"),
    ("fl", "speedup_vs_loop", "higher"),
    ("fl", "batched_epoch_latency_s", "lower"),
    ("solver", "warm_solves_per_s", "higher"),
    ("solver", "warm_speedup", "higher"),
    ("solver", "warm_iter_ratio", "higher"),
    ("nn", "conv_steps_per_s", "higher"),
    ("nn", "sgd_in_place_speedup", "higher"),
    ("sim", "rounds_per_s", "higher"),
    ("sim", "overhead_ratio", "lower"),
    ("scale", "speedup_vs_flat_k10000", "higher"),
    ("scale", "sharded_epochs_per_s_k10000", "higher"),
)


def compare_reports(
    a: Dict[str, Any], b: Dict[str, Any], threshold: float = 0.05
) -> List[Dict[str, Any]]:
    """Per-metric delta rows between two bench reports (``b`` vs ``a``).

    A row is a *regression* when ``b`` is worse than ``a`` by more than
    ``threshold`` in the metric's bad direction.  Rows whose sections ran
    under different configs are annotated, not suppressed — drift across
    baselines with config changes is exactly what the table is for.
    """
    rows: List[Dict[str, Any]] = []
    for section, key, better in COMPARE_METRICS:
        sa, sb = a.get(section), b.get(section)
        if not isinstance(sa, dict) or not isinstance(sb, dict):
            continue
        va, vb = sa.get(key), sb.get(key)
        if not isinstance(va, (int, float)) or not isinstance(vb, (int, float)):
            continue
        va, vb = float(va), float(vb)
        delta_pct = 100.0 * (vb - va) / va if va != 0 else None
        if delta_pct is None:
            worse = False
        elif better == "higher":
            worse = vb < va * (1.0 - threshold)
        else:
            worse = vb > va * (1.0 + threshold)
        rows.append(
            {
                "section": section,
                "metric": key,
                "a": va,
                "b": vb,
                "better": better,
                "delta_pct": delta_pct,
                "regressed": bool(worse),
                "configs_match": sa.get("config") == sb.get("config"),
            }
        )
    return rows


def format_compare(
    rows: List[Dict[str, Any]], label_a: str = "A", label_b: str = "B"
) -> str:
    """Render :func:`compare_reports` rows as a fixed-width table."""
    title = f"bench compare: {label_a} -> {label_b}"
    lines = [title, "=" * len(title)]
    if not rows:
        lines.append("(no comparable metrics)")
        return "\n".join(lines)
    header = (
        f"{'metric':<34} {label_a[:12]:>12} {label_b[:12]:>12} "
        f"{'delta':>8}  note"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        name = f"{row['section']}.{row['metric']}"
        delta = (
            f"{row['delta_pct']:+.1f}%" if row["delta_pct"] is not None else "n/a"
        )
        notes = []
        if row["regressed"]:
            notes.append("! regression")
        if not row["configs_match"]:
            notes.append("config differs")
        lines.append(
            f"{name:<34} {row['a']:>12.3f} {row['b']:>12.3f} "
            f"{delta:>8}  {'; '.join(notes)}"
        )
    regressions = [r for r in rows if r["regressed"]]
    lines.append("")
    lines.append(
        f"{len(regressions)} regression(s) past the threshold"
        if regressions
        else "no regressions past the threshold"
    )
    return "\n".join(lines)
