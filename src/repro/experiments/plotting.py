"""Terminal plotting: ASCII line charts and sparklines for traces.

Dependency-free visualization so the examples and CLI can show curve
*shapes* (crossovers, plateaus) without matplotlib.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

import numpy as np

__all__ = ["sparkline", "ascii_chart"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """A one-line unicode sparkline of ``values`` (resampled to ``width``)."""
    v = np.asarray(list(values), dtype=float)
    if v.size == 0:
        raise ValueError("need at least one value")
    if width < 1:
        raise ValueError("width must be positive")
    if v.size > width:
        idx = np.linspace(0, v.size - 1, width).astype(int)
        v = v[idx]
    lo, hi = float(np.nanmin(v)), float(np.nanmax(v))
    if hi - lo < 1e-12:
        return _SPARK_LEVELS[0] * v.size
    scaled = ((v - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)).astype(int)
    return "".join(_SPARK_LEVELS[s] for s in scaled)


def ascii_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 12,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Multi-series ASCII line chart on a shared (x, y) canvas.

    Each series gets a distinct marker; later series overwrite earlier
    ones where they collide (fine for reading shapes).
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 10 or height < 4:
        raise ValueError("canvas too small")
    markers = "*o+x#@%&"
    all_pts = [p for pts in series.values() for p in pts]
    if not all_pts:
        raise ValueError("series are empty")
    xs = np.array([p[0] for p in all_pts], dtype=float)
    ys = np.array([p[1] for p in all_pts], dtype=float)
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    x_span = max(x_hi - x_lo, 1e-12)
    y_span = max(y_hi - y_lo, 1e-12)

    canvas = [[" "] * width for _ in range(height)]
    legend = []
    for (name, pts), marker in zip(series.items(), markers):
        legend.append(f"{marker}={name}")
        for x, y in pts:
            col = int((float(x) - x_lo) / x_span * (width - 1))
            row = height - 1 - int((float(y) - y_lo) / y_span * (height - 1))
            canvas[row][col] = marker

    lines = [f"{y_label} [{y_lo:.3g} .. {y_hi:.3g}]   " + "  ".join(legend)]
    for row in canvas:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_lo:.3g} .. {x_hi:.3g}")
    return "\n".join(lines)
