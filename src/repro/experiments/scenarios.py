"""Paper scenario parameterizations and policy factory.

The paper runs M = 100 clients with real CNN training; at NumPy speed we
scale the *experiment* defaults down (M = 30, 14×14 / 16×16 images, MLP)
while keeping every structural knob — availability, pricing, FDMA sharing,
Poisson volumes, IID/non-IID — at the paper's values.  The config builder
exposes all of it, so paper-scale runs are one ``replace`` away.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from repro.baselines import (
    FedAvgPolicy,
    FedCSPolicy,
    GreedyOraclePolicy,
    PowDPolicy,
    UCBPolicy,
)
from repro.baselines.base import SelectionPolicy
from repro.core.fairness import FairFedLPolicy
from repro.config import (
    DataConfig,
    ExperimentConfig,
    FedLConfig,
    PopulationConfig,
    TrainingConfig,
)
from repro.core.fedl import FedLPolicy

__all__ = [
    "experiment_config",
    "paper_scale_config",
    "make_policy",
    "POLICY_NAMES",
]

POLICY_NAMES = ("FedL", "FedAvg", "FedCS", "Pow-d")


def experiment_config(
    dataset: str = "fmnist",
    iid: bool = True,
    budget: float = 2500.0,
    seed: int = 0,
    num_clients: int = 30,
    min_participants: int = 5,
    max_epochs: int = 300,
    model: str = "mlp",
) -> ExperimentConfig:
    """Experiment-scale config mirroring the paper's Sec. 6.1 setting."""
    # Difficulty calibrated so a run takes tens of federated rounds to
    # plateau (CIFAR-like harder than FMNIST-like, as in the paper).
    noise = 0.8 if dataset == "fmnist" else 1.1
    return ExperimentConfig(
        seed=seed,
        budget=budget,
        min_participants=min_participants,
        max_epochs=max_epochs,
        population=PopulationConfig(num_clients=num_clients),
        data=DataConfig(
            dataset=dataset, iid=iid, feature_noise=noise, samples_per_client=30
        ),
        training=TrainingConfig(model=model),
        fedl=FedLConfig(),
    )


def paper_scale_config(
    dataset: str = "fmnist",
    iid: bool = True,
    budget: float = 20_000.0,
    seed: int = 0,
) -> ExperimentConfig:
    """The paper's full Sec. 6.1 setting: M = 100 clients, full-resolution
    28×28 / 32×32 images, the CNN model family, n = 10 participants.

    A complete run takes tens of minutes of NumPy time — use
    :func:`experiment_config` for development and benches.
    """
    return ExperimentConfig(
        seed=seed,
        budget=budget,
        min_participants=10,
        max_epochs=500,
        population=PopulationConfig(num_clients=100),
        data=DataConfig(
            dataset=dataset,
            iid=iid,
            feature_noise=0.8 if dataset == "fmnist" else 1.1,
            samples_per_client=60,
            downscale=1,
        ),
        training=TrainingConfig(model="cnn"),
        fedl=FedLConfig(),
    )


def make_policy(
    name: str,
    config: ExperimentConfig,
    rng: np.random.Generator,
    iterations: int = 2,
    deadline_s: Optional[float] = None,
) -> SelectionPolicy:
    """Instantiate a policy by its paper name.

    Baselines use a fixed iteration count ``iterations`` (they have no
    iteration control); FedL's ``ρ_t`` is learned and its rounding, step
    sizes, and solver come from ``config.fedl``.
    """
    m = config.population.num_clients
    if name == "FedL":
        return FedLPolicy(
            num_clients=m,
            budget=config.budget,
            min_participants=config.min_participants,
            theta=config.training.theta,
            rng=rng,
            config=config.fedl,
            cost_range=config.population.cost_range,
        )
    if name == "Fair-FedL":
        return FairFedLPolicy(
            num_clients=m,
            budget=config.budget,
            min_participants=config.min_participants,
            theta=config.training.theta,
            rng=rng,
            config=config.fedl,
            cost_range=config.population.cost_range,
        )
    if name == "FedAvg":
        return FedAvgPolicy(rng, iterations=iterations)
    if name == "FedCS":
        return FedCSPolicy(rng, deadline_s=deadline_s, iterations=iterations)
    if name == "Pow-d":
        return PowDPolicy(rng, d=3 * config.min_participants, iterations=iterations)
    if name == "UCB":
        return UCBPolicy(m, rng, iterations=iterations)
    if name == "Oracle":
        return GreedyOraclePolicy(rng, iterations=iterations)
    raise ValueError(f"unknown policy {name!r}")


