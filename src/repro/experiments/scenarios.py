"""Paper scenario parameterizations and policy factory.

The paper runs M = 100 clients with real CNN training; at NumPy speed we
scale the *experiment* defaults down (M = 30, 14×14 / 16×16 images, MLP)
while keeping every structural knob — availability, pricing, FDMA sharing,
Poisson volumes, IID/non-IID — at the paper's values.  The config builder
exposes all of it, so paper-scale runs are one ``replace`` away.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Mapping, Optional

import numpy as np

from repro.baselines.base import SelectionPolicy
from repro.config import (
    DataConfig,
    ExperimentConfig,
    FedLConfig,
    PopulationConfig,
    TrainingConfig,
)
from repro.strategies import build_strategy

__all__ = [
    "experiment_config",
    "paper_scale_config",
    "make_policy",
    "POLICY_NAMES",
]

POLICY_NAMES = ("FedL", "FedAvg", "FedCS", "Pow-d")


def experiment_config(
    dataset: str = "fmnist",
    iid: bool = True,
    budget: float = 2500.0,
    seed: int = 0,
    num_clients: int = 30,
    min_participants: int = 5,
    max_epochs: int = 300,
    model: str = "mlp",
) -> ExperimentConfig:
    """Experiment-scale config mirroring the paper's Sec. 6.1 setting."""
    # Difficulty calibrated so a run takes tens of federated rounds to
    # plateau (CIFAR-like harder than FMNIST-like, as in the paper).
    noise = 0.8 if dataset == "fmnist" else 1.1
    return ExperimentConfig(
        seed=seed,
        budget=budget,
        min_participants=min_participants,
        max_epochs=max_epochs,
        population=PopulationConfig(num_clients=num_clients),
        data=DataConfig(
            dataset=dataset, iid=iid, feature_noise=noise, samples_per_client=30
        ),
        training=TrainingConfig(model=model),
        fedl=FedLConfig(),
    )


def paper_scale_config(
    dataset: str = "fmnist",
    iid: bool = True,
    budget: float = 20_000.0,
    seed: int = 0,
) -> ExperimentConfig:
    """The paper's full Sec. 6.1 setting: M = 100 clients, full-resolution
    28×28 / 32×32 images, the CNN model family, n = 10 participants.

    A complete run takes tens of minutes of NumPy time — use
    :func:`experiment_config` for development and benches.
    """
    return ExperimentConfig(
        seed=seed,
        budget=budget,
        min_participants=10,
        max_epochs=500,
        population=PopulationConfig(num_clients=100),
        data=DataConfig(
            dataset=dataset,
            iid=iid,
            feature_noise=0.8 if dataset == "fmnist" else 1.1,
            samples_per_client=60,
            downscale=1,
        ),
        training=TrainingConfig(model="cnn"),
        fedl=FedLConfig(),
    )


def make_policy(
    name: str,
    config: ExperimentConfig,
    rng: np.random.Generator,
    iterations: int = 2,
    deadline_s: Optional[float] = None,
    params: Optional[Mapping[str, Any]] = None,
) -> SelectionPolicy:
    """Instantiate a policy by its registry name.

    Thin wrapper over :func:`repro.strategies.build_strategy` kept for
    the historical call sites: baselines use a fixed iteration count
    ``iterations`` (they have no iteration control); FedL's ``ρ_t`` is
    learned and its rounding, step sizes, and solver come from
    ``config.fedl``.  ``params`` overlays the strategy's schema defaults
    (unknown names raise a typed ``ValueError``).
    """
    return build_strategy(
        name, config, rng, params,
        iterations=iterations, deadline_s=deadline_s,
    )


