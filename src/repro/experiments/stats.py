"""Multi-seed aggregation of experiment traces.

Published FL curves are averages over repetitions; this module runs a
policy suite over several seeds and aggregates the traces into mean ± std
bands on a common grid, for both the time axis and the round axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.metrics import Trace
from repro.experiments.scenarios import POLICY_NAMES, experiment_config
from repro.experiments.sweep import PolicySpec, SweepCache, SweepJob, run_sweep

__all__ = ["Band", "aggregate_on_rounds", "aggregate_on_times", "multi_seed_suite"]


@dataclass(frozen=True)
class Band:
    """A mean ± std series on a common x grid."""

    x: np.ndarray
    mean: np.ndarray
    std: np.ndarray

    def __post_init__(self) -> None:
        for name in ("x", "mean", "std"):
            object.__setattr__(self, name, np.asarray(getattr(self, name), dtype=float))
        if not (self.x.shape == self.mean.shape == self.std.shape):
            raise ValueError("band arrays must share a shape")


def aggregate_on_rounds(traces: Sequence[Trace], metric: str = "test_accuracy") -> Band:
    """Per-round mean ± std across traces (truncated to the shortest run)."""
    if not traces:
        raise ValueError("need at least one trace")
    horizon = min(len(tr) for tr in traces)
    if horizon == 0:
        raise ValueError("traces must be nonempty")
    stacked = np.stack([tr.column(metric)[:horizon] for tr in traces])
    return Band(
        x=np.arange(1, horizon + 1, dtype=float),
        mean=stacked.mean(axis=0),
        std=stacked.std(axis=0),
    )


def aggregate_on_times(
    traces: Sequence[Trace],
    num_points: int = 20,
    metric: str = "test_accuracy",
) -> Band:
    """Mean ± std of the step-function metric-vs-time curves on a shared
    time grid spanning the shortest run (so every trace covers the grid)."""
    if not traces:
        raise ValueError("need at least one trace")
    if num_points < 2:
        raise ValueError("need at least two grid points")
    t_end = min(float(tr.times[-1]) for tr in traces if len(tr) > 0)
    grid = np.linspace(0.0, t_end, num_points)
    rows = []
    for tr in traces:
        times = tr.times
        vals = tr.column(metric)
        idx = np.searchsorted(times, grid, side="right") - 1
        rows.append(np.where(idx >= 0, vals[np.maximum(idx, 0)], 0.0))
    stacked = np.stack(rows)
    return Band(x=grid, mean=stacked.mean(axis=0), std=stacked.std(axis=0))


def multi_seed_suite(
    dataset: str,
    iid: bool,
    seeds: Sequence[int],
    policies: Sequence[str] = POLICY_NAMES,
    workers: int = 1,
    cache: Optional[SweepCache] = None,
    **config_kwargs,
) -> Dict[str, List[Trace]]:
    """Run the policy suite once per seed; group traces by policy.

    The whole seeds × policies grid goes through the sweep engine as one
    call, so ``workers > 1`` parallelizes across seeds and policies at
    once.  Extra keyword arguments (``budget``, ``num_clients``,
    ``max_epochs``, ...) are forwarded to
    :func:`~repro.experiments.scenarios.experiment_config`.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    jobs = [
        SweepJob(
            policy=PolicySpec(name=name),
            config=experiment_config(
                dataset=dataset, iid=iid, seed=seed, **config_kwargs
            ),
        )
        for seed in seeds
        for name in policies
    ]
    results = run_sweep(jobs, workers=workers, cache=cache)
    out: Dict[str, List[Trace]] = {}
    for job, res in zip(jobs, results):
        out.setdefault(job.policy.name, []).append(res.trace)
    return out
