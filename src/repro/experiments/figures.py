"""Figure regeneration (paper Figs. 2-7).

Each ``figN`` function runs the four policies (FedL, FedAvg, FedCS, Pow-d)
on the corresponding scenario and returns the plotted series:

* Figs. 2-3 — test accuracy vs simulated training time (FMNIST / CIFAR-10,
  IID and non-IID panels).
* Figs. 4-5 — test accuracy vs federated round.
* Figs. 6-7 — final loss vs budget (budget sweep).

All of them execute through the sweep engine
(:mod:`repro.experiments.sweep`), so ``workers > 1`` fans the independent
runs out over a process pool and an optional ``cache`` makes re-runs
serve from disk — with output bit-identical to the serial loop either
way.  The benchmark files under ``benchmarks/`` call these and print the
series with :func:`repro.experiments.reporting.format_series` so every
paper figure has a regenerating target (DESIGN.md §4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.metrics import Trace
from repro.experiments.scenarios import POLICY_NAMES, experiment_config
from repro.experiments.sweep import PolicySpec, SweepCache, SweepJob, run_sweep

__all__ = [
    "run_policy_suite",
    "accuracy_vs_time",
    "accuracy_vs_round",
    "budget_sweep",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
]

Series = Dict[str, List[Tuple[float, float]]]


def run_policy_suite(
    dataset: str,
    iid: bool,
    budget: float = 2500.0,
    seed: int = 0,
    num_clients: int = 30,
    max_epochs: int = 150,
    policies: Sequence[str] = POLICY_NAMES,
    workers: int = 1,
    cache: Optional[SweepCache] = None,
) -> Dict[str, Trace]:
    """Run every policy on identical environments (same seed)."""
    cfg = experiment_config(
        dataset=dataset,
        iid=iid,
        budget=budget,
        seed=seed,
        num_clients=num_clients,
        max_epochs=max_epochs,
    )
    jobs = [SweepJob(policy=PolicySpec(name=name), config=cfg) for name in policies]
    results = run_sweep(jobs, workers=workers, cache=cache)
    return {job.policy.name: res.trace for job, res in zip(jobs, results)}


def accuracy_vs_time(traces: Dict[str, Trace]) -> Series:
    """Figs. 2-3 series: (cumulative seconds, test accuracy)."""
    return {
        name: list(zip(tr.times.tolist(), tr.accuracy.tolist()))
        for name, tr in traces.items()
    }


def accuracy_vs_round(traces: Dict[str, Trace]) -> Series:
    """Figs. 4-5 series: (federated round, test accuracy)."""
    return {
        name: list(zip((tr.rounds + 1).tolist(), tr.accuracy.tolist()))
        for name, tr in traces.items()
    }


def budget_sweep(
    dataset: str,
    iid: bool,
    budgets: Sequence[float],
    seed: int = 0,
    num_clients: int = 30,
    max_epochs: int = 150,
    policies: Sequence[str] = POLICY_NAMES,
    workers: int = 1,
    cache: Optional[SweepCache] = None,
) -> Series:
    """Figs. 6-7 series: (budget, final test loss) per policy.

    The whole budgets × policies grid is submitted as one sweep, so the
    engine can keep every worker busy across budget levels.
    """
    jobs: List[SweepJob] = []
    for budget in budgets:
        cfg = experiment_config(
            dataset=dataset,
            iid=iid,
            budget=budget,
            seed=seed,
            num_clients=num_clients,
            max_epochs=max_epochs,
        )
        jobs.extend(
            SweepJob(policy=PolicySpec(name=name), config=cfg) for name in policies
        )
    results = run_sweep(jobs, workers=workers, cache=cache)
    out: Series = {name: [] for name in policies}
    for job, res in zip(jobs, results):
        out[job.policy.name].append(
            (float(job.config.budget), res.trace.final_loss)
        )
    return out


# --- named figure entry points (both IID panels by default; pass iid=False
#     for the right-hand Non-IID panels) ---------------------------------------


def fig2(iid: bool = True, **kwargs) -> Series:
    """Accuracy vs time, Fashion-MNIST."""
    return accuracy_vs_time(run_policy_suite("fmnist", iid, **kwargs))


def fig3(iid: bool = True, **kwargs) -> Series:
    """Accuracy vs time, CIFAR-10."""
    return accuracy_vs_time(run_policy_suite("cifar10", iid, **kwargs))


def fig4(iid: bool = True, **kwargs) -> Series:
    """Accuracy vs federated round, Fashion-MNIST."""
    return accuracy_vs_round(run_policy_suite("fmnist", iid, **kwargs))


def fig5(iid: bool = True, **kwargs) -> Series:
    """Accuracy vs federated round, CIFAR-10."""
    return accuracy_vs_round(run_policy_suite("cifar10", iid, **kwargs))


def fig6(
    iid: bool = True, budgets: Sequence[float] = (500, 1000, 2000, 4000), **kwargs
) -> Series:
    """Final loss vs budget, Fashion-MNIST."""
    return budget_sweep("fmnist", iid, budgets, **kwargs)


def fig7(
    iid: bool = True, budgets: Sequence[float] = (500, 1000, 2000, 4000), **kwargs
) -> Series:
    """Final loss vs budget, CIFAR-10."""
    return budget_sweep("cifar10", iid, budgets, **kwargs)
