"""Saving and loading experiment traces and results (JSON).

A downstream user running sweeps wants results on disk; this module
round-trips :class:`~repro.experiments.metrics.Trace` objects, full
:class:`~repro.experiments.runner.ExperimentResult` objects (trace +
config + ``stop_reason`` + ``final_w``), and bundles of either, through a
stable, versioned JSON schema.  The sweep cache
(:mod:`repro.experiments.sweep`) keys its entries on these schema
versions, so bumping a version transparently invalidates stale cache
entries.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Mapping

import numpy as np

from repro.config import (
    AttackConfig,
    DataConfig,
    DefenseConfig,
    ExperimentConfig,
    FedLConfig,
    NetworkConfig,
    PopulationConfig,
    SimConfig,
    TrainingConfig,
)
from repro.experiments.metrics import EpochRecord, Trace
from repro.experiments.runner import ExperimentResult

__all__ = [
    "trace_to_dict",
    "trace_from_dict",
    "save_traces",
    "load_traces",
    "config_to_dict",
    "config_from_dict",
    "result_to_dict",
    "result_from_dict",
    "save_results",
    "load_results",
    "SCHEMA_VERSION",
    "RESULT_SCHEMA_VERSION",
    "SUPPORTED_RESULT_SCHEMAS",
]

SCHEMA_VERSION = 1
# v2: configs gained the event-driven-runtime section ("sim"); results
# written by v1 (no "sim" key) still load with the default SimConfig.
# v3: configs gained the robustness sections ("attack"/"defense"); older
# results load with the benign defaults (no attack, plain aggregation).
# v4: results gained the optional "policy" self-description (the sweep
# engine's PolicySpec as a dict); older results load with policy=None.
RESULT_SCHEMA_VERSION = 4

#: Every result schema this reader understands (older versions load with
#: documented defaults for the fields they predate).
SUPPORTED_RESULT_SCHEMAS = (1, 2, 3, RESULT_SCHEMA_VERSION)


def _atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` without ever exposing a torn file.

    The payload goes to a temp file in the destination directory first and
    is moved into place with :func:`os.replace`, which is atomic on POSIX —
    a crash mid-write leaves either the old file or the new one, never a
    truncated JSON document.
    """
    fd, tmp = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def trace_to_dict(trace: Trace) -> dict:
    """Serialize a trace to plain JSON-ready data."""
    return {
        "schema": SCHEMA_VERSION,
        "policy_name": trace.policy_name,
        "records": [dataclasses.asdict(r) for r in trace.records],
    }


def trace_from_dict(data: Mapping) -> Trace:
    """Inverse of :func:`trace_to_dict`; validates the schema version."""
    version = data.get("schema")
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported trace schema: {version!r}")
    trace = Trace(policy_name=str(data["policy_name"]))
    for raw in data["records"]:
        trace.append(EpochRecord(**raw))
    return trace


def save_traces(traces: Mapping[str, Trace], path: str | Path) -> Path:
    """Write a bundle of named traces to ``path`` (.json)."""
    path = Path(path)
    payload = {
        "schema": SCHEMA_VERSION,
        "traces": {name: trace_to_dict(tr) for name, tr in traces.items()},
    }
    _atomic_write_text(path, json.dumps(payload))
    return path


def load_traces(path: str | Path) -> Dict[str, Trace]:
    """Read a bundle written by :func:`save_traces`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unsupported bundle schema: {payload.get('schema')!r}")
    return {
        name: trace_from_dict(data) for name, data in payload["traces"].items()
    }


# --- ExperimentConfig ---------------------------------------------------------


def config_to_dict(config: ExperimentConfig) -> dict:
    """Serialize a full experiment config to plain JSON-ready data.

    Tuples become JSON lists; :func:`config_from_dict` restores them, so
    the round trip reproduces an ``==``-equal config.
    """
    return dataclasses.asdict(config)


def _with_tuples(data: Mapping, *keys: str) -> dict:
    """Copy ``data`` with the named sequence fields coerced back to tuples."""
    out = dict(data)
    for key in keys:
        out[key] = tuple(out[key])
    return out


def config_from_dict(data: Mapping) -> ExperimentConfig:
    """Inverse of :func:`config_to_dict` (validation re-runs on construction)."""
    return ExperimentConfig(
        seed=int(data["seed"]),
        budget=float(data["budget"]),
        min_participants=int(data["min_participants"]),
        max_epochs=int(data["max_epochs"]),
        network=NetworkConfig(**data["network"]),
        population=PopulationConfig(
            **_with_tuples(data["population"], "cycles_per_bit_range", "cost_range")
        ),
        data=DataConfig(**data["data"]),
        training=TrainingConfig(**_with_tuples(data["training"], "hidden_units")),
        sim=SimConfig(**data.get("sim", {})),
        attack=AttackConfig(**data.get("attack", {})),
        defense=DefenseConfig(**data.get("defense", {})),
        fedl=FedLConfig(**data["fedl"]),
    )


# --- ExperimentResult ---------------------------------------------------------


def result_to_dict(result: ExperimentResult) -> dict:
    """Serialize a full experiment result (trace, config, stop, weights)."""
    return {
        "schema": RESULT_SCHEMA_VERSION,
        "trace": trace_to_dict(result.trace),
        "config": config_to_dict(result.config),
        "stop_reason": result.stop_reason,
        "final_w": np.asarray(result.final_w, dtype=float).tolist(),
        "policy": result.policy,
    }


def result_from_dict(data: Mapping) -> ExperimentResult:
    """Inverse of :func:`result_to_dict`; validates the schema version."""
    version = data.get("schema")
    if version not in SUPPORTED_RESULT_SCHEMAS:
        raise ValueError(f"unsupported result schema: {version!r}")
    policy = data.get("policy")
    return ExperimentResult(
        trace=trace_from_dict(data["trace"]),
        config=config_from_dict(data["config"]),
        stop_reason=str(data["stop_reason"]),
        final_w=np.asarray(data["final_w"], dtype=float),
        policy=dict(policy) if policy is not None else None,
    )


def save_results(results: Mapping[str, ExperimentResult], path: str | Path) -> Path:
    """Write a bundle of named experiment results to ``path`` (.json)."""
    path = Path(path)
    payload = {
        "schema": RESULT_SCHEMA_VERSION,
        "results": {name: result_to_dict(r) for name, r in results.items()},
    }
    _atomic_write_text(path, json.dumps(payload))
    return path


def load_results(path: str | Path) -> Dict[str, ExperimentResult]:
    """Read a bundle written by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") not in SUPPORTED_RESULT_SCHEMAS:
        raise ValueError(f"unsupported bundle schema: {payload.get('schema')!r}")
    return {
        name: result_from_dict(data) for name, data in payload["results"].items()
    }
