"""Saving and loading experiment traces (JSON).

A downstream user running sweeps wants results on disk; this module
round-trips :class:`~repro.experiments.metrics.Trace` objects and bundles
of traces through a stable, versioned JSON schema.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Mapping

from repro.experiments.metrics import EpochRecord, Trace

__all__ = ["trace_to_dict", "trace_from_dict", "save_traces", "load_traces"]

SCHEMA_VERSION = 1


def trace_to_dict(trace: Trace) -> dict:
    """Serialize a trace to plain JSON-ready data."""
    return {
        "schema": SCHEMA_VERSION,
        "policy_name": trace.policy_name,
        "records": [dataclasses.asdict(r) for r in trace.records],
    }


def trace_from_dict(data: Mapping) -> Trace:
    """Inverse of :func:`trace_to_dict`; validates the schema version."""
    version = data.get("schema")
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported trace schema: {version!r}")
    trace = Trace(policy_name=str(data["policy_name"]))
    for raw in data["records"]:
        trace.append(EpochRecord(**raw))
    return trace


def save_traces(traces: Mapping[str, Trace], path: str | Path) -> Path:
    """Write a bundle of named traces to ``path`` (.json)."""
    path = Path(path)
    payload = {
        "schema": SCHEMA_VERSION,
        "traces": {name: trace_to_dict(tr) for name, tr in traces.items()},
    }
    path.write_text(json.dumps(payload))
    return path


def load_traces(path: str | Path) -> Dict[str, Trace]:
    """Read a bundle written by :func:`save_traces`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unsupported bundle schema: {payload.get('schema')!r}")
    return {
        name: trace_from_dict(data) for name, data in payload["traces"].items()
    }
