"""Saving and loading experiment traces and results (JSON).

A downstream user running sweeps wants results on disk; this module
round-trips :class:`~repro.experiments.metrics.Trace` objects, full
:class:`~repro.experiments.runner.ExperimentResult` objects (trace +
config + ``stop_reason`` + ``final_w``), and bundles of either, through a
stable, versioned JSON schema.  The sweep cache
(:mod:`repro.experiments.sweep`) keys its entries on these schema
versions, so bumping a version transparently invalidates stale cache
entries.
"""

from __future__ import annotations

import atexit
import dataclasses
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, Mapping

import numpy as np

from repro.config import (
    AttackConfig,
    CheckpointConfig,
    DataConfig,
    DefenseConfig,
    ExperimentConfig,
    FedLConfig,
    LiveConfig,
    NetworkConfig,
    PopulationConfig,
    ShardConfig,
    SimConfig,
    TrainingConfig,
)
from repro.experiments.metrics import EpochRecord, Trace
from repro.experiments.runner import ExperimentResult

__all__ = [
    "trace_to_dict",
    "trace_from_dict",
    "save_traces",
    "load_traces",
    "config_to_dict",
    "config_from_dict",
    "result_to_dict",
    "result_from_dict",
    "save_results",
    "load_results",
    "atomic_write_text",
    "clean_stale_tmps",
    "SCHEMA_VERSION",
    "RESULT_SCHEMA_VERSION",
    "SUPPORTED_RESULT_SCHEMAS",
]

SCHEMA_VERSION = 1
# v2: configs gained the event-driven-runtime section ("sim"); results
# written by v1 (no "sim" key) still load with the default SimConfig.
# v3: configs gained the robustness sections ("attack"/"defense"); older
# results load with the benign defaults (no attack, plain aggregation).
# v4: results gained the optional "policy" self-description (the sweep
# engine's PolicySpec as a dict); older results load with policy=None.
# v5: config round-trips became lossless — the reader now restores the
# "live", "shard", and (new) "checkpoint" sections it previously dropped;
# older results load those sections with their defaults.
RESULT_SCHEMA_VERSION = 5

#: Every result schema this reader understands (older versions load with
#: documented defaults for the fields they predate).
SUPPORTED_RESULT_SCHEMAS = (1, 2, 3, 4, RESULT_SCHEMA_VERSION)

# Temp files currently being written by this process, swept at interpreter
# exit so an aborted run (uncaught exception, sys.exit, handled signal)
# never leaves `*.tmp` litter next to its outputs.  A SIGKILL mid-write
# still strands the file — :func:`clean_stale_tmps` is the second line of
# defense the next process runs over the same directory.
_INFLIGHT_TMPS: set = set()
_INFLIGHT_LOCK = threading.Lock()


def _reap_inflight_tmps() -> None:
    with _INFLIGHT_LOCK:
        stranded = list(_INFLIGHT_TMPS)
        _INFLIGHT_TMPS.clear()
    for tmp in stranded:
        try:
            os.unlink(tmp)
        except OSError:
            pass


atexit.register(_reap_inflight_tmps)


def clean_stale_tmps(directory: str | Path) -> int:
    """Remove torn-write litter (``.<name>.*.tmp`` / ``<name>.tmp<pid>``)
    left in ``directory`` by a process that died between temp-file
    creation and :func:`os.replace`.  Returns the number removed.

    Only files matching the atomic writers' temp naming are touched;
    called by long-lived writers (sweep cache, checkpoints) when they
    (re)open a directory, where any survivor is by construction stale.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    removed = 0
    for entry in directory.iterdir():
        name = entry.name
        is_mkstemp_tmp = name.startswith(".") and name.endswith(".tmp")
        is_pid_tmp = ".tmp" in name and name.rsplit(".tmp", 1)[1].isdigit()
        if (is_mkstemp_tmp or is_pid_tmp) and entry.is_file():
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
    return removed


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` without ever exposing a torn file.

    The payload goes to a temp file in the destination directory first and
    is moved into place with :func:`os.replace`, which is atomic on POSIX —
    a crash mid-write leaves either the old file or the new one, never a
    truncated JSON document.  The temp path is tracked while in flight and
    reaped at interpreter exit, so exits that skip the ``except`` path
    (e.g. a SIGTERM handler calling ``sys.exit``) leave no litter either.
    """
    fd, tmp = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=f".{path.name}.", suffix=".tmp"
    )
    with _INFLIGHT_LOCK:
        _INFLIGHT_TMPS.add(tmp)
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    finally:
        with _INFLIGHT_LOCK:
            _INFLIGHT_TMPS.discard(tmp)


#: Backwards-compatible alias (pre-PR10 internal name).
_atomic_write_text = atomic_write_text


#: EpochRecord is flat (scalars only), so serialization reads the fields
#: directly — ``dataclasses.asdict`` pays for recursive deep-copying the
#: records never need, which matters once checkpointing re-serializes
#: the growing trace every snapshot.
_EPOCH_RECORD_FIELDS = tuple(f.name for f in dataclasses.fields(EpochRecord))


def trace_to_dict(trace: Trace) -> dict:
    """Serialize a trace to plain JSON-ready data."""
    return {
        "schema": SCHEMA_VERSION,
        "policy_name": trace.policy_name,
        "records": [
            {name: getattr(r, name) for name in _EPOCH_RECORD_FIELDS}
            for r in trace.records
        ],
    }


def trace_from_dict(data: Mapping) -> Trace:
    """Inverse of :func:`trace_to_dict`; validates the schema version."""
    version = data.get("schema")
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported trace schema: {version!r}")
    trace = Trace(policy_name=str(data["policy_name"]))
    for raw in data["records"]:
        trace.append(EpochRecord(**raw))
    return trace


def save_traces(traces: Mapping[str, Trace], path: str | Path) -> Path:
    """Write a bundle of named traces to ``path`` (.json)."""
    path = Path(path)
    payload = {
        "schema": SCHEMA_VERSION,
        "traces": {name: trace_to_dict(tr) for name, tr in traces.items()},
    }
    _atomic_write_text(path, json.dumps(payload))
    return path


def load_traces(path: str | Path) -> Dict[str, Trace]:
    """Read a bundle written by :func:`save_traces`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unsupported bundle schema: {payload.get('schema')!r}")
    return {
        name: trace_from_dict(data) for name, data in payload["traces"].items()
    }


# --- ExperimentConfig ---------------------------------------------------------


def config_to_dict(config: ExperimentConfig) -> dict:
    """Serialize a full experiment config to plain JSON-ready data.

    Tuples become JSON lists; :func:`config_from_dict` restores them, so
    the round trip reproduces an ``==``-equal config.
    """
    return dataclasses.asdict(config)


def _with_tuples(data: Mapping, *keys: str) -> dict:
    """Copy ``data`` with the named sequence fields coerced back to tuples."""
    out = dict(data)
    for key in keys:
        out[key] = tuple(out[key])
    return out


def config_from_dict(data: Mapping) -> ExperimentConfig:
    """Inverse of :func:`config_to_dict` (validation re-runs on construction)."""
    return ExperimentConfig(
        seed=int(data["seed"]),
        budget=float(data["budget"]),
        min_participants=int(data["min_participants"]),
        max_epochs=int(data["max_epochs"]),
        network=NetworkConfig(**data["network"]),
        population=PopulationConfig(
            **_with_tuples(data["population"], "cycles_per_bit_range", "cost_range")
        ),
        data=DataConfig(**data["data"]),
        training=TrainingConfig(**_with_tuples(data["training"], "hidden_units")),
        sim=SimConfig(**data.get("sim", {})),
        live=LiveConfig(**data.get("live", {})),
        attack=AttackConfig(**data.get("attack", {})),
        defense=DefenseConfig(**data.get("defense", {})),
        fedl=FedLConfig(**data["fedl"]),
        shard=ShardConfig(**data.get("shard", {})),
        checkpoint=CheckpointConfig(**data.get("checkpoint", {})),
    )


# --- ExperimentResult ---------------------------------------------------------


def result_to_dict(result: ExperimentResult) -> dict:
    """Serialize a full experiment result (trace, config, stop, weights)."""
    return {
        "schema": RESULT_SCHEMA_VERSION,
        "trace": trace_to_dict(result.trace),
        "config": config_to_dict(result.config),
        "stop_reason": result.stop_reason,
        "final_w": np.asarray(result.final_w, dtype=float).tolist(),
        "policy": result.policy,
    }


def result_from_dict(data: Mapping) -> ExperimentResult:
    """Inverse of :func:`result_to_dict`; validates the schema version."""
    version = data.get("schema")
    if version not in SUPPORTED_RESULT_SCHEMAS:
        raise ValueError(f"unsupported result schema: {version!r}")
    policy = data.get("policy")
    return ExperimentResult(
        trace=trace_from_dict(data["trace"]),
        config=config_from_dict(data["config"]),
        stop_reason=str(data["stop_reason"]),
        final_w=np.asarray(data["final_w"], dtype=float),
        policy=dict(policy) if policy is not None else None,
    )


def save_results(results: Mapping[str, ExperimentResult], path: str | Path) -> Path:
    """Write a bundle of named experiment results to ``path`` (.json)."""
    path = Path(path)
    payload = {
        "schema": RESULT_SCHEMA_VERSION,
        "results": {name: result_to_dict(r) for name, r in results.items()},
    }
    _atomic_write_text(path, json.dumps(payload))
    return path


def load_results(path: str | Path) -> Dict[str, ExperimentResult]:
    """Read a bundle written by :func:`save_results`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") not in SUPPORTED_RESULT_SCHEMAS:
        raise ValueError(f"unsupported bundle schema: {payload.get('schema')!r}")
    return {
        name: result_from_dict(data) for name, data in payload["results"].items()
    }
