"""Trace invariant checking.

A run of the budget-constrained FL process must satisfy structural
invariants regardless of policy or configuration.  :func:`validate_trace`
checks them all and returns the violations (empty list = clean), so tests
and post-hoc analyses share one definition of "well-formed run":

* I1  budget: total spend <= C and remaining_budget is its running mirror
* I2  time: cumulative_time is strictly increasing and equals the sum of
      epoch latencies
* I3  participation: num_selected >= min(n, num_available) and
      num_selected <= num_available
* I4  iterations: l_t >= 1; FedL's ρ (when finite) satisfies
      ceil(ρ) == l_t and ρ >= 1
* I5  bounded metrics: accuracies in [0, 1], losses nonnegative, failures
      within the selection
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.config import ExperimentConfig
from repro.experiments.metrics import Trace

__all__ = ["validate_trace"]


def validate_trace(
    trace: Trace,
    config: ExperimentConfig,
    atol: float = 1e-6,
) -> List[str]:
    """Return a list of human-readable invariant violations (empty = ok)."""
    problems: List[str] = []
    if len(trace) == 0:
        return problems

    # I1 — budget accounting.
    spent = trace.column("cost_spent")
    remaining = trace.column("remaining_budget")
    if spent.sum() > config.budget + atol:
        problems.append(
            f"I1: total spend {spent.sum():.4f} exceeds budget {config.budget}"
        )
    running = config.budget - np.cumsum(spent)
    if not np.allclose(running, remaining, atol=atol):
        problems.append("I1: remaining_budget does not mirror cumulative spend")
    if np.any(remaining < -atol):
        problems.append("I1: remaining_budget went negative")

    # I2 — time accounting.
    times = trace.times
    lat = trace.column("epoch_latency")
    if np.any(np.diff(times) <= 0):
        problems.append("I2: cumulative_time is not strictly increasing")
    if not np.allclose(np.cumsum(lat), times, atol=atol):
        problems.append("I2: cumulative_time != cumsum(epoch_latency)")
    if np.any(lat <= 0):
        problems.append("I2: nonpositive epoch latency")

    # I3 — participation.
    sel = trace.column("num_selected")
    avail = trace.column("num_available")
    n = config.min_participants
    if np.any(sel > avail):
        problems.append("I3: selected more clients than available")
    if np.any(sel < np.minimum(n, avail)):
        problems.append("I3: participation floor violated")

    # I4 — iteration control.
    iters = trace.column("iterations")
    if np.any(iters < 1):
        problems.append("I4: iterations < 1")
    rho = trace.column("rho")
    finite = np.isfinite(rho)
    if np.any(finite):
        if np.any(rho[finite] < 1.0 - atol):
            problems.append("I4: rho < 1")
        expected = np.array([math.ceil(r - 1e-9) for r in rho[finite]])
        if np.any(expected != iters[finite]):
            problems.append("I4: iterations != ceil(rho)")

    # I5 — bounded metrics.
    acc = trace.accuracy
    if np.any((acc < 0) | (acc > 1)):
        problems.append("I5: accuracy outside [0, 1]")
    if np.any(trace.column("test_loss") < 0):
        problems.append("I5: negative test loss")
    if np.any(trace.column("population_loss") < 0):
        problems.append("I5: negative population loss")
    failed = trace.column("num_failed")
    if np.any((failed < 0) | (failed > sel)):
        problems.append("I5: failure count outside [0, num_selected]")

    return problems
