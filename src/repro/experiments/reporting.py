"""Plain-text rendering of tables and series (bench harness output)."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

__all__ = ["format_table", "format_series"]


def _fmt(v) -> str:
    if v is None:
        return "--"
    if isinstance(v, float):
        if not np.isfinite(v):
            return "inf" if v > 0 else "-inf"
        return f"{v:.4g}"
    return str(v)


def format_table(
    rows: Mapping[str, Mapping[str, object]],
    title: Optional[str] = None,
) -> str:
    """Render ``{row_label: {column: value}}`` as an aligned ASCII table."""
    if not rows:
        return "(empty table)"
    columns: list[str] = []
    for row in rows.values():
        for col in row:
            if col not in columns:
                columns.append(col)
    header = ["policy"] + columns
    body = [
        [label] + [_fmt(row.get(col)) for col in columns]
        for label, row in rows.items()
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[tuple]],
    x_label: str,
    y_label: str,
    title: Optional[str] = None,
    max_points: int = 12,
) -> str:
    """Render named (x, y) series as a compact aligned listing.

    Long series are subsampled to ``max_points`` evenly spaced points —
    enough to read off the *shape* (who wins, where crossovers are).
    """
    lines = []
    if title:
        lines.append(title)
    lines.append(f"  [{x_label} -> {y_label}]")
    for name, pts in series.items():
        pts = list(pts)
        if len(pts) > max_points:
            idx = np.linspace(0, len(pts) - 1, max_points).astype(int)
            pts = [pts[i] for i in idx]
        body = "  ".join(f"({_fmt(float(x))}, {_fmt(float(y))})" for x, y in pts)
        lines.append(f"  {name:10s} {body}")
    return "\n".join(lines)
