"""Process-parallel sweep engine with content-addressed result caching.

Every figure/table in the paper is a grid of independent
``run_experiment`` calls (policies × seeds × budgets).  This module turns
that grid into first-class *jobs* and executes them:

* **in parallel** on a :class:`concurrent.futures.ProcessPoolExecutor`
  (worker count configurable, default ``os.cpu_count()``), with
  ``workers=1`` as an in-process serial fallback for debugging;
* **deterministically** — each job carries its full
  :class:`~repro.config.ExperimentConfig` and a :class:`PolicySpec`, and
  the worker re-derives the policy RNG from the config seed via
  :class:`~repro.rng.RngFactory`, so parallel output is bit-identical to
  the serial loop regardless of scheduling order;
* **cached** — an on-disk :class:`SweepCache` keyed by a stable SHA-256
  content hash of (config, policy spec, schema versions) means a re-run
  only executes cache misses.

Usage::

    jobs = [SweepJob(PolicySpec("FedL"), cfg) for cfg in configs]
    results = run_sweep(jobs, workers=4, cache=SweepCache("~/.cache/repro"))

``run_sweep`` also accepts plain ``(policy_name_or_spec, config)`` tuples
and always returns results in job order.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from repro.config import CheckpointConfig, ExperimentConfig
from repro.experiments.persistence import (
    RESULT_SCHEMA_VERSION,
    SCHEMA_VERSION,
    atomic_write_text,
    clean_stale_tmps,
    result_from_dict,
    result_to_dict,
)
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.experiments.scenarios import make_policy
from repro.obs import Telemetry, get_telemetry, set_telemetry, use_telemetry
from repro.rng import RngFactory

__all__ = [
    "PolicySpec",
    "SweepJob",
    "SweepCache",
    "SweepProgress",
    "CACHE_SCHEMA_VERSION",
    "canonical_hash",
    "job_fingerprint",
    "job_key",
    "execute_job",
    "run_sweep",
    "results_identical",
    "default_cache_dir",
]

# Bump to invalidate every existing cache entry (e.g. when run_experiment's
# semantics change in a way the config/schema versions don't capture).
# v2: PolicySpec gained the event-driven-runtime fields (engine,
# aggregation, fault profile) and configs gained the "sim" section.
# v3: PolicySpec gained the robustness overlay fields (attack,
# attack_fraction, defense) and configs the "attack"/"defense" sections.
# v4: PolicySpec gained strategy-registry parameter overrides ("params")
# and results carry a "policy" self-description.
# v5: configs gained the "checkpoint" section.  It is excluded from the
# fingerprint (a job's result is independent of where snapshots are
# written), so runs that differ only in checkpointing share entries.
CACHE_SCHEMA_VERSION = 5


@dataclass(frozen=True)
class PolicySpec:
    """Picklable description of how to build a selection policy.

    ``rng_stream`` names the :class:`~repro.rng.RngFactory` stream the
    policy RNG is drawn from; the default (``policy.<name>``) matches the
    stream :func:`~repro.experiments.figures.run_policy_suite` has always
    used, so engine runs are bit-compatible with the historical serial
    loop.

    The runtime fields overlay the job config when set: ``engine``
    overrides ``TrainingConfig.engine``, and ``aggregation`` /
    ``sim_deadline_s`` / ``quorum`` / ``fault_profile`` override the
    config's :class:`~repro.config.SimConfig` — so one sweep grid can
    compare aggregation policies and fault profiles without hand-building
    a config per cell.  (``deadline_s`` is the FedCS *selection* deadline;
    ``sim_deadline_s`` is the runtime's barrier deadline.)  Likewise
    ``attack`` / ``attack_fraction`` / ``defense`` overlay the config's
    :class:`~repro.config.AttackConfig` / :class:`~repro.config.DefenseConfig`
    for robustness grids (attack kinds × defenses).

    ``params`` holds strategy-registry parameter overrides (see
    :mod:`repro.strategies`): pass a dict (or pairs) and it is normalized
    to a sorted tuple of ``(key, value)`` pairs so the spec stays frozen,
    hashable, and order-insensitive in the cache key.
    """

    name: str
    iterations: int = 2
    deadline_s: Optional[float] = None
    rng_stream: Optional[str] = None
    engine: Optional[str] = None
    aggregation: Optional[str] = None
    sim_deadline_s: Optional[float] = None
    quorum: Optional[int] = None
    fault_profile: Optional[str] = None
    attack: Optional[str] = None
    attack_fraction: Optional[float] = None
    defense: Optional[str] = None
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        raw = self.params
        if isinstance(raw, dict):
            pairs = raw.items()
        else:
            pairs = (tuple(p) for p in raw)
        normalized = tuple(sorted((str(k), v) for k, v in pairs))
        for key, value in normalized:
            if value is not None and not isinstance(value, (bool, int, float, str)):
                raise TypeError(
                    f"params[{key!r}] must be a JSON scalar, got {type(value).__name__}"
                )
        object.__setattr__(self, "params", normalized)

    @property
    def stream(self) -> str:
        return self.rng_stream or f"policy.{self.name}"

    @property
    def params_dict(self) -> Dict[str, object]:
        """The parameter overrides as a plain dict."""
        return dict(self.params)

    def apply_to(self, config: ExperimentConfig) -> ExperimentConfig:
        """Overlay the runtime fields onto ``config`` (validation re-runs
        on construction, so an inconsistent overlay raises here)."""
        if (
            self.engine is None
            and self.aggregation is None
            and self.sim_deadline_s is None
            and self.quorum is None
            and self.fault_profile is None
            and self.attack is None
            and self.attack_fraction is None
            and self.defense is None
        ):
            return config
        training = dataclasses.replace(
            config.training, engine=self.engine or config.training.engine
        )
        sim = dataclasses.replace(
            config.sim,
            aggregation=self.aggregation or config.sim.aggregation,
            deadline_s=(
                self.sim_deadline_s
                if self.sim_deadline_s is not None
                else config.sim.deadline_s
            ),
            quorum=self.quorum if self.quorum is not None else config.sim.quorum,
            faults=self.fault_profile or config.sim.faults,
        )
        attack = dataclasses.replace(
            config.attack,
            kind=self.attack or config.attack.kind,
            fraction=(
                self.attack_fraction
                if self.attack_fraction is not None
                else config.attack.fraction
            ),
        )
        defense = dataclasses.replace(
            config.defense, aggregator=self.defense or config.defense.aggregator
        )
        return dataclasses.replace(
            config, training=training, sim=sim, attack=attack, defense=defense
        )


@dataclass(frozen=True)
class SweepJob:
    """One unit of sweep work: a policy on a fully specified experiment."""

    policy: PolicySpec
    config: ExperimentConfig
    target_accuracy: Optional[float] = None


JobLike = Union[
    SweepJob,
    Tuple[Union[str, PolicySpec], ExperimentConfig],
    Tuple[Union[str, PolicySpec], ExperimentConfig, Optional[float]],
]


def as_job(job: JobLike) -> SweepJob:
    """Coerce a job-like value (``SweepJob`` or tuple) to a ``SweepJob``."""
    if isinstance(job, SweepJob):
        return job
    if isinstance(job, tuple) and len(job) in (2, 3):
        policy = job[0]
        if isinstance(policy, str):
            policy = PolicySpec(name=policy)
        target = job[2] if len(job) == 3 else None
        return SweepJob(policy=policy, config=job[1], target_accuracy=target)
    raise TypeError(
        "expected SweepJob or (policy, config[, target_accuracy]) tuple, "
        f"got {job!r}"
    )


# --- content-addressed cache keys ---------------------------------------------


def canonical_hash(obj) -> str:
    """SHA-256 of the canonical JSON encoding of ``obj``.

    ``sort_keys`` makes the digest independent of dict insertion order, so
    logically equal payloads hash identically; ``allow_nan=False`` rejects
    values JSON cannot round-trip exactly.
    """
    encoded = json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


def job_fingerprint(job: JobLike) -> dict:
    """The JSON-ready payload a job's cache key is computed from.

    Includes every schema version involved in persisting a result, so a
    schema bump invalidates old entries instead of deserializing them
    wrongly.
    """
    job = as_job(job)
    config = dataclasses.asdict(job.config)
    # Where (or whether) snapshots are written cannot change what a job
    # computes, so the checkpoint section must not split the cache key.
    config.pop("checkpoint", None)
    return {
        "cache_schema": CACHE_SCHEMA_VERSION,
        "result_schema": RESULT_SCHEMA_VERSION,
        "trace_schema": SCHEMA_VERSION,
        "config": config,
        "policy": dataclasses.asdict(job.policy),
        "target_accuracy": job.target_accuracy,
    }


def job_key(job: JobLike) -> str:
    """Stable content hash identifying a job's result."""
    return canonical_hash(job_fingerprint(job))


# --- the on-disk cache --------------------------------------------------------


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR/sweeps`` if set, else ``~/.cache/repro/sweeps``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    base = Path(env).expanduser() if env else Path.home() / ".cache" / "repro"
    return base / "sweeps"


class SweepCache:
    """Directory of ``<job_key>.json`` files holding serialized results.

    Unreadable, corrupt, or schema-stale entries are treated as misses
    (and overwritten on the next store), never as errors — a cache must
    not be able to break a sweep.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        # Any surviving temp file is torn-write litter from a process
        # that died mid-store; sweep it on (re)open.
        clean_stale_tmps(self.root)

    @classmethod
    def default(cls) -> "SweepCache":
        return cls(default_cache_dir())

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[ExperimentResult]:
        """Return the cached result for ``key``, or ``None`` on any miss."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("cache_schema") != CACHE_SCHEMA_VERSION:
            return None
        try:
            return result_from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def store(self, key: str, job: JobLike, result: ExperimentResult) -> Path:
        """Persist ``result`` under ``key``; the job fingerprint rides along
        for debuggability.  The write is staged through a temp file so a
        concurrent reader never sees a half-written entry."""
        path = self.path_for(key)
        payload = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "job": job_fingerprint(job),
            "result": result_to_dict(result),
        }
        atomic_write_text(path, json.dumps(payload))
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            removed += 1
        return removed


# --- execution ----------------------------------------------------------------


def execute_job(job: JobLike) -> ExperimentResult:
    """Materialize and run one job (this is the process-pool entry point).

    The policy RNG is re-derived from the config seed and the spec's
    stream name, so execution is a pure function of the job value — the
    foundation of both determinism and cacheability.
    """
    job = as_job(job)
    config = job.policy.apply_to(job.config)
    # Self-describing results: the spec rides along through persistence.
    # The JSON round trip normalizes tuples to lists up front, so cached
    # copies compare exactly equal to fresh ones.  The checkpoint section
    # is reset in returned results for the same reason it is excluded
    # from cache keys: it is purely operational, and per-job snapshot
    # paths must not make otherwise-identical results compare unequal.
    spec_dict = json.loads(json.dumps(dataclasses.asdict(job.policy)))

    def canonical(result: ExperimentResult) -> ExperimentResult:
        return dataclasses.replace(
            result,
            config=result.config.replace(checkpoint=CheckpointConfig()),
            policy=spec_dict,
        )

    if config.checkpoint.directory is not None:
        # Checkpointing sweeps give every job its own snapshot directory
        # keyed by content hash (checkpointing itself never splits the
        # key), so a killed grid resumes each in-flight job mid-run
        # instead of redoing it.  Anything unusable on disk is a miss,
        # never an error — same contract as the result cache.
        from repro.checkpoint import (
            CheckpointError,
            latest_snapshot_path,
            resume_experiment,
        )

        job_dir = Path(config.checkpoint.directory) / "jobs" / job_key(job)
        config = config.replace(
            checkpoint=dataclasses.replace(
                config.checkpoint, directory=str(job_dir)
            )
        )
        try:
            latest_snapshot_path(job_dir)
        except CheckpointError:
            pass  # nothing on disk yet: run from scratch below
        else:
            try:
                result = resume_experiment(
                    job_dir, target_accuracy=job.target_accuracy
                )
            except CheckpointError:
                pass
            else:
                return canonical(result)
    rng = RngFactory(config.seed).get(job.policy.stream)
    policy = make_policy(
        job.policy.name,
        config,
        rng,
        iterations=job.policy.iterations,
        deadline_s=job.policy.deadline_s,
        params=job.policy.params_dict or None,
    )
    result = run_experiment(policy, config, target_accuracy=job.target_accuracy)
    return canonical(result)


# -- telemetry plumbing --------------------------------------------------------
#
# Telemetry never changes what a job computes (instrumentation reads no
# RNG and touches no result), so the cache key is unaffected and traced
# sweeps stay bit-identical to untraced ones.


def _job_run_id(job: SweepJob, key: str) -> str:
    """Human-readable per-job run id used to scope worker events."""
    return (
        f"{job.policy.name}[budget={job.config.budget:g},"
        f"seed={job.config.seed}]#{key[:8]}"
    )


def _worker_init(telemetry_dir: Optional[str]) -> None:
    """Pool initializer: give each worker its own hub (or the null hub).

    Replacing the inherited hub is mandatory — a forked worker would
    otherwise write into the parent's open event file.
    """
    if telemetry_dir is None:
        set_telemetry(None)
    else:
        set_telemetry(
            Telemetry.for_directory(
                telemetry_dir, run_id="sweep", worker=f"w{os.getpid()}"
            )
        )


def _traced_execute(job: SweepJob, key: str) -> ExperimentResult:
    """Worker/serial entry point: run one job under its run scope.

    The job is timed as ``sweep.job`` (per-worker utilization in the
    manifest) and the worker's cumulative registry snapshot is re-dumped
    after every job so a crashed worker still leaves its last state.
    """
    hub = get_telemetry()
    if not hub.enabled:
        return execute_job(job)
    with hub.run_scope(_job_run_id(job, key)):
        with hub.timer("sweep.job"):
            result = execute_job(job)
    hub.dump_worker_snapshot()
    hub.flush()
    return result


@dataclass(frozen=True)
class SweepProgress:
    """One progress event: job ``index`` finished (``done`` of ``total``)."""

    index: int
    total: int
    job: SweepJob
    key: str
    cached: bool
    done: int


ProgressFn = Callable[[SweepProgress], None]


def _copy_result(result: ExperimentResult) -> ExperimentResult:
    """Independent deep copy via the persistence round trip (exact)."""
    return result_from_dict(result_to_dict(result))


def run_sweep(
    jobs: Iterable[JobLike],
    workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
    progress: Optional[ProgressFn] = None,
    telemetry: Optional[Telemetry] = None,
) -> List[ExperimentResult]:
    """Run every job, reusing cached results, and return results in job order.

    ``workers=None`` uses ``os.cpu_count()``; ``workers=1`` runs serially
    in-process (no executor), which is the debugging fallback.  Duplicate
    jobs (identical content hash) execute once and the extra indices get
    independent copies.  ``progress`` is called once per finished job with
    a :class:`SweepProgress` event (from the main process; ordering across
    parallel jobs follows completion, not submission).

    ``telemetry`` is the sweep-level hub: it receives ``sweep.start`` /
    per-job ``sweep.job`` (cache hit/miss) / ``sweep.complete`` events
    and, when it has a trace directory, each pool worker opens its own
    ``events-w<pid>.jsonl`` there plus a registry snapshot the caller's
    :meth:`~repro.obs.Telemetry.finalize` merges into the manifest.
    Telemetry never alters results or cache keys.
    """
    jobs = [as_job(j) for j in jobs]
    total = len(jobs)
    if total == 0:
        return []
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be >= 1")
    tel = telemetry if telemetry is not None else get_telemetry()

    keys = [job_key(j) for j in jobs]
    results: List[Optional[ExperimentResult]] = [None] * total
    done = 0
    cache_hits = 0
    tel.emit(
        "sweep.start",
        data={"jobs": total, "workers": workers, "cached_backend": cache is not None},
    )

    def emit(index: int, cached: bool) -> None:
        nonlocal done
        done += 1
        job = jobs[index]
        tel.emit(
            "sweep.job",
            data={
                "index": index,
                "key": keys[index][:16],
                "policy": job.policy.name,
                "budget": job.config.budget,
                "seed": job.config.seed,
                "cached": cached,
                "done": done,
                "total": total,
            },
        )
        if progress is not None:
            progress(
                SweepProgress(
                    index=index,
                    total=total,
                    job=job,
                    key=keys[index],
                    cached=cached,
                    done=done,
                )
            )

    if cache is not None:
        for i, key in enumerate(keys):
            hit = cache.load(key)
            if hit is not None:
                results[i] = hit
                cache_hits += 1
                tel.counter("sweep.cache_hits")
                emit(i, cached=True)

    # Group outstanding indices by key so duplicate jobs run once.
    pending: Dict[str, List[int]] = {}
    for i in range(total):
        if results[i] is None:
            pending.setdefault(keys[i], []).append(i)

    def install(key: str, result: ExperimentResult) -> None:
        indices = pending[key]
        if cache is not None:
            cache.store(key, jobs[indices[0]], result)
        tel.counter("sweep.cache_misses")
        for j, i in enumerate(indices):
            results[i] = result if j == 0 else _copy_result(result)
            emit(i, cached=False)

    telemetry_dir = (
        str(tel.directory) if tel.enabled and tel.directory is not None else None
    )
    if workers == 1 or len(pending) <= 1:
        # Serial fallback runs in-process: install the sweep hub so the
        # jobs' own instrumentation lands in the same trace.
        with use_telemetry(tel):
            for key in pending:
                install(key, _traced_execute(jobs[pending[key][0]], key))
    else:
        # The initializer always replaces the inherited hub, so forked
        # workers either trace into their own files or stay silent.
        with ProcessPoolExecutor(
            max_workers=min(workers, len(pending)),
            initializer=_worker_init,
            initargs=(telemetry_dir,),
        ) as pool:
            futures = {
                pool.submit(_traced_execute, jobs[pending[key][0]], key): key
                for key in pending
            }
            for fut in as_completed(futures):
                install(futures[fut], fut.result())

    tel.emit(
        "sweep.complete",
        data={
            "jobs": total,
            "cache_hits": cache_hits,
            "executed": len(pending),
        },
    )
    return results  # type: ignore[return-value]  # every slot is filled


def results_identical(a: ExperimentResult, b: ExperimentResult) -> bool:
    """Bitwise result equality (NaN-aware traces, exact weights)."""
    return (
        a.stop_reason == b.stop_reason
        and a.config == b.config
        and bool(a.trace.equals(b.trace))
        and bool(np.array_equal(a.final_w, b.final_w))
    )
