"""Headline numbers (paper Sec. 1 & 6.2 claims).

The paper's quantitative claims:

* "FedL reduces at least 38% completion time compared with others" —
  time-to-target-accuracy comparison (:func:`headline_claims` reports the
  saving of FedL vs the best baseline).
* "FedL can improve the accuracy by 2% to 15% on average" after the same
  training time — :func:`accuracy_at_time` deltas.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.experiments.metrics import Trace

__all__ = [
    "time_to_accuracy",
    "rounds_to_accuracy",
    "accuracy_at_time",
    "headline_claims",
]


def time_to_accuracy(
    traces: Mapping[str, Trace], target: float
) -> Dict[str, Optional[float]]:
    """Simulated completion time (s) to reach ``target`` accuracy, per policy."""
    return {name: tr.time_to_accuracy(target) for name, tr in traces.items()}


def rounds_to_accuracy(
    traces: Mapping[str, Trace], target: float
) -> Dict[str, Optional[int]]:
    """Federated rounds to reach ``target`` accuracy, per policy."""
    return {name: tr.rounds_to_accuracy(target) for name, tr in traces.items()}


def accuracy_at_time(
    traces: Mapping[str, Trace], t_seconds: float
) -> Dict[str, float]:
    """Test accuracy after ``t_seconds`` of simulated training, per policy."""
    return {name: tr.accuracy_at_time(t_seconds) for name, tr in traces.items()}


def headline_claims(
    traces: Mapping[str, Trace],
    target: float,
    fedl_name: str = "FedL",
) -> Dict[str, float]:
    """FedL-vs-best-baseline summary at a target accuracy.

    Returns a dict with:
      * ``fedl_time`` — FedL's completion time (inf if never reached),
      * ``best_baseline_time`` — fastest baseline's time (inf likewise),
      * ``time_saving_pct`` — 100·(1 − fedl/best_baseline),
      * ``accuracy_gain`` — FedL's accuracy minus the best baseline's
        "after the same training time" (paper Sec. 6.2): evaluated at the
        latest end time across policies, where a policy that exhausted its
        budget earlier simply holds its final accuracy.
    """
    if fedl_name not in traces:
        raise KeyError(f"traces must include {fedl_name!r}")
    ttimes = time_to_accuracy(traces, target)
    fedl_time = ttimes[fedl_name] if ttimes[fedl_name] is not None else float("inf")
    baseline_times = [
        v if v is not None else float("inf")
        for k, v in ttimes.items()
        if k != fedl_name
    ]
    best_baseline = min(baseline_times) if baseline_times else float("inf")
    if best_baseline > 0 and best_baseline != float("inf"):
        saving = 100.0 * (1.0 - fedl_time / best_baseline)
    else:
        saving = float("nan")
    horizon = max(tr.times[-1] for tr in traces.values() if len(tr) > 0)
    accs = accuracy_at_time(traces, horizon)
    base_best = max(v for k, v in accs.items() if k != fedl_name)
    return {
        "fedl_time": fedl_time,
        "best_baseline_time": best_baseline,
        "time_saving_pct": saving,
        "accuracy_gain": accs[fedl_name] - base_best,
        "compare_horizon_s": horizon,
    }
