"""Per-epoch metric recording for experiment runs."""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = ["EpochRecord", "Trace"]


@dataclass(frozen=True)
class EpochRecord:
    """One row of an experiment trace."""

    t: int
    test_accuracy: float
    test_loss: float
    population_loss: float
    epoch_latency: float        # seconds of simulated wall clock this epoch
    cumulative_time: float      # seconds since the start of the run
    cost_spent: float
    remaining_budget: float
    num_selected: int
    num_available: int
    iterations: int
    rho: float                  # fractional iteration decision (NaN for baselines)
    eta_max: float              # realized max local accuracy among participants
    num_failed: int = 0         # rented clients that crashed mid-round
    num_quarantined: int = 0    # clients whose updates the defense rejected


@dataclass
class Trace:
    """Append-only sequence of epoch records with array accessors."""

    policy_name: str
    records: List[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        if self.records and record.t <= self.records[-1].t:
            raise ValueError("epoch indices must be strictly increasing")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def equals(self, other: "Trace", ignore: tuple = ()) -> bool:
        """Bitwise trace equality, treating NaN == NaN.

        Plain dataclass ``==`` is wrong here: baselines record ``rho=NaN``
        and ``NaN != NaN``, so two bit-identical runs would compare
        unequal.  The determinism and cache tests use this instead.

        ``ignore`` names fields excluded from the comparison — the live
        engine *measures* ``epoch_latency``/``cumulative_time`` off the
        wall clock, so even two uninterrupted identical runs differ
        there; checkpoint-resume tests compare live traces modulo those.
        """
        if not isinstance(other, Trace):
            return NotImplemented
        if self.policy_name != other.policy_name or len(self) != len(other):
            return False
        for a, b in zip(self.records, other.records):
            for f in dataclasses.fields(EpochRecord):
                if f.name in ignore:
                    continue
                va, vb = getattr(a, f.name), getattr(b, f.name)
                if va == vb:
                    continue
                if (
                    isinstance(va, float)
                    and isinstance(vb, float)
                    and math.isnan(va)
                    and math.isnan(vb)
                ):
                    continue
                return False
        return True

    def column(self, name: str) -> np.ndarray:
        """Extract one field across all records as a float array."""
        if not self.records:
            return np.zeros(0)
        return np.asarray([getattr(r, name) for r in self.records], dtype=float)

    # -- convenience views used by figures/tables --------------------------------

    @property
    def accuracy(self) -> np.ndarray:
        return self.column("test_accuracy")

    @property
    def times(self) -> np.ndarray:
        return self.column("cumulative_time")

    @property
    def rounds(self) -> np.ndarray:
        return self.column("t")

    @property
    def losses(self) -> np.ndarray:
        return self.column("test_loss")

    @property
    def total_spend(self) -> float:
        return float(self.column("cost_spent").sum())

    @property
    def final_accuracy(self) -> float:
        if not self.records:
            raise ValueError("empty trace")
        return self.records[-1].test_accuracy

    @property
    def final_loss(self) -> float:
        if not self.records:
            raise ValueError("empty trace")
        return self.records[-1].test_loss

    def best_accuracy(self) -> float:
        if not self.records:
            raise ValueError("empty trace")
        return float(self.accuracy.max())

    def time_to_accuracy(self, target: float) -> Optional[float]:
        """Simulated seconds until test accuracy first reaches ``target``."""
        acc = self.accuracy
        hits = np.flatnonzero(acc >= target)
        if hits.size == 0:
            return None
        return float(self.times[hits[0]])

    def rounds_to_accuracy(self, target: float) -> Optional[int]:
        acc = self.accuracy
        hits = np.flatnonzero(acc >= target)
        if hits.size == 0:
            return None
        return int(self.rounds[hits[0]]) + 1  # 1-based round count

    def accuracy_at_time(self, t_seconds: float) -> float:
        """Accuracy of the last epoch completed by ``t_seconds`` (0 before)."""
        done = np.flatnonzero(self.times <= t_seconds)
        if done.size == 0:
            return 0.0
        return float(self.accuracy[done[-1]])
