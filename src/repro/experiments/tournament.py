"""Strategy tournament: every registered strategy × a scenario matrix.

The tournament harness turns "FedL vs a handful of baselines" into a
ranked, multi-seed benchmark: each :class:`ScenarioSpec` perturbs the
base experiment along one axis the repo can simulate (partition skew,
price regimes, adversaries, faults, aggregation modes), every registered
strategy runs every scenario over every seed through the sweep engine
(so the cache, dedup, and process-parallelism all apply), and the
aggregate lands in a versioned, JSON-persistable report:

* per-(scenario, strategy) cells: mean ± std accuracy / loss / spend /
  epochs over seeds;
* per-scenario rankings and winners;
* an overall ranking by mean rank across scenarios;
* a head-to-head table counting strict per-scenario wins.

Reports are byte-deterministic for a fixed (strategies, scenarios,
seeds, base config): all wall-clock data is isolated under the top-level
``"ts"`` key, per the repo's telemetry convention, and the sweep results
themselves are bit-reproducible.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config import ExperimentConfig
from repro.experiments.persistence import _atomic_write_text
from repro.experiments.runner import ExperimentResult
from repro.experiments.scenarios import experiment_config
from repro.experiments.sweep import (
    PolicySpec,
    ProgressFn,
    SweepCache,
    SweepJob,
    run_sweep,
)
from repro.strategies import get_strategy, strategy_names

__all__ = [
    "TOURNAMENT_SCHEMA_VERSION",
    "ScenarioSpec",
    "SCENARIOS",
    "scenario_names",
    "get_scenario",
    "UnknownScenarioError",
    "quick_base_config",
    "full_base_config",
    "run_tournament",
    "format_report",
    "save_report",
    "load_report",
]

#: Bump when the report layout changes incompatibly.
TOURNAMENT_SCHEMA_VERSION = 1


class UnknownScenarioError(ValueError):
    """Raised when a scenario name is not in the matrix."""

    def __init__(self, name: str) -> None:
        self.scenario = name
        super().__init__(
            f"unknown scenario {name!r}; known: "
            f"{', '.join(s.name for s in SCENARIOS)}"
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One column of the tournament matrix: a named config perturbation.

    Every field with a non-``None`` value overlays the base experiment
    config; because the whole config enters the sweep-cache fingerprint,
    two scenarios never collide in the cache.  ``quick`` marks scenarios
    safe and fast enough for the ``--quick`` matrix (synchronous-engine
    only: event-driven fault scenarios can abort tiny runs through the
    participation floor).
    """

    name: str
    description: str
    iid: Optional[bool] = None
    partition: Optional[str] = None
    dirichlet_alpha: Optional[float] = None
    cost_volatility: Optional[float] = None
    availability_model: Optional[str] = None
    engine: Optional[str] = None
    aggregation: Optional[str] = None
    quorum_frac: Optional[float] = None  # quorum = max(1, frac * n)
    sim_deadline_s: Optional[float] = None
    fault_profile: Optional[str] = None
    attack: Optional[str] = None
    attack_fraction: Optional[float] = None
    defense: Optional[str] = None
    quick: bool = False

    def configure(self, base: ExperimentConfig) -> ExperimentConfig:
        """Overlay this scenario onto ``base`` (validation re-runs)."""
        cfg = base
        data = cfg.data
        if self.iid is not None:
            data = dataclasses.replace(data, iid=self.iid)
        if self.partition is not None:
            data = dataclasses.replace(data, iid=False, partition=self.partition)
        if self.dirichlet_alpha is not None:
            data = dataclasses.replace(data, dirichlet_alpha=self.dirichlet_alpha)
        population = cfg.population
        if self.cost_volatility is not None:
            population = dataclasses.replace(
                population, cost_volatility=self.cost_volatility
            )
        if self.availability_model is not None:
            population = dataclasses.replace(
                population, availability_model=self.availability_model
            )
        training = cfg.training
        if self.engine is not None:
            training = dataclasses.replace(training, engine=self.engine)
        # Sim overrides land in ONE replace: validation runs per replace,
        # and e.g. aggregation="async" is only legal once the quorum is
        # set alongside it.
        sim_changes: Dict[str, object] = {}
        if self.aggregation is not None:
            sim_changes["aggregation"] = self.aggregation
        if self.quorum_frac is not None:
            sim_changes["quorum"] = max(
                1, round(self.quorum_frac * cfg.min_participants)
            )
        if self.sim_deadline_s is not None:
            sim_changes["deadline_s"] = self.sim_deadline_s
        if self.fault_profile is not None:
            sim_changes["faults"] = self.fault_profile
        sim = dataclasses.replace(cfg.sim, **sim_changes) if sim_changes else cfg.sim
        attack = cfg.attack
        if self.attack is not None:
            attack = dataclasses.replace(attack, kind=self.attack)
        if self.attack_fraction is not None:
            attack = dataclasses.replace(attack, fraction=self.attack_fraction)
        defense = cfg.defense
        if self.defense is not None:
            defense = dataclasses.replace(defense, aggregator=self.defense)
        return cfg.replace(
            data=data,
            population=population,
            training=training,
            sim=sim,
            attack=attack,
            defense=defense,
        )


#: The scenario matrix.  Order defines report column order.
SCENARIOS: Tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        "iid",
        "the paper's baseline setting: IID shards, stable prices",
        iid=True,
        quick=True,
    ),
    ScenarioSpec(
        "non-iid",
        "paper-style label-skew partition",
        iid=False,
        quick=True,
    ),
    ScenarioSpec(
        "dirichlet",
        "dirichlet(0.3) partition: heavy client heterogeneity",
        partition="dirichlet",
        dirichlet_alpha=0.3,
    ),
    ScenarioSpec(
        "volatile-prices",
        "AR(1) price innovations at 0.5: costs swing round to round",
        cost_volatility=0.5,
        quick=True,
    ),
    ScenarioSpec(
        "flat-prices",
        "frozen prices: cost signal carries no information",
        cost_volatility=0.0,
    ),
    ScenarioSpec(
        "byzantine",
        "25% sign-flip attackers behind a trimmed-mean defense",
        attack="sign-flip",
        attack_fraction=0.25,
        defense="trimmed-mean",
        quick=True,
    ),
    ScenarioSpec(
        "markov-churn",
        "markov availability: clients flap in correlated bursts",
        availability_model="markov",
        quick=True,
    ),
    ScenarioSpec(
        "flaky-uplink",
        "event-driven runtime with 30% upload failures and retries",
        engine="des",
        fault_profile="flaky-uplink",
    ),
    ScenarioSpec(
        "async-quorum",
        "asynchronous aggregation: epoch closes at the quorum",
        engine="des",
        aggregation="async",
        quorum_frac=1.0,
    ),
)


def scenario_names(quick: bool = False) -> Tuple[str, ...]:
    """Scenario names, optionally restricted to the quick matrix."""
    return tuple(s.name for s in SCENARIOS if s.quick or not quick)


def get_scenario(name: str) -> ScenarioSpec:
    for s in SCENARIOS:
        if s.name == name:
            return s
    raise UnknownScenarioError(name)


def quick_base_config(seed: int = 0) -> ExperimentConfig:
    """The tiny smoke-scale base experiment (seconds per strategy)."""
    return experiment_config(
        dataset="fmnist",
        iid=True,
        budget=120.0,
        seed=seed,
        num_clients=8,
        min_participants=3,
        max_epochs=3,
    )


def full_base_config(seed: int = 0) -> ExperimentConfig:
    """The development-scale base experiment (minutes per strategy)."""
    return experiment_config(
        dataset="fmnist",
        iid=True,
        budget=800.0,
        seed=seed,
        num_clients=20,
        min_participants=5,
        max_epochs=40,
    )


# --- aggregation ---------------------------------------------------------------


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _std(values: Sequence[float]) -> float:
    m = _mean(values)
    return (sum((v - m) ** 2 for v in values) / len(values)) ** 0.5


def _cell(results: Sequence[ExperimentResult]) -> dict:
    """Aggregate one (scenario, strategy) cell over seeds."""
    accs = [r.trace.final_accuracy for r in results]
    losses = [r.trace.final_loss for r in results]
    spends = [r.trace.total_spend for r in results]
    epochs = [float(len(r.trace.records)) for r in results]
    return {
        "accuracy": {"mean": _mean(accs), "std": _std(accs)},
        "loss": {"mean": _mean(losses), "std": _std(losses)},
        "spend": {"mean": _mean(spends), "std": _std(spends)},
        "epochs": {"mean": _mean(epochs), "std": _std(epochs)},
        "seeds": len(results),
        "stop_reasons": sorted({r.stop_reason for r in results}),
    }


def run_tournament(
    strategies: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0,),
    base_config: Optional[ExperimentConfig] = None,
    workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
    progress: Optional[ProgressFn] = None,
    telemetry=None,
) -> dict:
    """Run the tournament and return the report dict.

    Defaults: every registered strategy, the quick scenario matrix, one
    seed, the quick base config.  Strategy and scenario names are
    validated up front with typed errors.  ``telemetry`` is forwarded to
    the sweep engine so tournament cells record per-job/worker traces
    into the same hub the caller finalizes.
    """
    names = list(strategies) if strategies else list(strategy_names())
    for name in names:
        get_strategy(name)  # raises UnknownStrategyError
    if scenarios:
        matrix = [get_scenario(s) for s in scenarios]
    else:
        matrix = [s for s in SCENARIOS if s.quick]
    seeds = list(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    base = base_config if base_config is not None else quick_base_config()

    jobs: List[SweepJob] = []
    index: List[Tuple[str, str, int]] = []
    for scenario in matrix:
        for name in names:
            for seed in seeds:
                cfg = scenario.configure(base.replace(seed=seed))
                jobs.append(SweepJob(PolicySpec(name), cfg))
                index.append((scenario.name, name, seed))
    results = run_sweep(
        jobs, workers=workers, cache=cache, progress=progress,
        telemetry=telemetry,
    )

    by_cell: Dict[str, Dict[str, List[ExperimentResult]]] = {}
    for (scenario_name, strat, _seed), result in zip(index, results):
        by_cell.setdefault(scenario_name, {}).setdefault(strat, []).append(result)

    cells = {
        scenario.name: {name: _cell(by_cell[scenario.name][name]) for name in names}
        for scenario in matrix
    }

    # Per-scenario rankings: accuracy descending, name as the tiebreak.
    rankings: Dict[str, List[str]] = {}
    for scenario in matrix:
        ordered = sorted(
            names,
            key=lambda n: (-cells[scenario.name][n]["accuracy"]["mean"], n),
        )
        rankings[scenario.name] = ordered
    winners = {s: ranked[0] for s, ranked in rankings.items()}

    # Overall: mean rank across scenarios, then mean accuracy, then name.
    mean_rank = {
        n: _mean([rankings[s.name].index(n) + 1 for s in matrix]) for n in names
    }
    mean_acc = {
        n: _mean([cells[s.name][n]["accuracy"]["mean"] for s in matrix])
        for n in names
    }
    overall = sorted(names, key=lambda n: (mean_rank[n], -mean_acc[n], n))

    # Head-to-head: strict per-scenario wins on mean accuracy.
    head_to_head = {
        a: {
            b: sum(
                1
                for s in matrix
                if cells[s.name][a]["accuracy"]["mean"]
                > cells[s.name][b]["accuracy"]["mean"]
            )
            for b in names
            if b != a
        }
        for a in names
    }

    return {
        "schema": TOURNAMENT_SCHEMA_VERSION,
        "strategies": [
            {
                "name": n,
                "capabilities": list(get_strategy(n).capabilities()),
                "description": get_strategy(n).description,
            }
            for n in names
        ],
        "scenarios": [
            {"name": s.name, "description": s.description} for s in matrix
        ],
        "seeds": seeds,
        "base_config": {
            "num_clients": base.population.num_clients,
            "min_participants": base.min_participants,
            "max_epochs": base.max_epochs,
            "budget": base.budget,
            "dataset": base.data.dataset,
        },
        "cells": cells,
        "rankings": rankings,
        "winners": winners,
        "overall": [
            {
                "rank": i + 1,
                "strategy": n,
                "mean_rank": mean_rank[n],
                "mean_accuracy": mean_acc[n],
                "scenario_wins": sum(1 for s in matrix if winners[s.name] == n),
            }
            for i, n in enumerate(overall)
        ],
        "head_to_head": head_to_head,
    }


# --- rendering -----------------------------------------------------------------


def _fmt_band(stats: Mapping[str, float]) -> str:
    return f"{stats['mean']:.4f}±{stats['std']:.4f}"


def format_report(report: dict) -> str:
    """Render a tournament report as ASCII tables."""
    names = [s["name"] for s in report["strategies"]]
    scen = [s["name"] for s in report["scenarios"]]
    lines: List[str] = []
    lines.append(
        f"tournament: {len(names)} strategies x {len(scen)} scenarios "
        f"x {len(report['seeds'])} seed(s)"
    )
    lines.append("")

    lines.append("overall ranking (mean rank across scenarios; accuracy band over seeds)")
    header = f"{'#':>3} {'strategy':<14} {'mean-rank':>9} {'mean-acc':>9} {'wins':>5}  capabilities"
    lines.append(header)
    lines.append("-" * len(header))
    caps = {s["name"]: ",".join(s["capabilities"]) or "-" for s in report["strategies"]}
    for row in report["overall"]:
        lines.append(
            f"{row['rank']:>3} {row['strategy']:<14} {row['mean_rank']:>9.2f} "
            f"{row['mean_accuracy']:>9.4f} {row['scenario_wins']:>5}  "
            f"{caps[row['strategy']]}"
        )
    lines.append("")

    lines.append("per-scenario accuracy (mean±std over seeds; * = winner)")
    width = max(len(s) for s in scen)
    head = f"{'strategy':<14} " + " ".join(f"{s:>{max(width, 15)}}" for s in scen)
    lines.append(head)
    lines.append("-" * len(head))
    for name in names:
        row = [f"{name:<14}"]
        for s in scen:
            band = _fmt_band(report["cells"][s][name]["accuracy"])
            star = "*" if report["winners"][s] == name else " "
            row.append(f"{band + star:>{max(width, 15) + 1}}")
        lines.append(" ".join(row))
    lines.append("")

    lines.append("head-to-head (row beats column in N scenarios)")
    short = [n[:7] for n in names]
    head = f"{'strategy':<14} " + " ".join(f"{s:>7}" for s in short)
    lines.append(head)
    lines.append("-" * len(head))
    for name in names:
        row = [f"{name:<14}"]
        for other in names:
            if other == name:
                row.append(f"{'.':>7}")
            else:
                row.append(f"{report['head_to_head'][name][other]:>7}")
        lines.append(" ".join(row))
    return "\n".join(lines)


# --- persistence ---------------------------------------------------------------


def save_report(report: dict, path: str | Path, ts: Optional[dict] = None) -> Path:
    """Atomically write a report as canonical JSON.

    The payload minus ``ts`` is byte-deterministic for a fixed matrix:
    keys are sorted and every wall-clock datum lives under ``ts``.
    """
    path = Path(path)
    payload = dict(report)
    if ts is not None:
        payload["ts"] = ts
    _atomic_write_text(path, json.dumps(payload, sort_keys=True, indent=2))
    return path


def load_report(path: str | Path) -> dict:
    """Read a report written by :func:`save_report`; validates schema."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("schema")
    if version != TOURNAMENT_SCHEMA_VERSION:
        raise ValueError(f"unsupported tournament schema: {version!r}")
    return payload
