"""Synthetic Fashion-MNIST stand-in.

Same geometry as the real dataset — 28×28 grayscale, 10 classes — with the
class structure supplied by :class:`repro.datasets.synthetic
.ClassConditionalGenerator`.  See DESIGN.md §2 for the substitution note.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import ClassConditionalGenerator

__all__ = ["synthetic_fmnist", "FMNIST_SHAPE", "FMNIST_CLASSES"]

FMNIST_SHAPE = (28, 28, 1)
FMNIST_CLASSES = 10


def synthetic_fmnist(
    rng: np.random.Generator,
    noise: float = 0.35,
    downscale: int = 1,
) -> ClassConditionalGenerator:
    """Build the FMNIST-like generator.

    ``downscale`` shrinks both spatial dimensions by an integer factor
    (e.g. 2 → 14×14) to speed up large sweeps without changing the class
    structure; experiments in the benchmark harness use ``downscale=2``.
    """
    if downscale < 1 or FMNIST_SHAPE[0] % downscale:
        raise ValueError("downscale must divide 28")
    h = FMNIST_SHAPE[0] // downscale
    w = FMNIST_SHAPE[1] // downscale
    return ClassConditionalGenerator(
        image_shape=(h, w, 1),
        num_classes=FMNIST_CLASSES,
        rng=rng,
        noise=noise,
    )
