"""Synthetic CIFAR-10 stand-in.

Same geometry as the real dataset — 32×32 RGB, 10 classes.  CIFAR-10 is the
"harder task" in the paper; we reproduce that by a higher default noise
level and a finer prototype frequency cutoff, which slows convergence of
the same model family relative to the FMNIST stand-in.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import ClassConditionalGenerator

__all__ = ["synthetic_cifar10", "CIFAR10_SHAPE", "CIFAR10_CLASSES"]

CIFAR10_SHAPE = (32, 32, 3)
CIFAR10_CLASSES = 10


def synthetic_cifar10(
    rng: np.random.Generator,
    noise: float = 0.5,
    downscale: int = 1,
) -> ClassConditionalGenerator:
    """Build the CIFAR-10-like generator (``downscale`` as in fmnist)."""
    if downscale < 1 or CIFAR10_SHAPE[0] % downscale:
        raise ValueError("downscale must divide 32")
    h = CIFAR10_SHAPE[0] // downscale
    w = CIFAR10_SHAPE[1] // downscale
    return ClassConditionalGenerator(
        image_shape=(h, w, 3),
        num_classes=CIFAR10_CLASSES,
        rng=rng,
        noise=noise,
        frequency_cutoff=5,
    )
