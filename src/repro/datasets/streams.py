"""Per-epoch online client data streams.

The paper makes training data time-varying: "all data are then transformed
into online data followed by Poisson distribution".  A
:class:`ClientDataStream` couples a client's class distribution with the
shared generator; each epoch it yields a fresh local dataset whose size is
supplied by :class:`repro.env.dynamics.DataVolumeProcess`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.datasets.synthetic import ClassConditionalGenerator, Dataset

__all__ = ["ClientDataStream", "build_client_streams"]


class ClientDataStream:
    """On-demand sampler of one client's per-epoch local dataset."""

    def __init__(
        self,
        generator: ClassConditionalGenerator,
        class_probs: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        probs = np.asarray(class_probs, dtype=float)
        if probs.shape != (generator.num_classes,):
            raise ValueError("class_probs shape mismatch")
        if np.any(probs < 0) or probs.sum() <= 0:
            raise ValueError("class_probs must be a nonnegative distribution")
        self.generator = generator
        self.class_probs = probs / probs.sum()
        self.rng = rng

    def draw(self, num_samples: int) -> Dataset:
        """Sample this epoch's local dataset (``num_samples`` examples)."""
        return self.generator.sample(
            num_samples, class_probs=self.class_probs, rng=self.rng
        )


def build_client_streams(
    generator: ClassConditionalGenerator,
    class_distributions: np.ndarray,
    rng_factory,
) -> List[ClientDataStream]:
    """One stream per client, each with an independent RNG stream.

    ``rng_factory`` is a :class:`repro.rng.RngFactory`; streams are keyed
    ``data.client.<k>`` so adding clients never perturbs existing streams.
    """
    dists = np.asarray(class_distributions, dtype=float)
    if dists.ndim != 2 or dists.shape[1] != generator.num_classes:
        raise ValueError("class_distributions must be (M, num_classes)")
    return [
        ClientDataStream(
            generator=generator,
            class_probs=dists[k],
            rng=rng_factory.get(f"data.client.{k}"),
        )
        for k in range(dists.shape[0])
    ]
