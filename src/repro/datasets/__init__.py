"""Data substrate: synthetic stand-ins for Fashion-MNIST and CIFAR-10.

No network access is available offline, so the paper's two public datasets
are replaced by deterministic synthetic generators with the same shapes
(28×28×1 and 32×32×3), the same 10-class structure, and controllable
difficulty (see DESIGN.md §2).  The client-selection dynamics the paper
studies depend on loss/accuracy *trajectories* and data heterogeneity,
both of which the generators reproduce.

* :mod:`repro.datasets.synthetic` — class-conditional smooth-prototype
  image generator.
* :mod:`repro.datasets.fmnist`, :mod:`repro.datasets.cifar10` — the two
  named configurations.
* :mod:`repro.datasets.partition` — IID and non-IID (principal-class mix,
  Dirichlet) client partitioners.
* :mod:`repro.datasets.streams` — per-epoch online data streams (Poisson
  volumes, per the paper).
"""

from repro.datasets.synthetic import ClassConditionalGenerator, Dataset
from repro.datasets.fmnist import synthetic_fmnist
from repro.datasets.cifar10 import synthetic_cifar10
from repro.datasets.partition import (
    iid_class_distributions,
    non_iid_class_distributions,
    dirichlet_class_distributions,
)
from repro.datasets.streams import ClientDataStream, build_client_streams

__all__ = [
    "ClassConditionalGenerator",
    "Dataset",
    "synthetic_fmnist",
    "synthetic_cifar10",
    "iid_class_distributions",
    "non_iid_class_distributions",
    "dirichlet_class_distributions",
    "ClientDataStream",
    "build_client_streams",
]
