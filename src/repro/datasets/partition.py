"""Client data-distribution partitioners.

Because the generators sample on demand, a "partition" here is a per-client
*class distribution* — the probability vector its local stream draws labels
from.  Three schemes:

* **IID** — every client uses the uniform class distribution.
* **Non-IID (paper)** — "choose a number of data from a principal dataset
  and randomly select the remaining data from another dataset": each client
  gets a principal class (or classes) holding ``principal_frac`` of its
  mass, with the rest uniform over the other classes.
* **Dirichlet** — the standard FL non-IID benchmark knob (extension beyond
  the paper, used in ablations).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "iid_class_distributions",
    "non_iid_class_distributions",
    "dirichlet_class_distributions",
]


def _validate(num_clients: int, num_classes: int) -> None:
    if num_clients < 1:
        raise ValueError("need at least one client")
    if num_classes < 2:
        raise ValueError("need at least two classes")


def iid_class_distributions(num_clients: int, num_classes: int) -> np.ndarray:
    """Uniform class distribution for every client, shape (M, num_classes)."""
    _validate(num_clients, num_classes)
    return np.full((num_clients, num_classes), 1.0 / num_classes)


def non_iid_class_distributions(
    num_clients: int,
    num_classes: int,
    rng: np.random.Generator,
    principal_frac: float = 0.8,
    principal_classes: int = 2,
) -> np.ndarray:
    """Paper-style non-IID mix: principal classes hold ``principal_frac``.

    Each client draws ``principal_classes`` distinct principal classes
    (assigned round-robin-with-shuffle so all classes are covered), places
    ``principal_frac`` of its mass uniformly on them, and spreads the rest
    uniformly over the remaining classes.
    """
    _validate(num_clients, num_classes)
    if not (0.0 <= principal_frac <= 1.0):
        raise ValueError("principal_frac must be in [0, 1]")
    if not (1 <= principal_classes < num_classes):
        raise ValueError("principal_classes must be in [1, num_classes)")
    dists = np.empty((num_clients, num_classes))
    for m in range(num_clients):
        principals = rng.choice(num_classes, size=principal_classes, replace=False)
        probs = np.full(
            num_classes, (1.0 - principal_frac) / (num_classes - principal_classes)
        )
        probs[principals] = principal_frac / principal_classes
        dists[m] = probs
    return dists


def dirichlet_class_distributions(
    num_clients: int,
    num_classes: int,
    rng: np.random.Generator,
    alpha: float = 0.5,
) -> np.ndarray:
    """Dirichlet(α) class distributions; α → ∞ recovers IID."""
    _validate(num_clients, num_classes)
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    return rng.dirichlet(np.full(num_classes, alpha), size=num_clients)
