"""Class-conditional synthetic image generator.

Each of the ``num_classes`` classes has a fixed *prototype image* built
from low-spatial-frequency random structure (so classes are separable but
not trivially so, like real image classes), and samples are

    x = clip(prototype_c + noise · ε + deformation, 0, 1),

where ε is i.i.d. Gaussian pixel noise and the deformation is a random
per-sample global intensity/contrast jitter.  Labels are the class index.

Difficulty is controlled by ``noise``: at 0 the task is trivially
separable; around 0.3–0.5 a small MLP takes a few hundred SGD steps to
reach high accuracy, matching the training-dynamics role FMNIST/CIFAR play
in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["Dataset", "ClassConditionalGenerator"]


@dataclass(frozen=True)
class Dataset:
    """A bag of examples: features ``x`` (N, D) and integer labels ``y`` (N,)."""

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=float)
        y = np.asarray(self.y, dtype=np.int64)
        if x.ndim != 2:
            raise ValueError("x must be 2-D (N, D)")
        if y.shape != (x.shape[0],):
            raise ValueError("y must have shape (N,)")
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def num_features(self) -> int:
        return self.x.shape[1]

    def subset(self, idx: np.ndarray) -> "Dataset":
        return Dataset(x=self.x[idx], y=self.y[idx])

    def concat(self, other: "Dataset") -> "Dataset":
        if other.num_features != self.num_features:
            raise ValueError("feature dimensions differ")
        return Dataset(
            x=np.concatenate([self.x, other.x], axis=0),
            y=np.concatenate([self.y, other.y], axis=0),
        )


def _smooth_field(
    rng: np.random.Generator, height: int, width: int, cutoff: int
) -> np.ndarray:
    """Low-frequency random field in [0, 1] via truncated random Fourier sum."""
    yy, xx = np.meshgrid(
        np.linspace(0.0, 1.0, height), np.linspace(0.0, 1.0, width), indexing="ij"
    )
    field = np.zeros((height, width))
    for fy in range(cutoff):
        for fx in range(cutoff):
            if fy == 0 and fx == 0:
                continue
            amp = rng.normal() / (1.0 + fy + fx)
            phase = rng.uniform(0.0, 2.0 * np.pi)
            field += amp * np.cos(2.0 * np.pi * (fy * yy + fx * xx) + phase)
    lo, hi = field.min(), field.max()
    if hi - lo < 1e-12:
        return np.full_like(field, 0.5)
    return (field - lo) / (hi - lo)


class ClassConditionalGenerator:
    """Samples labelled images on demand from fixed class prototypes."""

    def __init__(
        self,
        image_shape: Tuple[int, int, int],
        num_classes: int,
        rng: np.random.Generator,
        noise: float = 0.35,
        frequency_cutoff: int = 4,
    ) -> None:
        h, w, c = image_shape
        if h < 2 or w < 2 or c < 1:
            raise ValueError("image_shape must be (H>=2, W>=2, C>=1)")
        if num_classes < 2:
            raise ValueError("need at least two classes")
        if noise < 0:
            raise ValueError("noise must be nonnegative")
        self.image_shape = (h, w, c)
        self.num_classes = num_classes
        self.noise = noise
        self.rng = rng
        # One smooth prototype per (class, channel).
        self.prototypes = np.stack(
            [
                np.stack(
                    [_smooth_field(rng, h, w, frequency_cutoff) for _ in range(c)],
                    axis=-1,
                )
                for _ in range(num_classes)
            ],
            axis=0,
        )  # (num_classes, H, W, C)

    @property
    def num_features(self) -> int:
        h, w, c = self.image_shape
        return h * w * c

    def sample(
        self,
        n: int,
        class_probs: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
        flatten: bool = True,
    ) -> Dataset:
        """Draw ``n`` samples with labels ~ ``class_probs`` (uniform default)."""
        if n < 1:
            raise ValueError("n must be >= 1")
        gen = rng if rng is not None else self.rng
        if class_probs is None:
            probs = np.full(self.num_classes, 1.0 / self.num_classes)
        else:
            probs = np.asarray(class_probs, dtype=float)
            if probs.shape != (self.num_classes,):
                raise ValueError("class_probs must have shape (num_classes,)")
            if np.any(probs < 0) or probs.sum() <= 0:
                raise ValueError("class_probs must be a nonnegative distribution")
            probs = probs / probs.sum()
        labels = gen.choice(self.num_classes, size=n, p=probs)
        base = self.prototypes[labels]  # (n, H, W, C), a fresh copy
        eps = gen.normal(0.0, self.noise, size=base.shape)
        # Per-sample intensity/contrast jitter (broadcast over pixels).
        gain = gen.uniform(0.85, 1.15, size=(n, 1, 1, 1))
        bias = gen.uniform(-0.05, 0.05, size=(n, 1, 1, 1))
        # ((base·gain) + bias) + eps, clipped — evaluated in place on the
        # fancy-index copy (identical op order, no temporaries).
        np.multiply(base, gain, out=base)
        base += bias
        base += eps
        imgs = np.clip(base, 0.0, 1.0, out=base)
        x = imgs.reshape(n, -1) if flatten else imgs
        return Dataset(x=x if flatten else x.reshape(n, -1), y=labels)

    def test_set(self, n: int, rng: Optional[np.random.Generator] = None) -> Dataset:
        """A balanced held-out set (n // num_classes per class, at least 1)."""
        per = max(1, n // self.num_classes)
        gen = rng if rng is not None else self.rng
        parts = []
        for cls in range(self.num_classes):
            probs = np.zeros(self.num_classes)
            probs[cls] = 1.0
            parts.append(self.sample(per, class_probs=probs, rng=gen))
        out = parts[0]
        for p in parts[1:]:
            out = out.concat(p)
        return out
