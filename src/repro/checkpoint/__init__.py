"""Round-granular checkpoint/resume for long-horizon experiments.

See :mod:`repro.checkpoint.snapshot` for the on-disk format and the
bit-identical-resume contract, :mod:`repro.checkpoint.errors` for the
exit-code mapping, and :mod:`repro.checkpoint.crashsmoke` for the
SIGKILL crash-injection harness used by tests and ``repro bench
--crash-smoke``.
"""

from repro.checkpoint.errors import CheckpointError, ExperimentInterrupted
from repro.checkpoint.snapshot import (
    CHECKPOINT_SCHEMA_VERSION,
    ResumeState,
    Snapshot,
    latest_snapshot_path,
    load_snapshot,
    prepare_checkpoint_dir,
    resume_experiment,
    write_snapshot,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "ExperimentInterrupted",
    "ResumeState",
    "Snapshot",
    "latest_snapshot_path",
    "load_snapshot",
    "prepare_checkpoint_dir",
    "resume_experiment",
    "write_snapshot",
]
