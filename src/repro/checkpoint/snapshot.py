"""Round-granular experiment snapshots with bit-identical resume.

A snapshot captures the *complete* mutable state of a running experiment
at an epoch boundary:

* the global model (via :mod:`repro.nn.serialization`),
* every RNG stream created so far (:meth:`repro.rng.RngFactory.state_dict`),
* the environment processes' carried state (AR(1) prices, shadow fading,
  Markov availability),
* the flat per-client observables (reliability EWMAs, spend, latencies),
* the budget/latency accumulators and the partial trace,
* the whole selection policy (pickled), with the FedL learner's duals and
  FISTA warm-start state additionally mirrored through its explicit
  ``state_dict`` so the hot fields are inspectable and pickle drift is
  caught at restore time,
* DP accounting.

Resume reconstructs the :class:`~repro.experiments.runner.Simulation`
from the *checkpointed* config first — construction consumes RNG streams
exactly as the original run did, regenerating every init-derived quantity
(population geometry, adversary roster, data-volume means) — and then
overwrites all stream states and mutable fields from the snapshot.  The
resumed loop therefore continues bit-identically to a run that never
stopped.

On disk a snapshot is one directory per epoch (``epoch_00000010/``)
containing ``manifest.json`` (scalars, config, SHA-256 checksums of every
sibling file), ``rng.json``, ``trace.json``, ``model.npz``, ``state.npz``
and ``policy.pkl``.  Files are staged into a hidden temp directory and
committed with a single :func:`os.replace`, so a crash mid-write leaves
either the previous snapshot set or the new one — never a torn snapshot.
A ``LATEST`` pointer (atomic text write) names the newest committed
snapshot.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import shutil
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.checkpoint.errors import CheckpointError

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "ResumeState",
    "Snapshot",
    "prepare_checkpoint_dir",
    "write_snapshot",
    "latest_snapshot_path",
    "load_snapshot",
    "resume_experiment",
]

CHECKPOINT_SCHEMA_VERSION = 1

#: Fields of :class:`repro.env.state.ClientStateArrays` that ride state.npz.
_STATE_FIELDS = (
    "available",
    "costs",
    "belief_costs",
    "tau_last",
    "local_losses",
    "reliability",
    "cum_selected",
    "spend",
)


@dataclasses.dataclass
class ResumeState:
    """The loop-level carry a resumed run starts from."""

    next_epoch: int
    remaining: float
    cumulative_time: float
    epochs_done: int
    trace: "object"             # repro.experiments.metrics.Trace
    final_w: np.ndarray
    arrays: Dict[str, np.ndarray]


@dataclasses.dataclass
class Snapshot:
    """A fully loaded, checksum-verified snapshot."""

    path: Path
    config: "object"            # repro.config.ExperimentConfig
    policy: "object"            # repro.baselines.base.SelectionPolicy
    rng_states: Dict[str, dict]
    learner_state: Optional[dict]
    server_w: np.ndarray
    sim_arrays: Dict[str, np.ndarray]
    dp: Dict[str, float]
    resume: ResumeState

    def restore_into(self, sim) -> None:
        """Overwrite a freshly constructed ``Simulation``'s mutable state.

        ``sim`` must have been built from :attr:`config` (same seed, same
        structure) so that construction-time RNG consumption matches the
        original run; this then fast-forwards every stream and carried
        process state to the capture point.
        """
        sim.rng.load_state(self.rng_states)
        if self.server_w.shape != sim.server.w.shape:
            raise CheckpointError(
                "checkpointed model shape does not match the configuration"
            )
        sim.server.w = self.server_w.copy()
        # Carried environment state (private by convention; the checkpoint
        # layer is the one sanctioned out-of-band reader/writer).
        sim.prices._current = self.sim_arrays["prices_current"].copy()
        sim.channel._shadow_db = self.sim_arrays["shadow_db"].copy()
        if "avail_state" in self.sim_arrays and hasattr(sim.availability, "_state"):
            sim.availability._state = self.sim_arrays["avail_state"].copy()
        sim.dp_accountant._rho = float(self.dp["rho"])
        sim.dp_accountant._releases = int(self.dp["releases"])
        # The explicit learner restore doubles as a pickle-drift guard:
        # the pickled policy already carries this state, but re-applying
        # the JSON mirror keeps the hot duals authoritative.
        learner = getattr(self.policy, "learner", None)
        if learner is not None and self.learner_state is not None:
            learner.load_state(self.learner_state)


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _epoch_dir_name(next_epoch: int) -> str:
    return f"epoch_{next_epoch:08d}"


def prepare_checkpoint_dir(directory: str | Path) -> Path:
    """Create ``directory`` and sweep litter from prior crashed writers
    (stale staging directories and ``*.tmp`` survivors)."""
    from repro.experiments.persistence import clean_stale_tmps

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for entry in directory.iterdir():
        if entry.name.startswith(".stage_") and entry.is_dir():
            shutil.rmtree(entry, ignore_errors=True)
    clean_stale_tmps(directory)
    return directory


def write_snapshot(
    directory: str | Path,
    *,
    sim,
    policy,
    state,
    trace,
    next_epoch: int,
    remaining: float,
    cumulative_time: float,
    epochs_done: int,
    final_w: np.ndarray,
    keep: int = 2,
    extra_rng_states: Optional[Dict[str, dict]] = None,
) -> Path:
    """Atomically write one snapshot; returns the committed directory.

    ``extra_rng_states`` overlays stream states whose source of truth
    lives outside this process (the live engine's worker-side per-client
    streams) over the factory's own capture.
    """
    from repro.experiments.persistence import (
        atomic_write_text,
        config_to_dict,
        trace_to_dict,
    )
    from repro.nn.serialization import save_checkpoint

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stage = directory / f".stage_{_epoch_dir_name(next_epoch)}.tmp{os.getpid()}"
    if stage.exists():
        shutil.rmtree(stage)
    stage.mkdir()
    try:
        rng_states = sim.rng.state_dict()
        if extra_rng_states:
            rng_states.update(extra_rng_states)
        (stage / "rng.json").write_text(json.dumps(rng_states, default=int))
        (stage / "trace.json").write_text(json.dumps(trace_to_dict(trace)))
        save_checkpoint(sim.model, stage / "model.npz", w=sim.server.w)
        arrays = {name: getattr(state, name) for name in _STATE_FIELDS}
        arrays["final_w"] = np.asarray(final_w, dtype=float)
        arrays["prices_current"] = sim.prices._current
        arrays["shadow_db"] = sim.channel._shadow_db
        if hasattr(sim.availability, "_state"):
            arrays["avail_state"] = sim.availability._state
        np.savez(stage / "state.npz", **arrays)
        (stage / "policy.pkl").write_bytes(
            pickle.dumps(policy, protocol=pickle.HIGHEST_PROTOCOL)
        )
        learner = getattr(policy, "learner", None)
        manifest = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "next_epoch": int(next_epoch),
            "epochs_done": int(epochs_done),
            "remaining": float(remaining),
            "cumulative_time": float(cumulative_time),
            "policy_name": getattr(policy, "name", type(policy).__name__),
            "dp": {
                "rho": float(sim.dp_accountant.rho),
                "releases": int(sim.dp_accountant.releases),
            },
            "learner": learner.state_dict() if learner is not None else None,
            "config": config_to_dict(sim.config),
            "files": {
                name.name: _sha256(name) for name in sorted(stage.iterdir())
            },
        }
        (stage / "manifest.json").write_text(json.dumps(manifest, default=int))
        target = directory / _epoch_dir_name(next_epoch)
        if target.exists():
            # Deterministic rewrite of an epoch a previous (crashed) run
            # already committed past the LATEST pointer.
            shutil.rmtree(target)
        os.replace(stage, target)
    except BaseException:
        shutil.rmtree(stage, ignore_errors=True)
        raise
    atomic_write_text(directory / "LATEST", target.name)
    _prune(directory, keep=keep)
    return target


def _prune(directory: Path, keep: int) -> None:
    snaps = sorted(
        (p for p in directory.iterdir() if p.is_dir() and p.name.startswith("epoch_")),
        key=lambda p: p.name,
    )
    for old in snaps[: max(0, len(snaps) - max(1, keep))]:
        shutil.rmtree(old, ignore_errors=True)


def latest_snapshot_path(directory: str | Path) -> Path:
    """Resolve the newest committed snapshot under ``directory``.

    Prefers the ``LATEST`` pointer; falls back to the highest-numbered
    ``epoch_*`` directory (covers a crash between commit and pointer
    update).  Raises :class:`CheckpointError` when nothing usable exists.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise CheckpointError(f"no such checkpoint directory: {directory}")
    pointer = directory / "LATEST"
    if pointer.is_file():
        candidate = directory / pointer.read_text().strip()
        if (candidate / "manifest.json").is_file():
            # A newer snapshot may have committed without the pointer
            # update landing; prefer the newest manifest on disk.
            snaps = sorted(
                p
                for p in directory.iterdir()
                if p.is_dir()
                and p.name.startswith("epoch_")
                and (p / "manifest.json").is_file()
            )
            return snaps[-1] if snaps and snaps[-1].name > candidate.name else candidate
    snaps = sorted(
        p
        for p in directory.iterdir()
        if p.is_dir() and p.name.startswith("epoch_") and (p / "manifest.json").is_file()
    )
    if not snaps:
        raise CheckpointError(f"no snapshots found in {directory}")
    return snaps[-1]


def load_snapshot(directory: str | Path) -> Snapshot:
    """Load and checksum-verify the newest snapshot under ``directory``.

    ``directory`` may be the checkpoint root or a specific ``epoch_*``
    snapshot directory.  Any torn, missing, or tampered content raises
    :class:`CheckpointError` (the CLI's unrecoverable-state exit 1).
    """
    from repro.experiments.metrics import Trace
    from repro.experiments.persistence import config_from_dict, trace_from_dict
    from repro.nn.serialization import load_checkpoint

    directory = Path(directory)
    snap = (
        directory
        if (directory / "manifest.json").is_file()
        else latest_snapshot_path(directory)
    )
    try:
        manifest = json.loads((snap / "manifest.json").read_text())
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"unreadable checkpoint manifest in {snap}: {exc}")
    if manifest.get("schema") != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint schema {manifest.get('schema')!r} in {snap}"
        )
    for name, expected in manifest.get("files", {}).items():
        if name == "manifest.json":
            continue
        path = snap / name
        if not path.is_file():
            raise CheckpointError(f"checkpoint file missing: {path}")
        actual = _sha256(path)
        if actual != expected:
            raise CheckpointError(
                f"checkpoint checksum mismatch for {path}: "
                f"expected {expected[:12]}…, got {actual[:12]}…"
            )
    try:
        config = config_from_dict(manifest["config"])
        rng_states = json.loads((snap / "rng.json").read_text())
        trace = trace_from_dict(json.loads((snap / "trace.json").read_text()))
        policy = pickle.loads((snap / "policy.pkl").read_bytes())
        server_w, _meta = load_checkpoint(snap / "model.npz")
        with np.load(snap / "state.npz") as npz:
            arrays = {name: npz[name].copy() for name in npz.files}
    except CheckpointError:
        raise
    except Exception as exc:  # torn pickle/npz/json → unrecoverable
        raise CheckpointError(f"corrupt checkpoint payload in {snap}: {exc}")
    assert isinstance(trace, Trace)
    resume = ResumeState(
        next_epoch=int(manifest["next_epoch"]),
        remaining=float(manifest["remaining"]),
        cumulative_time=float(manifest["cumulative_time"]),
        epochs_done=int(manifest["epochs_done"]),
        trace=trace,
        final_w=arrays["final_w"],
        arrays={name: arrays[name] for name in _STATE_FIELDS},
    )
    return Snapshot(
        path=snap,
        config=config,
        policy=policy,
        rng_states=rng_states,
        learner_state=manifest.get("learner"),
        server_w=np.asarray(server_w, dtype=float),
        sim_arrays={
            key: arrays[key]
            for key in ("prices_current", "shadow_db", "avail_state")
            if key in arrays
        },
        dp=dict(manifest.get("dp", {"rho": 0.0, "releases": 0})),
        resume=resume,
    )


def resume_experiment(
    directory: str | Path,
    *,
    target_accuracy: Optional[float] = None,
    heartbeat_s: Optional[float] = None,
    live_stats_dir: Optional[str] = None,
    checkpoint_override=None,
    policy_hook=None,
):
    """Resume an experiment from its newest snapshot under ``directory``.

    Rebuilds the simulation from the checkpointed config (so every
    init-time RNG draw replays), restores all stream/process state, and
    re-enters the loop at the checkpointed epoch.  By default the resumed
    run keeps checkpointing into the same directory; pass a
    ``checkpoint_override`` (:class:`repro.config.CheckpointConfig`) to
    change or disable that.  ``policy_hook`` (if given) is applied to the
    unpickled policy before the loop re-enters — the crash-injection
    harness uses it to disarm its self-kill wrapper.
    """
    from repro.experiments.runner import Simulation, run_experiment

    snapshot = load_snapshot(directory)
    config = snapshot.config
    if checkpoint_override is not None:
        config = config.replace(checkpoint=checkpoint_override)
    if policy_hook is not None:
        policy_hook(snapshot.policy)
    sim = Simulation(config)
    snapshot.restore_into(sim)
    return run_experiment(
        snapshot.policy,
        config,
        simulation=sim,
        target_accuracy=target_accuracy,
        heartbeat_s=heartbeat_s,
        live_stats_dir=live_stats_dir,
        resume=snapshot.resume,
    )
