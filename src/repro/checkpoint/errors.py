"""Typed checkpoint failure modes (dependency-free).

Kept in their own module so the runner and CLI can import them without
pulling in the snapshot machinery (which imports the persistence layer).
"""

from __future__ import annotations

__all__ = ["CheckpointError", "ExperimentInterrupted"]


class CheckpointError(RuntimeError):
    """A checkpoint directory is missing, torn, or fails verification.

    The CLI maps this to the *unrecoverable state* contract (exit 1);
    malformed ``--resume`` arguments are usage errors (exit 2) and never
    reach this type.
    """


class ExperimentInterrupted(RuntimeError):
    """A SIGTERM/SIGINT arrived mid-run and a final checkpoint was flushed.

    Carries where the run can be resumed from so the CLI can print the
    exact ``--resume`` invocation before exiting 1.
    """

    def __init__(self, signal_name: str, directory: str, next_epoch: int) -> None:
        super().__init__(
            f"interrupted by {signal_name} at epoch {next_epoch}; "
            f"state checkpointed to {directory}"
        )
        self.signal_name = signal_name
        self.directory = directory
        self.next_epoch = next_epoch
