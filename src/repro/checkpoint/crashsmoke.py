"""SIGKILL crash-injection drill for the checkpoint/resume contract.

The harness forks a victim process that runs a checkpointing experiment
with a :class:`CrashingPolicy` — a picklable wrapper that SIGKILLs its
own process at the top of ``select`` for a (randomizable) crash epoch,
i.e. with arbitrary un-checkpointed progress beyond the last surviving
snapshot.  SIGKILL cannot be caught, so this exercises the worst case:
no atexit sweep, no final flush, possibly a torn staging directory.
The parent then resumes from whatever survived on disk and asserts the
recovered run is bit-identical to an uninterrupted reference.

Shared by ``tests/test_checkpoint.py`` and ``repro bench --crash-smoke``.
"""

from __future__ import annotations

import os
import signal
import sys
from pathlib import Path
from typing import Optional

import numpy as np

__all__ = ["CrashingPolicy", "run_crash_resume_smoke"]

#: Trace fields the live engine *measures* off the wall clock; even two
#: uninterrupted identical live runs differ there, so the recovery
#: comparison excludes them for that engine ("equal modulo ts").
_MEASURED_FIELDS = ("epoch_latency", "cumulative_time")


class CrashingPolicy:
    """Picklable wrapper that SIGKILLs its own process mid-experiment.

    The kill fires at the top of ``select`` for epoch ``crash_epoch`` —
    after epoch ``crash_epoch - 1`` completed and (when due) was
    checkpointed.  ``crash_epoch = None`` disarms the wrapper, which is
    how the resumed process (whose snapshot carries this very wrapper
    inside ``policy.pkl``) runs the tail to completion.
    """

    def __init__(self, inner, crash_epoch: Optional[int]) -> None:
        self.inner = inner
        self.crash_epoch = crash_epoch

    def __getattr__(self, attr: str):
        # Only consulted for attributes not in __dict__; the explicit
        # "inner" guard keeps unpickling (which restores __dict__ after
        # construction is skipped) from recursing.
        if attr == "inner" or attr.startswith("__"):
            raise AttributeError(attr)
        return getattr(self.inner, attr)

    def select(self, ctx):
        if self.crash_epoch is not None and ctx.t >= self.crash_epoch:
            os.kill(os.getpid(), signal.SIGKILL)
        return self.inner.select(ctx)

    def update(self, feedback) -> None:
        self.inner.update(feedback)


def _build_policy(policy_name: str, config):
    from repro.experiments.scenarios import make_policy
    from repro.rng import RngFactory

    return make_policy(
        policy_name, config, RngFactory(config.seed).get("cli.policy")
    )


def run_crash_resume_smoke(
    config,
    policy_name: str = "FedL",
    *,
    workdir: str | Path,
    interval: int = 3,
    keep: int = 2,
    smoke_seed: int = 0,
    crash_epoch: Optional[int] = None,
) -> dict:
    """Run the full kill/recover drill; returns a verdict report.

    ``crash_epoch`` defaults to a draw from ``[interval, max_epochs)``
    seeded by ``smoke_seed``, so repeated smokes cover different
    snapshot/progress offsets while staying reproducible; ``interval``
    is the lower bound because at least one snapshot must exist to
    recover from.  The report's ``ok`` is True iff the victim died by
    SIGKILL and the resumed run matched the uninterrupted reference
    (final weights byte-equal, traces equal — modulo measured wall time
    for the live engine).
    """
    from repro.checkpoint.snapshot import resume_experiment
    from repro.config import CheckpointConfig
    from repro.experiments.runner import run_experiment

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    ckpt_dir = workdir / "crash_smoke_ckpt"
    if crash_epoch is None:
        rng = np.random.default_rng(smoke_seed)
        crash_epoch = int(rng.integers(interval, config.max_epochs))

    base = config.replace(checkpoint=CheckpointConfig(directory=None))
    reference = run_experiment(_build_policy(policy_name, base), base)

    victim_config = base.replace(
        checkpoint=CheckpointConfig(
            directory=str(ckpt_dir), interval=interval, keep=keep
        )
    )
    pid = os.fork()
    if pid == 0:  # victim: must never outlive this block
        try:
            sys.stderr.flush()
            policy = CrashingPolicy(
                _build_policy(policy_name, victim_config), crash_epoch
            )
            run_experiment(policy, victim_config)
        finally:
            # Reaching here at all means the armed kill never fired
            # (e.g. the run stopped before crash_epoch).
            os._exit(3)
    _, status = os.waitpid(pid, 0)
    killed = os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL

    report = {
        "policy": policy_name,
        "crash_epoch": crash_epoch,
        "interval": interval,
        "killed_by_sigkill": killed,
        "final_w_equal": False,
        "traces_equal": False,
        "ok": False,
    }
    if not killed:
        return report

    ignore = (
        _MEASURED_FIELDS if config.training.engine == "live" else ()
    )
    recovered = resume_experiment(
        ckpt_dir,
        checkpoint_override=CheckpointConfig(directory=None),
        policy_hook=lambda p: setattr(p, "crash_epoch", None),
    )
    report["final_w_equal"] = (
        recovered.final_w.tobytes() == reference.final_w.tobytes()
    )
    report["traces_equal"] = bool(
        recovered.trace.equals(reference.trace, ignore=ignore)
    )
    report["ok"] = report["final_w_equal"] and report["traces_equal"]
    return report
