"""Tests for the federated-learning substrate (DANE, client, server, round)."""

import numpy as np
import pytest

from repro.datasets.synthetic import ClassConditionalGenerator, Dataset
from repro.fl.client import FLClient
from repro.fl.convergence import (
    estimate_local_accuracy,
    eta_to_rho,
    iterations_for_accuracy,
    rho_to_eta,
)
from repro.fl.dane import DaneWorkspace, dane_local_step, dane_surrogate_value
from repro.fl.round_runner import run_federated_round
from repro.fl.server import FLServer
from repro.nn.models import build_model
from repro.rng import RngFactory


@pytest.fixture
def setup(rng_factory):
    gen = ClassConditionalGenerator((6, 6, 1), 4, rng_factory.get("gen"), noise=0.3)
    model = build_model("mlp", 36, 4, rng_factory.get("model"), hidden=(8,))
    clients = [
        FLClient(k, model, rng_factory.get(f"c{k}"), sgd_steps=4, sgd_lr=0.1)
        for k in range(6)
    ]
    for c in clients:
        c.set_data(gen.sample(20, rng=rng_factory.get(f"d{c.client_id}")))
    test = gen.test_set(80, rng=rng_factory.get("test"))
    server = FLServer(model, model.get_params(), test)
    return gen, model, clients, server


class TestConvergenceMaps:
    def test_rho_eta_inverse(self):
        for rho in (1.0, 2.0, 5.0):
            assert eta_to_rho(rho_to_eta(rho)) == pytest.approx(rho)

    def test_eta_zero_one_iteration(self):
        assert eta_to_rho(0.0) == 1.0

    def test_rho_validation(self):
        with pytest.raises(ValueError):
            rho_to_eta(0.5)
        with pytest.raises(ValueError):
            eta_to_rho(1.0)

    def test_iterations_monotone_in_eta(self):
        assert iterations_for_accuracy(0.9) > iterations_for_accuracy(0.1)

    def test_iterations_monotone_in_theta0(self):
        assert iterations_for_accuracy(0.5, theta0=0.01) >= iterations_for_accuracy(
            0.5, theta0=0.5
        )

    def test_iterations_validation(self):
        with pytest.raises(ValueError):
            iterations_for_accuracy(1.0)
        with pytest.raises(ValueError):
            iterations_for_accuracy(0.5, theta0=1.5)


class TestAccuracyEstimator:
    def test_no_progress_worst_case(self):
        assert estimate_local_accuracy([1.0, 1.0, 1.0]) > 0.9

    def test_full_convergence_near_zero(self):
        # Geometric decay to a clear floor: final value equals the best.
        vals = [1.0, 0.1, 0.01, 0.001, 0.0001, 0.0001, 0.0001]
        assert estimate_local_accuracy(vals) < 0.1

    def test_partial_progress_intermediate(self):
        est = estimate_local_accuracy([1.0, 0.7, 0.5])
        assert 0.0 < est < 1.0

    def test_in_unit_interval(self, rng):
        for _ in range(20):
            vals = np.cumsum(rng.normal(size=6))[::-1]
            est = estimate_local_accuracy(vals.tolist())
            assert 0.0 <= est <= 0.995

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            estimate_local_accuracy([])


class TestDane:
    def test_workspace_validation(self):
        with pytest.raises(ValueError):
            DaneWorkspace(
                w_global=np.zeros(3),
                local_grad_at_w=np.zeros(2),
                global_grad=np.zeros(3),
                sigma1=1.0,
                sigma2=1.0,
            )
        with pytest.raises(ValueError):
            DaneWorkspace(
                w_global=np.zeros(3),
                local_grad_at_w=np.zeros(3),
                global_grad=np.zeros(3),
                sigma1=-1.0,
                sigma2=1.0,
            )

    def test_surrogate_at_zero_equals_local_loss(self, setup):
        gen, model, clients, server = setup
        c = clients[0]
        w = model.get_params()
        ws = DaneWorkspace(
            w_global=w,
            local_grad_at_w=c.local_grad(w),
            global_grad=c.local_grad(w),
            sigma1=1.0,
            sigma2=1.0,
        )
        g0 = dane_surrogate_value(model, ws, np.zeros_like(w), c.data)
        assert g0 == pytest.approx(c.local_loss(w))

    def test_inner_sgd_decreases_surrogate(self, setup):
        gen, model, clients, server = setup
        c = clients[0]
        w = model.get_params()
        g = c.local_grad(w)
        ws = DaneWorkspace(w, g, g, sigma1=1.0, sigma2=1.0)
        d, traj = dane_local_step(
            model, ws, c.data, max_steps=8, lr=0.1, batch_size=64,
            rng=np.random.default_rng(0),
        )
        assert traj[-1] < traj[0]

    def test_target_eta_early_stops(self, setup):
        gen, model, clients, server = setup
        c = clients[0]
        w = model.get_params()
        g = c.local_grad(w)
        ws = DaneWorkspace(w, g, g, sigma1=1.0, sigma2=1.0)
        _, loose = dane_local_step(
            model, ws, c.data, max_steps=20, lr=0.1, batch_size=64,
            rng=np.random.default_rng(0), target_eta=0.9,
        )
        _, tight = dane_local_step(
            model, ws, c.data, max_steps=20, lr=0.1, batch_size=64,
            rng=np.random.default_rng(0), target_eta=0.05,
        )
        assert len(loose) <= len(tight)

    def test_dane_validation(self, setup):
        gen, model, clients, server = setup
        c = clients[0]
        w = model.get_params()
        g = c.local_grad(w)
        ws = DaneWorkspace(w, g, g, sigma1=1.0, sigma2=1.0)
        with pytest.raises(ValueError):
            dane_local_step(model, ws, c.data, max_steps=0, lr=0.1,
                            batch_size=8, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            dane_local_step(model, ws, c.data, max_steps=5, lr=0.1,
                            batch_size=8, rng=np.random.default_rng(0),
                            target_eta=1.0)


class TestFLClient:
    def test_requires_data(self, setup):
        gen, model, clients, server = setup
        fresh = FLClient(99, model, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            fresh.local_loss(model.get_params())

    def test_rejects_empty_data(self, setup):
        gen, model, clients, server = setup
        with pytest.raises(ValueError):
            clients[0].set_data(Dataset(x=np.zeros((0, 36)), y=np.zeros(0, dtype=int)))

    def test_train_iteration_returns_eta_in_range(self, setup):
        gen, model, clients, server = setup
        w = model.get_params()
        g = clients[0].local_grad(w)
        d, eta, traj = clients[0].train_iteration(w, g)
        assert d.shape == w.shape
        assert 0.0 <= eta <= 0.995
        assert len(traj) >= 2

    def test_validation(self, setup):
        gen, model, clients, server = setup
        with pytest.raises(ValueError):
            FLClient(0, model, np.random.default_rng(0), sgd_steps=0)
        with pytest.raises(ValueError):
            FLClient(0, model, np.random.default_rng(0), sgd_lr=0.0)


class TestFLServer:
    def test_aggregate_updates_mean(self, setup):
        gen, model, clients, server = setup
        w0 = server.w.copy()
        ones = np.ones_like(w0)
        server.aggregate_updates([ones, 3 * ones], num_available=6)
        np.testing.assert_allclose(server.w, w0 + 2 * ones)

    def test_aggregate_available_normalization(self, setup):
        gen, model, clients, server = setup
        server.normalize_by = "available"
        w0 = server.w.copy()
        ones = np.ones_like(w0)
        server.aggregate_updates([ones, ones], num_available=4)
        np.testing.assert_allclose(server.w, w0 + 0.5 * ones)

    def test_aggregate_empty_noop(self, setup):
        gen, model, clients, server = setup
        w0 = server.w.copy()
        server.aggregate_updates([], num_available=6)
        np.testing.assert_array_equal(server.w, w0)

    def test_aggregate_gradients_mean(self):
        g = FLServer.aggregate_gradients([np.array([1.0, 0.0]), np.array([3.0, 2.0])])
        np.testing.assert_allclose(g, [2.0, 1.0])

    def test_aggregate_gradients_empty_raises(self):
        with pytest.raises(ValueError):
            FLServer.aggregate_gradients([])

    def test_weighted_population_loss_weighting(self, setup):
        gen, model, clients, server = setup
        avail = np.zeros(6, bool)
        avail[:2] = True
        loss = server.weighted_population_loss(clients[:2], avail)
        l0 = clients[0].local_loss(server.w)
        l1 = clients[1].local_loss(server.w)
        n0, n1 = clients[0].num_samples, clients[1].num_samples
        expected = (n0 * l0 + n1 * l1) / (n0 + n1)
        assert loss == pytest.approx(expected)

    def test_normalize_by_validation(self, setup):
        gen, model, clients, server = setup
        with pytest.raises(ValueError):
            FLServer(model, server.w, server.test_set, normalize_by="median")


class TestRoundRunner:
    def test_round_improves_loss(self, setup):
        gen, model, clients, server = setup
        sel = np.array([True] * 4 + [False] * 2)
        avail = np.ones(6, bool)
        first = run_federated_round(server, clients, sel, avail, iterations=2)
        for _ in range(4):
            res = run_federated_round(server, clients, sel, avail, iterations=2)
        assert res.test_loss < first.test_loss

    def test_etas_nan_for_nonparticipants(self, setup):
        gen, model, clients, server = setup
        sel = np.array([True, True, False, False, False, False])
        avail = np.ones(6, bool)
        res = run_federated_round(server, clients, sel, avail, iterations=1)
        assert np.isfinite(res.local_etas[:2]).all()
        assert np.isnan(res.local_etas[2:]).all()
        assert res.eta_max == pytest.approx(np.nanmax(res.local_etas))

    def test_cannot_select_unavailable(self, setup):
        gen, model, clients, server = setup
        sel = np.ones(6, bool)
        avail = np.array([True] * 5 + [False])
        with pytest.raises(ValueError):
            run_federated_round(server, clients, sel, avail, iterations=1)

    def test_needs_at_least_one_participant(self, setup):
        gen, model, clients, server = setup
        with pytest.raises(ValueError):
            run_federated_round(
                server, clients, np.zeros(6, bool), np.ones(6, bool), iterations=1
            )

    def test_iterations_validation(self, setup):
        gen, model, clients, server = setup
        sel = np.array([True] + [False] * 5)
        with pytest.raises(ValueError):
            run_federated_round(server, clients, sel, np.ones(6, bool), iterations=0)

    def test_result_w_matches_server(self, setup):
        gen, model, clients, server = setup
        sel = np.array([True, True, True, False, False, False])
        res = run_federated_round(server, clients, sel, np.ones(6, bool), iterations=1)
        np.testing.assert_array_equal(res.w, server.w)
