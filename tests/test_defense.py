"""Unit and property tests for the update-validation/defense layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl.defense import (
    AGGREGATORS,
    CorruptUpdateError,
    DefenseRoundReport,
    DefenseSpec,
    TrainingDivergedError,
    coordinate_median,
    krum,
    robust_aggregate,
    screen_updates,
    trimmed_mean,
)


class TestDefenseSpec:
    def test_defaults_valid(self):
        spec = DefenseSpec()
        assert spec.aggregator == "mean"

    def test_unknown_aggregator_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregator"):
            DefenseSpec(aggregator="majority-vote")

    def test_trim_fraction_bounds(self):
        with pytest.raises(ValueError):
            DefenseSpec(trim_fraction=0.5)
        with pytest.raises(ValueError):
            DefenseSpec(trim_fraction=-0.1)

    def test_norm_bound_positive(self):
        with pytest.raises(ValueError):
            DefenseSpec(aggregator="norm-clip", norm_bound=0.0)

    def test_from_config_none_is_off(self):
        from repro.config import DefenseConfig

        assert DefenseSpec.from_config(None) is None
        assert DefenseSpec.from_config(DefenseConfig(aggregator="none")) is None
        spec = DefenseSpec.from_config(DefenseConfig(aggregator="krum", krum_f=2))
        assert spec.aggregator == "krum" and spec.krum_f == 2

    def test_all_aggregators_constructible(self):
        for name in AGGREGATORS:
            if name == "none":
                continue
            assert DefenseSpec(aggregator=name).aggregator == name


class TestScreenGate:
    def test_no_defense_passthrough_is_identity(self):
        updates = [np.ones(4), np.full(4, 2.0)]
        out = screen_updates(
            updates, [0, 1], defense=None, epoch=0, iteration=0,
            sample_counts=[10, 20],
        )
        # Same objects, same order, same counts — the bit-identity contract.
        assert out.updates[0] is updates[0]
        assert out.updates[1] is updates[1]
        assert out.sample_counts == [10, 20]
        assert out.rejected_ids == [] and out.clipped_ids == []

    def test_no_defense_nan_raises_typed_error(self):
        bad = np.array([1.0, np.nan])
        with pytest.raises(CorruptUpdateError) as err:
            screen_updates(
                [np.zeros(2), bad], [3, 7], defense=None, epoch=5, iteration=2
            )
        assert err.value.client_id == 7
        assert err.value.epoch == 5
        assert err.value.iteration == 2

    def test_no_defense_inf_raises(self):
        with pytest.raises(CorruptUpdateError):
            screen_updates(
                [np.array([np.inf, 0.0])], [0], defense=None, epoch=0, iteration=0
            )

    @pytest.mark.parametrize("agg", ["mean", "median", "trimmed-mean", "krum"])
    def test_defense_quarantines_nonfinite(self, agg):
        spec = DefenseSpec(aggregator=agg)
        updates = [np.ones(3), np.full(3, np.nan), np.full(3, 2.0)]
        out = screen_updates(
            updates, [4, 5, 6], defense=spec, epoch=1, iteration=0
        )
        assert out.rejected_ids == [5]
        assert out.client_ids == [4, 6]
        assert all(np.isfinite(d).all() for d in out.updates)

    def test_defense_drops_sample_counts_with_update(self):
        spec = DefenseSpec(aggregator="mean")
        out = screen_updates(
            [np.ones(2), np.full(2, np.inf)], [0, 1],
            defense=spec, epoch=0, iteration=0, sample_counts=[5, 9],
        )
        assert out.sample_counts == [5]

    def test_norm_clip_rescales_onto_bound(self):
        spec = DefenseSpec(aggregator="norm-clip", norm_bound=1.0)
        big = np.array([3.0, 4.0])            # norm 5
        out = screen_updates(
            [big, np.array([0.1, 0.0])], [0, 1],
            defense=spec, epoch=0, iteration=0,
        )
        assert out.clipped_ids == [0]
        assert np.linalg.norm(out.updates[0]) == pytest.approx(1.0)
        assert np.allclose(out.updates[1], [0.1, 0.0])

    def test_norm_clip_adaptive_uses_median_norm(self):
        spec = DefenseSpec(aggregator="norm-clip")   # adaptive bound
        updates = [np.array([1.0, 0.0]), np.array([0.0, 2.0]), np.array([30.0, 40.0])]
        out = screen_updates(
            updates, [0, 1, 2], defense=spec, epoch=0, iteration=0
        )
        # Median norm is 2 — only the norm-50 outlier gets rescaled.
        assert out.clipped_ids == [2]
        assert np.linalg.norm(out.updates[2]) == pytest.approx(2.0)

    def test_mismatched_ids_rejected(self):
        with pytest.raises(ValueError):
            screen_updates([np.ones(2)], [0, 1], defense=None, epoch=0, iteration=0)


class TestCombiners:
    def test_median_small_case(self):
        out = coordinate_median([np.array([0.0, 10.0]), np.array([1.0, -10.0]),
                                 np.array([2.0, 0.0])])
        assert np.allclose(out, [1.0, 0.0])

    def test_trimmed_mean_drops_extremes(self):
        ups = [np.array([v]) for v in (0.0, 1.0, 2.0, 3.0, 1000.0)]
        out = trimmed_mean(ups, trim_fraction=0.2)   # k=1: drop 0.0 and 1000.0
        assert out[0] == pytest.approx(2.0)

    def test_trimmed_mean_zero_trim_is_mean(self):
        ups = [np.array([1.0]), np.array([3.0])]
        assert trimmed_mean(ups, trim_fraction=0.0)[0] == pytest.approx(2.0)

    def test_trimmed_mean_exhausted_falls_back_to_median(self):
        ups = [np.array([0.0]), np.array([100.0])]
        # k=⌊0.49*2⌋=0 → mean; force exhaustion with 3 updates and 0.4 → k=1, 2k<3
        ups3 = [np.array([0.0]), np.array([5.0]), np.array([100.0])]
        assert trimmed_mean(ups3, trim_fraction=0.4)[0] == pytest.approx(5.0)
        assert trimmed_mean(ups, trim_fraction=0.49)[0] == pytest.approx(50.0)

    def test_krum_picks_cluster_member(self):
        honest = [np.array([0.0, 0.0]), np.array([0.1, 0.0]),
                  np.array([0.0, 0.1]), np.array([0.1, 0.1])]
        outlier = np.array([1e6, -1e6])
        out = krum(honest + [outlier], f=1)
        assert np.abs(out).max() <= 0.2

    def test_krum_too_few_falls_back_to_median(self):
        ups = [np.array([0.0]), np.array([1.0]), np.array([50.0])]
        # n=3, f=1 → n-f-2=0 < 1 → median fallback
        assert krum(ups, f=1)[0] == pytest.approx(1.0)

    def test_blocked_pairwise_matches_monolithic(self):
        from repro.fl.defense import _pairwise_sq_dists

        rng = np.random.default_rng(5)
        stacked = rng.normal(size=(37, 19))
        diffs = stacked[:, None, :] - stacked[None, :, :]
        reference = np.einsum("ijk,ijk->ij", diffs, diffs)
        np.testing.assert_array_equal(_pairwise_sq_dists(stacked), reference)

    @pytest.mark.parametrize("tile", [1, 7, 10**9])
    def test_blocked_pairwise_tile_boundaries(self, tile, monkeypatch):
        # Force tiny (1 row), partial-final (7 rows over n=10), and
        # single-pass tiles; output must be invariant to tiling.
        import repro.fl.defense as defense_mod

        rng = np.random.default_rng(8)
        stacked = rng.normal(size=(10, 6))
        reference = defense_mod._pairwise_sq_dists(stacked)
        monkeypatch.setattr(
            defense_mod, "_KRUM_TILE_FLOATS", tile * stacked.shape[0] * 6
        )
        np.testing.assert_array_equal(
            defense_mod._pairwise_sq_dists(stacked), reference
        )

    def test_krum_blocked_equals_unblocked(self, monkeypatch):
        import repro.fl.defense as defense_mod

        rng = np.random.default_rng(13)
        ups = [rng.normal(size=40) for _ in range(25)]
        full = krum(ups, f=3)
        monkeypatch.setattr(defense_mod, "_KRUM_TILE_FLOATS", 25 * 40 * 2)
        np.testing.assert_array_equal(krum(ups, f=3), full)

    def test_robust_aggregate_rejects_mean(self):
        with pytest.raises(ValueError):
            robust_aggregate([np.ones(2)], DefenseSpec(aggregator="mean"))

    def test_empty_updates_rejected(self):
        with pytest.raises(ValueError):
            coordinate_median([])


class TestRoundReport:
    def test_quarantine_counts(self):
        report = DefenseRoundReport.empty(4, "median")
        report.rejected[1] += 3
        report.rejected[2] += 1
        report.clipped[0] += 2
        assert report.num_quarantined == 2
        assert report.total_rejected == 4
        assert report.total_clipped == 2


class TestTypedErrors:
    def test_diverged_error_fields(self):
        err = TrainingDivergedError(7, 3)
        assert err.epoch == 7 and err.iteration == 3
        assert "epoch 7" in str(err)


# -- hypothesis properties ------------------------------------------------------

finite_floats = st.floats(
    min_value=-1.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


def _update_lists(min_n=3, max_n=9, dim=4):
    return st.lists(
        st.lists(finite_floats, min_size=dim, max_size=dim),
        min_size=min_n,
        max_size=max_n,
    )


@settings(max_examples=50, deadline=None)
@given(data=_update_lists(), seed=st.integers(0, 2**16))
def test_median_and_trimmed_mean_permutation_invariant(data, seed):
    updates = [np.asarray(row) for row in data]
    perm = np.random.default_rng(seed).permutation(len(updates))
    shuffled = [updates[i] for i in perm]
    assert np.allclose(coordinate_median(updates), coordinate_median(shuffled))
    assert np.allclose(
        trimmed_mean(updates, 0.2), trimmed_mean(shuffled, 0.2)
    )


@settings(max_examples=50, deadline=None)
@given(
    vec=st.lists(finite_floats, min_size=3, max_size=6),
    n=st.integers(3, 8),
)
def test_aggregators_agree_with_mean_on_identical_updates(vec, n):
    v = np.asarray(vec)
    updates = [v.copy() for _ in range(n)]
    mean = np.mean(np.stack(updates), axis=0)
    assert np.allclose(coordinate_median(updates), mean)
    assert np.allclose(trimmed_mean(updates, 0.2), mean)
    assert np.allclose(krum(updates, f=1), mean)


@settings(max_examples=50, deadline=None)
@given(
    honest=_update_lists(min_n=5, max_n=11, dim=3),
    f=st.integers(1, 3),
    sign=st.sampled_from([-1.0, 1.0]),
)
def test_aggregators_bounded_under_f_outliers(honest, f, sign):
    """With f arbitrary outliers (and enough honest updates), the robust
    aggregates stay inside the honest values' coordinate range."""
    honest_arr = [np.asarray(row) for row in honest]
    h = len(honest_arr)
    n = h + f
    # Keep the Byzantine assumptions satisfiable: median needs the middle
    # order statistics honest, trimmed-mean needs ⌊trim·n⌋ >= f, Krum
    # needs n >= 2f + 3.
    if h < f + 3 or n // 2 >= h - (1 - n % 2):
        return
    outliers = [np.full(3, sign * 1e7 * (i + 1)) for i in range(f)]
    updates = honest_arr + outliers
    lo = np.min(np.stack(honest_arr), axis=0)
    hi = np.max(np.stack(honest_arr), axis=0)
    med = coordinate_median(updates)
    assert np.all(med >= lo - 1e-9) and np.all(med <= hi + 1e-9)
    trim = 0.49 if f / n >= 0.4 else max(0.2, (f + 0.5) / n)
    if int(np.floor(trim * n)) >= f and 2 * int(np.floor(trim * n)) < n:
        tm = trimmed_mean(updates, trim)
        assert np.all(tm >= lo - 1e-9) and np.all(tm <= hi + 1e-9)
    kr = krum(updates, f=f)
    assert np.all(kr >= lo - 1e-9) and np.all(kr <= hi + 1e-9)
