"""Property tests for the simulated round (repro.sim.entities).

The load-bearing invariants of the event-driven runtime:

* **sync exactness** — with no faults and no deadline, the simulated
  completion time equals the paper's closed-form
  ``epoch_latency``/``client_latency`` *bit-for-bit*, over randomized
  draws (the run-tracking barrier arithmetic, not approximately);
* **async exactness** — fault-free K-quorum rounds complete at exactly
  ``l · (K-th smallest per-iteration latency)``;
* **deadline monotonicity** — a binding deadline strictly reduces the
  round latency versus the sync barrier;
* the participation floor (3b) is never silently violated — a typed
  :class:`ParticipationFloorError` is raised instead.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.latency import client_latency, epoch_latency
from repro.sim import (
    FaultProfile,
    ParticipationFloorError,
    SimRoundSpec,
    simulate_round,
)


def draw_taus(seed: int, m: int):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.01, 3.0, m), rng.uniform(0.005, 1.0, m)


class TestSyncExactness:
    @given(
        seed=st.integers(0, 10_000),
        m=st.integers(1, 12),
        iterations=st.integers(1, 30),
    )
    @settings(max_examples=120, deadline=None)
    def test_completion_matches_epoch_latency_bitwise(self, seed, m, iterations):
        tau_loc, tau_cm = draw_taus(seed, m)
        out = simulate_round(
            SimRoundSpec(
                client_ids=np.arange(m),
                tau_loc=tau_loc,
                tau_cm=tau_cm,
                iterations=iterations,
            )
        )
        per_client = client_latency(iterations, tau_loc, tau_cm)
        expected = epoch_latency(np.atleast_1d(per_client), np.ones(m, bool))
        assert out.completion_time == expected  # bit-exact, no tolerance
        # Per-client completed work matches d_k(t) = l(τ_loc + τ_cm) exactly.
        for pos in range(m):
            assert out.client_busy_s[pos] == float(np.atleast_1d(per_client)[pos])
        # Every iteration kept the full participant set.
        assert len(out.contributors) == iterations
        for ids in out.contributors:
            assert np.array_equal(ids, np.arange(m))
        assert out.dropped == {} and out.num_retries == 0
        assert out.deadline_hits == 0

    @given(seed=st.integers(0, 10_000), iterations=st.integers(1, 50))
    @settings(max_examples=60, deadline=None)
    def test_iteration_durations_are_constant_width(self, seed, iterations):
        tau_loc, tau_cm = draw_taus(seed, 6)
        out = simulate_round(
            SimRoundSpec(
                client_ids=np.arange(6),
                tau_loc=tau_loc,
                tau_cm=tau_cm,
                iterations=iterations,
            )
        )
        width = float(np.max(tau_loc + tau_cm))
        assert out.iteration_durations == [width] * iterations


class TestAsyncExactness:
    @given(
        seed=st.integers(0, 10_000),
        m=st.integers(2, 12),
        iterations=st.integers(1, 30),
        k_frac=st.floats(0.1, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_quorum_completion_is_kth_smallest(self, seed, m, iterations, k_frac):
        tau_loc, tau_cm = draw_taus(seed, m)
        quorum = max(1, int(round(k_frac * m)))
        out = simulate_round(
            SimRoundSpec(
                client_ids=np.arange(m),
                tau_loc=tau_loc,
                tau_cm=tau_cm,
                iterations=iterations,
                aggregation="async",
                quorum=quorum,
            )
        )
        kth = float(np.sort(tau_loc + tau_cm)[quorum - 1])
        assert out.completion_time == iterations * kth  # bit-exact
        # Exactly the quorum-fastest clients contribute each iteration.
        fastest = set(np.argsort(tau_loc + tau_cm, kind="stable")[:quorum].tolist())
        for ids in out.contributors:
            assert len(ids) == quorum
            assert set(ids.tolist()) == fastest
        # Slow clients are cancelled, not dropped: all survive the round.
        assert out.dropped == {}


class TestDeadline:
    @given(seed=st.integers(0, 10_000), iterations=st.integers(1, 20))
    @settings(max_examples=80, deadline=None)
    def test_binding_deadline_strictly_reduces_latency(self, seed, iterations):
        rng = np.random.default_rng(seed)
        m = 6
        tau_loc = rng.uniform(0.01, 1.0, m)
        tau_cm = rng.uniform(0.005, 0.2, m)
        total = tau_loc + tau_cm
        # Deadline strictly between the fastest and slowest client, so it
        # binds (someone is dropped) but at least one upload lands.
        lo, hi = float(np.min(total)), float(np.max(total))
        if lo == hi:  # pragma: no cover - measure-zero draw
            return
        deadline = lo + 0.5 * (hi - lo)
        sync = simulate_round(
            SimRoundSpec(
                client_ids=np.arange(m), tau_loc=tau_loc, tau_cm=tau_cm,
                iterations=iterations,
            )
        )
        capped = simulate_round(
            SimRoundSpec(
                client_ids=np.arange(m), tau_loc=tau_loc, tau_cm=tau_cm,
                iterations=iterations, aggregation="deadline",
                deadline_s=deadline,
            )
        )
        assert capped.completion_time < sync.completion_time
        assert capped.deadline_hits >= 1
        assert capped.dropped and all(
            r == "deadline" for r in capped.dropped.values()
        )
        # Dropped stragglers are exactly the clients slower than the deadline.
        assert set(capped.dropped) == set(np.flatnonzero(total > deadline).tolist())

    def test_first_iteration_deadline_width_is_deadline(self):
        out = simulate_round(
            SimRoundSpec(
                client_ids=np.arange(3),
                tau_loc=np.array([0.5, 1.0, 4.0]),
                tau_cm=np.array([0.5, 1.0, 1.0]),
                iterations=4,
                aggregation="deadline",
                deadline_s=1.5,
            )
        )
        # Iteration 0 closes at the deadline (1.5s), dropping clients 1
        # and 2 (totals 2.0 and 5.0); the remaining iterations run clean
        # with only client 0 (total 1.0).
        assert out.iteration_durations == [1.5, 1.0, 1.0, 1.0]
        assert out.completion_time == 1.5 + 3 * 1.0
        assert out.dropped == {1: "deadline", 2: "deadline"}
        assert [len(ids) for ids in out.contributors] == [1, 1, 1, 1]


class TestParticipationFloor:
    def test_deadline_below_everyone_raises_typed_error(self):
        with pytest.raises(ParticipationFloorError) as err:
            simulate_round(
                SimRoundSpec(
                    client_ids=np.arange(4),
                    tau_loc=np.full(4, 1.0),
                    tau_cm=np.full(4, 0.5),
                    iterations=2,
                    aggregation="deadline",
                    deadline_s=0.25,
                    min_participants=4,
                )
            )
        assert err.value.floor == 4
        assert err.value.survivors < 4
        assert err.value.reason == "deadline"

    def test_initial_selection_below_floor_raises(self):
        with pytest.raises(ParticipationFloorError) as err:
            simulate_round(
                SimRoundSpec(
                    client_ids=np.arange(2),
                    tau_loc=np.ones(2),
                    tau_cm=np.ones(2),
                    iterations=1,
                    min_participants=3,
                )
            )
        assert err.value.reason == "initial selection"


class TestSpecValidation:
    def base(self, **kw):
        args = dict(
            client_ids=np.arange(3),
            tau_loc=np.ones(3),
            tau_cm=np.ones(3),
            iterations=2,
        )
        args.update(kw)
        return SimRoundSpec(**args)

    def test_unknown_aggregation(self):
        with pytest.raises(ValueError, match="aggregation"):
            self.base(aggregation="gossip")

    def test_deadline_requires_deadline_s(self):
        with pytest.raises(ValueError, match="deadline_s"):
            self.base(aggregation="deadline")

    def test_async_requires_quorum(self):
        with pytest.raises(ValueError, match="quorum"):
            self.base(aggregation="async")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            self.base(tau_loc=np.ones(2))

    def test_negative_tau(self):
        with pytest.raises(ValueError, match="nonnegative"):
            self.base(tau_cm=np.array([0.1, -0.1, 0.2]))

    def test_iterations_positive(self):
        with pytest.raises(ValueError, match="iterations"):
            self.base(iterations=0)

    def test_stochastic_profile_requires_rng(self):
        spec = self.base(faults=FaultProfile(upload_failure_prob=0.2))
        with pytest.raises(ValueError, match="RNG"):
            simulate_round(spec)
