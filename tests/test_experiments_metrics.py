"""Tests for trace recording, tables, and reporting."""

import numpy as np
import pytest

from repro.experiments.metrics import EpochRecord, Trace
from repro.experiments.reporting import format_series, format_table
from repro.experiments.tables import (
    accuracy_at_time,
    headline_claims,
    rounds_to_accuracy,
    time_to_accuracy,
)


def record(t, acc, cum_time, **kw):
    defaults = dict(
        t=t,
        test_accuracy=acc,
        test_loss=1.0 - acc,
        population_loss=1.0 - acc,
        epoch_latency=1.0,
        cumulative_time=cum_time,
        cost_spent=10.0,
        remaining_budget=100.0,
        num_selected=5,
        num_available=20,
        iterations=2,
        rho=float("nan"),
        eta_max=0.5,
    )
    defaults.update(kw)
    return EpochRecord(**defaults)


def make_trace(name="X", accs=(0.2, 0.5, 0.8), dt=1.0):
    tr = Trace(policy_name=name)
    for i, a in enumerate(accs):
        tr.append(record(i, a, (i + 1) * dt))
    return tr


class TestTrace:
    def test_column_extraction(self):
        tr = make_trace()
        np.testing.assert_allclose(tr.accuracy, [0.2, 0.5, 0.8])
        np.testing.assert_allclose(tr.times, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(tr.rounds, [0, 1, 2])

    def test_monotone_epochs_enforced(self):
        tr = make_trace()
        with pytest.raises(ValueError):
            tr.append(record(1, 0.9, 9.0))

    def test_final_and_best(self):
        tr = make_trace(accs=(0.2, 0.9, 0.8))
        assert tr.final_accuracy == 0.8
        assert tr.best_accuracy() == 0.9

    def test_empty_trace_raises(self):
        tr = Trace(policy_name="E")
        with pytest.raises(ValueError):
            _ = tr.final_accuracy
        assert tr.column("test_accuracy").size == 0

    def test_time_to_accuracy(self):
        tr = make_trace()
        assert tr.time_to_accuracy(0.5) == 2.0
        assert tr.time_to_accuracy(0.95) is None

    def test_rounds_to_accuracy(self):
        tr = make_trace()
        assert tr.rounds_to_accuracy(0.5) == 2  # 1-based

    def test_accuracy_at_time(self):
        tr = make_trace()
        assert tr.accuracy_at_time(0.5) == 0.0      # nothing finished yet
        assert tr.accuracy_at_time(2.5) == 0.5
        assert tr.accuracy_at_time(100.0) == 0.8

    def test_total_spend(self):
        assert make_trace().total_spend == pytest.approx(30.0)


class TestTables:
    def test_time_to_accuracy_per_policy(self):
        traces = {"A": make_trace(accs=(0.5, 0.9)), "B": make_trace(accs=(0.1, 0.2))}
        out = time_to_accuracy(traces, 0.85)
        assert out["A"] == 2.0
        assert out["B"] is None

    def test_rounds_table(self):
        traces = {"A": make_trace(accs=(0.5, 0.9))}
        assert rounds_to_accuracy(traces, 0.85)["A"] == 2

    def test_accuracy_at_time_table(self):
        traces = {"A": make_trace()}
        assert accuracy_at_time(traces, 2.0)["A"] == 0.5

    def test_headline_claims_structure(self):
        traces = {
            "FedL": make_trace("FedL", accs=(0.5, 0.9), dt=1.0),
            "FedAvg": make_trace("FedAvg", accs=(0.3, 0.9), dt=2.0),
        }
        out = headline_claims(traces, target=0.85)
        assert out["fedl_time"] == 2.0
        assert out["best_baseline_time"] == 4.0
        assert out["time_saving_pct"] == pytest.approx(50.0)

    def test_headline_requires_fedl(self):
        with pytest.raises(KeyError):
            headline_claims({"A": make_trace()}, target=0.5)

    def test_headline_unreached_target(self):
        traces = {
            "FedL": make_trace("FedL", accs=(0.5, 0.9)),
            "FedAvg": make_trace("FedAvg", accs=(0.1, 0.2)),
        }
        out = headline_claims(traces, target=0.85)
        assert out["best_baseline_time"] == float("inf")


class TestReporting:
    def test_format_table_alignment(self):
        rows = {"FedL": {"t80": 2.0, "acc": 0.93}, "FedAvg": {"t80": None, "acc": 0.9}}
        out = format_table(rows, title="demo")
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "FedL" in out and "--" in out  # None renders as --

    def test_format_table_empty(self):
        assert "empty" in format_table({})

    def test_format_series_subsamples(self):
        series = {"A": [(float(i), float(i)) for i in range(100)]}
        out = format_series(series, "x", "y", max_points=5)
        assert out.count("(") == 5

    def test_format_series_title(self):
        out = format_series({"A": [(1.0, 2.0)]}, "t", "acc", title="fig")
        assert out.startswith("fig")
