"""Tests for the Dropout layer and sample-weighted aggregation."""

import dataclasses

import numpy as np
import pytest

from repro.datasets.synthetic import ClassConditionalGenerator
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.fl.client import FLClient
from repro.fl.round_runner import run_federated_round
from repro.fl.server import FLServer
from repro.nn.dropout import Dropout
from repro.nn.models import build_model
from repro.rng import RngFactory


class TestDropout:
    def test_eval_mode_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = rng.normal(size=(4, 6))
        np.testing.assert_array_equal(layer.forward(x), x)

    def test_train_mode_zeroes_and_scales(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = np.ones((200, 50))
        out = layer.forward(x)
        zero_frac = float((out == 0).mean())
        assert 0.4 < zero_frac < 0.6
        # Survivors scaled by 1/(1-p) = 2.
        assert np.allclose(out[out != 0], 2.0)

    def test_expectation_preserved(self, rng):
        layer = Dropout(0.3, rng=rng)
        x = np.ones((500, 100))
        out = layer.forward(x)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_backward_routes_through_mask(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = rng.normal(size=(3, 8))
        out = layer.forward(x)
        g = layer.backward(np.ones_like(out))
        # Gradient zero exactly where the forward output was dropped.
        np.testing.assert_array_equal(g == 0, out == 0)

    def test_zero_p_identity_in_train(self, rng):
        layer = Dropout(0.0, rng=rng)
        x = rng.normal(size=(3, 4))
        np.testing.assert_array_equal(layer.forward(x), x)
        np.testing.assert_array_equal(layer.backward(x), x)

    def test_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestWeightedAggregation:
    def _server(self, rng_factory):
        gen = ClassConditionalGenerator((5, 5, 1), 3, rng_factory.get("g"), noise=0.3)
        model = build_model("mlp", 25, 3, rng_factory.get("m"), hidden=(6,))
        test = gen.test_set(60, rng=rng_factory.get("t"))
        return gen, model, FLServer(model, model.get_params(), test)

    def test_weighted_average_formula(self, rng_factory):
        gen, model, server = self._server(rng_factory)
        w0 = server.w.copy()
        ones = np.ones_like(w0)
        server.aggregate_updates([ones, 3 * ones], num_available=5,
                                 sample_counts=[10, 30])
        # weights 0.25/0.75 → 0.25·1 + 0.75·3 = 2.5
        np.testing.assert_allclose(server.w, w0 + 2.5 * ones)

    def test_equal_counts_match_uniform(self, rng_factory):
        gen, model, server = self._server(rng_factory)
        w0 = server.w.copy()
        ones = np.ones_like(w0)
        server.aggregate_updates([ones, 3 * ones], num_available=5,
                                 sample_counts=[7, 7])
        np.testing.assert_allclose(server.w, w0 + 2.0 * ones)

    def test_validation(self, rng_factory):
        gen, model, server = self._server(rng_factory)
        ones = np.ones_like(server.w)
        with pytest.raises(ValueError):
            server.aggregate_updates([ones], num_available=2, sample_counts=[1, 2])
        with pytest.raises(ValueError):
            server.aggregate_updates([ones], num_available=2, sample_counts=[0])

    def test_round_runner_weighted_mode(self, rng_factory):
        gen, model, server = self._server(rng_factory)
        clients = [
            FLClient(k, model, rng_factory.get(f"c{k}"), sgd_steps=3)
            for k in range(4)
        ]
        for k, c in enumerate(clients):
            c.set_data(gen.sample(10 * (k + 1), rng=rng_factory.get(f"d{k}")))
        sel = np.array([True, True, True, False])
        res = run_federated_round(
            server, clients, sel, np.ones(4, bool), iterations=2,
            aggregation="weighted",
        )
        assert np.isfinite(res.test_loss)

    def test_round_runner_rejects_unknown(self, rng_factory):
        gen, model, server = self._server(rng_factory)
        clients = [FLClient(0, model, rng_factory.get("c"))]
        clients[0].set_data(gen.sample(10))
        with pytest.raises(ValueError):
            run_federated_round(
                server, clients, np.array([True]), np.array([True]),
                iterations=1, aggregation="median",
            )

    def test_experiment_with_weighted_aggregation(self):
        cfg = experiment_config(budget=120.0, num_clients=10, max_epochs=5)
        cfg = cfg.replace(
            training=dataclasses.replace(cfg.training, aggregation="weighted")
        )
        pol = make_policy("FedAvg", cfg, RngFactory(0).get("p"))
        res = run_experiment(pol, cfg)
        assert len(res.trace) >= 1

    def test_config_validation(self):
        from repro.config import TrainingConfig

        with pytest.raises(ValueError):
            TrainingConfig(aggregation="median")
