"""End-to-end robustness tests: attacks, defenses, reliability feedback.

Covers the acceptance contract of the Byzantine-robust aggregation layer:

* a sign-flip minority demonstrably degrades undefended training and a
  robust aggregator recovers it,
* non-finite updates can never reach aggregation in any engine
  (quarantined with a defense, typed abort without),
* the attack-free weighted-mean path stays bit-identical to a run with
  the robustness machinery absent,
* the reliability score feeds the FedL policy's cost side.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.baselines.base import EpochContext
from repro.config import AttackConfig, DefenseConfig, FedLConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import experiment_config, make_policy
from repro.fl.defense import CorruptUpdateError
from repro.rng import RngFactory


def robust_config(
    attack="none",
    defense="none",
    engine=None,
    fraction=0.2,
    num_clients=15,
    min_participants=5,
    budget=600.0,
    max_epochs=25,
    seed=0,
):
    cfg = experiment_config(
        dataset="fmnist",
        iid=True,
        budget=budget,
        seed=seed,
        num_clients=num_clients,
        min_participants=min_participants,
        max_epochs=max_epochs,
    )
    cfg = cfg.replace(
        attack=AttackConfig(kind=attack, fraction=fraction)
        if attack != "none"
        else AttackConfig(),
        defense=DefenseConfig(aggregator=defense),
    )
    if engine is not None:
        cfg = cfg.replace(training=replace(cfg.training, engine=engine))
    return cfg


def run_fedl(cfg):
    policy = make_policy("FedL", cfg, RngFactory(cfg.seed).get("policy.FedL"))
    return run_experiment(policy, cfg)


class TestSignFlipDegradationAndRecovery:
    """The headline robustness claim, as one three-cell experiment."""

    @pytest.fixture(scope="class")
    def cells(self):
        return {
            "clean": run_fedl(robust_config()),
            "attacked": run_fedl(robust_config(attack="sign-flip")),
            "defended": run_fedl(
                robust_config(attack="sign-flip", defense="median")
            ),
        }

    def test_attack_degrades_undefended_accuracy(self, cells):
        clean = cells["clean"].trace.final_accuracy
        attacked = cells["attacked"].trace.final_accuracy
        assert attacked < clean - 0.25

    def test_median_recovers_to_within_noise(self, cells):
        clean = cells["clean"].trace.final_accuracy
        defended = cells["defended"].trace.final_accuracy
        assert defended > clean - 0.1

    def test_trimmed_mean_recovers_substantially(self, cells):
        attacked = cells["attacked"].trace.final_accuracy
        trimmed = run_fedl(
            robust_config(attack="sign-flip", defense="trimmed-mean")
        ).trace.final_accuracy
        assert trimmed > attacked + 0.25


class TestNanUnreachableInEveryEngine:
    """A non-finite payload must never reach the aggregate: with a defense
    it is quarantined; without one the round aborts with a typed error.

    ``fraction=0.49`` plants 4 adversaries among 8 clients while the floor
    is 5, so by pigeonhole every full round carries at least one corrupt
    upload — the quarantine counter cannot stay at zero by luck."""

    ENGINES = ("loop", "batched", "des")

    def _cfg(self, engine, defense):
        return robust_config(
            attack="nan",
            defense=defense,
            engine=engine,
            fraction=0.49,
            num_clients=8,
            min_participants=5,
            budget=150.0,
            max_epochs=4,
        )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_defense_quarantines_and_model_stays_finite(self, engine):
        result = run_fedl(self._cfg(engine, "median"))
        assert np.isfinite(result.final_w).all()
        assert all(
            np.isfinite(r.test_loss) for r in result.trace.records
        )
        assert sum(r.num_quarantined for r in result.trace.records) > 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_no_defense_aborts_with_typed_error(self, engine):
        with pytest.raises(CorruptUpdateError) as err:
            run_fedl(self._cfg(engine, "none"))
        assert err.value.client_id >= 0
        assert err.value.epoch >= 0

    @pytest.mark.parametrize("defense", ["mean", "trimmed-mean", "krum", "norm-clip"])
    def test_every_aggregator_survives_nan(self, defense):
        result = run_fedl(self._cfg("loop", defense))
        assert np.isfinite(result.final_w).all()


class TestBenignPathBitIdentity:
    def test_attack_free_run_identical_with_and_without_defense_config(self):
        """Default config (no attack, no defense) must produce exactly the
        same result as it did before the robustness layer existed; the
        closest executable proxy is that toggling the attack stream on a
        *different* kind never perturbs a benign run."""
        a = run_fedl(robust_config(max_epochs=6, budget=150.0))
        b = run_fedl(robust_config(max_epochs=6, budget=150.0))
        assert bool(a.trace.equals(b.trace))
        assert np.array_equal(a.final_w, b.final_w)

    def test_mean_defense_matches_no_defense_when_nobody_attacks(self):
        """The 'mean' aggregator keeps the weighted-average semantics, so
        with no attacker the defended run matches the undefended one."""
        plain = run_fedl(robust_config(max_epochs=6, budget=150.0))
        gated = run_fedl(
            robust_config(defense="mean", max_epochs=6, budget=150.0)
        )
        assert bool(plain.trace.equals(gated.trace))
        assert np.array_equal(plain.final_w, gated.final_w)


class TestReliabilityFeedback:
    def _ctx(self, reliability):
        m = 6
        return EpochContext(
            t=0,
            available=np.ones(m, bool),
            costs=np.full(m, 2.0),
            remaining_budget=100.0,
            min_participants=2,
            tau_last=np.ones(m),
            local_losses=np.full(m, np.nan),
            reliability=reliability,
        )

    def _policy(self, penalty):
        return make_policy(
            "FedL",
            robust_config(num_clients=6, min_participants=2).replace(
                fedl=FedLConfig(reliability_penalty=penalty)
            ),
            RngFactory(0).get("policy.FedL"),
        )

    def test_unreliable_clients_cost_more_to_the_learner(self):
        reliability = np.ones(6)
        reliability[2] = 0.0            # quarantined every round so far
        policy = self._policy(penalty=4.0)
        policy.fractional_decision(self._ctx(reliability))
        seen = policy._last_inputs.costs
        # c·(1 + penalty·(1−r)): untouched for reliable clients, 5× for
        # the fully unreliable one — belief-side only, real prices stay 2.
        assert seen[0] == pytest.approx(2.0)
        assert seen[2] == pytest.approx(10.0)

    def test_full_reliability_matches_no_reliability(self):
        policy = self._policy(penalty=4.0)
        _, x_none = policy.fractional_decision(self._ctx(None))
        policy2 = self._policy(penalty=4.0)
        _, x_ones = policy2.fractional_decision(self._ctx(np.ones(6)))
        assert np.allclose(x_none, x_ones)

    def test_zero_penalty_disables_inflation(self):
        reliability = np.zeros(6)
        policy = self._policy(penalty=0.0)
        _, x_flat = policy.fractional_decision(self._ctx(reliability))
        policy2 = self._policy(penalty=0.0)
        _, x_none = policy2.fractional_decision(self._ctx(None))
        assert np.allclose(x_flat, x_none)

    def test_context_validates_reliability(self):
        with pytest.raises(ValueError, match="reliability"):
            self._ctx(np.full(6, 1.5))
        with pytest.raises(ValueError, match="reliability"):
            self._ctx(np.ones(4))

    def test_reliability_ewma_flags_quarantined_clients(self):
        """After a nan-attack run with a defense, the runner's EWMA must
        have pushed the adversaries' reliability below the honest
        clients' (observable through the defense round reports)."""
        cfg = robust_config(
            attack="nan",
            defense="median",
            fraction=0.3,
            num_clients=10,
            min_participants=5,
            budget=200.0,
            max_epochs=6,
        )
        result = run_fedl(cfg)
        assert sum(r.num_quarantined for r in result.trace.records) > 0


class TestRoundReportPlumbing:
    def test_defense_report_reaches_round_result(self):
        from repro.datasets.synthetic import ClassConditionalGenerator
        from repro.fl.client import FLClient
        from repro.fl.defense import DefenseSpec
        from repro.fl.round_runner import run_federated_round
        from repro.fl.server import FLServer
        from repro.nn.models import build_model

        factory = RngFactory(5)
        gen = ClassConditionalGenerator((4, 4, 1), 3, factory.get("gen"), noise=0.3)
        model = build_model("mlp", 16, 3, factory.get("model"), hidden=(6,))
        clients = [
            FLClient(k, model, factory.get(f"c{k}"), sgd_steps=2, sgd_lr=0.1)
            for k in range(4)
        ]
        for c in clients:
            c.set_data(gen.sample(12, rng=factory.get(f"d{c.client_id}")))
        server = FLServer(model, model.get_params(), gen.test_set(30, rng=factory.get("t")))

        from repro.fl.adversary import Adversary

        adv = Adversary("nan", 4, 0.3, factory.get("adversary.roster"), factory)
        result = run_federated_round(
            server,
            clients,
            np.ones(4, bool),
            np.ones(4, bool),
            iterations=2,
            target_eta=0.5,
            adversary=adv,
            defense=DefenseSpec(aggregator="median"),
            epoch=0,
        )
        assert result.defense is not None
        assert result.defense.total_rejected == 2 * int(adv.mask.sum())
        assert result.defense.num_quarantined == int(adv.mask.sum())
        assert np.isfinite(server.w).all()

    def test_no_defense_round_result_has_no_report(self):
        from repro.datasets.synthetic import ClassConditionalGenerator
        from repro.fl.client import FLClient
        from repro.fl.round_runner import run_federated_round
        from repro.fl.server import FLServer
        from repro.nn.models import build_model

        factory = RngFactory(6)
        gen = ClassConditionalGenerator((4, 4, 1), 3, factory.get("gen"), noise=0.3)
        model = build_model("mlp", 16, 3, factory.get("model"), hidden=(6,))
        clients = [
            FLClient(k, model, factory.get(f"c{k}"), sgd_steps=2, sgd_lr=0.1)
            for k in range(3)
        ]
        for c in clients:
            c.set_data(gen.sample(12, rng=factory.get(f"d{c.client_id}")))
        server = FLServer(model, model.get_params(), gen.test_set(30, rng=factory.get("t")))
        result = run_federated_round(
            server, clients, np.ones(3, bool), np.ones(3, bool),
            iterations=1, target_eta=0.5,
        )
        assert result.defense is None
